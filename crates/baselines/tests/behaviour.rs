//! Behavioural contracts of the baselines that the figures rely on.

use tcsm_baselines::{OracleEngine, RapidFlowLite, TimingJoin};
use tcsm_core::{MatchKind, SearchBudget, TcmEngine};
use tcsm_datasets::{profiles::YAHOO, QueryGen};

fn workload(size: usize, density: f64) -> (tcsm_graph::QueryGraph, tcsm_graph::TemporalGraph, i64) {
    let g = YAHOO.generate(13, 0.3);
    let delta = YAHOO.window_sizes(0.3)[2];
    let qg = QueryGen::new(&g);
    let q = qg
        .generate(size, density, delta * 3 / 4, 5)
        .expect("query generation succeeds");
    (q, g, delta)
}

#[test]
fn timing_memory_grows_with_window() {
    // Timing materializes partials: a larger window must never shrink its
    // peak state (the Figure 10 mechanism).
    let (q, g, _) = workload(5, 0.5);
    let mut peaks = Vec::new();
    for delta in YAHOO.window_sizes(0.3) {
        let mut tj = TimingJoin::new(&q, &g, delta, true, 0, false).unwrap();
        let _ = tj.run();
        peaks.push(tj.peak_partials());
    }
    assert!(peaks[0] > 0);
    assert!(
        peaks.last().unwrap() >= peaks.first().unwrap(),
        "peaks {peaks:?}"
    );
}

#[test]
fn rapidflow_is_density_blind() {
    // The non-temporal baseline does the same search work regardless of the
    // temporal order's density (its Figure 8 curve is flat); only the
    // post-check rejections change.
    let (q0, g, delta) = workload(6, 0.0);
    // Rebuild the same topology with a total order: regenerate at density 1
    // with the same seed so the walk (and thus the topology) is identical.
    let qg = QueryGen::new(&g);
    let q1 = qg.generate(6, 1.0, delta * 3 / 4, 5).unwrap();
    let mut a = RapidFlowLite::new(&q0, &g, delta, true, SearchBudget::default(), false).unwrap();
    let _ = a.run();
    let mut b = RapidFlowLite::new(&q1, &g, delta, true, SearchBudget::default(), false).unwrap();
    let _ = b.run();
    assert_eq!(a.stats().search_nodes, b.stats().search_nodes);
    assert!(b.stats().post_check_rejections >= a.stats().post_check_rejections);
    assert!(b.stats().occurred <= a.stats().occurred);
}

#[test]
fn tighter_density_means_fewer_matches() {
    // Across all engines: raising the density can only remove matches.
    let (_, g, delta) = workload(6, 0.0);
    let qg = QueryGen::new(&g);
    let mut last = u64::MAX;
    for d in [0.0, 0.5, 1.0] {
        let q = qg.generate(6, d, delta * 3 / 4, 5).unwrap();
        let mut e = TcmEngine::new(&q, &g, delta, Default::default()).unwrap();
        let occurred = e
            .run()
            .iter()
            .filter(|m| m.kind == MatchKind::Occurred)
            .count() as u64;
        assert!(occurred <= last, "density {d}: {occurred} > {last}");
        assert!(occurred > 0, "walk guarantees a witness at density {d}");
        last = occurred;
    }
}

#[test]
fn oracle_agrees_on_budgetless_workload() {
    let (q, g, delta) = workload(4, 0.5);
    let mut oracle = OracleEngine::new(&q, &g, delta, true).unwrap();
    let mut engine = TcmEngine::new(
        &q,
        &g,
        delta,
        tcsm_core::EngineConfig {
            directed: true,
            ..Default::default()
        },
    )
    .unwrap();
    let mut a = oracle.run();
    let mut b = engine.run();
    let key = |m: &tcsm_core::MatchEvent| (m.kind, m.at, m.embedding.clone());
    a.sort_by_key(key);
    b.sort_by_key(key);
    assert_eq!(a, b);
}

#[test]
fn timing_join_attempt_budget_halts() {
    let (q, g, delta) = workload(7, 0.25);
    let mut tj = TimingJoin::new(&q, &g, delta, true, 0, false).unwrap();
    tj.set_max_join_attempts(50);
    let _ = tj.run();
    assert!(tj.stats().budget_exhausted);
}
