//! # tcsm-baselines
//!
//! The comparison algorithms of the paper's evaluation (§VI), rebuilt to the
//! extent their published descriptions allow (see DESIGN.md §5 for the
//! substitution rationale):
//!
//! * [`oracle::OracleEngine`] — a from-scratch enumerator used as the
//!   correctness reference in tests (not a performance baseline);
//! * [`rapidflow::RapidFlowLite`] — local enumeration rooted at the updated
//!   edge with no temporal awareness, post-checking `≺` (the role RapidFlow
//!   and SymBi play in Figures 7–9: fast non-temporal CSM + post-check);
//! * [`timing::TimingJoin`] — incremental multiway join with **materialized
//!   partial embeddings** per query prefix, the defining cost profile of
//!   Timing (exponential space, join-on-update).
//!
//! The SymBi baseline itself is `tcsm_core` with
//! [`tcsm_core::AlgorithmPreset::SymBiPostCheck`] (label-only DCS, temporal
//! post-check), matching how the paper derived it from the same codebase.

pub mod oracle;
pub mod rapidflow;
pub mod timing;

pub use oracle::OracleEngine;
pub use rapidflow::RapidFlowLite;
pub use timing::TimingJoin;
