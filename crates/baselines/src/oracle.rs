//! Brute-force reference: re-enumerate every time-constrained embedding
//! after each stream event and diff.
//!
//! This is the semantic ground truth for the whole workspace: Definition
//! II.3 applied literally, no auxiliary structures, no pruning. Tests
//! compare every engine and baseline against it on small random streams.

use std::collections::BTreeSet;
use tcsm_core::{Embedding, MatchEvent, MatchKind};
use tcsm_graph::{
    EventKind, EventQueue, GraphError, QueryGraph, TemporalGraph, Ts, VertexId, WindowGraph,
};

/// From-scratch continuous matcher (exponential; test-sized graphs only).
pub struct OracleEngine<'g> {
    q: QueryGraph,
    full: &'g TemporalGraph,
    window: WindowGraph,
    queue: EventQueue,
    next_event: usize,
    current: BTreeSet<Embedding>,
}

impl<'g> OracleEngine<'g> {
    /// Builds the oracle for the same inputs as `TcmEngine::new`.
    pub fn new(
        q: &QueryGraph,
        g: &'g TemporalGraph,
        delta: i64,
        directed: bool,
    ) -> Result<OracleEngine<'g>, GraphError> {
        Ok(OracleEngine {
            q: q.clone(),
            full: g,
            window: WindowGraph::new(g.labels().to_vec(), directed),
            queue: EventQueue::new(g, delta)?,
            next_event: 0,
            current: BTreeSet::new(),
        })
    }

    /// Processes the whole stream, returning all match events.
    pub fn run(&mut self) -> Vec<MatchEvent> {
        let mut out = Vec::new();
        while self.step(&mut out) {}
        out
    }

    /// Processes one event; `false` when the stream is done.
    pub fn step(&mut self, out: &mut Vec<MatchEvent>) -> bool {
        let Some(ev) = self.queue.events().get(self.next_event).copied() else {
            return false;
        };
        self.next_event += 1;
        let edge = *self.full.edge(ev.edge);
        match ev.kind {
            EventKind::Insert => self.window.insert(&edge),
            EventKind::Delete => self.window.remove(&edge),
        }
        let now = enumerate_all(&self.q, &self.window);
        for m in now.difference(&self.current) {
            out.push(MatchEvent {
                kind: MatchKind::Occurred,
                at: ev.at,
                embedding: m.clone(),
            });
        }
        for m in self.current.difference(&now) {
            out.push(MatchEvent {
                kind: MatchKind::Expired,
                at: ev.at,
                embedding: m.clone(),
            });
        }
        self.current = now;
        true
    }
}

/// Enumerates every time-constrained embedding of `q` in the current window
/// by unconstrained backtracking over query edges in a connected order.
pub fn enumerate_all(q: &QueryGraph, w: &WindowGraph) -> BTreeSet<Embedding> {
    // Connected edge order: each edge after the first shares a vertex with
    // the prefix (queries are connected, so this always succeeds).
    let m = q.num_edges();
    let mut order: Vec<usize> = Vec::with_capacity(m);
    let mut seen_v = vec![false; q.num_vertices()];
    let mut used_e = vec![false; m];
    if m > 0 {
        order.push(0);
        used_e[0] = true;
        seen_v[q.edge(0).a] = true;
        seen_v[q.edge(0).b] = true;
        while order.len() < m {
            let next = (0..m)
                .find(|&e| !used_e[e] && (seen_v[q.edge(e).a] || seen_v[q.edge(e).b]))
                .expect("query graph is connected");
            order.push(next);
            used_e[next] = true;
            seen_v[q.edge(next).a] = true;
            seen_v[q.edge(next).b] = true;
        }
    }

    let mut out = BTreeSet::new();
    let mut vmap: Vec<Option<VertexId>> = vec![None; q.num_vertices()];
    let mut emap: Vec<Option<tcsm_graph::EdgeKey>> = vec![None; m];
    let mut etime: Vec<Ts> = vec![Ts::ZERO; m];
    rec(q, w, &order, 0, &mut vmap, &mut emap, &mut etime, &mut out);
    return out;

    #[allow(clippy::too_many_arguments)]
    fn rec(
        q: &QueryGraph,
        w: &WindowGraph,
        order: &[usize],
        depth: usize,
        vmap: &mut Vec<Option<VertexId>>,
        emap: &mut Vec<Option<tcsm_graph::EdgeKey>>,
        etime: &mut Vec<Ts>,
        out: &mut BTreeSet<Embedding>,
    ) {
        if depth == order.len() {
            out.insert(Embedding {
                vertices: vmap.iter().map(|v| v.unwrap()).collect(),
                edges: emap.iter().map(|e| e.unwrap()).collect(),
            });
            return;
        }
        let e = order[depth];
        let qe = *q.edge(e);
        // Candidate (va, vb) endpoint images.
        let try_assign = |vmap: &mut Vec<Option<VertexId>>,
                          emap: &mut Vec<Option<tcsm_graph::EdgeKey>>,
                          etime: &mut Vec<Ts>,
                          out: &mut BTreeSet<Embedding>,
                          va: VertexId,
                          vb: VertexId| {
            if w.label(va) != q.label(qe.a) || w.label(vb) != q.label(qe.b) {
                return;
            }
            // Injectivity against already-mapped vertices.
            let a_new = vmap[qe.a].is_none();
            let b_new = vmap[qe.b].is_none();
            if a_new && vmap.contains(&Some(va)) {
                return;
            }
            if b_new && (vmap.contains(&Some(vb)) || va == vb) {
                return;
            }
            if !a_new && vmap[qe.a] != Some(va) {
                return;
            }
            if !b_new && vmap[qe.b] != Some(vb) {
                return;
            }
            let Some(bucket) = w.pair(va, vb) else {
                return;
            };
            let c = w.constraint_for(va, vb, qe.direction, qe.label);
            for rec_edge in bucket.iter_matching(c) {
                // Edge injectivity (only possible via parallel candidates).
                if emap.contains(&Some(rec_edge.key)) {
                    continue;
                }
                // Temporal order against mapped edges.
                let ord = q.order();
                let ok = (0..q.num_edges()).all(|e2| {
                    emap[e2].is_none()
                        || (!ord.precedes(e2, e) || etime[e2] < rec_edge.time)
                            && (!ord.precedes(e, e2) || rec_edge.time < etime[e2])
                });
                if !ok {
                    continue;
                }
                if a_new {
                    vmap[qe.a] = Some(va);
                }
                if b_new {
                    vmap[qe.b] = Some(vb);
                }
                emap[e] = Some(rec_edge.key);
                etime[e] = rec_edge.time;
                rec(q, w, order, depth + 1, vmap, emap, etime, out);
                emap[e] = None;
                if b_new {
                    vmap[qe.b] = None;
                }
                if a_new {
                    vmap[qe.a] = None;
                }
            }
        };
        match (vmap[qe.a], vmap[qe.b]) {
            (Some(va), Some(vb)) => try_assign(vmap, emap, etime, out, va, vb),
            (Some(va), None) => {
                let nbrs: Vec<VertexId> = w.neighbors(va).map(|(x, _)| x).collect();
                for vb in nbrs {
                    try_assign(vmap, emap, etime, out, va, vb);
                }
            }
            (None, Some(vb)) => {
                let nbrs: Vec<VertexId> = w.neighbors(vb).map(|(x, _)| x).collect();
                for va in nbrs {
                    try_assign(vmap, emap, etime, out, va, vb);
                }
            }
            (None, None) => {
                // Only possible at depth 0: iterate all alive buckets.
                let pairs: Vec<(VertexId, VertexId)> = w.buckets().map(|p| (p.a, p.b)).collect();
                for (x, y) in pairs {
                    try_assign(vmap, emap, etime, out, x, y);
                    try_assign(vmap, emap, etime, out, y, x);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsm_graph::query::paper_running_example;
    use tcsm_graph::TemporalGraphBuilder;

    fn figure_2a() -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        let labels = [0u32, 1, 5, 2, 3, 5, 4];
        let v: Vec<_> = labels.iter().map(|&l| b.vertex(l)).collect();
        b.edge(v[0], v[1], 1);
        b.edge(v[3], v[4], 2);
        b.edge(v[3], v[4], 3);
        b.edge(v[0], v[3], 4);
        b.edge(v[3], v[6], 5);
        b.edge(v[0], v[1], 6);
        b.edge(v[3], v[6], 7);
        b.edge(v[0], v[3], 8);
        b.edge(v[4], v[6], 9);
        b.edge(v[4], v[6], 10);
        b.edge(v[1], v[4], 11);
        b.edge(v[0], v[3], 12);
        b.edge(v[3], v[4], 13);
        b.edge(v[3], v[6], 14);
        b.build().unwrap()
    }

    #[test]
    fn example_ii_1_static_embeddings() {
        // With the whole of Figure 2a alive, Example II.1's two
        // time-constrained embeddings (σ1 and σ6 variants) exist.
        let q = paper_running_example();
        let g = figure_2a();
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        for e in g.edges() {
            w.insert(e);
        }
        let all = enumerate_all(&q, &w);
        for m in &all {
            assert!(m.verify(&q, &g));
        }
        let times: Vec<Vec<i64>> = all
            .iter()
            .map(|m| m.edge_times(&g).iter().map(|t| t.raw()).collect())
            .collect();
        assert!(times.contains(&vec![1, 8, 11, 13, 10, 14]));
        assert!(times.contains(&vec![6, 8, 11, 13, 10, 14]));
        // The non-time-constrained mapping of Example II.1 must be absent.
        assert!(!times.contains(&vec![1, 4, 11, 2, 9, 5]));
    }

    #[test]
    fn oracle_stream_matches_engine_on_running_example() {
        let q = paper_running_example();
        let g = figure_2a();
        let mut oracle = OracleEngine::new(&q, &g, 10, false).unwrap();
        let oracle_events = oracle.run();
        let mut engine = tcsm_core::TcmEngine::new(&q, &g, 10, Default::default()).unwrap();
        let engine_events = engine.run();
        let norm = |evs: &[MatchEvent]| {
            let mut v: Vec<(MatchKind, Ts, Embedding)> = evs
                .iter()
                .map(|m| (m.kind, m.at, m.embedding.clone()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(norm(&oracle_events), norm(&engine_events));
    }
}
