//! `Timing-join`: incremental multiway join with materialized partial
//! embeddings.
//!
//! This reproduces the defining cost profile of Timing (Li et al., ICDE'19,
//! DESIGN.md §5): the query is decomposed into a left-deep connected edge
//! order `e_0, …, e_{m−1}`; for every prefix the algorithm **materializes**
//! all time-consistent partial embeddings. An arriving edge σ joins into
//! every position it can match, and the resulting delta cascades rightward
//! through alive edges; an expiring edge deletes every partial containing
//! it. Complete-prefix partials are the reported matches.
//!
//! Space is worst-case exponential in the query size — exactly the behaviour
//! Figure 10 contrasts against TCM's polynomial-space structures. A
//! `max_partials` cap marks the run unsolved instead of exhausting memory.

use tcsm_core::{Embedding, EngineStats, MatchEvent, MatchKind};
use tcsm_graph::{
    EdgeKey, EventKind, EventQueue, FxHashMap, GraphError, QEdgeId, QueryGraph, TemporalEdge,
    TemporalGraph, Ts, VertexId, WindowGraph,
};

const UNBOUND: VertexId = VertexId::MAX;

/// One materialized partial embedding of the prefix `order[0..=level]`.
#[derive(Clone, Debug)]
struct Partial {
    /// Image per query vertex (`UNBOUND` where not yet bound).
    vmap: Box<[VertexId]>,
    /// Image per prefix position (`edges[j]` matches `order[j]`).
    edges: Box<[EdgeKey]>,
    times: Box<[Ts]>,
}

/// Slot-addressed storage with lazy secondary indexes.
#[derive(Default)]
struct Level {
    slots: Vec<Option<Partial>>,
    free: Vec<usize>,
    len: usize,
    /// Join index: image of the next level's anchor vertex → slots.
    /// Entries are validated lazily (slot alive + key still matches).
    by_anchor: FxHashMap<VertexId, Vec<usize>>,
}

impl Level {
    fn insert(&mut self, p: Partial, anchor_key: Option<VertexId>) -> usize {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s] = Some(p);
                s
            }
            None => {
                self.slots.push(Some(p));
                self.slots.len() - 1
            }
        };
        self.len += 1;
        if let Some(k) = anchor_key {
            self.by_anchor.entry(k).or_default().push(slot);
        }
        slot
    }

    /// Removes a partial, eagerly purging its join-index entry: slots are
    /// recycled, so a stale index entry could otherwise alias a future
    /// occupant with the same anchor key and duplicate joins.
    fn remove(&mut self, slot: usize, anchor_key: Option<VertexId>) -> Option<Partial> {
        let p = self.slots[slot].take();
        if p.is_some() {
            self.free.push(slot);
            self.len -= 1;
            if let Some(k) = anchor_key {
                if let Some(v) = self.by_anchor.get_mut(&k) {
                    v.retain(|&s| s != slot);
                    if v.is_empty() {
                        self.by_anchor.remove(&k);
                    }
                }
            }
        }
        p
    }
}

/// The Timing-style continuous matcher.
pub struct TimingJoin<'g> {
    q: QueryGraph,
    full: &'g TemporalGraph,
    window: WindowGraph,
    queue: EventQueue,
    next_event: usize,
    /// Connected left-deep edge order and, per level > 0, the prefix-bound
    /// anchor endpoint used for the join index.
    order: Vec<QEdgeId>,
    /// `pos_of[e]` = position of query edge `e` in `order`.
    pos_of: Vec<usize>,
    anchor: Vec<tcsm_graph::QVertexId>,
    levels: Vec<Level>,
    /// Expiry index: oldest edge of a partial → (level, slot) refs (lazy).
    by_oldest: FxHashMap<EdgeKey, Vec<(u32, u32)>>,
    total_partials: usize,
    peak_partials: usize,
    max_partials: usize,
    /// Join-attempt budget (0 = unlimited) — the per-run analogue of the
    /// paper's wall-clock timeout.
    max_join_attempts: u64,
    stats: EngineStats,
    collect: bool,
}

impl<'g> TimingJoin<'g> {
    /// Builds the matcher. `max_partials` caps materialized state
    /// (0 = unlimited); exceeding it marks the run unsolved.
    pub fn new(
        q: &QueryGraph,
        g: &'g TemporalGraph,
        delta: i64,
        directed: bool,
        max_partials: usize,
        collect: bool,
    ) -> Result<TimingJoin<'g>, GraphError> {
        let queue = EventQueue::new(g, delta)?;
        let m = q.num_edges();
        // Connected order (same construction as the oracle's).
        let mut order = Vec::with_capacity(m);
        let mut bound = vec![false; q.num_vertices()];
        let mut used = vec![false; m];
        let mut anchor = vec![0; m];
        if m > 0 {
            order.push(0);
            used[0] = true;
            bound[q.edge(0).a] = true;
            bound[q.edge(0).b] = true;
            while order.len() < m {
                let e = (0..m)
                    .find(|&e| !used[e] && (bound[q.edge(e).a] || bound[q.edge(e).b]))
                    .expect("connected query");
                anchor[order.len()] = if bound[q.edge(e).a] {
                    q.edge(e).a
                } else {
                    q.edge(e).b
                };
                order.push(e);
                used[e] = true;
                bound[q.edge(e).a] = true;
                bound[q.edge(e).b] = true;
            }
        }
        let mut pos_of = vec![0; m];
        for (i, &e) in order.iter().enumerate() {
            pos_of[e] = i;
        }
        Ok(TimingJoin {
            q: q.clone(),
            full: g,
            window: WindowGraph::new(g.labels().to_vec(), directed),
            queue,
            next_event: 0,
            order,
            pos_of,
            anchor,
            levels: (0..m).map(|_| Level::default()).collect(),
            by_oldest: FxHashMap::default(),
            total_partials: 0,
            peak_partials: 0,
            max_partials,
            max_join_attempts: 0,
            stats: EngineStats::default(),
            collect,
        })
    }

    /// Caps the total number of join attempts (0 = unlimited).
    pub fn set_max_join_attempts(&mut self, cap: u64) {
        self.max_join_attempts = cap;
    }

    #[inline]
    fn attempt(&mut self) -> bool {
        self.stats.search_nodes += 1;
        if self.max_join_attempts != 0 && self.stats.search_nodes > self.max_join_attempts {
            self.stats.budget_exhausted = true;
            return false;
        }
        true
    }

    /// Statistics so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Peak number of materialized partial embeddings (the memory-profile
    /// headline of this baseline).
    pub fn peak_partials(&self) -> usize {
        self.peak_partials
    }

    /// Processes the whole stream.
    pub fn run(&mut self) -> Vec<MatchEvent> {
        let mut out = Vec::new();
        while self.step(&mut out) {}
        out
    }

    /// Processes one event; `false` when done or budget-exhausted.
    pub fn step(&mut self, out: &mut Vec<MatchEvent>) -> bool {
        if self.stats.budget_exhausted {
            return false;
        }
        let Some(ev) = self.queue.events().get(self.next_event).copied() else {
            return false;
        };
        self.next_event += 1;
        self.stats.events += 1;
        let edge = *self.full.edge(ev.edge);
        match ev.kind {
            EventKind::Insert => {
                self.window.insert(&edge);
                self.on_insert(&edge, ev.at, out);
            }
            EventKind::Delete => {
                self.on_delete(&edge, ev.at, out);
                self.window.remove(&edge);
            }
        }
        self.peak_partials = self.peak_partials.max(self.total_partials);
        true
    }

    /// Temporal-order consistency of placing time `t` at position `pos`
    /// against all earlier-bound positions.
    fn time_ok(&self, p: &Partial, upto: usize, pos: usize, t: Ts) -> bool {
        let ord = self.q.order();
        let e = self.order[pos];
        for k in 0..upto {
            let ek = self.order[k];
            if ord.precedes(ek, e) && p.times[k] >= t {
                return false;
            }
            if ord.precedes(e, ek) && t >= p.times[k] {
                return false;
            }
        }
        true
    }

    /// Attempts to extend `p` (a prefix of length `pos`) with data edge
    /// `(key, t, va→qa, vb→qb)` at position `pos`.
    fn extend(
        &self,
        p: &Partial,
        pos: usize,
        key: EdgeKey,
        t: Ts,
        va: VertexId,
        vb: VertexId,
    ) -> Option<Partial> {
        let qe = *self.q.edge(self.order[pos]);
        // Vertex compatibility + injectivity.
        for (&u, &img) in [(&qe.a, &va), (&qe.b, &vb)] {
            match p.vmap[u] {
                UNBOUND => {
                    if self.window.label(img) != self.q.label(u) {
                        return None;
                    }
                    if p.vmap.contains(&img) {
                        return None;
                    }
                }
                bound if bound != img => return None,
                _ => {}
            }
        }
        if p.vmap[qe.a] == UNBOUND && p.vmap[qe.b] == UNBOUND && va == vb {
            return None;
        }
        // Edge injectivity + temporal order.
        if p.edges[..pos].contains(&key) {
            return None;
        }
        if !self.time_ok(p, pos, pos, t) {
            return None;
        }
        let mut vmap = p.vmap.clone();
        vmap[qe.a] = va;
        vmap[qe.b] = vb;
        let mut edges = Vec::with_capacity(pos + 1);
        edges.extend_from_slice(&p.edges[..pos]);
        edges.push(key);
        let mut times = Vec::with_capacity(pos + 1);
        times.extend_from_slice(&p.times[..pos]);
        times.push(t);
        Some(Partial {
            vmap,
            edges: edges.into_boxed_slice(),
            times: times.into_boxed_slice(),
        })
    }

    /// Stores a new partial at `level`, reporting it when complete.
    fn commit(&mut self, p: Partial, level: usize, at: Ts, out: &mut Vec<MatchEvent>) {
        let m = self.q.num_edges();
        if level + 1 == m {
            self.stats.occurred += 1;
            if self.collect {
                out.push(MatchEvent {
                    kind: MatchKind::Occurred,
                    at,
                    embedding: Embedding {
                        vertices: p.vmap.to_vec(),
                        edges: self.canonical_edges(&p),
                    },
                });
            }
        }
        let anchor_key = if level + 1 < m {
            Some(p.vmap[self.anchor[level + 1]])
        } else {
            None
        };
        // Oldest edge (first to expire) indexes the partial for deletion.
        let oldest = p
            .edges
            .iter()
            .enumerate()
            .min_by_key(|&(i, k)| (p.times[i], *k))
            .map(|(_, &k)| k)
            .expect("non-empty prefix");
        let slot = self.levels[level].insert(p, anchor_key);
        self.by_oldest
            .entry(oldest)
            .or_default()
            .push((level as u32, slot as u32));
        self.total_partials += 1;
        if self.max_partials != 0 && self.total_partials > self.max_partials {
            self.stats.budget_exhausted = true;
        }
    }

    /// Converts prefix-ordered edge images back to query-edge order.
    fn canonical_edges(&self, p: &Partial) -> Vec<EdgeKey> {
        let mut edges = vec![EdgeKey(0); self.q.num_edges()];
        for (e, slot) in edges.iter_mut().enumerate() {
            *slot = p.edges[self.pos_of[e]];
        }
        edges
    }

    fn on_insert(&mut self, sigma: &TemporalEdge, at: Ts, out: &mut Vec<MatchEvent>) {
        let m = self.q.num_edges();
        for i in 0..m {
            if self.stats.budget_exhausted {
                return;
            }
            let e = self.order[i];
            let qe = *self.q.edge(e);
            // Candidate orientations of σ at position i.
            let mut seeds: Vec<Partial> = Vec::new();
            for o in [true, false] {
                let (va, vb) = if o {
                    (sigma.src, sigma.dst)
                } else {
                    (sigma.dst, sigma.src)
                };
                if qe.label != tcsm_graph::EDGE_LABEL_ANY && qe.label != sigma.label {
                    continue;
                }
                if self.window.is_directed() && qe.direction == tcsm_graph::Direction::AToB && !o {
                    continue;
                }
                if i == 0 {
                    let empty = Partial {
                        vmap: vec![UNBOUND; self.q.num_vertices()].into_boxed_slice(),
                        edges: Box::new([]),
                        times: Box::new([]),
                    };
                    if !self.attempt() {
                        return;
                    }
                    if let Some(p) = self.extend(&empty, 0, sigma.key, sigma.time, va, vb) {
                        seeds.push(p);
                    }
                } else {
                    // Join with level i-1 via the anchor index.
                    let anchor_u = self.anchor[i];
                    let anchor_img = if anchor_u == qe.a { va } else { vb };
                    let slots: Vec<usize> = self.levels[i - 1]
                        .by_anchor
                        .get(&anchor_img)
                        .cloned()
                        .unwrap_or_default();
                    for slot in slots {
                        if !self.attempt() {
                            return;
                        }
                        let Some(p) = self.levels[i - 1].slots[slot].as_ref() else {
                            continue; // lazily-deleted index entry
                        };
                        if p.vmap[anchor_u] != anchor_img {
                            continue; // stale (slot reused)
                        }
                        if let Some(np) = self.extend(p, i, sigma.key, sigma.time, va, vb) {
                            seeds.push(np);
                        }
                    }
                }
            }
            // Cascade each seed rightwards through alive edges.
            let mut frontier = seeds;
            let mut level = i;
            while !frontier.is_empty() {
                for p in &frontier {
                    self.commit(p.clone(), level, at, out);
                }
                if level + 1 == m || self.stats.budget_exhausted {
                    break;
                }
                let next_pos = level + 1;
                let ne = self.order[next_pos];
                let nqe = *self.q.edge(ne);
                let mut next: Vec<Partial> = Vec::new();
                for p in &frontier {
                    let anchor_u = self.anchor[next_pos];
                    let anchor_img = p.vmap[anchor_u];
                    let other_u = nqe.other(anchor_u);
                    let neighbours: Vec<VertexId> = match p.vmap[other_u] {
                        UNBOUND => self.window.neighbors(anchor_img).map(|(v, _)| v).collect(),
                        bound => vec![bound],
                    };
                    for vn in neighbours {
                        let Some(bucket) = self.window.pair(anchor_img, vn) else {
                            continue;
                        };
                        let (va, vb) = if anchor_u == nqe.a {
                            (anchor_img, vn)
                        } else {
                            (vn, anchor_img)
                        };
                        let c = self.window.constraint_for(va, vb, nqe.direction, nqe.label);
                        let recs: Vec<(EdgeKey, Ts)> =
                            bucket.iter_matching(c).map(|r| (r.key, r.time)).collect();
                        for (k, t) in recs {
                            if !self.attempt() {
                                return;
                            }
                            if let Some(np) = self.extend(p, next_pos, k, t, va, vb) {
                                next.push(np);
                            }
                        }
                    }
                }
                frontier = next;
                level = next_pos;
            }
        }
    }

    fn on_delete(&mut self, sigma: &TemporalEdge, at: Ts, out: &mut Vec<MatchEvent>) {
        let Some(refs) = self.by_oldest.remove(&sigma.key) else {
            return;
        };
        let m = self.q.num_edges();
        for (level, slot) in refs {
            let (level, slot) = (level as usize, slot as usize);
            let anchor_key = match self.levels[level].slots[slot].as_ref() {
                Some(p) if p.edges.contains(&sigma.key) => {
                    if level + 1 < m {
                        Some(p.vmap[self.anchor[level + 1]])
                    } else {
                        None
                    }
                }
                _ => continue, // stale reference
            };
            let p = self.levels[level]
                .remove(slot, anchor_key)
                .expect("checked alive");
            self.total_partials -= 1;
            if level + 1 == m {
                self.stats.expired += 1;
                if self.collect {
                    out.push(MatchEvent {
                        kind: MatchKind::Expired,
                        at,
                        embedding: Embedding {
                            vertices: p.vmap.to_vec(),
                            edges: self.canonical_edges(&p),
                        },
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsm_graph::{QueryGraphBuilder, TemporalGraphBuilder};

    fn small_setup() -> (QueryGraph, TemporalGraph) {
        let mut qb = QueryGraphBuilder::new();
        let a = qb.vertex(0);
        let b = qb.vertex(0);
        let c = qb.vertex(0);
        let e0 = qb.edge(a, b);
        let e1 = qb.edge(b, c);
        qb.precede(e0, e1);
        let q = qb.build().unwrap();
        let mut gb = TemporalGraphBuilder::new();
        let v = gb.vertices(4, 0);
        gb.edge(v, v + 1, 1);
        gb.edge(v + 1, v + 2, 2);
        gb.edge(v + 2, v + 3, 3);
        gb.edge(v + 1, v + 2, 4);
        gb.edge(v, v + 1, 5);
        let g = gb.build().unwrap();
        (q, g)
    }

    #[test]
    fn agrees_with_core_engine() {
        let (q, g) = small_setup();
        for delta in [3, 5, 100] {
            let mut tj = TimingJoin::new(&q, &g, delta, false, 0, true).unwrap();
            let mut tj_events = tj.run();
            let mut engine = tcsm_core::TcmEngine::new(&q, &g, delta, Default::default()).unwrap();
            let mut engine_events = engine.run();
            let key = |m: &MatchEvent| (m.kind, m.at, m.embedding.clone());
            tj_events.sort_by_key(key);
            engine_events.sort_by_key(key);
            assert_eq!(tj_events, engine_events, "delta={delta}");
        }
    }

    #[test]
    fn materializes_partials() {
        let (q, g) = small_setup();
        let mut tj = TimingJoin::new(&q, &g, 100, false, 0, false).unwrap();
        let _ = tj.run();
        assert!(tj.peak_partials() > 0);
    }

    #[test]
    fn partial_cap_marks_unsolved() {
        let (q, g) = small_setup();
        let mut tj = TimingJoin::new(&q, &g, 100, false, 1, false).unwrap();
        let _ = tj.run();
        assert!(tj.stats().budget_exhausted);
    }
}
