//! `RapidFlow-lite`: non-temporal local enumeration with post-check.
//!
//! Stands in for RapidFlow (VLDB'22) in the evaluation (DESIGN.md §5): like
//! RapidFlow it enumerates embeddings locally around the updated edge and is
//! completely unaware of the temporal order during the search, so matches
//! violating `≺` are generated and discarded at the end — which is why its
//! Figure 8 curve is flat in the density dimension. RapidFlow's query
//! reduction and dual-matching machinery are not reproduced; the static
//! least-frequent-label-first matching order stands in.

use tcsm_core::{Embedding, EngineStats, MatchEvent, MatchKind, SearchBudget};
use tcsm_graph::{
    EventKind, EventQueue, GraphError, QEdgeId, QueryGraph, Set64, TemporalEdge, TemporalGraph, Ts,
    VertexId, WindowGraph,
};

/// Continuous subgraph matcher: plain DFS + temporal post-check.
pub struct RapidFlowLite<'g> {
    q: QueryGraph,
    full: &'g TemporalGraph,
    window: WindowGraph,
    queue: EventQueue,
    next_event: usize,
    budget: SearchBudget,
    stats: EngineStats,
    collect: bool,
}

impl<'g> RapidFlowLite<'g> {
    /// Builds the matcher (same signature family as `TcmEngine::new`).
    pub fn new(
        q: &QueryGraph,
        g: &'g TemporalGraph,
        delta: i64,
        directed: bool,
        budget: SearchBudget,
        collect: bool,
    ) -> Result<RapidFlowLite<'g>, GraphError> {
        Ok(RapidFlowLite {
            q: q.clone(),
            full: g,
            window: WindowGraph::new(g.labels().to_vec(), directed),
            queue: EventQueue::new(g, delta)?,
            next_event: 0,
            budget,
            stats: EngineStats::default(),
            collect,
        })
    }

    /// Statistics so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Processes the whole stream.
    pub fn run(&mut self) -> Vec<MatchEvent> {
        let mut out = Vec::new();
        while self.step(&mut out) {}
        out
    }

    /// Processes one event; `false` when done or budget-exhausted.
    pub fn step(&mut self, out: &mut Vec<MatchEvent>) -> bool {
        if self.stats.budget_exhausted {
            return false;
        }
        let Some(ev) = self.queue.events().get(self.next_event).copied() else {
            return false;
        };
        self.next_event += 1;
        self.stats.events += 1;
        let edge = *self.full.edge(ev.edge);
        match ev.kind {
            EventKind::Insert => {
                self.window.insert(&edge);
                self.enumerate(&edge, MatchKind::Occurred, ev.at, out);
            }
            EventKind::Delete => {
                self.enumerate(&edge, MatchKind::Expired, ev.at, out);
                self.window.remove(&edge);
            }
        }
        true
    }

    fn enumerate(
        &mut self,
        sigma: &TemporalEdge,
        kind: MatchKind,
        at: Ts,
        out: &mut Vec<MatchEvent>,
    ) {
        let mut dfs = Dfs {
            q: &self.q,
            w: &self.window,
            vmap: vec![None; self.q.num_vertices()],
            emap: vec![None; self.q.num_edges()],
            etime: vec![Ts::ZERO; self.q.num_edges()],
            mapped_e: Set64::EMPTY,
            mapped_v: Set64::EMPTY,
            nodes: 0,
            found: 0,
            rejected: 0,
            budget: &self.budget,
            nodes_before: self.stats.search_nodes,
            exhausted: false,
            sink: Vec::new(),
            collect: self.collect,
        };
        for e in 0..self.q.num_edges() {
            for o in [true, false] {
                let qe = *self.q.edge(e);
                let (va, vb) = if o {
                    (sigma.src, sigma.dst)
                } else {
                    (sigma.dst, sigma.src)
                };
                if self.q.label(qe.a) != self.window.label(va)
                    || self.q.label(qe.b) != self.window.label(vb)
                {
                    continue;
                }
                if qe.label != tcsm_graph::EDGE_LABEL_ANY && qe.label != sigma.label {
                    continue;
                }
                if self.window.is_directed() && qe.direction == tcsm_graph::Direction::AToB && !o {
                    continue;
                }
                dfs.vmap[qe.a] = Some(va);
                dfs.vmap[qe.b] = Some(vb);
                dfs.mapped_v.insert(qe.a);
                dfs.mapped_v.insert(qe.b);
                dfs.emap[e] = Some(sigma.key);
                dfs.etime[e] = sigma.time;
                dfs.mapped_e.insert(e);
                dfs.go();
                dfs.mapped_e.remove(e);
                dfs.emap[e] = None;
                dfs.mapped_v.remove(qe.a);
                dfs.mapped_v.remove(qe.b);
                dfs.vmap[qe.a] = None;
                dfs.vmap[qe.b] = None;
                if dfs.exhausted {
                    break;
                }
            }
        }
        self.stats.search_nodes += dfs.nodes;
        self.stats.post_check_rejections += dfs.rejected;
        self.stats.budget_exhausted |= dfs.exhausted;
        match kind {
            MatchKind::Occurred => self.stats.occurred += dfs.found,
            MatchKind::Expired => self.stats.expired += dfs.found,
        }
        out.extend(dfs.sink.into_iter().map(|embedding| MatchEvent {
            kind,
            at,
            embedding,
        }));
    }
}

struct Dfs<'a> {
    q: &'a QueryGraph,
    w: &'a WindowGraph,
    vmap: Vec<Option<VertexId>>,
    emap: Vec<Option<tcsm_graph::EdgeKey>>,
    etime: Vec<Ts>,
    mapped_e: Set64,
    mapped_v: Set64,
    nodes: u64,
    found: u64,
    rejected: u64,
    budget: &'a SearchBudget,
    nodes_before: u64,
    exhausted: bool,
    sink: Vec<Embedding>,
    collect: bool,
}

impl Dfs<'_> {
    fn tick(&mut self) -> bool {
        self.nodes += 1;
        let b = self.budget;
        if (b.max_nodes_per_event != 0 && self.nodes > b.max_nodes_per_event)
            || (b.max_total_nodes != 0 && self.nodes_before + self.nodes > b.max_total_nodes)
            || (b.max_matches_per_event != 0 && self.found >= b.max_matches_per_event)
        {
            self.exhausted = true;
            return false;
        }
        true
    }

    fn go(&mut self) {
        if self.exhausted || !self.tick() {
            return;
        }
        // Pending edge first (both endpoints mapped).
        let pending: Option<QEdgeId> = (0..self.q.num_edges()).find(|&e| {
            !self.mapped_e.contains(e)
                && self.mapped_v.contains(self.q.edge(e).a)
                && self.mapped_v.contains(self.q.edge(e).b)
        });
        if let Some(e) = pending {
            let qe = *self.q.edge(e);
            let va = self.vmap[qe.a].unwrap();
            let vb = self.vmap[qe.b].unwrap();
            let Some(bucket) = self.w.pair(va, vb) else {
                return;
            };
            let c = self.w.constraint_for(va, vb, qe.direction, qe.label);
            let cands: Vec<(tcsm_graph::EdgeKey, Ts)> = bucket
                .iter_matching(c)
                .filter(|r| !self.emap.contains(&Some(r.key)))
                .map(|r| (r.key, r.time))
                .collect();
            for (k, t) in cands {
                self.emap[e] = Some(k);
                self.etime[e] = t;
                self.mapped_e.insert(e);
                self.go();
                self.mapped_e.remove(e);
                self.emap[e] = None;
                if self.exhausted {
                    return;
                }
            }
            return;
        }
        if self.mapped_v.len() == self.q.num_vertices() {
            self.report();
            return;
        }
        // Static order: first unmapped vertex adjacent to the mapped region.
        let u = (0..self.q.num_vertices())
            .find(|&u| {
                !self.mapped_v.contains(u)
                    && self
                        .q
                        .incident_edges(u)
                        .iter()
                        .any(|&(_, w)| self.mapped_v.contains(w))
            })
            .expect("connected query");
        let (_, w0) = *self
            .q
            .incident_edges(u)
            .iter()
            .find(|&&(_, w)| self.mapped_v.contains(w))
            .unwrap();
        let pivot = self.vmap[w0].unwrap();
        let cands: Vec<VertexId> = self
            .w
            .neighbors(pivot)
            .map(|(v, _)| v)
            .filter(|&v| self.w.label(v) == self.q.label(u) && !self.vmap.contains(&Some(v)))
            .collect();
        for v in cands {
            self.vmap[u] = Some(v);
            self.mapped_v.insert(u);
            self.go();
            self.mapped_v.remove(u);
            self.vmap[u] = None;
            if self.exhausted {
                return;
            }
        }
    }

    fn report(&mut self) {
        // Post-check the temporal order (the defining trait of this
        // baseline).
        for (a, b) in self.q.order().pairs() {
            if self.etime[a] >= self.etime[b] {
                self.rejected += 1;
                return;
            }
        }
        self.found += 1;
        if self.collect {
            self.sink.push(Embedding {
                vertices: self.vmap.iter().map(|v| v.unwrap()).collect(),
                edges: self.emap.iter().map(|e| e.unwrap()).collect(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsm_graph::QueryGraphBuilder;
    use tcsm_graph::TemporalGraphBuilder;

    #[test]
    fn agrees_with_core_engine_on_small_stream() {
        let mut qb = QueryGraphBuilder::new();
        let a = qb.vertex(0);
        let b = qb.vertex(0);
        let c = qb.vertex(0);
        let e0 = qb.edge(a, b);
        let e1 = qb.edge(b, c);
        qb.precede(e0, e1);
        let q = qb.build().unwrap();
        let mut gb = TemporalGraphBuilder::new();
        let v = gb.vertices(4, 0);
        gb.edge(v, v + 1, 1);
        gb.edge(v + 1, v + 2, 2);
        gb.edge(v + 2, v + 3, 3);
        gb.edge(v + 1, v + 2, 4);
        let g = gb.build().unwrap();

        let mut lite = RapidFlowLite::new(&q, &g, 5, false, Default::default(), true).unwrap();
        let mut lite_events = lite.run();
        let mut engine = tcsm_core::TcmEngine::new(&q, &g, 5, Default::default()).unwrap();
        let mut engine_events = engine.run();
        let key = |m: &MatchEvent| (m.kind, m.at, m.embedding.clone());
        lite_events.sort_by_key(key);
        engine_events.sort_by_key(key);
        assert_eq!(lite_events, engine_events);
        assert!(lite.stats().post_check_rejections > 0);
    }
}
