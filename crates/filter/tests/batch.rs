//! Batched bank application equals serial per-event application.
//!
//! For every same-`(timestamp, kind)` group of a bursty stream, applying
//! the group with `on_insert_batch`/`on_delete_batch` must leave the bank
//! in exactly the state the serial per-edge calls produce, and must emit
//! the same DCS delta multiset (serial deltas concatenated over the group).

use tcsm_dag::build_best_dag;
use tcsm_filter::{FilterBank, FilterMode};
use tcsm_graph::query::paper_running_example;
use tcsm_graph::{
    EventKind, EventQueue, FxHashMap, TemporalEdge, TemporalGraph, TemporalGraphBuilder,
    WindowGraph,
};

/// Figure 2a re-timed onto a coarse grid: σ arrivals collide in threes, so
/// delta batches are non-trivial and expirations meet same-instant arrivals.
fn bursty_figure_2a() -> TemporalGraph {
    let mut b = TemporalGraphBuilder::new();
    let labels = [0u32, 1, 5, 2, 3, 5, 4];
    let v: Vec<_> = labels.iter().map(|&l| b.vertex(l)).collect();
    let edges = [
        (0, 1),
        (3, 4),
        (3, 4),
        (0, 3),
        (3, 6),
        (0, 1),
        (3, 6),
        (0, 3),
        (4, 6),
        (4, 6),
        (1, 4),
        (0, 3),
        (3, 4),
        (3, 6),
    ];
    for (i, (a, c)) in edges.iter().enumerate() {
        b.edge(v[*a], v[*c], 1 + (i as i64 / 3));
    }
    b.build().unwrap()
}

fn delta_counts(deltas: &[tcsm_filter::DcsDelta]) -> FxHashMap<u64, i64> {
    let mut m = FxHashMap::default();
    for d in deltas {
        *m.entry(d.pair.pack()).or_insert(0) += if d.added { 1 } else { -1 };
    }
    m.retain(|_, v| *v != 0);
    m
}

#[test]
fn batch_bank_equals_serial_bank_per_group() {
    for mode in [FilterMode::Tc, FilterMode::LabelOnly] {
        for delta in [1i64, 2, 3] {
            let q = paper_running_example();
            let dag = build_best_dag(&q);
            let g = bursty_figure_2a();
            let mut ws = WindowGraph::new(g.labels().to_vec(), false);
            let mut wb = WindowGraph::new(g.labels().to_vec(), false);
            let mut serial = FilterBank::new(&q, &dag, mode, &ws);
            let mut batched = FilterBank::new(&q, &dag, mode, &wb);
            let queue = EventQueue::new(&g, delta).unwrap();
            let mut sd = Vec::new();
            let mut bd = Vec::new();
            for batch in queue.batches() {
                let edges: Vec<TemporalEdge> = batch.edges().map(|k| *g.edge(k)).collect();
                sd.clear();
                bd.clear();
                match batch.kind {
                    EventKind::Insert => {
                        for e in &edges {
                            ws.insert(e);
                            serial.on_insert(&q, &ws, e, |k| g.edge(k), &mut sd);
                        }
                        wb.begin_batch();
                        for e in &edges {
                            wb.insert_deferred(e);
                        }
                        batched.on_insert_batch(&q, &wb, &edges, |k| g.edge(k), &mut bd);
                    }
                    EventKind::Delete => {
                        for e in &edges {
                            ws.remove(e);
                            serial.on_delete(&q, &ws, e, |k| g.edge(k), &mut sd);
                        }
                        wb.begin_batch();
                        for e in &edges {
                            wb.remove_deferred(e);
                        }
                        batched.on_delete_batch(&q, &wb, &edges, |k| g.edge(k), &mut bd);
                    }
                }
                assert_eq!(
                    serial.num_pairs(),
                    batched.num_pairs(),
                    "membership count diverged after batch at {:?} ({mode:?}, δ={delta})",
                    batch.at
                );
                assert_eq!(
                    delta_counts(&sd),
                    delta_counts(&bd),
                    "delta multiset diverged after batch at {:?} ({mode:?}, δ={delta})",
                    batch.at
                );
                let alive: Vec<TemporalEdge> = wb
                    .buckets()
                    .flat_map(|b| b.iter().map(|r| *g.edge(r.key)))
                    .collect();
                batched.check_consistency(&q, &wb, alive.iter());
            }
            assert_eq!(batched.num_pairs(), 0, "drained stream leaves members");
        }
    }
}

#[test]
fn degenerate_single_batch_stream() {
    // Every edge at one timestamp: one arrival batch inserts everything,
    // one expiration batch drains everything.
    let q = paper_running_example();
    let dag = build_best_dag(&q);
    let mut b = TemporalGraphBuilder::new();
    let labels = [0u32, 1, 2, 3, 4];
    let v: Vec<_> = labels.iter().map(|&l| b.vertex(l)).collect();
    b.edge(v[0], v[1], 7);
    b.edge(v[0], v[3], 7);
    b.edge(v[1], v[3], 7);
    b.edge(v[3], v[4], 7);
    b.edge(v[2], v[3], 7);
    let g = b.build().unwrap();
    let mut w = WindowGraph::new(g.labels().to_vec(), false);
    let mut bank = FilterBank::new(&q, &dag, FilterMode::Tc, &w);
    let queue = EventQueue::new(&g, 5).unwrap();
    let mut deltas = Vec::new();
    let batches: Vec<_> = queue.batches().collect();
    assert_eq!(batches.len(), 2);
    for batch in batches {
        let edges: Vec<TemporalEdge> = batch.edges().map(|k| *g.edge(k)).collect();
        deltas.clear();
        w.begin_batch();
        match batch.kind {
            EventKind::Insert => {
                for e in &edges {
                    w.insert_deferred(e);
                }
                bank.on_insert_batch(&q, &w, &edges, |k| g.edge(k), &mut deltas);
            }
            EventKind::Delete => {
                for e in &edges {
                    w.remove_deferred(e);
                }
                bank.on_delete_batch(&q, &w, &edges, |k| g.edge(k), &mut deltas);
            }
        }
        let alive: Vec<TemporalEdge> = w
            .buckets()
            .flat_map(|b| b.iter().map(|r| *g.edge(r.key)))
            .collect();
        bank.check_consistency(&q, &w, alive.iter());
    }
    assert_eq!(bank.num_pairs(), 0);
}
