//! Differential suite: the chunked Eq. (1) kernel is bit-identical to the
//! scalar reference — at the kernel level on adversarial lane patterns, and
//! end-to-end through the filter bank on random streams.
//!
//! Together with the CI `kernel-differential` job (which re-runs the whole
//! equivalence test suite under `TCSM_KERNEL=scalar`), this pins the
//! guarantee that `TCSM_KERNEL` selection can never change a match stream.

use proptest::prelude::*;
use tcsm_dag::build_best_dag;
use tcsm_filter::{kernel, FilterBank, FilterMode, KernelKind};
use tcsm_graph::*;

/// Random kernel operands: `(child_row, rank, relmask, tmax)` with the
/// instance's invariants (pad lane pinned to `+∞`, every rank a valid
/// index, relmask ∈ {-1, 0}) but otherwise adversarial values.
///
/// Widths deliberately cover the chunked kernel's edge cases: 0 (a vertex
/// with an empty `TR(u)` row), 1, non-multiples of `CHUNK` (remainder
/// loop), exact multiples (no remainder), and the `MAX_QUERY_DIM` maximum.
/// `rank_bias` skews rows toward the pad index — the old `NO_RANK`
/// sentinel — so pad-heavy rows (children sharing few temporal ranks) are
/// common, and lane values are skewed toward the `±∞` sentinels.
fn arb_kernel_args() -> impl Strategy<Value = (Vec<i64>, Vec<u8>, Vec<i64>, i64)> {
    (
        0usize..10,
        any::<u64>(),
        prop::collection::vec(any::<i64>(), 65),
        prop::collection::vec((0u8..4, any::<i64>()), 64),
        any::<i64>(),
    )
        .prop_map(|(wsel, seed, raw_row, lanes, tmax)| {
            const WIDTHS: [usize; 10] = [0, 1, 2, 7, 8, 9, 16, 17, 33, 64];
            let width = WIDTHS[wsel];
            let mut child_row: Vec<i64> = raw_row[..width + 1]
                .iter()
                .map(|&v| match v.rem_euclid(4) {
                    0 => i64::MIN,
                    1 => i64::MAX,
                    _ => v,
                })
                .collect();
            child_row[width] = i64::MAX; // pad lane invariant
            let rank_bias = seed % 3; // 0 = uniform, 1/2 = increasingly pad-heavy
            let rank: Vec<u8> = lanes[..width]
                .iter()
                .map(|&(r, v)| {
                    if rank_bias > 0 && !(v as u64).is_multiple_of(rank_bias + 1) {
                        width as u8 // NO_RANK ⇒ pad index
                    } else {
                        (r as usize % (width + 1)) as u8
                    }
                })
                .collect();
            let relmask: Vec<i64> = lanes[..width]
                .iter()
                .map(|&(_, v)| if v & 1 == 0 { -1 } else { 0 })
                .collect();
            (child_row, rank, relmask, tmax)
        })
}

/// Small random stream + query, identical in shape to the `laws.rs`
/// generator (kept local so the two suites can evolve independently).
fn arb_stream() -> impl Strategy<Value = (TemporalGraph, QueryGraph, i64)> {
    (
        3usize..6,
        prop::collection::vec((0u32..8, 0u32..8, 1i64..20, 0u32..2), 4..14),
        2usize..5,
        any::<u64>(),
        prop::collection::vec((0usize..8, 0usize..8), 0..4),
        3i64..12,
    )
        .prop_map(|(n, edges, qn, seed, order_pairs, delta)| {
            let mut b = TemporalGraphBuilder::new();
            for i in 0..n {
                b.vertex((seed >> i) as u32 % 2);
            }
            for (a, c, t, l) in edges {
                let (a, c) = (a % n as u32, c % n as u32);
                if a != c {
                    b.edge_full(a, c, t, l);
                }
            }
            let g = b.build().unwrap();
            let mut qb = QueryGraphBuilder::new();
            for i in 0..qn {
                qb.vertex((seed >> (i + 8)) as u32 % 2);
            }
            let mut m = 0;
            for i in 1..qn {
                qb.edge((seed as usize >> i) % i, i);
                m += 1;
            }
            for &(x, y) in &order_pairs {
                if m >= 2 {
                    let (x, y) = (x % m, y % m);
                    if x != y {
                        qb.precede(x.min(y), x.max(y));
                    }
                }
            }
            (g, qb.build().unwrap(), delta)
        })
}

fn bank_state(bank: &FilterBank) -> Vec<u8> {
    let mut enc = Encoder::new();
    bank.encode_state(&mut enc);
    enc.into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Kernel level: scalar and chunked agree bit-for-bit on every lane
    /// pattern, including repeated application onto the same accumulator.
    #[test]
    fn chunked_kernel_matches_scalar((child_row, rank, relmask, tmax) in arb_kernel_args()) {
        let width = rank.len();
        let mut a = vec![i64::MIN; width];
        let mut b = vec![i64::MIN; width];
        for _ in 0..3 {
            kernel::accumulate_scalar(&mut a, &child_row, &rank, &relmask, tmax);
            kernel::accumulate_chunked(&mut b, &child_row, &rank, &relmask, tmax);
            prop_assert_eq!(&a, &b);
        }
        // The per-child merge is shared, but check it preserves agreement.
        let mut am = vec![0i64; width];
        let mut bm = vec![0i64; width];
        kernel::merge_min(&mut am, &a);
        kernel::merge_min(&mut bm, &b);
        prop_assert_eq!(am, bm);
    }

    /// Bank level: two banks differing only in kernel kind produce
    /// identical DCS deltas at every event and byte-identical encoded
    /// state (max-min tables, membership, existence bits, counters) at
    /// every step of a random insert/delete stream.
    #[test]
    fn bank_is_kernel_invariant((g, q, delta) in arb_stream()) {
        let dag = build_best_dag(&q);
        let w = WindowGraph::new(g.labels().to_vec(), false);
        let mut ws = w.clone();
        let mut wc = w;
        let mut scalar = FilterBank::new(&q, &dag, FilterMode::Tc, &ws);
        let mut chunked = FilterBank::new(&q, &dag, FilterMode::Tc, &wc);
        scalar.set_kernel(KernelKind::Scalar);
        chunked.set_kernel(KernelKind::Chunked);
        let mut ds = Vec::new();
        let mut dc = Vec::new();
        let queue = EventQueue::new(&g, delta).unwrap();
        for ev in queue.iter() {
            let edge = *g.edge(ev.edge);
            ds.clear();
            dc.clear();
            match ev.kind {
                EventKind::Insert => {
                    ws.insert(&edge);
                    wc.insert(&edge);
                    scalar.on_insert(&q, &ws, &edge, |k| g.edge(k), &mut ds);
                    chunked.on_insert(&q, &wc, &edge, |k| g.edge(k), &mut dc);
                }
                EventKind::Delete => {
                    ws.remove(&edge);
                    wc.remove(&edge);
                    scalar.on_delete(&q, &ws, &edge, |k| g.edge(k), &mut ds);
                    chunked.on_delete(&q, &wc, &edge, |k| g.edge(k), &mut dc);
                }
            }
            prop_assert_eq!(&ds, &dc);
            prop_assert_eq!(scalar.num_pairs(), chunked.num_pairs());
            prop_assert_eq!(bank_state(&scalar), bank_state(&chunked));
        }
    }
}
