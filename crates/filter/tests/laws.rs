//! Monotonicity and soundness laws of the TC-matchable-edge filter.

use proptest::prelude::*;
use tcsm_dag::build_best_dag;
use tcsm_filter::{CandPair, FilterBank, FilterMode};
use tcsm_graph::*;

fn arb_stream() -> impl Strategy<Value = (TemporalGraph, QueryGraph, i64)> {
    (
        3usize..6,
        prop::collection::vec((0u32..8, 0u32..8, 1i64..20, 0u32..2), 4..14),
        2usize..5,
        any::<u64>(),
        prop::collection::vec((0usize..8, 0usize..8), 0..4),
        3i64..12,
    )
        .prop_map(|(n, edges, qn, seed, order_pairs, delta)| {
            let mut b = TemporalGraphBuilder::new();
            for i in 0..n {
                b.vertex((seed >> i) as u32 % 2);
            }
            for (a, c, t, l) in edges {
                let (a, c) = (a % n as u32, c % n as u32);
                if a != c {
                    b.edge_full(a, c, t, l);
                }
            }
            let g = b.build().unwrap();
            let mut qb = QueryGraphBuilder::new();
            for i in 0..qn {
                qb.vertex((seed >> (i + 8)) as u32 % 2);
            }
            let mut m = 0;
            for i in 1..qn {
                qb.edge((seed as usize >> i) % i, i);
                m += 1;
            }
            for &(x, y) in &order_pairs {
                if m >= 2 {
                    let (x, y) = (x % m, y % m);
                    if x != y {
                        qb.precede(x.min(y), x.max(y));
                    }
                }
            }
            (g, qb.build().unwrap(), delta)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn insert_only_adds_delete_only_removes((g, q, delta) in arb_stream()) {
        let dag = build_best_dag(&q);
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        let mut bank = FilterBank::new(&q, &dag, FilterMode::Tc, &w);
        let mut deltas = Vec::new();
        let queue = EventQueue::new(&g, delta).unwrap();
        for ev in queue.iter() {
            let edge = *g.edge(ev.edge);
            deltas.clear();
            match ev.kind {
                EventKind::Insert => {
                    w.insert(&edge);
                    bank.on_insert(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                    // Max-min values rise monotonically on insert: the
                    // event may only ADD pairs.
                    prop_assert!(deltas.iter().all(|d| d.added));
                }
                EventKind::Delete => {
                    w.remove(&edge);
                    bank.on_delete(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                    prop_assert!(deltas.iter().all(|d| !d.added));
                }
            }
        }
        prop_assert_eq!(bank.num_pairs(), 0);
    }

    #[test]
    fn tc_filter_is_a_subset_of_label_filter((g, q, delta) in arb_stream()) {
        let dag = build_best_dag(&q);
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        let mut tc = FilterBank::new(&q, &dag, FilterMode::Tc, &w);
        let mut lo = FilterBank::new(&q, &dag, FilterMode::LabelOnly, &w);
        let mut deltas = Vec::new();
        let queue = EventQueue::new(&g, delta).unwrap();
        let mut alive: Vec<TemporalEdge> = Vec::new();
        for ev in queue.iter() {
            let edge = *g.edge(ev.edge);
            match ev.kind {
                EventKind::Insert => {
                    w.insert(&edge);
                    alive.push(edge);
                    deltas.clear();
                    tc.on_insert(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                    deltas.clear();
                    lo.on_insert(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                }
                EventKind::Delete => {
                    alive.retain(|e| e.key != edge.key);
                    w.remove(&edge);
                    deltas.clear();
                    tc.on_delete(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                    deltas.clear();
                    lo.on_delete(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                }
            }
            // Every TC pair is also a label pair (Lemma IV.1 filters are
            // only ever *stricter*).
            prop_assert!(tc.num_pairs() <= lo.num_pairs());
            for sigma in &alive {
                for e in 0..q.num_edges() {
                    for o in [true, false] {
                        let pair = CandPair { qedge: e, key: sigma.key, a_to_src: o };
                        if tc.contains(pair) {
                            prop_assert!(lo.contains(pair));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pack_unpack_roundtrip(qedge in 0usize..64, key in any::<u32>(), o in any::<bool>()) {
        let p = CandPair { qedge, key: EdgeKey(key), a_to_src: o };
        prop_assert_eq!(CandPair::unpack(p.pack()), p);
    }
}
