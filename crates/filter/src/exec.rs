//! Executor abstraction for the four independent `(DAG, polarity)` instance
//! updates.
//!
//! `tcsm-filter` sits below the engine crate, so it cannot name the worker
//! pool directly; instead the bank runs its per-event/per-batch instance
//! updates through this one-method trait. [`SerialExec`] (and a bank with
//! no executor installed) runs them in slice order on the caller —
//! byte-identical to the pre-parallel code path. `tcsm-core` implements
//! [`Exec`] for its `WorkerPool`, which fans the jobs out over parked
//! worker threads.
//!
//! The contract is deliberately narrow: jobs are mutually independent
//! (each owns disjoint `&mut` state), every job runs **exactly once**, and
//! `run_jobs` returns only after all of them finished. Implementations may
//! schedule jobs on any threads in any order; *result* determinism is the
//! caller's job (the bank gives each instance its own flip shard and
//! merges shards in instance order afterwards).

/// Runs a set of mutually independent jobs to completion (see the module
/// docs for the exact contract).
pub trait Exec: Send + Sync {
    /// Calls every job in `jobs` exactly once and returns when all have
    /// finished. Ordering and thread placement are unspecified.
    fn run_jobs(&self, jobs: &mut [&mut (dyn FnMut() + Send)]);
}

/// The trivial executor: runs jobs in slice order on the calling thread.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialExec;

impl Exec for SerialExec {
    fn run_jobs(&self, jobs: &mut [&mut (dyn FnMut() + Send)]) {
        for job in jobs {
            job();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_exec_runs_every_job_once_in_order() {
        let log = std::sync::Mutex::new(Vec::new());
        let mut a = || log.lock().unwrap().push(0);
        let mut b = || log.lock().unwrap().push(1);
        let mut c = || log.lock().unwrap().push(2);
        {
            let mut jobs: Vec<&mut (dyn FnMut() + Send)> = vec![&mut a, &mut b, &mut c];
            SerialExec.run_jobs(&mut jobs);
        }
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2]);
    }
}
