//! The filter bank: four max-min instances plus the DCS pair membership set.
//!
//! A candidate pair `(ε, σ, orientation)` belongs to the DCS edge set iff it
//! passes **all four** instances (`ˆq`/`ˆq⁻¹` × later/earlier — each a sound
//! filter by Lemma IV.1, so the intersection is sound). The bank turns each
//! stream event into the DCS deltas `E⁺_DCS` / `E⁻_DCS` of Algorithm 1:
//! pairs of the arriving/expiring edge itself, plus pairs of other alive
//! edges whose pass status flipped while the tables were updated.
//!
//! Membership is a paged bitmap indexed by data-edge key: each key owns
//! `2·|E(q)|` bits (query edge × orientation), so the backtracking matcher's
//! inner-loop membership test is one page indirection plus a word index —
//! no hashing. Keys grow monotonically over an unbounded stream, so the
//! bitmap is split into fixed pages that are freed when their last member
//! bit clears: retained memory tracks the *alive* key spread (window size),
//! not the stream length.
//!
//! [`FilterMode::LabelOnly`] disables the temporal filter entirely (pairs
//! pass on labels/direction alone); this is the `SymBi`-style baseline
//! configuration used in §VI-B.

use crate::exec::Exec;
use crate::instance::FilterInstance;
use crate::pair::{valid_orientations, CandPair, DirectPairs};
use std::sync::Arc;
use tcsm_dag::{Polarity, QueryDag};
use tcsm_graph::codec::{CodecError, Decoder, Encoder};
use tcsm_graph::{AuditLevel, AuditViolation, QueryGraph, TemporalEdge, WindowGraph};

/// Whether candidate pairs are filtered by TC-matchability or labels only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterMode {
    /// Full TC-matchable-edge filtering (the TCM algorithm).
    Tc,
    /// Label/direction filtering only (the SymBi baseline).
    LabelOnly,
}

/// A DCS edge-set change produced by one stream event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DcsDelta {
    /// The pair that entered or left the DCS edge set.
    pub pair: CandPair,
    /// `true` = entered (`E⁺_DCS`), `false` = left (`E⁻_DCS`).
    pub added: bool,
}

/// Data-edge keys per membership page (tuning: 1024 keys ⇒ 8–16 KiB pages).
const PAGE_KEYS: usize = 1024;

/// Paged membership bitmap (see module docs). Pages allocate on first
/// member and free when their member count returns to zero, so retained
/// memory is bounded by the alive-key spread instead of the stream length.
struct MemberPages {
    /// Words per key (`⌈2·|E(q)| / 64⌉`).
    wpk: usize,
    pages: Vec<Option<Box<[u64]>>>,
    /// Set-bit census per page (drives page reclamation).
    page_bits: Vec<u32>,
}

impl MemberPages {
    fn new(wpk: usize) -> MemberPages {
        MemberPages {
            wpk,
            pages: Vec::new(),
            page_bits: Vec::new(),
        }
    }

    /// `(page, word-in-page, mask)` of a pair's membership bit.
    #[inline]
    fn locate(&self, pair: CandPair) -> (usize, usize, u64) {
        let key = pair.key.0 as usize;
        let bit = pair.qedge * 2 + pair.a_to_src as usize;
        (
            key / PAGE_KEYS,
            (key % PAGE_KEYS) * self.wpk + (bit >> 6),
            1u64 << (bit & 63),
        )
    }

    #[inline]
    fn contains(&self, pair: CandPair) -> bool {
        let (page, word, mask) = self.locate(pair);
        match self.pages.get(page) {
            Some(Some(p)) => p[word] & mask != 0,
            _ => false,
        }
    }

    /// Sets a bit; returns true if it was newly set.
    fn insert(&mut self, pair: CandPair) -> bool {
        let (page, word, mask) = self.locate(pair);
        if page >= self.pages.len() {
            self.pages.resize_with(page + 1, || None);
            self.page_bits.resize(page + 1, 0);
        }
        let p = self.pages[page]
            .get_or_insert_with(|| vec![0u64; PAGE_KEYS * self.wpk].into_boxed_slice());
        let fresh = p[word] & mask == 0;
        if fresh {
            p[word] |= mask;
            self.page_bits[page] += 1;
        }
        fresh
    }

    /// Clears a bit; returns true if it was set. Frees the page when its
    /// last bit clears.
    fn remove(&mut self, pair: CandPair) -> bool {
        let (page, word, mask) = self.locate(pair);
        let Some(Some(p)) = self.pages.get_mut(page) else {
            return false;
        };
        let was = p[word] & mask != 0;
        if was {
            p[word] &= !mask;
            self.page_bits[page] -= 1;
            if self.page_bits[page] == 0 {
                self.pages[page] = None;
            }
        }
        was
    }

    /// Bytes currently retained by allocated pages (diagnostics).
    fn retained_bytes(&self) -> usize {
        self.pages.iter().flatten().count() * PAGE_KEYS * self.wpk * 8
    }

    /// Serializes the bitmap sparsely: the page-table length, then one
    /// `(index, census, words)` record per *allocated* page. Freed pages
    /// (`None` slots) are implicit.
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.wpk);
        enc.put_usize(self.pages.len());
        enc.put_usize(self.pages.iter().flatten().count());
        for (i, page) in self.pages.iter().enumerate() {
            let Some(page) = page else { continue };
            enc.put_usize(i);
            enc.put_u32(self.page_bits[i]);
            for &w in page.iter() {
                enc.put_u64(w);
            }
        }
    }

    /// Inverse of [`MemberPages::encode`]. Validates the words-per-key
    /// against this bank's query shape, every page index against the
    /// declared table length, and every stored census against the page's
    /// actual popcount (a page with census 0 would have been freed, so
    /// zero censuses are refused too). Returns the total member count.
    fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<usize, CodecError> {
        let wpk = dec.get_usize()?;
        if wpk != self.wpk {
            return Err(CodecError::Invalid(format!(
                "membership words-per-key {wpk} (expected {})",
                self.wpk
            )));
        }
        let table_len = dec.get_usize()?;
        let num_alloc = dec.get_count(8)?;
        if num_alloc > table_len {
            return Err(CodecError::Invalid(format!(
                "{num_alloc} allocated pages exceed table length {table_len}"
            )));
        }
        let mut pages: Vec<Option<Box<[u64]>>> = Vec::new();
        pages.resize_with(table_len, || None);
        let mut page_bits = vec![0u32; table_len];
        let mut total = 0usize;
        let mut prev: Option<usize> = None;
        for _ in 0..num_alloc {
            let i = dec.get_usize()?;
            if i >= table_len {
                return Err(CodecError::Invalid(format!(
                    "page index {i} out of range (table length {table_len})"
                )));
            }
            if prev.is_some_and(|p| i <= p) {
                return Err(CodecError::Invalid(format!(
                    "page indexes not strictly increasing at {i}"
                )));
            }
            prev = Some(i);
            let census = dec.get_u32()?;
            let nwords = PAGE_KEYS * self.wpk;
            let mut words = Vec::with_capacity(nwords.min(dec.remaining() / 8 + 1));
            let mut ones = 0u32;
            for _ in 0..nwords {
                let w = dec.get_u64()?;
                ones += w.count_ones();
                words.push(w);
            }
            if census != ones || census == 0 {
                return Err(CodecError::Invalid(format!(
                    "page {i} census {census} vs popcount {ones} (empty pages are freed)"
                )));
            }
            pages[i] = Some(words.into_boxed_slice());
            page_bits[i] = census;
            total += census as usize;
        }
        self.pages = pages;
        self.page_bits = page_bits;
        Ok(total)
    }
}

/// Four-instance TC-matchable-edge filter with pair membership tracking.
pub struct FilterBank {
    mode: FilterMode,
    instances: Vec<FilterInstance>,
    members: MemberPages,
    num_pairs: usize,
    scratch_flips: Vec<CandPair>,
    /// Valid `(query edge, orientation)` list of the current event/batch,
    /// computed once and shared by all four instances (reused allocation).
    /// In batched mode the lists of all batch edges are flattened here.
    scratch_orients: Vec<(tcsm_graph::QEdgeId, bool)>,
    /// Per-batch-edge `(edge, orientation sub-range)` seeds (reused
    /// allocation).
    scratch_seeds: Vec<(TemporalEdge, (u32, u32))>,
    /// Executor for the four independent instance updates (`None` = run
    /// them serially on the caller, the historical behaviour).
    exec: Option<Arc<dyn Exec>>,
    /// Per-instance flip shards for executor rounds (reused allocations),
    /// merged into the caller's flip list in instance order.
    shards: Vec<Vec<CandPair>>,
    /// Instance-update rounds routed through the executor.
    par_rounds: u64,
}

impl FilterBank {
    /// Builds the bank for a query and its forward DAG `ˆq` over the fixed
    /// vertex set of `g` (the instances' dense tables are sized from it).
    pub fn new(
        q: &QueryGraph,
        forward: &QueryDag,
        mode: FilterMode,
        g: &WindowGraph,
    ) -> FilterBank {
        let instances = match mode {
            FilterMode::LabelOnly => Vec::new(),
            FilterMode::Tc => {
                let rev = forward.reversed(q);
                vec![
                    FilterInstance::new(forward.clone(), Polarity::Later, q, g),
                    FilterInstance::new(forward.clone(), Polarity::Earlier, q, g),
                    FilterInstance::new(rev.clone(), Polarity::Later, q, g),
                    FilterInstance::new(rev, Polarity::Earlier, q, g),
                ]
            }
        };
        FilterBank {
            mode,
            instances,
            members: MemberPages::new((2 * q.num_edges()).div_ceil(64).max(1)),
            num_pairs: 0,
            scratch_flips: Vec::new(),
            scratch_orients: Vec::new(),
            scratch_seeds: Vec::new(),
            exec: None,
            shards: Vec::new(),
            par_rounds: 0,
        }
    }

    /// Installs (or clears) the executor the four instance updates run
    /// through. With `None` — the default — updates run serially on the
    /// caller. The emitted delta sequence is identical either way; only
    /// thread placement changes.
    pub fn set_exec(&mut self, exec: Option<Arc<dyn Exec>>) {
        self.exec = exec;
    }

    /// Number of instance-update rounds that ran through the executor
    /// (0 when no executor is installed — diagnostics/stats).
    #[inline]
    pub fn parallel_rounds(&self) -> u64 {
        self.par_rounds
    }

    /// Cumulative Eq. (1) kernel counters summed over the instances:
    /// `(invocations, merged lanes, early-exit bails)`. All zero in
    /// [`FilterMode::LabelOnly`] (no instances).
    pub fn kernel_counters(&self) -> (u64, u64, u64) {
        self.instances.iter().fold((0, 0, 0), |acc, inst| {
            let (i, l, x) = inst.kernel_counters();
            (acc.0 + i, acc.1 + l, acc.2 + x)
        })
    }

    /// Overrides the Eq. (1) kernel on every instance (tests and
    /// interleaved benches; production selection is `TCSM_KERNEL`).
    #[doc(hidden)]
    pub fn set_kernel(&mut self, kern: crate::kernel::KernelKind) {
        for inst in &mut self.instances {
            inst.set_kernel(kern);
        }
    }

    /// Runs `f` exactly once per filter instance. With an executor
    /// installed the calls fan out, each instance pushing its pass-flips
    /// into a private shard; the shards are merged into `flips` in
    /// instance order, so the flip sequence is byte-identical to the
    /// serial path (which appends to `flips` directly, also in instance
    /// order — instances never read the flip list).
    fn update_instances<F>(&mut self, flips: &mut Vec<CandPair>, f: F)
    where
        F: Fn(&mut FilterInstance, &mut Vec<CandPair>) + Send + Sync,
    {
        let exec = match &self.exec {
            Some(exec) if self.instances.len() > 1 => Arc::clone(exec),
            _ => {
                for inst in &mut self.instances {
                    f(inst, flips);
                }
                return;
            }
        };
        let num_instances = self.instances.len();
        self.shards.resize_with(num_instances, Vec::new);
        let f = &f;
        let mut jobs_iter =
            self.instances
                .iter_mut()
                .zip(self.shards.iter_mut())
                .map(|(inst, shard)| {
                    shard.clear();
                    move || f(inst, shard)
                });
        // The TC bank runs exactly four instances; adapt the jobs to trait
        // objects on the stack so the per-event hot path stays
        // allocation-free (heap fallback only for hypothetical other
        // counts).
        if num_instances == 4 {
            let (Some(mut j0), Some(mut j1), Some(mut j2), Some(mut j3)) = (
                jobs_iter.next(),
                jobs_iter.next(),
                jobs_iter.next(),
                jobs_iter.next(),
            ) else {
                unreachable!("zip over four instances yields four jobs");
            };
            drop(jobs_iter);
            let mut jobs: [&mut (dyn FnMut() + Send); 4] = [&mut j0, &mut j1, &mut j2, &mut j3];
            exec.run_jobs(&mut jobs);
        } else {
            let mut jobs_store: Vec<_> = jobs_iter.collect();
            let mut jobs: Vec<&mut (dyn FnMut() + Send)> = jobs_store
                .iter_mut()
                .map(|job| job as &mut (dyn FnMut() + Send))
                .collect();
            exec.run_jobs(&mut jobs);
        }
        self.par_rounds += 1;
        for shard in &mut self.shards {
            flips.append(shard);
        }
    }

    /// Rebuilds the shared orientation list for `sigma`.
    fn compute_orients(&mut self, q: &QueryGraph, g: &WindowGraph, sigma: &TemporalEdge) {
        self.scratch_orients.clear();
        for e in 0..q.num_edges() {
            for o in valid_orientations(q, g, e, sigma) {
                self.scratch_orients.push((e, o));
            }
        }
    }

    /// Rebuilds the flattened orientation list and per-edge seed ranges for
    /// a whole batch.
    fn compute_orients_batch(&mut self, q: &QueryGraph, g: &WindowGraph, edges: &[TemporalEdge]) {
        self.scratch_orients.clear();
        self.scratch_seeds.clear();
        for &sigma in edges {
            let lo = self.scratch_orients.len() as u32;
            for e in 0..q.num_edges() {
                for o in valid_orientations(q, g, e, &sigma) {
                    self.scratch_orients.push((e, o));
                }
            }
            let hi = self.scratch_orients.len() as u32;
            self.scratch_seeds.push((sigma, (lo, hi)));
        }
    }

    /// Debug check that `sigma`'s window presence matches `expect_alive` —
    /// the "no half-applied batches" guard: batch handlers run only once
    /// the window reflects the *entire* batch.
    fn debug_window_state(
        &self,
        g: &WindowGraph,
        sigma: &TemporalEdge,
        expect_alive: bool,
    ) -> bool {
        let alive = g
            .pair(sigma.src, sigma.dst)
            .map(|p| p.iter().any(|r| r.key == sigma.key))
            .unwrap_or(false);
        alive == expect_alive
    }

    /// The bank's filter mode.
    #[inline]
    pub fn mode(&self) -> FilterMode {
        self.mode
    }

    /// Number of pairs currently in the DCS edge set (the Table V
    /// "edges in DCS" metric).
    #[inline]
    pub fn num_pairs(&self) -> usize {
        self.num_pairs
    }

    /// Is the oriented pair currently in the DCS edge set?
    #[inline]
    pub fn contains(&self, pair: CandPair) -> bool {
        self.members.contains(pair)
    }

    /// Bytes retained by the membership bitmap's live pages (bounded by the
    /// alive-key spread; diagnostics and regression tests).
    #[inline]
    pub fn member_bytes(&self) -> usize {
        self.members.retained_bytes()
    }

    /// Sets a membership bit; returns true if it was newly set.
    #[inline]
    fn insert_member(&mut self, pair: CandPair) -> bool {
        let fresh = self.members.insert(pair);
        if fresh {
            self.num_pairs += 1;
        }
        fresh
    }

    /// Clears a membership bit; returns true if it was set.
    #[inline]
    fn remove_member(&mut self, pair: CandPair) -> bool {
        let was = self.members.remove(pair);
        if was {
            self.num_pairs -= 1;
        }
        was
    }

    /// Full pass test against the current tables.
    fn passes_all(&self, q: &QueryGraph, pair: CandPair, sigma: &TemporalEdge) -> bool {
        self.instances
            .iter()
            .all(|inst| inst.passes(q, pair, sigma))
    }

    /// Handles an edge arrival. `g` must already contain `sigma`.
    /// `lookup` resolves edge keys of *other* alive edges to their records.
    pub fn on_insert<'a>(
        &mut self,
        q: &QueryGraph,
        g: &WindowGraph,
        sigma: &TemporalEdge,
        lookup: impl Fn(tcsm_graph::EdgeKey) -> &'a TemporalEdge,
        out: &mut Vec<DcsDelta>,
    ) {
        self.compute_orients(q, g, sigma);
        let orients = std::mem::take(&mut self.scratch_orients);
        let mut flips = std::mem::take(&mut self.scratch_flips);
        flips.clear();
        self.update_instances(&mut flips, |inst, out| {
            inst.apply_seeded(q, g, sigma, &orients, out)
        });
        // Pairs of σ itself: evaluate all four conditions directly.
        for &(e, o) in &orients {
            let pair = CandPair {
                qedge: e,
                key: sigma.key,
                a_to_src: o,
            };
            if self.passes_all(q, pair, sigma) && self.insert_member(pair) {
                out.push(DcsDelta { pair, added: true });
            }
        }
        self.scratch_orients = orients;
        // Flipped pairs of other alive edges: insertion only ever raises
        // max-min values, so flips can only add pairs.
        for &pair in flips.iter() {
            if self.contains(pair) {
                continue;
            }
            let other = lookup(pair.key);
            if self.passes_all(q, pair, other) {
                self.insert_member(pair);
                out.push(DcsDelta { pair, added: true });
            }
        }
        self.scratch_flips = flips;
    }

    /// Handles an edge expiration. `g` must no longer contain `sigma`.
    pub fn on_delete<'a>(
        &mut self,
        q: &QueryGraph,
        g: &WindowGraph,
        sigma: &TemporalEdge,
        lookup: impl Fn(tcsm_graph::EdgeKey) -> &'a TemporalEdge,
        out: &mut Vec<DcsDelta>,
    ) {
        // All pairs of σ leave the DCS unconditionally.
        self.compute_orients(q, g, sigma);
        let orients = std::mem::take(&mut self.scratch_orients);
        for &(e, o) in &orients {
            let pair = CandPair {
                qedge: e,
                key: sigma.key,
                a_to_src: o,
            };
            if self.remove_member(pair) {
                out.push(DcsDelta { pair, added: false });
            }
        }
        let mut flips = std::mem::take(&mut self.scratch_flips);
        flips.clear();
        self.update_instances(&mut flips, |inst, out| {
            inst.apply_seeded(q, g, sigma, &orients, out)
        });
        self.scratch_orients = orients;
        // Deletion only ever lowers max-min values, so flipped members fail
        // at least one instance now; re-check to be robust to noisy reports.
        for &pair in flips.iter() {
            if !self.contains(pair) {
                continue;
            }
            let other = lookup(pair.key);
            if !self.passes_all(q, pair, other) {
                self.remove_member(pair);
                out.push(DcsDelta { pair, added: false });
            }
        }
        self.scratch_flips = flips;
    }

    /// Handles a whole same-timestamp arrival batch with one table drain
    /// per instance. `g` must already contain **every** batch edge (the
    /// batch is applied to the window first, then filtered as one delta —
    /// never half-applied), and the batch must be complete: every stream
    /// edge with this arrival timestamp is in `edges`.
    pub fn on_insert_batch<'a>(
        &mut self,
        q: &QueryGraph,
        g: &WindowGraph,
        edges: &[TemporalEdge],
        lookup: impl Fn(tcsm_graph::EdgeKey) -> &'a TemporalEdge,
        out: &mut Vec<DcsDelta>,
    ) {
        let Some(first) = edges.first() else { return };
        let t = first.time;
        debug_assert!(
            edges.iter().all(|e| e.time == t),
            "insert batch mixes timestamps"
        );
        debug_assert!(
            edges.iter().all(|e| self.debug_window_state(g, e, true)),
            "on_insert_batch observed a half-applied batch (edge missing from window)"
        );
        self.compute_orients_batch(q, g, edges);
        let orients = std::mem::take(&mut self.scratch_orients);
        let seeds = std::mem::take(&mut self.scratch_seeds);
        let mut flips = std::mem::take(&mut self.scratch_flips);
        flips.clear();
        self.update_instances(&mut flips, |inst, out| {
            inst.apply_batch(q, g, &seeds, &orients, DirectPairs::ArrivedAt(t), out)
        });
        // Pairs of the batch edges themselves: evaluate all four conditions
        // directly against the post-batch tables.
        for &(ref sigma, (lo, hi)) in &seeds {
            for &(e, o) in &orients[lo as usize..hi as usize] {
                let pair = CandPair {
                    qedge: e,
                    key: sigma.key,
                    a_to_src: o,
                };
                if self.passes_all(q, pair, sigma) && self.insert_member(pair) {
                    out.push(DcsDelta { pair, added: true });
                }
            }
        }
        self.scratch_orients = orients;
        self.scratch_seeds = seeds;
        // Flipped pairs of other alive edges (batch edges are excluded by
        // `DirectPairs::ArrivedAt`): arrivals only raise max-min values, so
        // flips can only add pairs.
        for &pair in flips.iter() {
            if self.contains(pair) {
                continue;
            }
            let other = lookup(pair.key);
            debug_assert!(other.time != t, "flip reported for a batch edge");
            if self.passes_all(q, pair, other) {
                self.insert_member(pair);
                out.push(DcsDelta { pair, added: true });
            }
        }
        self.scratch_flips = flips;
    }

    /// Handles a whole same-timestamp expiration batch with one table drain
    /// per instance. `g` must no longer contain **any** batch edge.
    pub fn on_delete_batch<'a>(
        &mut self,
        q: &QueryGraph,
        g: &WindowGraph,
        edges: &[TemporalEdge],
        lookup: impl Fn(tcsm_graph::EdgeKey) -> &'a TemporalEdge,
        out: &mut Vec<DcsDelta>,
    ) {
        let Some(first) = edges.first() else { return };
        let t = first.time;
        debug_assert!(
            edges.iter().all(|e| e.time == t),
            "delete batch mixes arrival timestamps"
        );
        debug_assert!(
            edges.iter().all(|e| self.debug_window_state(g, e, false)),
            "on_delete_batch observed a half-applied batch (edge still in window)"
        );
        self.compute_orients_batch(q, g, edges);
        let orients = std::mem::take(&mut self.scratch_orients);
        let seeds = std::mem::take(&mut self.scratch_seeds);
        // All pairs of the batch edges leave the DCS unconditionally.
        for &(ref sigma, (lo, hi)) in &seeds {
            for &(e, o) in &orients[lo as usize..hi as usize] {
                let pair = CandPair {
                    qedge: e,
                    key: sigma.key,
                    a_to_src: o,
                };
                if self.remove_member(pair) {
                    out.push(DcsDelta { pair, added: false });
                }
            }
        }
        let mut flips = std::mem::take(&mut self.scratch_flips);
        flips.clear();
        self.update_instances(&mut flips, |inst, out| {
            inst.apply_batch(q, g, &seeds, &orients, DirectPairs::ArrivedAt(t), out)
        });
        self.scratch_orients = orients;
        self.scratch_seeds = seeds;
        // Expirations only lower max-min values, so flipped members fail at
        // least one instance now; re-check to be robust to noisy reports.
        for &pair in flips.iter() {
            if !self.contains(pair) {
                continue;
            }
            let other = lookup(pair.key);
            if !self.passes_all(q, pair, other) {
                self.remove_member(pair);
                out.push(DcsDelta { pair, added: false });
            }
        }
        self.scratch_flips = flips;
    }

    /// Re-derives the whole bank from the *current* window: rebuilds every
    /// instance table from scratch ([`FilterInstance::rebuild`]) and
    /// recomputes the membership bitmap over the alive edges, emitting one
    /// `added` [`DcsDelta`] per member so the caller can seed a fresh DCS
    /// with the same delta pipeline the incremental path uses.
    ///
    /// This is the mid-stream admission substrate for `tcsm-service`: a
    /// query joining a shard whose shared window is already populated calls
    /// this once and is from then on indistinguishable from a bank that
    /// observed every arrival incrementally (the service differential suite
    /// pins this). Never called on the per-event path.
    pub fn rebuild_from_window<'a>(
        &mut self,
        q: &QueryGraph,
        g: &WindowGraph,
        alive: impl Iterator<Item = &'a TemporalEdge>,
        out: &mut Vec<DcsDelta>,
    ) {
        for inst in &mut self.instances {
            inst.rebuild(q, g);
        }
        self.members = MemberPages::new(self.members.wpk);
        self.num_pairs = 0;
        for sigma in alive {
            for e in 0..q.num_edges() {
                for o in valid_orientations(q, g, e, sigma) {
                    let pair = CandPair {
                        qedge: e,
                        key: sigma.key,
                        a_to_src: o,
                    };
                    if self.passes_all(q, pair, sigma) && self.insert_member(pair) {
                        out.push(DcsDelta { pair, added: true });
                    }
                }
            }
        }
    }

    /// Instance position names for audit violation details (construction
    /// order in [`FilterBank::new`]).
    const INSTANCE_LABELS: [&'static str; 4] =
        ["fwd-later", "fwd-earlier", "rev-later", "rev-earlier"];

    /// Appends the bank's invariant violations to `out` (see
    /// [`tcsm_graph::audit`] for the level contract and the catalogue).
    ///
    /// * **Cheap**: each instance's Cheap checks; every allocated
    ///   membership page's census equals its popcount (and no allocated
    ///   page sits at census zero — those are freed); `num_pairs` equals
    ///   the sum of page censuses.
    /// * **Deep**: additionally each instance's oracle checks, plus a
    ///   from-scratch membership evaluation — every `(query edge, alive
    ///   edge, orientation)` pair is re-tested with
    ///   [`FilterBank::passes_all`] and compared against the bitmap.
    pub fn audit(
        &self,
        q: &QueryGraph,
        g: &WindowGraph,
        alive: &[&TemporalEdge],
        level: AuditLevel,
        out: &mut Vec<AuditViolation>,
    ) {
        if !level.enabled() {
            return;
        }
        for (i, inst) in self.instances.iter().enumerate() {
            let label = FilterBank::INSTANCE_LABELS
                .get(i)
                .copied()
                .unwrap_or("instance");
            inst.audit(q, g, level, label, out);
        }
        let mut total = 0usize;
        for (i, page) in self.members.pages.iter().enumerate() {
            let census = self.members.page_bits[i] as usize;
            match page {
                Some(p) => {
                    let ones: usize = p.iter().map(|w| w.count_ones() as usize).sum();
                    if ones != census {
                        out.push(AuditViolation::new(
                            "bank-page-census",
                            format!("page {i} census {census} vs popcount {ones}"),
                        ));
                    }
                    if census == 0 {
                        out.push(AuditViolation::new(
                            "bank-empty-page",
                            format!("page {i} allocated at census 0 (should be freed)"),
                        ));
                    }
                    total += ones;
                }
                None => {
                    if census != 0 {
                        out.push(AuditViolation::new(
                            "bank-page-census",
                            format!("freed page {i} still carries census {census}"),
                        ));
                    }
                }
            }
        }
        if self.num_pairs != total {
            out.push(AuditViolation::new(
                "bank-pair-census",
                format!(
                    "num_pairs {} vs membership popcount {total}",
                    self.num_pairs
                ),
            ));
        }
        if !level.deep() {
            return;
        }
        for sigma in alive {
            for e in 0..q.num_edges() {
                for o in valid_orientations(q, g, e, sigma) {
                    let pair = CandPair {
                        qedge: e,
                        key: sigma.key,
                        a_to_src: o,
                    };
                    let passes = self.passes_all(q, pair, sigma);
                    let member = self.contains(pair);
                    if passes && !member {
                        out.push(AuditViolation::new(
                            "bank-member-missing",
                            format!("{pair:?} passes the from-scratch evaluation but is unset"),
                        ));
                    } else if !passes && member {
                        out.push(AuditViolation::new(
                            "bank-member-stale",
                            format!("{pair:?} fails the from-scratch evaluation but is set"),
                        ));
                    }
                }
            }
        }
    }

    /// From-scratch membership check for tests — the historical panicking
    /// wrapper over [`FilterBank::audit`] at [`AuditLevel::Deep`].
    #[doc(hidden)]
    pub fn check_consistency<'a>(
        &self,
        q: &QueryGraph,
        g: &WindowGraph,
        alive: impl Iterator<Item = &'a TemporalEdge>,
    ) {
        let alive: Vec<&TemporalEdge> = alive.collect();
        let mut out = Vec::new();
        self.audit(q, g, &alive, AuditLevel::Deep, &mut out);
        tcsm_graph::audit::expect_clean("FilterBank", &out);
    }

    /// Corruption hook for the negative-test corpus: clears the lowest set
    /// membership bit *without* updating the page census or `num_pairs`
    /// (the raw-word desync only the audit's popcounts can see). Returns
    /// `false` when no member bit exists to corrupt.
    #[doc(hidden)]
    pub fn corrupt_membership_word(&mut self) -> bool {
        for page in self.members.pages.iter_mut().flatten() {
            for w in page.iter_mut() {
                if *w != 0 {
                    *w &= *w - 1;
                    return true;
                }
            }
        }
        false
    }

    /// Corruption hook for the negative-test corpus: desyncs the pair
    /// count from the membership bitmap.
    #[doc(hidden)]
    pub fn corrupt_pair_census(&mut self) {
        self.num_pairs += 1;
    }

    /// Corruption hook for the negative-test corpus: unpins one pad lane
    /// of instance `instance` (see [`FilterInstance::corrupt_pad_lane`]).
    /// No-op (returning `false`) when the bank runs label-only.
    #[doc(hidden)]
    pub fn corrupt_pad_lane(
        &mut self,
        instance: usize,
        u: tcsm_graph::QVertexId,
        v: tcsm_graph::VertexId,
    ) -> bool {
        match self.instances.get_mut(instance) {
            Some(inst) => {
                inst.corrupt_pad_lane(u, v);
                true
            }
            None => false,
        }
    }

    /// Serializes the bank's dynamic state: mode tag, per-instance tables,
    /// the sparse membership bitmap, and the pair count. Scratch buffers and
    /// the executor are transients, empty/reinstalled at restore time.
    ///
    /// Must only be called at an event boundary.
    pub fn encode_state(&self, enc: &mut Encoder) {
        enc.put_u8(match self.mode {
            FilterMode::Tc => 0,
            FilterMode::LabelOnly => 1,
        });
        enc.put_usize(self.instances.len());
        for inst in &self.instances {
            enc.section(|e| inst.encode_state(e));
        }
        enc.section(|e| self.members.encode(e));
        enc.put_usize(self.num_pairs);
        enc.put_u64(self.par_rounds);
    }

    /// Overlays serialized state onto a freshly constructed bank of the
    /// same query and mode. The mode tag, instance count, membership shape
    /// and pair census must all agree — anything else is corruption.
    pub fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        let mode = match dec.get_u8()? {
            0 => FilterMode::Tc,
            1 => FilterMode::LabelOnly,
            other => {
                return Err(CodecError::Invalid(format!("bad filter mode tag {other}")));
            }
        };
        if mode != self.mode {
            return Err(CodecError::Invalid(format!(
                "filter mode {mode:?} (expected {:?})",
                self.mode
            )));
        }
        let ninst = dec.get_usize()?;
        if ninst != self.instances.len() {
            return Err(CodecError::Invalid(format!(
                "{ninst} filter instances (expected {})",
                self.instances.len()
            )));
        }
        for inst in &mut self.instances {
            let mut sec = dec.section()?;
            inst.restore_state(&mut sec)?;
            sec.finish()?;
        }
        let mut sec = dec.section()?;
        let total = self.members.restore(&mut sec)?;
        sec.finish()?;
        let num_pairs = dec.get_usize()?;
        if num_pairs != total {
            return Err(CodecError::Invalid(format!(
                "pair count {num_pairs} disagrees with membership census {total}"
            )));
        }
        self.num_pairs = num_pairs;
        self.par_rounds = dec.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsm_dag::build_best_dag;
    use tcsm_graph::query::paper_running_example;
    use tcsm_graph::{EventKind, EventQueue, FxHashMap, Ts};

    use crate::instance::tests::figure_2a;

    #[test]
    fn bank_stays_consistent_over_full_stream() {
        let q = paper_running_example();
        let dag = build_best_dag(&q);
        let g = figure_2a();
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        let mut bank = FilterBank::new(&q, &dag, FilterMode::Tc, &w);
        let mut alive: Vec<TemporalEdge> = Vec::new();
        let mut deltas = Vec::new();
        let queue = EventQueue::new(&g, 10).unwrap();
        for ev in queue.iter() {
            let edge = *g.edge(ev.edge);
            deltas.clear();
            match ev.kind {
                EventKind::Insert => {
                    w.insert(&edge);
                    alive.push(edge);
                    bank.on_insert(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                }
                EventKind::Delete => {
                    alive.retain(|e| e.key != edge.key);
                    w.remove(&edge);
                    bank.on_delete(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                }
            }
            bank.check_consistency(&q, &w, alive.iter());
        }
        assert_eq!(bank.num_pairs(), 0);
    }

    #[test]
    fn rebuild_from_window_matches_incremental_state() {
        // Drive an incremental bank over every stream prefix; at each one,
        // build a *fresh* bank and re-derive it from the window alone. The
        // rebuilt bank must agree with the incremental one on membership,
        // pair count, and the from-scratch audit, and its emitted deltas
        // must enumerate exactly the member set — the mid-stream admission
        // substrate of tcsm-service.
        for mode in [FilterMode::Tc, FilterMode::LabelOnly] {
            let q = paper_running_example();
            let dag = build_best_dag(&q);
            let g = figure_2a();
            let mut w = WindowGraph::new(g.labels().to_vec(), false);
            let mut inc = FilterBank::new(&q, &dag, mode, &w);
            let mut alive: Vec<TemporalEdge> = Vec::new();
            let mut deltas = Vec::new();
            let queue = EventQueue::new(&g, 6).unwrap();
            for ev in queue.iter() {
                let edge = *g.edge(ev.edge);
                deltas.clear();
                match ev.kind {
                    EventKind::Insert => {
                        w.insert(&edge);
                        alive.push(edge);
                        inc.on_insert(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                    }
                    EventKind::Delete => {
                        alive.retain(|e| e.key != edge.key);
                        w.remove(&edge);
                        inc.on_delete(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                    }
                }
                let mut fresh = FilterBank::new(&q, &dag, mode, &w);
                let mut emitted = Vec::new();
                fresh.rebuild_from_window(&q, &w, alive.iter(), &mut emitted);
                assert_eq!(fresh.num_pairs(), inc.num_pairs());
                assert_eq!(emitted.len(), fresh.num_pairs());
                for d in &emitted {
                    assert!(d.added, "rebuild emits additions only");
                    assert!(inc.contains(d.pair), "rebuilt member unknown");
                }
                for sigma in &alive {
                    for e in 0..q.num_edges() {
                        for o in valid_orientations(&q, &w, e, sigma) {
                            let pair = CandPair {
                                qedge: e,
                                key: sigma.key,
                                a_to_src: o,
                            };
                            assert_eq!(fresh.contains(pair), inc.contains(pair));
                        }
                    }
                }
                fresh.check_consistency(&q, &w, alive.iter());
            }
        }
    }

    #[test]
    fn label_only_mode_accepts_all_label_matches() {
        let q = paper_running_example();
        let dag = build_best_dag(&q);
        let g = figure_2a();
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        let mut tc = FilterBank::new(&q, &dag, FilterMode::Tc, &w);
        let mut lo = FilterBank::new(&q, &dag, FilterMode::LabelOnly, &w);
        let mut deltas = Vec::new();
        for e in g.edges() {
            w.insert(e);
            deltas.clear();
            tc.on_insert(&q, &w, e, |k| g.edge(k), &mut deltas);
            deltas.clear();
            lo.on_insert(&q, &w, e, |k| g.edge(k), &mut deltas);
        }
        // The TC filter is strictly stronger here (Table V's premise).
        assert!(tc.num_pairs() < lo.num_pairs());
        // Every TC pair is a label pair.
        // (Check via contains on a few TC members.)
        let sigma8 = g.edges().iter().find(|e| e.time == Ts::new(8)).unwrap();
        let p = CandPair {
            qedge: 1,
            key: sigma8.key,
            a_to_src: true,
        };
        assert!(tc.contains(p));
        assert!(lo.contains(p));
    }

    #[test]
    fn membership_pages_track_window_not_stream() {
        // A long stream over a short window: edge keys grow monotonically,
        // but the membership bitmap must only retain pages for keys that can
        // still be alive — and none once the stream drains.
        let mut qb = tcsm_graph::QueryGraphBuilder::new();
        let a = qb.vertex(0);
        let b = qb.vertex(0);
        qb.edge(a, b);
        let q = qb.build().unwrap();
        let dag = build_best_dag(&q);
        let mut gb = tcsm_graph::TemporalGraphBuilder::new();
        let v = gb.vertices(2, 0);
        let total = 4 * super::PAGE_KEYS as i64; // spans ≥ 4 pages of keys
        for t in 1..=total {
            gb.edge(v, v + 1, t);
        }
        let g = gb.build().unwrap();
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        let mut bank = FilterBank::new(&q, &dag, FilterMode::Tc, &w);
        let mut deltas = Vec::new();
        let mut peak = 0usize;
        let queue = EventQueue::new(&g, 8).unwrap();
        for ev in queue.iter() {
            let edge = *g.edge(ev.edge);
            deltas.clear();
            match ev.kind {
                EventKind::Insert => {
                    w.insert(&edge);
                    bank.on_insert(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                }
                EventKind::Delete => {
                    w.remove(&edge);
                    bank.on_delete(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                }
            }
            peak = peak.max(bank.member_bytes());
        }
        let page_bytes = super::PAGE_KEYS * 8; // wpk = 1 for a 1-edge query
        assert!(
            peak <= 2 * page_bytes,
            "membership retained {peak} bytes (> 2 pages) for an 8-edge window"
        );
        assert_eq!(bank.member_bytes(), 0, "pages not reclaimed after drain");
        assert_eq!(bank.num_pairs(), 0);
    }

    #[test]
    fn deltas_are_exact_complements() {
        // Every added pair is later removed exactly once when the stream
        // drains.
        let q = paper_running_example();
        let dag = build_best_dag(&q);
        let g = figure_2a();
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        let mut bank = FilterBank::new(&q, &dag, FilterMode::Tc, &w);
        let mut added: FxHashMap<u64, i64> = FxHashMap::default();
        let mut deltas = Vec::new();
        let queue = EventQueue::new(&g, 8).unwrap();
        for ev in queue.iter() {
            let edge = *g.edge(ev.edge);
            deltas.clear();
            match ev.kind {
                EventKind::Insert => {
                    w.insert(&edge);
                    bank.on_insert(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                }
                EventKind::Delete => {
                    w.remove(&edge);
                    bank.on_delete(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                }
            }
            for d in &deltas {
                *added.entry(d.pair.pack()).or_insert(0i64) += if d.added { 1 } else { -1 };
                let c = added[&d.pair.pack()];
                assert!(c == 0 || c == 1, "pair double-added or double-removed");
            }
        }
        assert!(added.values().all(|&c| c == 0));
    }
}
