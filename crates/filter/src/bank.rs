//! The filter bank: four max-min instances plus the DCS pair membership set.
//!
//! A candidate pair `(ε, σ, orientation)` belongs to the DCS edge set iff it
//! passes **all four** instances (`ˆq`/`ˆq⁻¹` × later/earlier — each a sound
//! filter by Lemma IV.1, so the intersection is sound). The bank turns each
//! stream event into the DCS deltas `E⁺_DCS` / `E⁻_DCS` of Algorithm 1:
//! pairs of the arriving/expiring edge itself, plus pairs of other alive
//! edges whose pass status flipped while the tables were updated.
//!
//! [`FilterMode::LabelOnly`] disables the temporal filter entirely (pairs
//! pass on labels/direction alone); this is the `SymBi`-style baseline
//! configuration used in §VI-B.

use crate::instance::FilterInstance;
use crate::pair::{valid_orientations, CandPair};
use tcsm_dag::{Polarity, QueryDag};
use tcsm_graph::{FxHashSet, QueryGraph, TemporalEdge, WindowGraph};

/// Whether candidate pairs are filtered by TC-matchability or labels only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterMode {
    /// Full TC-matchable-edge filtering (the TCM algorithm).
    Tc,
    /// Label/direction filtering only (the SymBi baseline).
    LabelOnly,
}

/// A DCS edge-set change produced by one stream event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DcsDelta {
    /// The pair that entered or left the DCS edge set.
    pub pair: CandPair,
    /// `true` = entered (`E⁺_DCS`), `false` = left (`E⁻_DCS`).
    pub added: bool,
}

/// Four-instance TC-matchable-edge filter with pair membership tracking.
pub struct FilterBank {
    mode: FilterMode,
    instances: Vec<FilterInstance>,
    members: FxHashSet<u64>,
    scratch_flips: Vec<CandPair>,
}

impl FilterBank {
    /// Builds the bank for a query and its forward DAG `ˆq`.
    pub fn new(q: &QueryGraph, forward: &QueryDag, mode: FilterMode) -> FilterBank {
        let instances = match mode {
            FilterMode::LabelOnly => Vec::new(),
            FilterMode::Tc => {
                let rev = forward.reversed(q);
                vec![
                    FilterInstance::new(forward.clone(), Polarity::Later),
                    FilterInstance::new(forward.clone(), Polarity::Earlier),
                    FilterInstance::new(rev.clone(), Polarity::Later),
                    FilterInstance::new(rev, Polarity::Earlier),
                ]
            }
        };
        FilterBank {
            mode,
            instances,
            members: FxHashSet::default(),
            scratch_flips: Vec::new(),
        }
    }

    /// The bank's filter mode.
    #[inline]
    pub fn mode(&self) -> FilterMode {
        self.mode
    }

    /// Number of pairs currently in the DCS edge set (the Table V
    /// "edges in DCS" metric).
    #[inline]
    pub fn num_pairs(&self) -> usize {
        self.members.len()
    }

    /// Is the oriented pair currently in the DCS edge set?
    #[inline]
    pub fn contains(&self, pair: CandPair) -> bool {
        self.members.contains(&pair.pack())
    }

    /// Full pass test against the current tables.
    fn passes_all(&self, q: &QueryGraph, g: &WindowGraph, pair: CandPair, sigma: &TemporalEdge) -> bool {
        self.instances
            .iter()
            .all(|inst| inst.passes(q, g, pair, sigma))
    }

    /// Handles an edge arrival. `g` must already contain `sigma`.
    /// `lookup` resolves edge keys of *other* alive edges to their records.
    pub fn on_insert<'a>(
        &mut self,
        q: &QueryGraph,
        g: &WindowGraph,
        sigma: &TemporalEdge,
        lookup: impl Fn(tcsm_graph::EdgeKey) -> &'a TemporalEdge,
        out: &mut Vec<DcsDelta>,
    ) {
        let mut flips = std::mem::take(&mut self.scratch_flips);
        flips.clear();
        for inst in &mut self.instances {
            inst.apply(q, g, sigma, &mut flips);
        }
        // Pairs of σ itself: evaluate all four conditions directly.
        for e in 0..q.num_edges() {
            for o in valid_orientations(q, g, e, sigma) {
                let pair = CandPair {
                    qedge: e,
                    key: sigma.key,
                    a_to_src: o,
                };
                if self.passes_all(q, g, pair, sigma) && self.members.insert(pair.pack()) {
                    out.push(DcsDelta { pair, added: true });
                }
            }
        }
        // Flipped pairs of other alive edges: insertion only ever raises
        // max-min values, so flips can only add pairs.
        for &pair in flips.iter() {
            if self.members.contains(&pair.pack()) {
                continue;
            }
            let other = lookup(pair.key);
            if self.passes_all(q, g, pair, other) {
                self.members.insert(pair.pack());
                out.push(DcsDelta { pair, added: true });
            }
        }
        self.scratch_flips = flips;
    }

    /// Handles an edge expiration. `g` must no longer contain `sigma`.
    pub fn on_delete<'a>(
        &mut self,
        q: &QueryGraph,
        g: &WindowGraph,
        sigma: &TemporalEdge,
        lookup: impl Fn(tcsm_graph::EdgeKey) -> &'a TemporalEdge,
        out: &mut Vec<DcsDelta>,
    ) {
        // All pairs of σ leave the DCS unconditionally.
        for e in 0..q.num_edges() {
            for o in valid_orientations(q, g, e, sigma) {
                let pair = CandPair {
                    qedge: e,
                    key: sigma.key,
                    a_to_src: o,
                };
                if self.members.remove(&pair.pack()) {
                    out.push(DcsDelta { pair, added: false });
                }
            }
        }
        let mut flips = std::mem::take(&mut self.scratch_flips);
        flips.clear();
        for inst in &mut self.instances {
            inst.apply(q, g, sigma, &mut flips);
        }
        // Deletion only ever lowers max-min values, so flipped members fail
        // at least one instance now; re-check to be robust to noisy reports.
        for &pair in flips.iter() {
            if !self.members.contains(&pair.pack()) {
                continue;
            }
            let other = lookup(pair.key);
            if !self.passes_all(q, g, pair, other) {
                self.members.remove(&pair.pack());
                out.push(DcsDelta { pair, added: false });
            }
        }
        self.scratch_flips = flips;
    }

    /// From-scratch membership check for tests: recompute which pairs of all
    /// alive edges should currently pass, and compare with `members`.
    #[doc(hidden)]
    pub fn check_consistency<'a>(
        &self,
        q: &QueryGraph,
        g: &WindowGraph,
        alive: impl Iterator<Item = &'a TemporalEdge>,
    ) {
        for inst in &self.instances {
            inst.check_consistency(q, g);
        }
        let mut expect: FxHashSet<u64> = FxHashSet::default();
        for sigma in alive {
            for e in 0..q.num_edges() {
                for o in valid_orientations(q, g, e, sigma) {
                    let pair = CandPair {
                        qedge: e,
                        key: sigma.key,
                        a_to_src: o,
                    };
                    if self.passes_all(q, g, pair, sigma) {
                        expect.insert(pair.pack());
                    }
                }
            }
        }
        assert_eq!(
            {
                let mut a: Vec<u64> = self.members.iter().copied().collect();
                a.sort_unstable();
                a
            },
            {
                let mut b: Vec<u64> = expect.into_iter().collect();
                b.sort_unstable();
                b
            },
            "bank membership diverged from from-scratch evaluation"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsm_dag::build_best_dag;
    use tcsm_graph::query::paper_running_example;
    use tcsm_graph::{EventKind, EventQueue, Ts};

    use crate::instance::tests::figure_2a;

    #[test]
    fn bank_stays_consistent_over_full_stream() {
        let q = paper_running_example();
        let dag = build_best_dag(&q);
        let g = figure_2a();
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        let mut bank = FilterBank::new(&q, &dag, FilterMode::Tc);
        let mut alive: Vec<TemporalEdge> = Vec::new();
        let mut deltas = Vec::new();
        let queue = EventQueue::new(&g, 10).unwrap();
        for ev in queue.iter() {
            let edge = *g.edge(ev.edge);
            deltas.clear();
            match ev.kind {
                EventKind::Insert => {
                    w.insert(&edge);
                    alive.push(edge);
                    bank.on_insert(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                }
                EventKind::Delete => {
                    alive.retain(|e| e.key != edge.key);
                    w.remove(&edge);
                    bank.on_delete(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                }
            }
            bank.check_consistency(&q, &w, alive.iter());
        }
        assert_eq!(bank.num_pairs(), 0);
    }

    #[test]
    fn label_only_mode_accepts_all_label_matches() {
        let q = paper_running_example();
        let dag = build_best_dag(&q);
        let g = figure_2a();
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        let mut tc = FilterBank::new(&q, &dag, FilterMode::Tc);
        let mut lo = FilterBank::new(&q, &dag, FilterMode::LabelOnly);
        let mut deltas = Vec::new();
        for e in g.edges() {
            w.insert(e);
            deltas.clear();
            tc.on_insert(&q, &w, e, |k| g.edge(k), &mut deltas);
            deltas.clear();
            lo.on_insert(&q, &w, e, |k| g.edge(k), &mut deltas);
        }
        // The TC filter is strictly stronger here (Table V's premise).
        assert!(tc.num_pairs() < lo.num_pairs());
        // Every TC pair is a label pair.
        // (Check via contains on a few TC members.)
        let sigma8 = g.edges().iter().find(|e| e.time == Ts::new(8)).unwrap();
        let p = CandPair {
            qedge: 1,
            key: sigma8.key,
            a_to_src: true,
        };
        assert!(tc.contains(p));
        assert!(lo.contains(p));
    }

    #[test]
    fn deltas_are_exact_complements() {
        // Every added pair is later removed exactly once when the stream
        // drains.
        let q = paper_running_example();
        let dag = build_best_dag(&q);
        let g = figure_2a();
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        let mut bank = FilterBank::new(&q, &dag, FilterMode::Tc);
        let mut added = std::collections::HashMap::new();
        let mut deltas = Vec::new();
        let queue = EventQueue::new(&g, 8).unwrap();
        for ev in queue.iter() {
            let edge = *g.edge(ev.edge);
            deltas.clear();
            match ev.kind {
                EventKind::Insert => {
                    w.insert(&edge);
                    bank.on_insert(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                }
                EventKind::Delete => {
                    w.remove(&edge);
                    bank.on_delete(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                }
            }
            for d in &deltas {
                *added.entry(d.pair.pack()).or_insert(0i64) += if d.added { 1 } else { -1 };
                let c = added[&d.pair.pack()];
                assert!(c == 0 || c == 1, "pair double-added or double-removed");
            }
        }
        assert!(added.values().all(|&c| c == 0));
    }
}
