//! Candidate pairs: an oriented match of a query edge onto a data edge.

use tcsm_graph::{
    EdgeKey, QEdgeId, QVertexId, QueryGraph, TemporalEdge, Ts, VertexId, WindowGraph,
};

/// The data edges whose candidate pairs the bank evaluates *directly*
/// during one update (and which the instances must therefore exclude from
/// flip reports).
///
/// Serial per-event updates evaluate exactly the event's edge; batched
/// updates evaluate every batch edge, and because a delta batch is
/// *complete* per arrival timestamp (see `tcsm_graph::stream`), "is a batch
/// edge" reduces to an arrival-timestamp comparison — no set lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirectPairs {
    /// One edge, by key (the serial regime).
    Edge(EdgeKey),
    /// Every edge whose arrival timestamp equals the given instant (the
    /// batched regime).
    ArrivedAt(Ts),
}

impl DirectPairs {
    /// Is the alive edge `(key, arrival time)` directly evaluated?
    #[inline]
    pub fn contains(self, key: EdgeKey, time: Ts) -> bool {
        match self {
            DirectPairs::Edge(k) => key == k,
            DirectPairs::ArrivedAt(t) => time == t,
        }
    }
}

/// An oriented candidate `(ε, σ)`: query edge `qedge` mapped onto data edge
/// `key`, with `a_to_src == true` meaning the query endpoint `a` maps to the
/// data edge's storage `src` endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CandPair {
    /// The query edge.
    pub qedge: QEdgeId,
    /// The data edge.
    pub key: EdgeKey,
    /// Orientation: `a ↦ src` when true, `a ↦ dst` when false.
    pub a_to_src: bool,
}

impl CandPair {
    /// Packs into a `u64` for set membership (qedge < 64).
    #[inline]
    pub fn pack(self) -> u64 {
        (self.key.0 as u64) | ((self.a_to_src as u64) << 32) | ((self.qedge as u64) << 33)
    }

    /// Inverse of [`CandPair::pack`].
    #[inline]
    pub fn unpack(p: u64) -> CandPair {
        CandPair {
            qedge: (p >> 33) as QEdgeId,
            key: EdgeKey(p as u32),
            a_to_src: (p >> 32) & 1 == 1,
        }
    }

    /// Image of query vertex `u` (an endpoint of `qedge`) under this pair.
    #[inline]
    pub fn image_of(&self, q: &QueryGraph, sigma: &TemporalEdge, u: QVertexId) -> VertexId {
        let qe = q.edge(self.qedge);
        if (u == qe.a) == self.a_to_src {
            sigma.src
        } else {
            sigma.dst
        }
    }
}

/// Enumerates the orientations in which `σ` can match query edge `qe_id`:
/// endpoint labels, edge label, and (in directed graphs) edge direction must
/// all be compatible. Yields 0, 1 or 2 orientations.
pub fn valid_orientations(
    q: &QueryGraph,
    g: &WindowGraph,
    qe_id: QEdgeId,
    sigma: &TemporalEdge,
) -> impl Iterator<Item = bool> {
    let qe = *q.edge(qe_id);
    let label_ok = qe.label == tcsm_graph::EDGE_LABEL_ANY || qe.label == sigma.label;
    let la = q.label(qe.a);
    let lb = q.label(qe.b);
    let lsrc = g.label(sigma.src);
    let ldst = g.label(sigma.dst);
    let directed = g.is_directed() && qe.direction == tcsm_graph::Direction::AToB;
    let fwd = label_ok && la == lsrc && lb == ldst;
    // `a ↦ dst` reverses the data edge; forbidden when direction matters.
    let bwd = label_ok && la == ldst && lb == lsrc && !directed;
    [true, false]
        .into_iter()
        .filter(move |&o| if o { fwd } else { bwd })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsm_graph::{Direction, QueryGraphBuilder, TemporalGraphBuilder};

    #[test]
    fn pack_roundtrip() {
        for qedge in [0usize, 5, 63] {
            for a_to_src in [true, false] {
                let p = CandPair {
                    qedge,
                    key: EdgeKey(0xDEAD_BEEF),
                    a_to_src,
                };
                assert_eq!(CandPair::unpack(p.pack()), p);
            }
        }
    }

    #[test]
    fn orientations_respect_labels_and_direction() {
        let mut qb = QueryGraphBuilder::new();
        let a = qb.vertex(1);
        let b = qb.vertex(2);
        qb.edge_full(a, b, Direction::AToB, 7);
        let q = qb.build().unwrap();

        let mut gb = TemporalGraphBuilder::new();
        let v0 = gb.vertex(1);
        let v1 = gb.vertex(2);
        gb.edge_full(v0, v1, 3, 7);
        gb.edge_full(v1, v0, 4, 7); // reversed direction
        gb.edge_full(v0, v1, 5, 9); // wrong label
        let g = gb.build().unwrap();

        // Undirected window: direction requirement ignored.
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        for e in g.edges() {
            w.insert(e);
        }
        let o: Vec<bool> = valid_orientations(&q, &w, 0, &g.edges()[0]).collect();
        assert_eq!(o, vec![true]); // labels 1→2 only fit a ↦ src
        let o: Vec<bool> = valid_orientations(&q, &w, 0, &g.edges()[1]).collect();
        assert_eq!(o, vec![false]); // reversed storage, a ↦ dst
        let o: Vec<bool> = valid_orientations(&q, &w, 0, &g.edges()[2]).collect();
        assert!(o.is_empty()); // label mismatch

        // Directed window: the reversed edge no longer matches.
        let wd = WindowGraph::new(g.labels().to_vec(), true);
        let o: Vec<bool> = valid_orientations(&q, &wd, 0, &g.edges()[1]).collect();
        assert!(o.is_empty());
        let o: Vec<bool> = valid_orientations(&q, &wd, 0, &g.edges()[0]).collect();
        assert_eq!(o, vec![true]);
    }

    #[test]
    fn image_of_resolves_orientation() {
        let mut qb = QueryGraphBuilder::new();
        let a = qb.vertex(0);
        let b = qb.vertex(0);
        qb.edge(a, b);
        let q = qb.build().unwrap();
        let mut gb = TemporalGraphBuilder::new();
        let v0 = gb.vertex(0);
        let v1 = gb.vertex(0);
        gb.edge(v0, v1, 1);
        let g = gb.build().unwrap();
        let sigma = &g.edges()[0];
        let p = CandPair {
            qedge: 0,
            key: sigma.key,
            a_to_src: true,
        };
        assert_eq!(p.image_of(&q, sigma, a), v0);
        assert_eq!(p.image_of(&q, sigma, b), v1);
        let p = CandPair {
            a_to_src: false,
            ..p
        };
        assert_eq!(p.image_of(&q, sigma, a), v1);
        assert_eq!(p.image_of(&q, sigma, b), v0);
    }
}
