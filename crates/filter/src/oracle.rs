//! Definitional recomputation of max-min timestamps, for tests.
//!
//! [`maxmin_by_definition`] enumerates every weak embedding of the path tree
//! of `ˆd_u` at `v` (Definition II.7), takes each embedding's *min timestamp
//! for `e`* over the polarity-constrained descendants (Definition IV.2, in
//! the effective time domain), and returns the maximum (Definition IV.3).
//! Exponential — only usable on the small graphs tests work with.

use tcsm_dag::{PathTree, Polarity, QueryDag};
use tcsm_graph::{QEdgeId, QVertexId, QueryGraph, Ts, VertexId, WindowGraph};

/// Effective-domain timestamp of `t` under `pol`.
fn eff(pol: Polarity, t: Ts) -> Ts {
    match pol {
        Polarity::Later => t,
        Polarity::Earlier => t.neg(),
    }
}

/// `T_eff(ˆd)[u, v, e]` recomputed from the definition. Panics if the path
/// tree would exceed `max_nodes`.
#[allow(clippy::too_many_arguments)]
pub fn maxmin_by_definition(
    q: &QueryGraph,
    g: &WindowGraph,
    dag: &QueryDag,
    pol: Polarity,
    u: QVertexId,
    v: VertexId,
    e: QEdgeId,
    max_nodes: usize,
) -> Ts {
    if q.label(u) != g.label(v) {
        return Ts::NEG_INF;
    }
    let tree = PathTree::of_vertex(dag, u, max_nodes).expect("path tree too large for oracle");
    let constrained = pol.constrained_side(q.order(), e);

    // DFS over tree nodes assigning data vertices; for each tree edge pick a
    // data edge; track the min effective timestamp over constrained qedges.
    #[allow(clippy::too_many_arguments)]
    fn assign(
        q: &QueryGraph,
        g: &WindowGraph,
        dag: &QueryDag,
        pol: Polarity,
        tree: &PathTree,
        constrained: tcsm_graph::Set64,
        node: usize,
        img: VertexId,
        running_min: Ts,
        best: &mut Ts,
    ) {
        let children = &tree.nodes()[node].children;
        if children.is_empty() {
            if running_min > *best {
                *best = running_min;
            }
            return;
        }
        // Children of one node are independent branches of the tree, but a
        // weak embedding must fix all of them simultaneously; the min over
        // branches composes, so recurse per child accumulating the min.
        // Enumerate assignments branch by branch.
        #[allow(clippy::too_many_arguments)]
        fn per_child(
            q: &QueryGraph,
            g: &WindowGraph,
            dag: &QueryDag,
            pol: Polarity,
            tree: &PathTree,
            constrained: tcsm_graph::Set64,
            node: usize,
            img: VertexId,
            child_idx: usize,
            running_min: Ts,
            best: &mut Ts,
        ) {
            let children = &tree.nodes()[node].children;
            if child_idx == children.len() {
                if running_min > *best {
                    *best = running_min;
                }
                return;
            }
            let (qe, cnode) = children[child_idx];
            let cq = tree.nodes()[cnode].vertex;
            for (vc, pe) in g.neighbors(img) {
                if g.label(vc) != q.label(cq) {
                    continue;
                }
                let qedge = q.edge(qe);
                let (img_a, img_b) = if qedge.a == dag.tail(qe) {
                    (img, vc)
                } else {
                    (vc, img)
                };
                let c = g.constraint_for(img_a, img_b, qedge.direction, qedge.label);
                for rec in pe.iter_matching(c) {
                    let mut m = running_min;
                    if constrained.contains(qe) {
                        m = m.min(eff(pol, rec.time));
                    }
                    // Descend into the child subtree, then continue with the
                    // remaining children. Collect the subtree's contribution
                    // by enumerating it inline.
                    let mut sub_best = Ts::NEG_INF;
                    assign(
                        q,
                        g,
                        dag,
                        pol,
                        tree,
                        constrained,
                        cnode,
                        vc,
                        m,
                        &mut sub_best,
                    );
                    if sub_best > Ts::NEG_INF {
                        per_child(
                            q,
                            g,
                            dag,
                            pol,
                            tree,
                            constrained,
                            node,
                            img,
                            child_idx + 1,
                            sub_best,
                            best,
                        );
                    }
                }
            }
        }
        per_child(
            q,
            g,
            dag,
            pol,
            tree,
            constrained,
            node,
            img,
            0,
            running_min,
            best,
        );
    }

    let mut best = Ts::NEG_INF;
    assign(
        q,
        g,
        dag,
        pol,
        &tree,
        constrained,
        tree.root(),
        v,
        Ts::INF,
        &mut best,
    );
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::FilterInstance;
    use tcsm_dag::build_dag;
    use tcsm_graph::query::paper_running_example;
    use tcsm_graph::WindowGraph;

    #[test]
    fn oracle_matches_incremental_on_running_example() {
        let q = paper_running_example();
        let g = crate::instance::tests::figure_2a();
        for pol in Polarity::BOTH {
            let dag = build_dag(&q, 0);
            let mut w = WindowGraph::new(g.labels().to_vec(), false);
            let mut inst = FilterInstance::new(dag.clone(), pol, &q, &w);
            let mut flips = Vec::new();
            for e in g.edges() {
                w.insert(e);
                inst.apply(&q, &w, e, &mut flips);
            }
            for u in 0..q.num_vertices() {
                for v in 0..7u32 {
                    // The table only maintains values for ancestor edges
                    // A(u) — the only entries Lemma IV.3 ever reads; the
                    // definitional value of other edges is not stored.
                    for e in dag.ancestor_edges(u).iter() {
                        let oracle = maxmin_by_definition(&q, &w, &dag, pol, u, v, e, 100_000);
                        let inc = match pol {
                            Polarity::Later => inst.natural_value(u, v, e),
                            Polarity::Earlier => inst.natural_value(u, v, e).neg(),
                        };
                        assert_eq!(inc, oracle, "mismatch at u{u} v{v} e{e} pol={pol:?}");
                    }
                }
            }
        }
    }
}
