//! The Eq. (1) inner-loop kernels: bulk max-min merges over `TR(u)` lanes.
//!
//! One `recompute_into` evaluates, per DAG child `(ε_c, u_c)` of `u` and per
//! contributing alive neighbour `v_c` of `v`, the per-lane update
//!
//! ```text
//! best[i] = max(best[i], min(t*, tmax_eff))        for i in 0..|TR(u)|
//! ```
//!
//! where `t* = T[u_c, v_c, TR(u)[i]]` and `tmax_eff` is the child-edge term
//! `tmax` when the polarity relates `TR(u)[i]` to `ε_c`, `+∞` otherwise.
//! After all neighbours of one child are folded, `new_vals[i] =
//! min(new_vals[i], best[i])` merges the child into the row.
//!
//! # Kernel contract
//!
//! The instance hands the kernels a structure-of-arrays view it prepares at
//! construction time (see `FilterInstance`):
//!
//! * `child_row` — the child's value row **padded by one trailing `+∞`
//!   lane** (stride `|TR(u_c)| + 1`), so a rank is *always* a valid index:
//!   edges outside `TR(u_c)` are remapped from the old `NO_RANK` sentinel
//!   to the pad index and load `+∞` unconditionally, with no per-lane
//!   branch.
//! * `rank[i]` — index of `TR(u)[i]` in `child_row` (pad index if absent).
//! * `relmask[i]` — `-1` ("all ones") when the polarity relates `TR(u)[i]`
//!   to the child edge, `0` otherwise, so `tmax_eff` is two bit-ops:
//!   `((tmax ^ MAX) & mask) ^ MAX` selects `tmax` or `i64::MAX` branch-free.
//!
//! All lanes are **raw `i64`** in the effective time domain: `Ts` derives
//! `Ord` on its raw representation (sentinels are `i64::MIN`/`i64::MAX`),
//! so raw integer `min`/`max` is exactly `Ts::min`/`Ts::max`. Integer
//! min/max is associative, commutative, and exact — both kernels produce
//! **bit-identical** rows for any chunking, which is what lets
//! `TCSM_KERNEL` swap them under the differential suites.
//!
//! [`accumulate_scalar`] is the branchy per-lane reference (the shape of
//! the pre-kernel code); [`accumulate_chunked`] processes fixed
//! [`CHUNK`]-wide blocks of branch-free select/min/max ops that the
//! compiler can keep in vector registers. Std-only, no intrinsics: the
//! chunked kernel is written so autovectorization is *possible*, and stays
//! correct scalar-by-scalar where it is not.

/// Fixed chunk width of [`accumulate_chunked`] (8 × `i64` = one 64-byte
/// cache line per block; also the widest common SIMD register span).
pub const CHUNK: usize = 8;

/// Which Eq. (1) kernel an instance runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelKind {
    /// Branchy per-lane reference implementation.
    Scalar,
    /// Fixed-width chunked, branch-free implementation (the default).
    Chunked,
}

impl KernelKind {
    /// Parses a `TCSM_KERNEL` value. Unknown or empty values fall back to
    /// [`KernelKind::Chunked`], the default.
    pub fn parse(v: &str) -> KernelKind {
        match v.trim() {
            "scalar" => KernelKind::Scalar,
            _ => KernelKind::Chunked,
        }
    }

    /// The process-wide default, from the `TCSM_KERNEL` environment
    /// variable (`scalar` | `chunked`), read **once per process** — the
    /// same contract as `TCSM_THREADS`. Unset or invalid ⇒ chunked.
    pub fn from_env() -> KernelKind {
        static KERNEL: std::sync::OnceLock<KernelKind> = std::sync::OnceLock::new();
        *KERNEL.get_or_init(|| {
            std::env::var("TCSM_KERNEL")
                .map(|v| KernelKind::parse(&v))
                .unwrap_or(KernelKind::Chunked)
        })
    }
}

/// Folds one contributing neighbour into `best` — reference kernel.
///
/// Per-lane semantics (shared by both kernels):
/// `best[i] = max(best[i], min(child_row[rank[i]], relmask[i] ? tmax : +∞))`.
///
/// `rank` and `relmask` are `best.len()` long; every rank indexes into
/// `child_row` (the pad lane included).
#[inline]
pub fn accumulate_scalar(
    best: &mut [i64],
    child_row: &[i64],
    rank: &[u8],
    relmask: &[i64],
    tmax: i64,
) {
    assert_eq!(rank.len(), best.len());
    assert_eq!(relmask.len(), best.len());
    for i in 0..best.len() {
        let tstar = child_row[rank[i] as usize];
        let f = if relmask[i] != 0 {
            if tstar < tmax {
                tstar
            } else {
                tmax
            }
        } else {
            tstar
        };
        if f > best[i] {
            best[i] = f;
        }
    }
}

/// Folds one contributing neighbour into `best` — chunked branch-free
/// kernel. Bit-identical to [`accumulate_scalar`] on every input.
#[inline]
pub fn accumulate_chunked(
    best: &mut [i64],
    child_row: &[i64],
    rank: &[u8],
    relmask: &[i64],
    tmax: i64,
) {
    assert_eq!(rank.len(), best.len());
    assert_eq!(relmask.len(), best.len());
    // `((tmax ^ MAX) & mask) ^ MAX` = `tmax` when mask is all-ones, `MAX`
    // when mask is zero — the branch-free select behind `tmax_eff`.
    let txm = tmax ^ i64::MAX;
    let n = best.len();
    let mut i = 0;
    while i + CHUNK <= n {
        let b = &mut best[i..i + CHUNK];
        let r = &rank[i..i + CHUNK];
        let m = &relmask[i..i + CHUNK];
        for j in 0..CHUNK {
            let tstar = child_row[r[j] as usize];
            let teff = (txm & m[j]) ^ i64::MAX;
            b[j] = b[j].max(tstar.min(teff));
        }
        i += CHUNK;
    }
    while i < n {
        let tstar = child_row[rank[i] as usize];
        let teff = (txm & relmask[i]) ^ i64::MAX;
        best[i] = best[i].max(tstar.min(teff));
        i += 1;
    }
}

/// Dispatches on the kernel kind.
#[inline]
pub fn accumulate(
    kind: KernelKind,
    best: &mut [i64],
    child_row: &[i64],
    rank: &[u8],
    relmask: &[i64],
    tmax: i64,
) {
    match kind {
        KernelKind::Scalar => accumulate_scalar(best, child_row, rank, relmask, tmax),
        KernelKind::Chunked => accumulate_chunked(best, child_row, rank, relmask, tmax),
    }
}

/// Lane-wise `acc[i] = min(acc[i], best[i])` — the per-child merge into the
/// row under recomputation. Trivially autovectorizable; shared by both
/// kernel paths (exact, so it cannot diverge them).
#[inline]
pub fn merge_min(acc: &mut [i64], best: &[i64]) {
    assert_eq!(acc.len(), best.len());
    for (a, &b) in acc.iter_mut().zip(best) {
        if b < *a {
            *a = b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_kernel_kinds() {
        assert_eq!(KernelKind::parse("scalar"), KernelKind::Scalar);
        assert_eq!(KernelKind::parse(" scalar "), KernelKind::Scalar);
        assert_eq!(KernelKind::parse("chunked"), KernelKind::Chunked);
        assert_eq!(KernelKind::parse(""), KernelKind::Chunked);
        assert_eq!(KernelKind::parse("nonsense"), KernelKind::Chunked);
    }

    /// Deterministic SplitMix64 for the self-contained differential check.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn kernels_agree_across_widths_and_sentinels() {
        let mut s = 0x5EEDu64;
        for width in [0usize, 1, 2, 7, 8, 9, 15, 16, 23, 64] {
            let crow_len = width + 1; // padded child row
            let mut child_row: Vec<i64> = (0..crow_len)
                .map(|_| match mix(&mut s) % 5 {
                    0 => i64::MIN,
                    1 => i64::MAX,
                    _ => (mix(&mut s) as i64) >> 16,
                })
                .collect();
            child_row[width] = i64::MAX; // pad lane is always +∞
            let rank: Vec<u8> = (0..width)
                .map(|_| (mix(&mut s) as usize % crow_len) as u8)
                .collect();
            let relmask: Vec<i64> = (0..width)
                .map(|_| if mix(&mut s) & 1 == 0 { -1 } else { 0 })
                .collect();
            for tmax in [i64::MIN + 1, -7, 0, 42, i64::MAX - 1] {
                let mut a = vec![i64::MIN; width];
                let mut b = vec![i64::MIN; width];
                for _ in 0..3 {
                    accumulate_scalar(&mut a, &child_row, &rank, &relmask, tmax);
                    accumulate_chunked(&mut b, &child_row, &rank, &relmask, tmax);
                    assert_eq!(a, b, "width {width} tmax {tmax}");
                }
            }
        }
    }

    #[test]
    fn merge_min_is_lanewise() {
        let mut acc = vec![5, i64::MAX, -3, i64::MIN];
        merge_min(&mut acc, &[7, 0, -3, 9]);
        assert_eq!(acc, vec![5, 0, -3, i64::MIN]);
    }
}
