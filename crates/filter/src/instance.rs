//! One `(DAG, polarity)` instance of the max-min timestamp machinery.
//!
//! An instance maintains, for its DAG `ˆd` and polarity `p`, the table
//! `T[u, v, e′]` of Definition IV.3 restricted to the temporally relevant
//! ancestor edges `TR(u)` (DESIGN.md §4), plus the weak-embedding existence
//! bit `W[u, v]` which the paper encodes as `T = −∞`.
//!
//! # Dense layout
//!
//! Query vertices are ≤ 64 and the data-vertex count `n` is fixed, so the
//! whole table is one flat `Vec<Ts>` slab allocated at construction: query
//! vertex `u` owns an `n × |TR(u)|` block, one contiguous row per data
//! vertex (`O(Σ_u |TR(u)| · n)` entries). Existence, label-compatibility
//! and is-non-default are parallel bitmaps. *Default* rows (leaf vertices
//! with matching labels exist with all-`∞` values; everything else doesn't
//! exist) are materialized once at construction, so the per-event update
//! never allocates and never hashes — the worklist dedup is a
//! generation-stamped `u32` per `(u, v)` cell that is "cleared" for the next
//! event by bumping the generation counter.
//!
//! All timestamps live in the *effective* domain: identity for the `Later`
//! polarity, negation for `Earlier`. In that domain both polarities are the
//! same max-min computation, and the TC-match condition (Lemma IV.3) is
//! uniformly `eff(t) < T_eff[head(e), v_head, e]`.
//!
//! Updates follow Algorithm 3 (`TCMInsertion` / `TCMDeletion`): the entries
//! of the endpoints matched by the changed data edge are recomputed first,
//! then changes propagate towards DAG parents through alive data edges.
//! Values are monotone per event (non-decreasing on insert, non-increasing
//! on delete, in the effective domain), so the worklist converges and each
//! candidate pair flips its per-instance status at most once per event.

use crate::kernel::{self, KernelKind};
use crate::pair::{valid_orientations, CandPair, DirectPairs};
use tcsm_dag::{Polarity, QueryDag};
use tcsm_graph::codec::{CodecError, Decoder, Encoder};
use tcsm_graph::{
    AuditLevel, AuditViolation, DenseBits, Direction, EdgeConstraint, EdgeLabel, PairEdges,
    QEdgeId, QVertexId, QueryGraph, TemporalEdge, Ts, VertexId, WindowGraph, MAX_QUERY_DIM,
};

/// Raw-lane sentinels (`Ts` ordering equals raw `i64` ordering, so the
/// value slab and all recompute scratch work on plain `i64` — see
/// [`crate::kernel`]).
const RAW_NEG_INF: i64 = i64::MIN;
const RAW_INF: i64 = i64::MAX;

/// Scratch buffers for entry recomputation, reused across events (and
/// passed explicitly so read-only consumers like `check_consistency` can
/// bring their own), plus the Eq. (1) kernel counters — they ride on the
/// scratch because `recompute_into` takes `&self` (a private scratch, as in
/// `check_consistency`, keeps its counts out of the instance's totals).
#[derive(Default)]
struct RecomputeScratch {
    new_vals: Vec<i64>,
    best: Vec<i64>,
    old_vals: Vec<i64>,
    /// Kernel `accumulate` calls (one per contributing child/neighbour).
    kernel_invocations: u64,
    /// `TR(u)` lanes folded across those calls.
    kernel_lanes: u64,
    /// Child terms with no contributing neighbour (`!any` bails: the entry
    /// ceases to exist without touching the kernel further).
    kernel_early_exits: u64,
}

/// Sentinel in [`FilterInstance::rank_tbl`]: the edge is not in `TR(u)`.
/// The kernel-facing SoA rank rows (`cm_rank`) never contain it — absent
/// edges are remapped to the child row's pad lane at construction.
const NO_RANK: u8 = u8::MAX;

/// Per `(u, child-slot)`: the query-edge constants of the child edge,
/// hoisted out of the Eq. (1) neighbour loop. The [`EdgeConstraint`] for a
/// concrete neighbour `(v, v_c)` is then pure arithmetic — no query-edge
/// lookup, no direction re-resolution per neighbour.
#[derive(Clone, Copy)]
struct ChildEdgeMeta {
    /// Required edge label.
    label: EdgeLabel,
    /// Direction requirement, already resolved against the window's
    /// directedness (undirected windows erase `AToB`).
    direction: Direction,
    /// Does the query edge's `a` endpoint map to the DAG tail (= the parent
    /// `u` side)? Determines `src_is_a` from the vertex-id order.
    a_is_tail: bool,
}

/// One `(DAG, polarity)` filter instance.
pub struct FilterInstance {
    pol: Polarity,
    dag: QueryDag,
    /// Rank lookup table: `rank_tbl[u · MAX_QUERY_DIM + e]` = index of `e`
    /// in `TR(u)`'s value row, or [`NO_RANK`]. Replaces per-access
    /// popcounts. (Query shape is ≤ [`MAX_QUERY_DIM`] by the typed
    /// construction-time guard in `QueryGraph::new`.)
    rank_tbl: Vec<u8>,
    /// SoA kernel metadata, one row per `(u, child slot)`, each `width[u]`
    /// long: the rank of `TR(u)[i]` in the child's padded value row
    /// (absent edges point at the pad lane, never [`NO_RANK`]).
    cm_rank: Vec<u8>,
    /// Parallel to [`FilterInstance::cm_rank`]: `-1` when the polarity
    /// relates `TR(u)[i]` to the child edge, `0` otherwise (the kernel's
    /// branch-free select mask).
    cm_relmask: Vec<i64>,
    /// Start of `u`'s kernel-metadata block in `cm_rank`/`cm_relmask`.
    cmeta_base: Vec<u32>,
    /// Hoisted child-edge constants, indexed `cedge_base[u] + child slot`.
    cedge: Vec<ChildEdgeMeta>,
    /// Start of `u`'s block in [`FilterInstance::cedge`].
    cedge_base: Vec<u32>,
    /// Data-vertex count (row count per block).
    n: usize,
    /// `|TR(u)|` per query vertex (logical lanes; rows are stored with one
    /// extra pad lane — see `vals`).
    width: Vec<u32>,
    /// Prefix sums of `width + 1` (the padded strides): block `u` starts at
    /// `vbase[u] * n`.
    vbase: Vec<u32>,
    /// The flat value slab (see module docs), in **raw `i64`** effective
    /// time. Each `(u, v)` row is `width[u] + 1` lanes: `width[u]` logical
    /// values plus one trailing pad lane pinned to `+∞` at construction and
    /// never overwritten, so kernel rank loads need no existence branch.
    vals: Vec<i64>,
    /// `W[u, v]` existence bit per `(u, v)` (index `u·n + v`).
    exists: DenseBits,
    /// Default existence per `(u, v)`: leaf vertex with matching label.
    default_exists: DenseBits,
    /// `label(u) == label(v)` per `(u, v)`, precomputed.
    label_ok: DenseBits,
    /// Per `(u, v)`: does the entry differ from its default?
    nondefault: DenseBits,
    nondefault_count: usize,
    /// Worklist bucketed by query vertex, drained in reverse-topological
    /// order (children strictly before parents). Propagation only ever runs
    /// child → parent, so each entry recomputes at most once per event —
    /// a LIFO stack would recompute a parent once per settling child.
    by_u: Vec<Vec<VertexId>>,
    /// Bit per *topo position* with pending work (`nq ≤ 64` ⇒ one word).
    pending_pos: u64,
    /// Topo position of each query vertex and its inverse.
    topo_pos: Vec<u32>,
    u_at_pos: Vec<u32>,
    /// Generation-stamped dedup: `queued_gen[uv] == gen` means "in queue".
    queued_gen: Vec<u32>,
    gen: u32,
    scratch: RecomputeScratch,
    /// Deferred enqueues (reused allocation).
    pending: Vec<(QVertexId, VertexId)>,
    /// Which Eq. (1) kernel this instance runs (`TCSM_KERNEL`, resolved
    /// once per process; overridable per instance for differential tests
    /// and interleaved benches). Both kinds produce bit-identical tables.
    kern: KernelKind,
}

impl FilterInstance {
    /// Creates an instance for the given DAG orientation and polarity over
    /// the fixed vertex set of `g`. The full `O(Σ|TR(u)|·n)` table is
    /// allocated (and its default rows materialized) here, once.
    pub fn new(dag: QueryDag, pol: Polarity, q: &QueryGraph, g: &WindowGraph) -> FilterInstance {
        let nq = dag.num_vertices();
        let n = g.num_vertices();
        // Defense in depth behind the typed `GraphError::QueryTooLarge`
        // guard in `QueryGraph::new`: the rank table and the one-word
        // worklist bitmask below bake this limit into their layout.
        assert!(
            nq <= MAX_QUERY_DIM && q.num_edges() <= MAX_QUERY_DIM,
            "query exceeds MAX_QUERY_DIM={MAX_QUERY_DIM} (QueryGraph construction must reject this)"
        );
        let tr: Vec<tcsm_graph::Set64> = (0..nq).map(|u| dag.relevant_ancestors(u, pol)).collect();
        let width: Vec<u32> = tr.iter().map(|s| s.len() as u32).collect();
        let mut rank_tbl = vec![NO_RANK; nq * MAX_QUERY_DIM];
        for u in 0..nq {
            for (i, e) in tr[u].iter().enumerate() {
                rank_tbl[u * MAX_QUERY_DIM + e] = i as u8;
            }
        }
        // Rows are padded by one trailing +∞ lane (stride `width + 1`) so
        // kernel rank loads are unconditional — see the module docs.
        let mut vbase = vec![0u32; nq];
        let mut acc = 0u32;
        for u in 0..nq {
            vbase[u] = acc;
            acc += width[u] + 1;
        }
        let mut vals = vec![RAW_NEG_INF; acc as usize * n];
        for u in 0..nq {
            let stride = width[u] as usize + 1;
            for v in 0..n {
                vals[vbase[u] as usize * n + v * stride + width[u] as usize] = RAW_INF;
            }
        }
        let mut exists = DenseBits::new(nq * n);
        let mut default_exists = DenseBits::new(nq * n);
        let mut label_ok = DenseBits::new(nq * n);
        for u in 0..nq {
            let leaf = dag.children(u).is_empty();
            let lu = q.label(u);
            for v in 0..n {
                if lu != g.label(v as VertexId) {
                    continue;
                }
                label_ok.set(u * n + v);
                if leaf {
                    // Default entry: exists with all-∞ values.
                    exists.set(u * n + v);
                    default_exists.set(u * n + v);
                    let base = vbase[u] as usize * n + v * (width[u] as usize + 1);
                    vals[base..base + width[u] as usize].fill(RAW_INF);
                }
            }
        }
        let mut topo_pos = vec![0u32; nq];
        let mut u_at_pos = vec![0u32; nq];
        for (pos, &u) in dag.topo_order().iter().enumerate() {
            topo_pos[u] = pos as u32;
            u_at_pos[pos] = u as u32;
        }
        let order = q.order();
        let mut cm_rank = Vec::new();
        let mut cm_relmask = Vec::new();
        let mut cmeta_base = vec![0u32; nq];
        let mut cedge = Vec::new();
        let mut cedge_base = vec![0u32; nq];
        let directed = g.is_directed();
        for u in 0..nq {
            cmeta_base[u] = cm_rank.len() as u32;
            cedge_base[u] = cedge.len() as u32;
            for &(echild, uc) in dag.children(u) {
                let qe = q.edge(echild);
                cedge.push(ChildEdgeMeta {
                    label: qe.label,
                    direction: if directed {
                        qe.direction
                    } else {
                        Direction::Undirected
                    },
                    a_is_tail: qe.a == dag.tail(echild),
                });
                for ep in tr[u].iter() {
                    // Absent edges load the child row's pad lane (+∞)
                    // instead of branching on a sentinel.
                    cm_rank.push(match rank_tbl[uc * MAX_QUERY_DIM + ep] {
                        NO_RANK => width[uc] as u8,
                        r => r,
                    });
                    cm_relmask.push(if pol.relates(order, ep, echild) {
                        -1
                    } else {
                        0
                    });
                }
            }
        }
        FilterInstance {
            pol,
            dag,
            rank_tbl,
            cm_rank,
            cm_relmask,
            cmeta_base,
            cedge,
            cedge_base,
            n,
            width,
            vbase,
            vals,
            exists,
            default_exists,
            label_ok,
            nondefault: DenseBits::new(nq * n),
            nondefault_count: 0,
            by_u: vec![Vec::new(); nq],
            pending_pos: 0,
            topo_pos,
            u_at_pos,
            queued_gen: vec![0; nq * n],
            gen: 0,
            scratch: RecomputeScratch::default(),
            pending: Vec::new(),
            kern: KernelKind::from_env(),
        }
    }

    /// Overrides the Eq. (1) kernel for this instance (tests and
    /// interleaved benches; production selection is `TCSM_KERNEL`). Safe at
    /// any event boundary — both kernels compute bit-identical tables.
    #[doc(hidden)]
    pub fn set_kernel(&mut self, kern: KernelKind) {
        self.kern = kern;
    }

    /// The kernel this instance runs.
    #[inline]
    pub fn kernel(&self) -> KernelKind {
        self.kern
    }

    /// Cumulative Eq. (1) kernel counters:
    /// `(invocations, merged lanes, early-exit bails)`.
    #[inline]
    pub fn kernel_counters(&self) -> (u64, u64, u64) {
        (
            self.scratch.kernel_invocations,
            self.scratch.kernel_lanes,
            self.scratch.kernel_early_exits,
        )
    }

    /// The instance's polarity.
    #[inline]
    pub fn polarity(&self) -> Polarity {
        self.pol
    }

    /// The instance's DAG.
    #[inline]
    pub fn dag(&self) -> &QueryDag {
        &self.dag
    }

    /// Number of non-default table entries.
    #[inline]
    pub fn table_len(&self) -> usize {
        self.nondefault_count
    }

    /// Start of the (padded) value row for `(u, v)`: `width[u]` logical
    /// lanes followed by the `+∞` pad lane.
    #[inline]
    fn row(&self, u: QVertexId, v: VertexId) -> usize {
        self.vbase[u] as usize * self.n + v as usize * (self.width[u] as usize + 1)
    }

    #[inline]
    fn eff(&self, t: Ts) -> Ts {
        match self.pol {
            Polarity::Later => t,
            Polarity::Earlier => t.neg(),
        }
    }

    /// Max over alive parallel edges of `eff(t)`, under a constraint.
    #[inline]
    fn eff_max(&self, pair: &PairEdges, c: EdgeConstraint) -> Option<Ts> {
        match self.pol {
            Polarity::Later => pair.max_time(c),
            Polarity::Earlier => pair.min_time(c).map(Ts::neg),
        }
    }

    /// Rank of `e` within `TR(u)` (its index in the value row).
    #[inline]
    fn rank(&self, u: QVertexId, e: QEdgeId) -> Option<usize> {
        match self.rank_tbl[u * MAX_QUERY_DIM + e] {
            NO_RANK => None,
            i => Some(i as usize),
        }
    }

    /// `T_eff[u, v, e]` straight from the dense slab (defaults are
    /// materialized, so this is a bit test plus one indexed read).
    #[inline]
    fn value(&self, u: QVertexId, v: VertexId, e: QEdgeId) -> Ts {
        if !self.exists.get(u * self.n + v as usize) {
            return Ts::NEG_INF;
        }
        match self.rank(u, e) {
            Some(i) => Ts::from_raw(self.vals[self.row(u, v) + i]),
            None => Ts::INF,
        }
    }

    /// Value for relevant-edge rank within an explicit (raw-lane) row
    /// snapshot.
    #[inline]
    fn value_in(&self, row: &[i64], row_exists: bool, u: QVertexId, e: QEdgeId) -> Ts {
        if !row_exists {
            return Ts::NEG_INF;
        }
        match self.rank(u, e) {
            Some(i) => Ts::from_raw(row[i]),
            None => Ts::INF,
        }
    }

    /// `T(ˆd)[u, v, e]` in the *natural* time domain (paper's orientation of
    /// the value). Used by tests against the worked examples.
    pub fn natural_value(&self, u: QVertexId, v: VertexId, e: QEdgeId) -> Ts {
        let val = self.value(u, v, e);
        match self.pol {
            Polarity::Later => val,
            Polarity::Earlier => val.neg(),
        }
    }

    /// Lemma IV.3 check: does this instance accept the oriented pair?
    pub fn passes(&self, q: &QueryGraph, pair: CandPair, sigma: &TemporalEdge) -> bool {
        let head = self.dag.head(pair.qedge);
        let v_head = pair.image_of(q, sigma, head);
        self.eff(sigma.time) < self.value(head, v_head, pair.qedge)
    }

    /// The [`EdgeConstraint`] for matching query edge `e` with data images
    /// `v_tail ↦ tail(e)`, `v_head ↦ head(e)`.
    fn constraint(
        &self,
        q: &QueryGraph,
        g: &WindowGraph,
        e: QEdgeId,
        v_tail: VertexId,
        v_head: VertexId,
    ) -> EdgeConstraint {
        let qe = q.edge(e);
        let (img_a, img_b) = if qe.a == self.dag.tail(e) {
            (v_tail, v_head)
        } else {
            (v_head, v_tail)
        };
        g.constraint_for(img_a, img_b, qe.direction, qe.label)
    }

    /// Full Eq. (1) evaluation of the entry at `(u, v)` from current child
    /// entries and the alive adjacency of `v`, written into `sc.new_vals`.
    /// Returns the existence bit. Allocation-free after warm-up.
    ///
    /// The per-lane merge runs through [`crate::kernel`] on the SoA
    /// metadata and padded rows prepared at construction; the neighbour
    /// loop itself only gates on existence and derives the edge constraint
    /// from hoisted child-edge constants.
    fn recompute_into(
        &self,
        _q: &QueryGraph,
        g: &WindowGraph,
        u: QVertexId,
        v: VertexId,
        sc: &mut RecomputeScratch,
    ) -> bool {
        let len = self.width[u] as usize;
        sc.new_vals.clear();
        if !self.label_ok.get(u * self.n + v as usize) {
            // Early out before touching anything else: callers still read
            // a full row of −∞ lanes.
            sc.new_vals.resize(len, RAW_NEG_INF);
            return false;
        }
        sc.new_vals.resize(len, RAW_INF);
        sc.best.clear();
        sc.best.resize(len, RAW_NEG_INF);
        for (k, &(_echild, uc)) in self.dag.children(u).iter().enumerate() {
            sc.best.fill(RAW_NEG_INF);
            // Child-row ranks, polarity masks, and child-edge constants are
            // DAG/order constants, precomputed per (u, child slot).
            let mbase = self.cmeta_base[u] as usize + k * len;
            let ranks = &self.cm_rank[mbase..mbase + len];
            let relmask = &self.cm_relmask[mbase..mbase + len];
            let cem = self.cedge[self.cedge_base[u] as usize + k];
            let cstride = self.width[uc] as usize + 1;
            let mut any = false;
            for (vc, pe) in g.neighbors(v) {
                let ucvc = uc * self.n + vc as usize;
                // `exists ⊆ label_ok`: construction only sets existence
                // under a label match and recomputation bails on label
                // mismatch above, so the old label probe here was
                // redundant — one bitmap walk fewer per neighbour.
                if !self.exists.get(ucvc) {
                    continue;
                }
                debug_assert!(self.label_ok.get(ucvc), "exists outside label_ok");
                let c = EdgeConstraint {
                    label: cem.label,
                    direction: cem.direction,
                    src_is_a: if cem.a_is_tail { v < vc } else { vc < v },
                };
                let Some(tmax) = self.eff_max(pe, c) else {
                    continue;
                };
                any = true;
                sc.kernel_invocations += 1;
                sc.kernel_lanes += len as u64;
                let crow = self.row(uc, vc);
                kernel::accumulate(
                    self.kern,
                    &mut sc.best,
                    &self.vals[crow..crow + cstride],
                    ranks,
                    relmask,
                    tmax.raw(),
                );
            }
            if !any {
                sc.kernel_early_exits += 1;
                sc.new_vals.fill(RAW_NEG_INF);
                return false;
            }
            kernel::merge_min(&mut sc.new_vals, &sc.best);
        }
        true
    }

    /// O(1) amortized worklist insertion with generation-stamped dedup.
    fn enqueue(&mut self, u: QVertexId, v: VertexId) {
        let uv = u * self.n + v as usize;
        if self.queued_gen[uv] != self.gen {
            self.queued_gen[uv] = self.gen;
            self.by_u[u].push(v);
            self.pending_pos |= 1u64 << self.topo_pos[u];
        }
    }

    /// Pops the pending entry with the leaf-most query vertex (highest topo
    /// position), so children settle before any parent recomputes.
    fn pop_deepest(&mut self) -> Option<(QVertexId, VertexId)> {
        if self.pending_pos == 0 {
            return None;
        }
        let pos = 63 - self.pending_pos.leading_zeros() as usize;
        let u = self.u_at_pos[pos] as QVertexId;
        let v = self.by_u[u].pop().expect("pending bit implies work");
        if self.by_u[u].is_empty() {
            self.pending_pos &= !(1u64 << pos);
        }
        Some((u, v))
    }

    /// Starts a fresh dedup generation (O(1); the stamp array is only fully
    /// rewritten on `u32` wrap-around, which takes ~4 billion events).
    fn next_gen(&mut self) {
        if self.gen == u32::MAX {
            self.queued_gen.iter_mut().for_each(|g| *g = 0);
            self.gen = 0;
        }
        self.gen += 1;
    }

    /// Algorithm 3 (`TCMInsertion`) / its deletion twin (`TCMDeletion`).
    ///
    /// `g` must already reflect the event (edge inserted / removed). Returns
    /// every oriented pair of an *alive* data edge whose per-instance pass
    /// status flipped during the update. Pairs of `sigma` itself are *not*
    /// reported — the bank evaluates those directly.
    pub fn apply(
        &mut self,
        q: &QueryGraph,
        g: &WindowGraph,
        sigma: &TemporalEdge,
        flips: &mut Vec<CandPair>,
    ) {
        let orients: Vec<(QEdgeId, bool)> = (0..q.num_edges())
            .flat_map(|e| valid_orientations(q, g, e, sigma).map(move |o| (e, o)))
            .collect();
        self.apply_seeded(q, g, sigma, &orients, flips);
    }

    /// [`FilterInstance::apply`] with the event's valid `(query edge,
    /// orientation)` list precomputed — the bank computes it once and shares
    /// it across all four instances.
    pub fn apply_seeded(
        &mut self,
        q: &QueryGraph,
        g: &WindowGraph,
        sigma: &TemporalEdge,
        orients: &[(QEdgeId, bool)],
        flips: &mut Vec<CandPair>,
    ) {
        self.begin_update();
        self.seed_update(q, sigma, orients);
        self.propagate(q, g, DirectPairs::Edge(sigma.key), flips);
    }

    /// Applies a whole same-timestamp delta batch with **one** worklist
    /// drain: every `(edge, orientation range)` seed enqueues its tail
    /// entries, then propagation runs once. All batch edges move the tables
    /// in the same direction (arrivals raise, expirations lower — in the
    /// effective domain), so monotonicity and the ≤-once-per-entry
    /// recompute bound hold per batch exactly as they do per event.
    ///
    /// `orients` is the flattened orientation list shared by all four
    /// instances; each seed carries its sub-range. `direct` names the pairs
    /// the bank evaluates directly (all batch-edge pairs), which are
    /// excluded from flip reports.
    pub fn apply_batch(
        &mut self,
        q: &QueryGraph,
        g: &WindowGraph,
        seeds: &[(TemporalEdge, (u32, u32))],
        orients: &[(QEdgeId, bool)],
        direct: DirectPairs,
        flips: &mut Vec<CandPair>,
    ) {
        self.begin_update();
        for &(ref sigma, (lo, hi)) in seeds {
            self.seed_update(q, sigma, &orients[lo as usize..hi as usize]);
        }
        self.propagate(q, g, direct, flips);
    }

    /// Opens one update (event or batch): fresh dedup generation.
    fn begin_update(&mut self) {
        debug_assert!(self.pending_pos == 0);
        self.next_gen();
    }

    /// Phase (i): seed the entries whose child-term gained or lost a
    /// parallel edge — the tail image of every orientation σ can take.
    fn seed_update(&mut self, q: &QueryGraph, sigma: &TemporalEdge, orients: &[(QEdgeId, bool)]) {
        for &(e, o) in orients {
            let pair = CandPair {
                qedge: e,
                key: sigma.key,
                a_to_src: o,
            };
            let tail = self.dag.tail(e);
            let v_tail = pair.image_of(q, sigma, tail);
            self.enqueue(tail, v_tail);
        }
    }

    /// Phase (ii): propagate to parents while entries keep changing,
    /// flip-reporting pairs of alive edges outside `direct`.
    fn propagate(
        &mut self,
        q: &QueryGraph,
        g: &WindowGraph,
        direct: DirectPairs,
        flips: &mut Vec<CandPair>,
    ) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut pending = std::mem::take(&mut self.pending);
        while let Some((u, v)) = self.pop_deepest() {
            let uv = u * self.n + v as usize;
            self.queued_gen[uv] = self.gen.wrapping_sub(1); // allow re-enqueue
            let w = self.width[u] as usize;
            let base = self.row(u, v);
            let old_exists = self.exists.get(uv);
            scratch.old_vals.clear();
            scratch
                .old_vals
                .extend_from_slice(&self.vals[base..base + w]);
            let new_exists = self.recompute_into(q, g, u, v, &mut scratch);
            if new_exists == old_exists && scratch.new_vals[..] == scratch.old_vals[..] {
                continue;
            }
            // Store the new row and maintain the non-default census.
            self.vals[base..base + w].copy_from_slice(&scratch.new_vals);
            self.exists.replace(uv, new_exists);
            let is_default = if new_exists {
                self.default_exists.get(uv) && scratch.new_vals.iter().all(|&t| t == RAW_INF)
            } else {
                !self.default_exists.get(uv)
            };
            let was_nondefault = self.nondefault.replace(uv, !is_default);
            match (was_nondefault, !is_default) {
                (false, true) => self.nondefault_count += 1,
                (true, false) => self.nondefault_count -= 1,
                _ => {}
            }
            pending.clear();
            for &(eparent, up) in self.dag.parents(u) {
                let old_val = self.value_in(&scratch.old_vals, old_exists, u, eparent);
                let new_val = self.value_in(&scratch.new_vals, new_exists, u, eparent);
                let report = old_val != new_val;
                for (vp, pe) in g.neighbors(v) {
                    if !self.label_ok.get(up * self.n + vp as usize) {
                        continue;
                    }
                    let c = self.constraint(q, g, eparent, vp, v);
                    let mut matched = false;
                    for rec in pe.iter_matching(c) {
                        matched = true;
                        if report {
                            let teff = self.eff(rec.time);
                            if (teff < old_val) != (teff < new_val)
                                && !direct.contains(rec.key, rec.time)
                            {
                                // Orientation: which endpoint of the stored
                                // record is the image of the query edge's a?
                                let qe = q.edge(eparent);
                                let img_a = if qe.a == up { vp } else { v };
                                let src = if rec.src_is_a { pe.a } else { pe.b };
                                flips.push(CandPair {
                                    qedge: eparent,
                                    key: rec.key,
                                    a_to_src: img_a == src,
                                });
                            }
                        }
                    }
                    if matched {
                        pending.push((up, vp));
                    }
                }
            }
            // Indexed loop: `pending` must stay owned while `enqueue` takes
            // `&mut self`.
            #[allow(clippy::needless_range_loop)]
            for i in 0..pending.len() {
                let (up, vp) = pending[i];
                self.enqueue(up, vp);
            }
        }
        self.scratch = scratch;
        self.pending = pending;
    }

    /// Recomputes the whole table from scratch against the *current* window
    /// `g`, in child-first topological order so every entry reads settled
    /// child rows. After this call the instance is in exactly the state the
    /// incremental path would have reached had it observed every alive
    /// edge's arrival — the substrate for admitting a query against a
    /// window that is already mid-stream (`tcsm-service` live admission).
    ///
    /// Cost is one `recompute_into` per `(u, v)` entry — the same order of
    /// work as constructing the instance, paid once per admission, never on
    /// the per-event path.
    pub fn rebuild(&mut self, q: &QueryGraph, g: &WindowGraph) {
        debug_assert!(self.pending_pos == 0, "rebuild during an open update");
        let mut scratch = std::mem::take(&mut self.scratch);
        // Children sit at *higher* topo positions (see `pop_deepest`), so a
        // descending-position sweep settles them before any parent reads.
        for pos in (0..self.u_at_pos.len()).rev() {
            let u = self.u_at_pos[pos] as QVertexId;
            let w = self.width[u] as usize;
            for v in 0..self.n as VertexId {
                let uv = u * self.n + v as usize;
                let new_exists = self.recompute_into(q, g, u, v, &mut scratch);
                let base = self.row(u, v);
                self.vals[base..base + w].copy_from_slice(&scratch.new_vals);
                self.exists.replace(uv, new_exists);
                let is_default = if new_exists {
                    self.default_exists.get(uv) && scratch.new_vals.iter().all(|&t| t == RAW_INF)
                } else {
                    !self.default_exists.get(uv)
                };
                let was_nondefault = self.nondefault.replace(uv, !is_default);
                match (was_nondefault, !is_default) {
                    (false, true) => self.nondefault_count += 1,
                    (true, false) => self.nondefault_count -= 1,
                    _ => {}
                }
            }
        }
        self.scratch = scratch;
    }

    /// Appends this instance's invariant violations to `out` (see
    /// [`tcsm_graph::audit`] for the level contract and the catalogue).
    ///
    /// * **Cheap**: every padded row's trailing lane still holds the `+∞`
    ///   sentinel pinned at construction; `W[u,v] ⊆ label_ok[u,v]` (a weak
    ///   embedding rooted at a label-incompatible vertex is impossible);
    ///   the non-default census equals the bitmap popcount.
    /// * **Deep**: additionally recomputes every `(u, v)` entry from
    ///   scratch ([`FilterInstance::recompute_into`]) and compares the
    ///   existence bit, the value row, and the non-default classification.
    ///
    /// `label` names the instance in violation details (the bank passes
    /// its DAG/polarity position).
    pub fn audit(
        &self,
        q: &QueryGraph,
        g: &WindowGraph,
        level: AuditLevel,
        label: &str,
        out: &mut Vec<AuditViolation>,
    ) {
        if !level.enabled() {
            return;
        }
        for u in 0..q.num_vertices() {
            let w = self.width[u] as usize;
            for v in 0..self.n as VertexId {
                let base = self.row(u, v);
                if self.vals[base + w] != RAW_INF {
                    out.push(AuditViolation::new(
                        "filter-pad-lane",
                        format!(
                            "{label}: pad lane of (u{u}, v{v}) holds {} (expected +inf)",
                            self.vals[base + w]
                        ),
                    ));
                }
            }
        }
        for (i, (&we, &wl)) in self
            .exists
            .words()
            .iter()
            .zip(self.label_ok.words())
            .enumerate()
        {
            let escaped = we & !wl;
            if escaped != 0 {
                let bit = i * 64 + escaped.trailing_zeros() as usize;
                out.push(AuditViolation::new(
                    "filter-exists-outside-label",
                    format!(
                        "{label}: existence bit set at (u{}, v{}) where labels mismatch",
                        bit / self.n,
                        bit % self.n
                    ),
                ));
            }
        }
        if self.nondefault_count != self.nondefault.count_ones() {
            out.push(AuditViolation::new(
                "filter-nondefault-census",
                format!(
                    "{label}: nondefault_count {} vs bitmap popcount {}",
                    self.nondefault_count,
                    self.nondefault.count_ones()
                ),
            ));
        }
        if !level.deep() {
            return;
        }
        let mut sc = RecomputeScratch::default();
        for u in 0..q.num_vertices() {
            for v in 0..self.n as VertexId {
                let uv = u * self.n + v as usize;
                let fresh_exists = self.recompute_into(q, g, u, v, &mut sc);
                if self.exists.get(uv) != fresh_exists {
                    out.push(AuditViolation::new(
                        "filter-existence",
                        format!(
                            "{label}: stored existence {} vs recomputed {fresh_exists} \
                             at (u{u}, v{v})",
                            self.exists.get(uv)
                        ),
                    ));
                }
                let base = self.row(u, v);
                let w = self.width[u] as usize;
                if self.vals[base..base + w] != sc.new_vals[..] {
                    out.push(AuditViolation::new(
                        "filter-value",
                        format!(
                            "{label}: stored row {:?} vs recomputed {:?} at (u{u}, v{v})",
                            &self.vals[base..base + w],
                            &sc.new_vals[..]
                        ),
                    ));
                }
                let is_default = if fresh_exists {
                    self.default_exists.get(uv) && sc.new_vals.iter().all(|&t| t == RAW_INF)
                } else {
                    !self.default_exists.get(uv)
                };
                if self.nondefault.get(uv) == is_default {
                    out.push(AuditViolation::new(
                        "filter-nondefault-bit",
                        format!(
                            "{label}: non-default bit {} vs recomputed default \
                             classification at (u{u}, v{v})",
                            self.nondefault.get(uv)
                        ),
                    ));
                }
            }
        }
    }

    /// Recomputes every entry from scratch and panics on the first
    /// divergence — the historical panicking wrapper over
    /// [`FilterInstance::audit`] at [`AuditLevel::Deep`], kept for tests.
    #[doc(hidden)]
    pub fn check_consistency(&self, q: &QueryGraph, g: &WindowGraph) {
        let mut out = Vec::new();
        self.audit(q, g, AuditLevel::Deep, &format!("{:?}", self.pol), &mut out);
        tcsm_graph::audit::expect_clean("FilterInstance", &out);
    }

    /// Corruption hook for the negative-test corpus: unpins the pad lane
    /// of `(u, v)`'s row, overwriting the construction-time `+∞` sentinel
    /// with `0`. Only the Cheap pad-lane check can see this — no logical
    /// lane, census, or snapshot byte covers the pad.
    #[doc(hidden)]
    pub fn corrupt_pad_lane(&mut self, u: QVertexId, v: VertexId) {
        let w = self.width[u] as usize;
        let base = self.row(u, v);
        self.vals[base + w] = 0;
    }

    /// Logical lane count of the whole table (`Σ_u |TR(u)| · n`) — the
    /// slab minus the per-row pad lanes.
    fn logical_lanes(&self) -> usize {
        self.width.iter().map(|&w| w as usize).sum::<usize>() * self.n
    }

    /// Serializes the dynamic state (value slab, existence and non-default
    /// bitmaps, kernel counters). Everything else — rank tables, defaults,
    /// topo orders, SoA kernel metadata — is a construction-time constant
    /// rebuilt by [`FilterInstance::new`].
    ///
    /// Only the **logical** lanes are written: the pad lanes are pinned to
    /// `+∞` at construction and are not dynamic state, so no byte pattern
    /// in a snapshot can ever unpin one.
    ///
    /// Must only be called at an event boundary (no open update), where the
    /// worklist transients are provably empty.
    pub fn encode_state(&self, enc: &mut Encoder) {
        debug_assert!(self.pending_pos == 0, "snapshot during an open update");
        enc.put_usize(self.logical_lanes());
        for u in 0..self.width.len() {
            let w = self.width[u] as usize;
            for v in 0..self.n {
                let base = self.row(u, v as VertexId);
                for &t in &self.vals[base..base + w] {
                    enc.put_ts(Ts::from_raw(t));
                }
            }
        }
        enc.put_bits(&self.exists);
        enc.put_bits(&self.nondefault);
        enc.put_usize(self.nondefault_count);
        enc.put_u64(self.scratch.kernel_invocations);
        enc.put_u64(self.scratch.kernel_lanes);
        enc.put_u64(self.scratch.kernel_early_exits);
    }

    /// Overlays serialized dynamic state onto a freshly constructed
    /// instance. The logical lane count and bitmap capacities must match
    /// this instance's construction-time shape, and the stored non-default
    /// census must agree with the bitmap — anything else is corruption.
    /// The instance is untouched unless every field decodes.
    pub fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        let nvals = dec.get_count(8)?;
        if nvals != self.logical_lanes() {
            return Err(CodecError::Invalid(format!(
                "filter value slab has {nvals} logical lanes (expected {})",
                self.logical_lanes()
            )));
        }
        let mut lanes = Vec::with_capacity(nvals);
        for _ in 0..nvals {
            lanes.push(dec.get_ts()?.raw());
        }
        let exists = dec.get_bits(self.exists.len())?;
        let nondefault = dec.get_bits(self.nondefault.len())?;
        let nondefault_count = dec.get_usize()?;
        if nondefault_count != nondefault.count_ones() {
            return Err(CodecError::Invalid(format!(
                "non-default census {nondefault_count} disagrees with bitmap ({})",
                nondefault.count_ones()
            )));
        }
        let kernel_invocations = dec.get_u64()?;
        let kernel_lanes = dec.get_u64()?;
        let kernel_early_exits = dec.get_u64()?;
        // Commit: scatter logical lanes into the padded slab (pad lanes
        // keep their construction-time `+∞`).
        let mut it = lanes.into_iter();
        for u in 0..self.width.len() {
            let w = self.width[u] as usize;
            for v in 0..self.n {
                let base = self.row(u, v as VertexId);
                for lane in &mut self.vals[base..base + w] {
                    *lane = it.next().expect("lane count validated above");
                }
            }
        }
        self.exists = exists;
        self.nondefault = nondefault;
        self.nondefault_count = nondefault_count;
        self.scratch.kernel_invocations = kernel_invocations;
        self.scratch.kernel_lanes = kernel_lanes;
        self.scratch.kernel_early_exits = kernel_early_exits;
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use tcsm_dag::build_dag;
    use tcsm_graph::query::paper_running_example;
    use tcsm_graph::{TemporalGraph, TemporalGraphBuilder};

    /// Figure 2a: v1..v7 (0-indexed v0..v6), σ1..σ14 arriving at t = 1..14.
    /// Labels follow the figure's colours: v1~u1, v2~u2, v4~u3, v5~u4,
    /// v7~u5; v3 and v6 carry a label matching nothing in the query.
    pub(crate) fn figure_2a() -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        let labels = [0u32, 1, 5, 2, 3, 5, 4];
        let v: Vec<_> = labels.iter().map(|&l| b.vertex(l)).collect();
        // σi arrives at time i (1-indexed names).
        b.edge(v[0], v[1], 1); // σ1  (v1,v2)
        b.edge(v[3], v[4], 2); // σ2  (v4,v5)
        b.edge(v[3], v[4], 3); // σ3  (v4,v5)
        b.edge(v[0], v[3], 4); // σ4  (v1,v4)
        b.edge(v[3], v[6], 5); // σ5  (v4,v7)
        b.edge(v[0], v[1], 6); // σ6  (v1,v2)
        b.edge(v[3], v[6], 7); // σ7  (v4,v7)
        b.edge(v[0], v[3], 8); // σ8  (v1,v4)
        b.edge(v[4], v[6], 9); // σ9  (v5,v7)
        b.edge(v[4], v[6], 10); // σ10 (v5,v7)
        b.edge(v[1], v[4], 11); // σ11 (v2,v5)
        b.edge(v[0], v[3], 12); // σ12 (v1,v4)
        b.edge(v[3], v[4], 13); // σ13 (v4,v5)
        b.edge(v[3], v[6], 14); // σ14 (v4,v7)
        b.build().unwrap()
    }

    fn instance_after(
        upto: i64,
    ) -> (
        tcsm_graph::QueryGraph,
        TemporalGraph,
        WindowGraph,
        FilterInstance,
    ) {
        let q = paper_running_example();
        let dag = build_dag(&q, 0); // Figure 3a
        let g = figure_2a();
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        let mut inst = FilterInstance::new(dag, Polarity::Later, &q, &w);
        let mut flips = Vec::new();
        for e in g.edges() {
            if e.time.raw() <= upto {
                w.insert(e);
                inst.apply(&q, &w, e, &mut flips);
            }
        }
        (q, g, w, inst)
    }

    #[test]
    fn example_iv3_maxmin_value() {
        // With all 14 edges: T[u3, v4, ε2] = 10 (Example IV.3/IV.4).
        let (_q, _g, _w, inst) = instance_after(14);
        assert_eq!(inst.natural_value(2, 3, 1), Ts::new(10));
        // Before σ14 arrives it is 7 (Example IV.4: "updated from 7 to 10").
        let (_q, _g, _w, inst) = instance_after(13);
        assert_eq!(inst.natural_value(2, 3, 1), Ts::new(7));
    }

    #[test]
    fn example_iv1_tc_matchability() {
        let (q, g, _w, inst) = instance_after(14);
        // ε2 is TC-matchable with σ8 (t=8 < 10) but not σ12 (t=12 ≥ 10).
        let sigma8 = g.edges().iter().find(|e| e.time == Ts::new(8)).unwrap();
        let sigma12 = g.edges().iter().find(|e| e.time == Ts::new(12)).unwrap();
        // ε2=(u1,u3): u1 ↦ v1=0 must be the tail side; σ8=(v0,v3).
        let p8 = CandPair {
            qedge: 1,
            key: sigma8.key,
            a_to_src: true,
        };
        let p12 = CandPair {
            qedge: 1,
            key: sigma12.key,
            a_to_src: true,
        };
        assert!(inst.passes(&q, p8, sigma8));
        assert!(!inst.passes(&q, p12, sigma12));
    }

    #[test]
    fn intro_example_sigma4_filtered() {
        // §I: "we can safely exclude σ4 from the matching candidates of ε2"
        // because no path from σ4 satisfies ε2 ≺ ε4 … wait, the intro uses
        // the constraint ε2 ≺ ε4 via the path ε2 → ε4. At t=4 nothing
        // follows σ4 yet, so ε2 cannot TC-match σ4.
        let (q, g, _w, inst) = instance_after(4);
        let sigma4 = g.edges().iter().find(|e| e.time == Ts::new(4)).unwrap();
        let p = CandPair {
            qedge: 1,
            key: sigma4.key,
            a_to_src: true,
        };
        assert!(!inst.passes(&q, p, sigma4));
    }

    #[test]
    fn flips_report_sigma8_on_sigma14_arrival() {
        // Example IV.4: when σ14 arrives, (ε2, σ8) enters E⁺ but (ε2, σ12)
        // does not.
        let q = paper_running_example();
        let dag = build_dag(&q, 0);
        let g = figure_2a();
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        let mut inst = FilterInstance::new(dag, Polarity::Later, &q, &w);
        let mut flips = Vec::new();
        for e in g.edges() {
            w.insert(e);
            flips.clear();
            inst.apply(&q, &w, e, &mut flips);
            if e.time == Ts::new(14) {
                let sigma8_key = g.edges().iter().find(|x| x.time == Ts::new(8)).unwrap().key;
                let sigma12_key = g
                    .edges()
                    .iter()
                    .find(|x| x.time == Ts::new(12))
                    .unwrap()
                    .key;
                assert!(flips.iter().any(|p| p.qedge == 1 && p.key == sigma8_key));
                assert!(!flips.iter().any(|p| p.qedge == 1 && p.key == sigma12_key));
            }
        }
    }

    #[test]
    fn incremental_equals_scratch_over_stream() {
        // Insert all edges then expire them with δ=6; after every event the
        // table must equal its from-scratch recomputation.
        let q = paper_running_example();
        let g = figure_2a();
        for pol in Polarity::BOTH {
            let dag = build_dag(&q, 0);
            let mut w = WindowGraph::new(g.labels().to_vec(), false);
            let mut inst = FilterInstance::new(dag, pol, &q, &w);
            let mut flips = Vec::new();
            let queue = tcsm_graph::EventQueue::new(&g, 6).unwrap();
            for ev in queue.iter() {
                let edge = *g.edge(ev.edge);
                match ev.kind {
                    tcsm_graph::EventKind::Insert => {
                        w.insert(&edge);
                        inst.apply(&q, &w, &edge, &mut flips);
                    }
                    tcsm_graph::EventKind::Delete => {
                        w.remove(&edge);
                        inst.apply(&q, &w, &edge, &mut flips);
                    }
                }
                inst.check_consistency(&q, &w);
            }
            assert_eq!(
                inst.table_len(),
                0,
                "all entries back to default after drain"
            );
        }
    }

    #[test]
    fn reversed_dag_instance_is_consistent_too() {
        let q = paper_running_example();
        let g = figure_2a();
        let fwd = build_dag(&q, 0);
        let dag = fwd.reversed(&q);
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        let mut inst = FilterInstance::new(dag, Polarity::Earlier, &q, &w);
        let mut flips = Vec::new();
        for e in g.edges() {
            w.insert(e);
            inst.apply(&q, &w, e, &mut flips);
        }
        inst.check_consistency(&q, &w);
    }
}
