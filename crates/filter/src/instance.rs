//! One `(DAG, polarity)` instance of the max-min timestamp machinery.
//!
//! An instance maintains, for its DAG `ˆd` and polarity `p`, the table
//! `T[u, v, e′]` of Definition IV.3 restricted to the temporally relevant
//! ancestor edges `TR(u)` (DESIGN.md §4), plus the weak-embedding existence
//! bit `W[u, v]` which the paper encodes as `T = −∞`.
//!
//! All timestamps live in the *effective* domain: identity for the `Later`
//! polarity, negation for `Earlier`. In that domain both polarities are the
//! same max-min computation, and the TC-match condition (Lemma IV.3) is
//! uniformly `eff(t) < T_eff[head(e), v_head, e]`.
//!
//! Updates follow Algorithm 3 (`TCMInsertion` / `TCMDeletion`): the entries
//! of the endpoints matched by the changed data edge are recomputed first,
//! then changes propagate towards DAG parents through alive data edges.
//! Values are monotone per event (non-decreasing on insert, non-increasing
//! on delete, in the effective domain), so the worklist converges and each
//! candidate pair flips its per-instance status at most once per event.

use crate::pair::{valid_orientations, CandPair};
use tcsm_dag::{Polarity, QueryDag};
use tcsm_graph::{
    EdgeConstraint, FxHashMap, FxHashSet, PairEdges, QEdgeId, QVertexId, QueryGraph,
    TemporalEdge, Ts, VertexId, WindowGraph,
};

/// Stored per `(query vertex, data vertex)` pair.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Entry {
    /// `W[u, v]`: does a weak embedding of `ˆd_u` at `v` exist?
    exists: bool,
    /// Max-min values (effective domain) for each edge of `TR(u)`, in
    /// ascending edge-id order. All `NEG_INF` when `!exists`.
    vals: Box<[Ts]>,
}

impl Entry {
    fn non_existent(len: usize) -> Entry {
        Entry {
            exists: false,
            vals: vec![Ts::NEG_INF; len].into_boxed_slice(),
        }
    }

    /// Value for relevant-edge rank `i`, or the `∞/−∞` defaults.
    #[inline]
    fn value_at(&self, rank: Option<usize>) -> Ts {
        if !self.exists {
            return Ts::NEG_INF;
        }
        match rank {
            Some(i) => self.vals[i],
            None => Ts::INF,
        }
    }
}

/// One `(DAG, polarity)` filter instance.
pub struct FilterInstance {
    pol: Polarity,
    dag: QueryDag,
    /// `TR(u)` per vertex (cached from the DAG).
    tr: Vec<tcsm_graph::Set64>,
    table: FxHashMap<(QVertexId, VertexId), Entry>,
    /// Scratch worklist, kept across events to reuse its allocation.
    queue: Vec<(QVertexId, VertexId)>,
    queued: FxHashSet<(QVertexId, VertexId)>,
}

impl FilterInstance {
    /// Creates an instance for the given DAG orientation and polarity.
    pub fn new(dag: QueryDag, pol: Polarity) -> FilterInstance {
        let tr = (0..dag.num_vertices())
            .map(|u| dag.relevant_ancestors(u, pol))
            .collect();
        FilterInstance {
            pol,
            dag,
            tr,
            table: FxHashMap::default(),
            queue: Vec::new(),
            queued: FxHashSet::default(),
        }
    }

    /// The instance's polarity.
    #[inline]
    pub fn polarity(&self) -> Polarity {
        self.pol
    }

    /// The instance's DAG.
    #[inline]
    pub fn dag(&self) -> &QueryDag {
        &self.dag
    }

    /// Number of materialized (non-default) table entries.
    #[inline]
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    #[inline]
    fn eff(&self, t: Ts) -> Ts {
        match self.pol {
            Polarity::Later => t,
            Polarity::Earlier => t.neg(),
        }
    }

    /// Max over alive parallel edges of `eff(t)`, under a constraint.
    #[inline]
    fn eff_max(&self, pair: &PairEdges, c: EdgeConstraint) -> Option<Ts> {
        match self.pol {
            Polarity::Later => pair.max_time(c),
            Polarity::Earlier => pair.min_time(c).map(Ts::neg),
        }
    }

    /// Rank of `e` within `TR(u)` (its index in the `vals` array).
    #[inline]
    fn rank(&self, u: QVertexId, e: QEdgeId) -> Option<usize> {
        let tr = self.tr[u];
        if tr.contains(e) {
            let below = tr.bits() & ((1u64 << e) - 1);
            Some(below.count_ones() as usize)
        } else {
            None
        }
    }

    /// Default (never-touched) entry for `(u, v)`: with no alive edges the
    /// weak embedding exists iff `u` is a leaf and labels agree.
    fn default_entry(&self, q: &QueryGraph, g: &WindowGraph, u: QVertexId, v: VertexId) -> Entry {
        let len = self.tr[u].len();
        if self.dag.children(u).is_empty() && q.label(u) == g.label(v) {
            Entry {
                exists: true,
                vals: vec![Ts::INF; len].into_boxed_slice(),
            }
        } else {
            Entry::non_existent(len)
        }
    }

    /// `T_eff[u, v, e]` with all defaults applied (allocation-free: absent
    /// entries are leaves-with-∞ or non-existent).
    fn value(&self, q: &QueryGraph, g: &WindowGraph, u: QVertexId, v: VertexId, e: QEdgeId) -> Ts {
        match self.table.get(&(u, v)) {
            Some(en) => en.value_at(self.rank(u, e)),
            None => {
                if self.dag.children(u).is_empty() && q.label(u) == g.label(v) {
                    Ts::INF
                } else {
                    Ts::NEG_INF
                }
            }
        }
    }

    /// `T(ˆd)[u, v, e]` in the *natural* time domain (paper's orientation of
    /// the value). Used by tests against the worked examples.
    pub fn natural_value(
        &self,
        q: &QueryGraph,
        g: &WindowGraph,
        u: QVertexId,
        v: VertexId,
        e: QEdgeId,
    ) -> Ts {
        let v = self.value(q, g, u, v, e);
        match self.pol {
            Polarity::Later => v,
            Polarity::Earlier => v.neg(),
        }
    }

    /// Lemma IV.3 check: does this instance accept the oriented pair?
    pub fn passes(
        &self,
        q: &QueryGraph,
        g: &WindowGraph,
        pair: CandPair,
        sigma: &TemporalEdge,
    ) -> bool {
        let head = self.dag.head(pair.qedge);
        let v_head = pair.image_of(q, sigma, head);
        self.eff(sigma.time) < self.value(q, g, head, v_head, pair.qedge)
    }

    /// The [`EdgeConstraint`] for matching query edge `e` with data images
    /// `v_tail ↦ tail(e)`, `v_head ↦ head(e)`.
    fn constraint(
        &self,
        q: &QueryGraph,
        g: &WindowGraph,
        e: QEdgeId,
        v_tail: VertexId,
        v_head: VertexId,
    ) -> EdgeConstraint {
        let qe = q.edge(e);
        let (img_a, img_b) = if qe.a == self.dag.tail(e) {
            (v_tail, v_head)
        } else {
            (v_head, v_tail)
        };
        g.constraint_for(img_a, img_b, qe.direction, qe.label)
    }

    /// Full Eq. (1) evaluation of the entry at `(u, v)` from current child
    /// entries and the alive adjacency of `v`.
    fn recompute(&self, q: &QueryGraph, g: &WindowGraph, u: QVertexId, v: VertexId) -> Entry {
        let tr = self.tr[u];
        let len = tr.len();
        if q.label(u) != g.label(v) {
            return Entry::non_existent(len);
        }
        let order = q.order();
        let mut exists = true;
        let mut vals = vec![Ts::INF; len];
        let mut best = vec![Ts::NEG_INF; len];
        for &(echild, uc) in self.dag.children(u) {
            best.iter_mut().for_each(|b| *b = Ts::NEG_INF);
            let mut any = false;
            // Absent child entries are defaults: leaves exist with all-∞
            // values, internal vertices don't exist.
            let child_default_exists = self.dag.children(uc).is_empty();
            for (vc, pe) in g.neighbors(v) {
                if g.label(vc) != q.label(uc) {
                    continue;
                }
                let c = self.constraint(q, g, echild, v, vc);
                let Some(tmax) = self.eff_max(pe, c) else {
                    continue;
                };
                let child = self.table.get(&(uc, vc));
                match child {
                    Some(en) if !en.exists => continue,
                    None if !child_default_exists => continue,
                    _ => {}
                }
                any = true;
                for (i, ep) in tr.iter().enumerate() {
                    let tstar = match child {
                        Some(en) => en.value_at(self.rank(uc, ep)),
                        None => Ts::INF,
                    };
                    let f = if self.pol.relates(order, ep, echild) {
                        tstar.min(tmax)
                    } else {
                        tstar
                    };
                    if f > best[i] {
                        best[i] = f;
                    }
                }
            }
            if !any {
                exists = false;
                break;
            }
            for i in 0..len {
                if best[i] < vals[i] {
                    vals[i] = best[i];
                }
            }
        }
        if !exists {
            Entry::non_existent(len)
        } else {
            Entry {
                exists: true,
                vals: vals.into_boxed_slice(),
            }
        }
    }

    fn enqueue(&mut self, u: QVertexId, v: VertexId) {
        if self.queued.insert((u, v)) {
            self.queue.push((u, v));
        }
    }

    /// Algorithm 3 (`TCMInsertion`) / its deletion twin (`TCMDeletion`).
    ///
    /// `g` must already reflect the event (edge inserted / removed). Returns
    /// every oriented pair of an *alive* data edge whose per-instance pass
    /// status flipped during the update. Pairs of `sigma` itself are *not*
    /// reported — the bank evaluates those directly.
    pub fn apply(
        &mut self,
        q: &QueryGraph,
        g: &WindowGraph,
        sigma: &TemporalEdge,
        flips: &mut Vec<CandPair>,
    ) {
        debug_assert!(self.queue.is_empty());
        // Phase (i): seed the entries whose child-term gained or lost a
        // parallel edge — the tail image of every orientation σ can take.
        let mut seeds: Vec<(QVertexId, VertexId)> = Vec::new();
        for e in 0..q.num_edges() {
            for o in valid_orientations(q, g, e, sigma) {
                let pair = CandPair {
                    qedge: e,
                    key: sigma.key,
                    a_to_src: o,
                };
                let tail = self.dag.tail(e);
                seeds.push((tail, pair.image_of(q, sigma, tail)));
            }
        }
        for (u, v) in seeds {
            self.enqueue(u, v);
        }
        // Phase (ii): propagate to parents while entries keep changing.
        let mut to_enqueue: Vec<(QVertexId, VertexId)> = Vec::new();
        while let Some((u, v)) = self.queue.pop() {
            self.queued.remove(&(u, v));
            let old = match self.table.get(&(u, v)) {
                Some(en) => en.clone(),
                None => self.default_entry(q, g, u, v),
            };
            let new = self.recompute(q, g, u, v);
            if new == old {
                continue;
            }
            if new == self.default_entry(q, g, u, v) {
                self.table.remove(&(u, v));
            } else {
                self.table.insert((u, v), new.clone());
            }
            to_enqueue.clear();
            for &(eparent, up) in self.dag.parents(u) {
                let old_val = old.value_at(self.rank(u, eparent));
                let new_val = new.value_at(self.rank(u, eparent));
                let report = old_val != new_val;
                for (vp, pe) in g.neighbors(v) {
                    if g.label(vp) != q.label(up) {
                        continue;
                    }
                    let c = self.constraint(q, g, eparent, vp, v);
                    let mut matched = false;
                    for rec in pe.iter_matching(c) {
                        matched = true;
                        if report {
                            let teff = self.eff(rec.time);
                            if (teff < old_val) != (teff < new_val) && rec.key != sigma.key {
                                // Orientation: which endpoint of the stored
                                // record is the image of the query edge's a?
                                let qe = q.edge(eparent);
                                let img_a = if qe.a == up { vp } else { v };
                                let src = if rec.src_is_a { pe.a } else { pe.b };
                                flips.push(CandPair {
                                    qedge: eparent,
                                    key: rec.key,
                                    a_to_src: img_a == src,
                                });
                            }
                        }
                    }
                    if matched {
                        to_enqueue.push((up, vp));
                    }
                }
            }
            let pending = std::mem::take(&mut to_enqueue);
            for (up, vp) in &pending {
                self.enqueue(*up, *vp);
            }
            to_enqueue = pending;
        }
    }

    /// Recomputes every reachable entry from scratch and asserts the table
    /// matches — the incremental-maintenance invariant, used by tests.
    #[doc(hidden)]
    pub fn check_consistency(&self, q: &QueryGraph, g: &WindowGraph) {
        // Every stored entry must equal its recomputation, and no stored
        // entry may equal the default (those must be removed).
        for (&(u, v), en) in &self.table {
            let fresh = self.recompute(q, g, u, v);
            assert_eq!(
                en, &fresh,
                "stale entry at (u{u}, v{v}) pol={:?}",
                self.pol
            );
            assert_ne!(
                en,
                &self.default_entry(q, g, u, v),
                "default entry not pruned at (u{u}, v{v})"
            );
        }
        // Every label-compatible (u, v) pair with alive adjacency must be
        // consistent with its recomputation (absent ⇒ default).
        for u in 0..q.num_vertices() {
            for v in 0..g.num_vertices() as VertexId {
                if self.table.contains_key(&(u, v)) {
                    continue;
                }
                let fresh = self.recompute(q, g, u, v);
                assert_eq!(
                    fresh,
                    self.default_entry(q, g, u, v),
                    "missing entry at (u{u}, v{v}) pol={:?}",
                    self.pol
                );
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use tcsm_dag::build_dag;
    use tcsm_graph::query::paper_running_example;
    use tcsm_graph::{TemporalGraph, TemporalGraphBuilder};

    /// Figure 2a: v1..v7 (0-indexed v0..v6), σ1..σ14 arriving at t = 1..14.
    /// Labels follow the figure's colours: v1~u1, v2~u2, v4~u3, v5~u4,
    /// v7~u5; v3 and v6 carry a label matching nothing in the query.
    pub(crate) fn figure_2a() -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        let labels = [0u32, 1, 5, 2, 3, 5, 4];
        let v: Vec<_> = labels.iter().map(|&l| b.vertex(l)).collect();
        // σi arrives at time i (1-indexed names).
        b.edge(v[0], v[1], 1); // σ1  (v1,v2)
        b.edge(v[3], v[4], 2); // σ2  (v4,v5)
        b.edge(v[3], v[4], 3); // σ3  (v4,v5)
        b.edge(v[0], v[3], 4); // σ4  (v1,v4)
        b.edge(v[3], v[6], 5); // σ5  (v4,v7)
        b.edge(v[0], v[1], 6); // σ6  (v1,v2)
        b.edge(v[3], v[6], 7); // σ7  (v4,v7)
        b.edge(v[0], v[3], 8); // σ8  (v1,v4)
        b.edge(v[4], v[6], 9); // σ9  (v5,v7)
        b.edge(v[4], v[6], 10); // σ10 (v5,v7)
        b.edge(v[1], v[4], 11); // σ11 (v2,v5)
        b.edge(v[0], v[3], 12); // σ12 (v1,v4)
        b.edge(v[3], v[4], 13); // σ13 (v4,v5)
        b.edge(v[3], v[6], 14); // σ14 (v4,v7)
        b.build().unwrap()
    }

    fn window_with(g: &TemporalGraph, upto: i64) -> WindowGraph {
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        for e in g.edges() {
            if e.time.raw() <= upto {
                w.insert(e);
            }
        }
        w
    }

    fn instance_after(upto: i64) -> (tcsm_graph::QueryGraph, TemporalGraph, WindowGraph, FilterInstance) {
        let q = paper_running_example();
        let dag = build_dag(&q, 0); // Figure 3a
        let g = figure_2a();
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        let mut inst = FilterInstance::new(dag, Polarity::Later);
        let mut flips = Vec::new();
        for e in g.edges() {
            if e.time.raw() <= upto {
                w.insert(e);
                inst.apply(&q, &w, e, &mut flips);
            }
        }
        (q, g, w, inst)
    }

    #[test]
    fn example_iv3_maxmin_value() {
        // With all 14 edges: T[u3, v4, ε2] = 10 (Example IV.3/IV.4).
        let (q, _g, w, inst) = instance_after(14);
        assert_eq!(inst.natural_value(&q, &w, 2, 3, 1), Ts::new(10));
        // Before σ14 arrives it is 7 (Example IV.4: "updated from 7 to 10").
        let (q, _g, w, inst) = instance_after(13);
        assert_eq!(inst.natural_value(&q, &w, 2, 3, 1), Ts::new(7));
    }

    #[test]
    fn example_iv1_tc_matchability() {
        let (q, g, w, inst) = instance_after(14);
        // ε2 is TC-matchable with σ8 (t=8 < 10) but not σ12 (t=12 ≥ 10).
        let sigma8 = g.edges().iter().find(|e| e.time == Ts::new(8)).unwrap();
        let sigma12 = g.edges().iter().find(|e| e.time == Ts::new(12)).unwrap();
        // ε2=(u1,u3): u1 ↦ v1=0 must be the tail side; σ8=(v0,v3).
        let p8 = CandPair {
            qedge: 1,
            key: sigma8.key,
            a_to_src: true,
        };
        let p12 = CandPair {
            qedge: 1,
            key: sigma12.key,
            a_to_src: true,
        };
        assert!(inst.passes(&q, &w, p8, sigma8));
        assert!(!inst.passes(&q, &w, p12, sigma12));
    }

    #[test]
    fn intro_example_sigma4_filtered() {
        // §I: "we can safely exclude σ4 from the matching candidates of ε2"
        // because no path from σ4 satisfies ε2 ≺ ε4 … wait, the intro uses
        // the constraint ε2 ≺ ε4 via the path ε2 → ε4. At t=4 nothing
        // follows σ4 yet, so ε2 cannot TC-match σ4.
        let (q, g, w, inst) = instance_after(4);
        let sigma4 = g.edges().iter().find(|e| e.time == Ts::new(4)).unwrap();
        let p = CandPair {
            qedge: 1,
            key: sigma4.key,
            a_to_src: true,
        };
        assert!(!inst.passes(&q, &w, p, sigma4));
    }

    #[test]
    fn flips_report_sigma8_on_sigma14_arrival() {
        // Example IV.4: when σ14 arrives, (ε2, σ8) enters E⁺ but (ε2, σ12)
        // does not.
        let q = paper_running_example();
        let dag = build_dag(&q, 0);
        let g = figure_2a();
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        let mut inst = FilterInstance::new(dag, Polarity::Later);
        let mut flips = Vec::new();
        for e in g.edges() {
            w.insert(e);
            flips.clear();
            inst.apply(&q, &w, e, &mut flips);
            if e.time == Ts::new(14) {
                let sigma8_key = g
                    .edges()
                    .iter()
                    .find(|x| x.time == Ts::new(8))
                    .unwrap()
                    .key;
                let sigma12_key = g
                    .edges()
                    .iter()
                    .find(|x| x.time == Ts::new(12))
                    .unwrap()
                    .key;
                assert!(flips
                    .iter()
                    .any(|p| p.qedge == 1 && p.key == sigma8_key));
                assert!(!flips
                    .iter()
                    .any(|p| p.qedge == 1 && p.key == sigma12_key));
            }
        }
    }

    #[test]
    fn incremental_equals_scratch_over_stream() {
        // Insert all edges then expire them with δ=6; after every event the
        // table must equal its from-scratch recomputation.
        let q = paper_running_example();
        let g = figure_2a();
        for pol in Polarity::BOTH {
            let dag = build_dag(&q, 0);
            let mut w = WindowGraph::new(g.labels().to_vec(), false);
            let mut inst = FilterInstance::new(dag, pol);
            let mut flips = Vec::new();
            let queue = tcsm_graph::EventQueue::new(&g, 6).unwrap();
            for ev in queue.iter() {
                let edge = *g.edge(ev.edge);
                match ev.kind {
                    tcsm_graph::EventKind::Insert => {
                        w.insert(&edge);
                        inst.apply(&q, &w, &edge, &mut flips);
                    }
                    tcsm_graph::EventKind::Delete => {
                        w.remove(&edge);
                        inst.apply(&q, &w, &edge, &mut flips);
                    }
                }
                inst.check_consistency(&q, &w);
            }
            assert_eq!(inst.table_len(), 0, "all entries pruned after drain");
        }
    }

    #[test]
    fn reversed_dag_instance_is_consistent_too() {
        let q = paper_running_example();
        let g = figure_2a();
        let fwd = build_dag(&q, 0);
        let dag = fwd.reversed(&q);
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        let mut inst = FilterInstance::new(dag, Polarity::Earlier);
        let mut flips = Vec::new();
        for e in g.edges() {
            w.insert(e);
            inst.apply(&q, &w, e, &mut flips);
        }
        inst.check_consistency(&q, &w);
    }
}
