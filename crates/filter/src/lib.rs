//! # tcsm-filter
//!
//! The *time-constrained matchable edge* filter of the paper (§IV).
//!
//! For a query DAG `ˆq`, a query edge `e` is a **TC-matchable edge** of a
//! data edge `e` when a TC-weak embedding of `ˆq_e` at `e` exists
//! (Definition IV.1); by Lemma IV.1 any `(e, e)` pair failing this test can
//! never appear in a time-constrained embedding and is filtered. The test
//! reduces (Lemma IV.3) to one comparison against the **max-min timestamp**
//! `T(ˆq)[u, v, e]` (Definition IV.3), maintained incrementally by the
//! Eq. (1) recurrence via `TCMInsertion`/`TCMDeletion` (Algorithm 3).
//!
//! [`instance::FilterInstance`] implements one `(DAG, polarity)` instance of
//! that machinery; [`bank::FilterBank`] runs the four instances
//! (`ˆq`/`ˆq⁻¹` × later/earlier, DESIGN.md §4) and turns their per-instance
//! pass-flips into DCS insertion/deletion deltas (`E⁺_DCS` / `E⁻_DCS` of
//! Algorithm 1). [`oracle`] recomputes max-min timestamps from the
//! definition (path-tree weak embeddings) for tests.
//!
//! # Memory model
//!
//! The max-min tables are dense flat slabs of shape `O(Σ_u |TR(u)|·|V(g)|)`
//! with parallel existence/default bitmaps, allocated once at construction
//! with all default rows materialized; the bank's pair-membership set is a
//! flat bitmap indexed by data-edge key. Per-event maintenance is
//! allocation-free and hash-free: worklist dedup uses a generation-stamped
//! `u32` per `(u, v)` cell (cleared in O(1) by bumping the generation), the
//! worklist itself drains in reverse-topological order so each entry
//! recomputes at most once per event, and recompute scratch buffers are
//! owned by the instance and reused.
//!
//! ## SoA kernel layout
//!
//! The slab stores **raw `i64`** lanes in the effective time domain (`Ts`
//! ordering equals raw ordering), and every `(u, v)` row carries one
//! trailing pad lane pinned to `+∞` (stride `|TR(u)| + 1`). Alongside it,
//! construction lays out structure-of-arrays metadata per `(u, child
//! slot)`: a rank row mapping each `TR(u)` lane to its index in the child's
//! padded row (edges outside `TR(u_c)` point at the pad lane — no sentinel
//! branch), a `-1`/`0` relation mask row feeding a branch-free `tmax`
//! select, and the hoisted child-edge constants (label, resolved direction,
//! tail orientation). The Eq. (1) inner loop is thereby a flat max-min
//! merge over contiguous lanes, dispatched through [`kernel`] — a branchy
//! scalar reference or the default fixed-width chunked form, selected by
//! `TCSM_KERNEL` (`scalar` | `chunked`). Integer min/max is exact, so both
//! kernels produce bit-identical tables; the differential suites pin this.
//!
//! # Batched updates
//!
//! A same-timestamp delta batch (all arrivals, or all expirations — see
//! `tcsm_graph::stream`) moves every table value in one direction, so the
//! whole batch is applied with a *single* worklist drain per instance:
//! every batch edge seeds the worklist, then propagation runs once, and
//! each `(u, v)` entry recomputes at most once per **batch** instead of
//! once per edge. [`bank::FilterBank::on_insert_batch`] /
//! [`bank::FilterBank::on_delete_batch`] wrap this and emit the combined
//! DCS delta; [`pair::DirectPairs`] tells the instances which pairs the
//! bank evaluates directly (and must therefore not be flip-reported).
//!
//! # Parallel instance updates
//!
//! The four instances are mutually independent: each owns its table and
//! reads only the immutable query/window. With an [`exec::Exec`] installed
//! ([`bank::FilterBank::set_exec`]) every event/batch update fans the four
//! `apply_seeded`/`apply_batch` calls out through it, each instance writing
//! pass-flips into its own shard; the bank merges the shards **in instance
//! order**, so the emitted DCS delta sequence is byte-identical to the
//! serial one no matter how the executor schedules the jobs.

pub mod bank;
pub mod exec;
pub mod instance;
pub mod kernel;
pub mod oracle;
pub mod pair;

pub use bank::{DcsDelta, FilterBank, FilterMode};
pub use exec::{Exec, SerialExec};
pub use instance::FilterInstance;
pub use kernel::KernelKind;
pub use pair::{CandPair, DirectPairs};
