//! Property laws of the substrate types: strict-partial-order closure,
//! timestamp algebra, window/stream invariants.

use proptest::prelude::*;
use tcsm_graph::*;

proptest! {
    #[test]
    fn order_closure_is_transitive_and_irreflexive(
        pairs in prop::collection::vec((0usize..10, 0usize..10), 0..24)
    ) {
        // Orient every pair low ≺ high so acyclicity is guaranteed.
        let pairs: Vec<(usize, usize)> = pairs
            .into_iter()
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| (a.min(b), a.max(b)))
            .collect();
        let o = TemporalOrder::new(10, &pairs).expect("acyclic by construction");
        for a in 0..10 {
            prop_assert!(!o.precedes(a, a));
            for b in 0..10 {
                for c in 0..10 {
                    if o.precedes(a, b) && o.precedes(b, c) {
                        prop_assert!(o.precedes(a, c), "{a}≺{b}≺{c} not closed");
                    }
                }
                // Asymmetry.
                prop_assert!(!(o.precedes(a, b) && o.precedes(b, a)));
                // related is symmetric.
                prop_assert_eq!(o.related(a, b), o.related(b, a));
            }
        }
        // density consistent with num_pairs.
        let total = 45.0;
        prop_assert!((o.density() - o.num_pairs() as f64 / total).abs() < 1e-12);
    }

    #[test]
    fn ts_algebra(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let (x, y) = (Ts::new(a), Ts::new(b));
        prop_assert_eq!(x.neg().neg(), x);
        prop_assert_eq!(x < y, y.neg() < x.neg());
        prop_assert_eq!(x.max(y).neg(), x.neg().min(y.neg()));
        prop_assert!(Ts::NEG_INF < x && x < Ts::INF);
    }

    #[test]
    fn window_insert_remove_is_lifo_free(
        times in prop::collection::vec(1i64..30, 1..14),
        delta in 2i64..12,
    ) {
        // One pair, many parallel edges: window contents after the stream
        // prefix must equal the brute-force alive set.
        let mut b = TemporalGraphBuilder::new();
        let v = b.vertices(2, 0);
        for &t in &times {
            b.edge(v, v + 1, t);
        }
        let g = b.build().unwrap();
        let queue = EventQueue::new(&g, delta).unwrap();
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        for (i, ev) in queue.iter().enumerate() {
            let edge = *g.edge(ev.edge);
            match ev.kind {
                EventKind::Insert => w.insert(&edge),
                EventKind::Delete => w.remove(&edge),
            }
            // Brute force: edges whose [t, t+delta) covers the current
            // instant, given processed prefix.
            let alive_bf = g
                .edges()
                .iter()
                .filter(|e| {
                    let arrived = queue
                        .events()
                        .iter()
                        .take(i + 1)
                        .any(|x| x.kind == EventKind::Insert && x.edge == e.key);
                    let expired = queue
                        .events()
                        .iter()
                        .take(i + 1)
                        .any(|x| x.kind == EventKind::Delete && x.edge == e.key);
                    arrived && !expired
                })
                .count();
            prop_assert_eq!(w.num_alive_edges(), alive_bf);
            if alive_bf > 0 {
                let p = w.pair(v, v + 1).unwrap();
                prop_assert_eq!(p.len(), alive_bf);
                // Chronological within the bucket.
                let ts: Vec<Ts> = p.iter().map(|r| r.time).collect();
                prop_assert!(ts.windows(2).all(|x| x[0] <= x[1]));
                prop_assert_eq!(w.buckets().count(), 1);
            } else {
                prop_assert!(w.pair(v, v + 1).is_none());
                prop_assert_eq!(w.buckets().count(), 0);
            }
        }
    }

    #[test]
    fn io_roundtrip_random_graphs(
        n in 2usize..6,
        edges in prop::collection::vec((0u32..6, 0u32..6, 1i64..40, 0u32..3), 0..12),
    ) {
        let mut b = TemporalGraphBuilder::new();
        for i in 0..n {
            b.vertex(i as u32 % 3);
        }
        for (a, c, t, l) in edges {
            let a = a % n as u32;
            let c = c % n as u32;
            if a != c {
                b.edge_full(a, c, t, l);
            }
        }
        let g = b.build().unwrap();
        let g2 = io::parse_temporal_graph(&io::write_temporal_graph(&g)).unwrap();
        prop_assert_eq!(g.num_edges(), g2.num_edges());
        prop_assert_eq!(g.labels(), g2.labels());
        for (e1, e2) in g.edges().iter().zip(g2.edges()) {
            prop_assert_eq!(e1.time, e2.time);
            prop_assert_eq!(e1.label, e2.label);
            prop_assert_eq!((e1.src, e1.dst), (e2.src, e2.dst));
        }
    }
}
