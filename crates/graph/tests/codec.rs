//! Codec round-trip laws on random windows, plus a table-driven
//! corrupt-frame corpus.
//!
//! The round-trip property is stronger than content equality: a restored
//! window must **re-encode to the same bytes**, which pins the full
//! internal state (bucket slab order, free/dying lists, adjacency layout)
//! that downstream pair-indexed slabs depend on. The corpus pins that
//! every corruption — random flips, truncations, and semantically forged
//! payloads with *valid checksums* — surfaces as a typed [`CodecError`],
//! never a panic or a silently wrong window.

use proptest::prelude::*;
use tcsm_graph::codec::{encode_frame, fnv1a, open_frame, FORMAT_VERSION, MAGIC};
use tcsm_graph::{CodecError, Encoder, TemporalGraph, TemporalGraphBuilder, WindowGraph};

const KIND: u8 = 7; // arbitrary frame kind for this suite

/// A random temporal graph plus how many of its oldest edges to expire —
/// windows mid-stream, post-expiry-sweep, and empty all fall out of the
/// `(n, edges, expired)` space. Expiry must drain each bucket oldest-first
/// (the window's contract), which a time-ordered prefix sweep satisfies.
fn arb_window_state() -> impl Strategy<Value = (TemporalGraph, usize, bool)> {
    (
        1usize..8,
        prop::collection::vec((0u32..8, 0u32..8, -3i64..20), 0..24),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(|(n, raw_edges, expiry_seed, directed)| {
            let mut gb = TemporalGraphBuilder::new();
            for i in 0..n {
                gb.vertex((i % 3) as u32);
            }
            let mut kept = 0usize;
            for &(a, b, t) in &raw_edges {
                let (a, b) = (a as usize % n, b as usize % n);
                if a != b {
                    gb.edge(a as u32, b as u32, t);
                    kept += 1;
                }
            }
            let g = gb.build().expect("valid random graph");
            let expired = if kept == 0 {
                0
            } else {
                expiry_seed as usize % (kept + 1)
            };
            (g, expired, directed)
        })
}

fn build_window(g: &TemporalGraph, expired: usize, directed: bool) -> WindowGraph {
    let mut w = WindowGraph::new(g.labels().to_vec(), directed);
    for e in g.edges() {
        w.insert(e);
    }
    for e in &g.edges()[..expired] {
        w.remove(e);
    }
    w
}

fn encode_window(w: &WindowGraph) -> Vec<u8> {
    encode_frame(KIND, |e| w.encode(e))
}

proptest! {
    /// encode → restore → re-encode is the identity on bytes, for windows
    /// in any reachable state (growing, post-sweep, empty).
    #[test]
    fn window_round_trip_is_byte_identity((g, expired, directed) in arb_window_state()) {
        let w = build_window(&g, expired, directed);
        let bytes = encode_window(&w);
        let mut restored = WindowGraph::new(g.labels().to_vec(), directed);
        let mut dec = open_frame(&bytes, KIND).expect("self-encoded frame opens");
        restored.restore(&mut dec).expect("self-encoded state restores");
        dec.finish().expect("no trailing payload");
        prop_assert_eq!(encode_window(&restored), bytes);
        prop_assert_eq!(restored.num_alive_edges(), w.num_alive_edges());
    }

    /// Any single-byte flip anywhere in a frame is detected — restore
    /// returns a typed error (almost always `Checksum`), never panics,
    /// never yields a window that re-encodes differently from a clean one.
    #[test]
    fn window_any_byte_flip_is_detected(
        (g, expired, directed) in arb_window_state(),
        at in any::<u64>(),
        mask in 1u8..=255,
    ) {
        let w = build_window(&g, expired, directed);
        let mut bytes = encode_window(&w);
        let at = (at % bytes.len() as u64) as usize;
        bytes[at] ^= mask;
        let mut restored = WindowGraph::new(g.labels().to_vec(), directed);
        let outcome = open_frame(&bytes, KIND).and_then(|mut dec| {
            restored.restore(&mut dec)?;
            dec.finish()
        });
        prop_assert!(outcome.is_err(), "flip at {} went undetected", at);
    }

    /// Every prefix truncation is detected.
    #[test]
    fn window_any_truncation_is_detected(
        (g, expired, directed) in arb_window_state(),
        keep in any::<u64>(),
    ) {
        let w = build_window(&g, expired, directed);
        let bytes = encode_window(&w);
        let keep = (keep % bytes.len() as u64) as usize; // strictly shorter
        let mut restored = WindowGraph::new(g.labels().to_vec(), directed);
        let outcome = open_frame(&bytes[..keep], KIND).and_then(|mut dec| {
            restored.restore(&mut dec)?;
            dec.finish()
        });
        prop_assert!(outcome.is_err(), "truncation to {} went undetected", keep);
    }
}

// ---- table-driven corrupt corpus ---------------------------------------

/// Builds a frame whose payload is written by `f`, with a **valid**
/// checksum — these corruptions model an attacker (or bug) that rewrites
/// the file wholesale, so only semantic validation can catch them.
fn forged_frame(f: impl FnOnce(&mut Encoder)) -> Vec<u8> {
    encode_frame(KIND, f)
}

/// Corrupts a well-formed frame's raw bytes and recomputes the trailing
/// checksum so the tamper survives the integrity check.
fn reforge(mut bytes: Vec<u8>, patch: impl FnOnce(&mut [u8])) -> Vec<u8> {
    let body_end = bytes.len() - 8;
    patch(&mut bytes[..body_end]);
    let sum = fnv1a(&bytes[..body_end]);
    bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
    bytes
}

#[test]
fn corrupt_corpus_header_and_integrity() {
    let mut gb = TemporalGraphBuilder::new();
    gb.vertices(2, 0);
    gb.edge(0, 1, 1);
    let g = gb.build().unwrap();
    let w = build_window(&g, 0, false);
    let good = encode_window(&w);

    // (name, corrupted bytes, matcher)
    type Case<'a> = (&'a str, Vec<u8>, fn(&CodecError) -> bool);
    let cases: Vec<Case> = vec![
        ("empty file", Vec::new(), |e| {
            matches!(e, CodecError::Truncated { .. })
        }),
        ("header only", good[..9].to_vec(), |e| {
            matches!(e, CodecError::Truncated { .. })
        }),
        (
            "bad magic",
            {
                let mut b = good.clone();
                b[..4].copy_from_slice(b"NOPE");
                b
            },
            |e| matches!(e, CodecError::BadMagic(m) if m == b"NOPE"),
        ),
        (
            "future version",
            reforge(good.clone(), |b| {
                b[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes())
            }),
            |e| matches!(e, CodecError::UnsupportedVersion(v) if *v == FORMAT_VERSION + 1),
        ),
        (
            "wrong frame kind",
            reforge(good.clone(), |b| b[8] = KIND + 1),
            |e| {
                matches!(e, CodecError::BadKind { expected, found }
                    if *expected == KIND && *found == KIND + 1)
            },
        ),
        (
            "flipped payload byte",
            {
                let mut b = good.clone();
                let mid = b.len() / 2;
                b[mid] ^= 0x01;
                b
            },
            |e| matches!(e, CodecError::Checksum { .. }),
        ),
        (
            "flipped checksum byte",
            {
                let mut b = good.clone();
                let last = b.len() - 1;
                b[last] ^= 0x80;
                b
            },
            |e| matches!(e, CodecError::Checksum { .. }),
        ),
    ];
    for (name, bytes, matcher) in cases {
        match open_frame(&bytes, KIND) {
            Ok(_) => panic!("{name}: frame opened"),
            Err(e) => assert!(matcher(&e), "{name}: unexpected error {e}"),
        }
    }
    // Sanity: the clean frame still opens.
    assert_eq!(good[..4], MAGIC);
    open_frame(&good, KIND).unwrap();
}

#[test]
fn corrupt_corpus_forged_semantic_lies() {
    // A 2-vertex restore target; each forged payload carries a *valid*
    // checksum, so only the window's structural validation stands between
    // the lie and a corrupted in-memory state.
    let labels = vec![0u32, 0u32];
    let empty = |e: &mut Encoder| {
        e.put_bool(false); // directed
        e.put_usize(2); // vertices
        e.put_usize(0); // alive edges
        e.put_usize(0); // buckets
        e.put_usize(0); // free
        e.put_usize(0); // dying
        e.put_usize(0); // adj row 0
        e.put_usize(0); // adj row 1
    };
    let cases: Vec<(&str, Vec<u8>)> = vec![
        (
            "direction mode lie",
            forged_frame(|e| {
                e.put_bool(true);
                e.put_usize(2);
            }),
        ),
        (
            "vertex count lie",
            forged_frame(|e| {
                e.put_bool(false);
                e.put_usize(64);
            }),
        ),
        (
            "alive-edge census lie",
            forged_frame(|e| {
                e.put_bool(false);
                e.put_usize(2);
                e.put_usize(9); // claims 9 alive edges
                e.put_usize(0); // ...but zero buckets
                e.put_usize(0);
                e.put_usize(0);
                e.put_usize(0);
                e.put_usize(0);
            }),
        ),
        (
            "bucket endpoint out of range",
            forged_frame(|e| {
                e.put_bool(false);
                e.put_usize(2);
                e.put_usize(0);
                e.put_usize(1);
                e.put_u32(0);
                e.put_u32(7); // vertex 7 of 2
            }),
        ),
        (
            "bucket edges out of arrival order",
            forged_frame(|e| {
                e.put_bool(false);
                e.put_usize(2);
                e.put_usize(2);
                e.put_usize(1);
                e.put_u32(0);
                e.put_u32(1);
                e.put_usize(2);
                e.put_u32(0);
                e.put_ts(tcsm_graph::Ts::new(5));
                e.put_u32(0);
                e.put_bool(true);
                e.put_u32(1);
                e.put_ts(tcsm_graph::Ts::new(3)); // earlier than its predecessor
                e.put_u32(0);
                e.put_bool(true);
            }),
        ),
        (
            "free id out of range",
            forged_frame(|e| {
                e.put_bool(false);
                e.put_usize(2);
                e.put_usize(0);
                e.put_usize(0); // no buckets
                e.put_usize(1); // ...yet one free id
                e.put_u32(3);
            }),
        ),
        (
            "preposterous bucket count",
            forged_frame(|e| {
                e.put_bool(false);
                e.put_usize(2);
                e.put_usize(0);
                e.put_usize(u64::MAX as usize); // would pre-allocate the moon
            }),
        ),
        ("adjacency entries for no buckets", {
            // Well-formed empty window, then reforge one adjacency row
            // length from 0 to 1 with a fresh checksum: the trailing-bytes
            // / truncation accounting must object.
            let clean = forged_frame(empty);
            reforge(clean, |b| {
                let last8 = b.len() - 8;
                b[last8..].copy_from_slice(&1u64.to_le_bytes());
            })
        }),
    ];
    for (name, bytes) in cases {
        let mut w = WindowGraph::new(labels.clone(), false);
        let outcome = open_frame(&bytes, KIND).and_then(|mut dec| {
            w.restore(&mut dec)?;
            dec.finish()
        });
        assert!(outcome.is_err(), "{name}: forged frame accepted");
    }
    // And the honest empty payload restores fine.
    let mut w = WindowGraph::new(labels, false);
    let clean = forged_frame(empty);
    let mut dec = open_frame(&clean, KIND).unwrap();
    w.restore(&mut dec).unwrap();
    dec.finish().unwrap();
    assert_eq!(w.num_alive_edges(), 0);
}
