//! Property suite for the SNAP ingest path: round-trip identity,
//! sparse-id densification, duplicate-triple handling, and the
//! malformed-input corpus covering the loader/stream edge-case fixes
//! (trailing-token rejection, expiry-overflow refusal).

use proptest::prelude::*;
use tcsm_graph::io::{
    parse_snap, parse_snap_with_stats, parse_temporal_graph, write_snap, SnapLabeling, SnapOptions,
};
use tcsm_graph::{EventQueue, GraphError};

/// A random SNAP file: sparse raw ids drawn from a tiny pool (forcing
/// collisions → parallel edges and duplicates), epoch-ish timestamps with
/// heavy ties, self-loops allowed, comments and blank lines sprinkled in.
fn arb_snap_text() -> impl Strategy<Value = String> {
    (
        prop::collection::vec((0usize..12, 0usize..12, 0i64..20, 0u8..100), 1..40),
        1_000_000_000i64..1_000_000_100,
    )
        .prop_map(|(recs, base)| {
            // Sparse id pool: deliberately non-dense and non-contiguous.
            let pool: [u64; 12] = [
                3,
                57,
                1004,
                90_210,
                13,
                777_777,
                42,
                65_536,
                999_999_937,
                8,
                123_456,
                2,
            ];
            let mut s = String::from("# generated corpus\n\n% second comment style\n");
            for (a, b, dt, dup) in recs {
                let line = format!("{} {} {}\n", pool[a], pool[b], base + dt);
                s.push_str(&line);
                if dup < 15 {
                    s.push_str(&line); // exact duplicate (src, dst, t)
                }
            }
            s
        })
}

proptest! {
    /// parse → write → parse is an identity (labels included) for the
    /// structural labelings, with or without epoch rescaling.
    #[test]
    fn snap_roundtrip_is_identity(text in arb_snap_text(), rescale in any::<bool>()) {
        for labeling in [SnapLabeling::Uniform, SnapLabeling::DegreeBucket] {
            let opts = SnapOptions { labeling, rescale_epoch: rescale, ..SnapOptions::default() };
            let (g1, s1) = parse_snap_with_stats(&text, &opts).unwrap();
            let (g2, s2) = parse_snap_with_stats(&write_snap(&g1), &opts).unwrap();
            prop_assert_eq!(g1.labels(), g2.labels());
            prop_assert_eq!(g1.edges(), g2.edges());
            // Second pass sees no self-loops or sparsity left to fix.
            prop_assert_eq!(s2.self_loops_skipped, 0);
            prop_assert_eq!(s2.edges, s1.edges);
            prop_assert_eq!(s2.duplicate_triples, s1.duplicate_triples);
            if s2.edges > 0 {
                prop_assert!(s2.raw_id_max < s2.vertices as u64);
            }
        }
    }

    /// Densification invariants: ids form `0..n` with every vertex used,
    /// edge count excludes exactly the self-loops, and rescaled epochs
    /// start at zero.
    #[test]
    fn snap_densifies_and_rescales(text in arb_snap_text()) {
        let (g, stats) = parse_snap_with_stats(&text, &SnapOptions::default()).unwrap();
        prop_assert_eq!(stats.edges, g.num_edges());
        prop_assert_eq!(stats.vertices, g.num_vertices());
        // Every dense id is an endpoint of some edge (first-appearance
        // densification admits no isolated vertices).
        let mut used = vec![false; g.num_vertices()];
        for e in g.edges() {
            used[e.src as usize] = true;
            used[e.dst as usize] = true;
        }
        prop_assert!(used.iter().all(|&u| u));
        if g.num_edges() > 0 {
            // Rescale: earliest instant is 0, spread preserved.
            prop_assert_eq!(g.edges()[0].time.raw(), 0);
            let span = stats.epoch_max - stats.epoch_min;
            prop_assert_eq!(g.edges().last().unwrap().time.raw(), span);
            // The rescaled stream always builds an event queue.
            prop_assert!(EventQueue::new(&g, 5).is_ok());
        }
    }

    /// Duplicate `(src, dst, t)` triples survive as distinct parallel
    /// edges: the duplicate count plus distinct triples equals the edge
    /// count.
    #[test]
    fn snap_duplicates_are_parallel_edges(text in arb_snap_text()) {
        let (g, stats) = parse_snap_with_stats(&text, &SnapOptions::default()).unwrap();
        let mut triples: Vec<(u32, u32, i64)> = g
            .edges()
            .iter()
            .map(|e| (e.src, e.dst, e.time.raw()))
            .collect();
        triples.sort_unstable();
        let total = triples.len();
        triples.dedup();
        prop_assert_eq!(total - triples.len(), stats.duplicate_triples);
    }

    /// Down-sampling caps the kept records and never changes what the kept
    /// prefix parses to.
    #[test]
    fn snap_downsampling_is_a_prefix(text in arb_snap_text(), cap in 1usize..20) {
        let full = parse_snap_with_stats(&text, &SnapOptions::default()).unwrap().1;
        let opts = SnapOptions { max_edges: Some(cap), ..SnapOptions::default() };
        let (_g, stats) = parse_snap_with_stats(&text, &opts).unwrap();
        prop_assert!(stats.edges + stats.self_loops_skipped <= cap);
        if full.edges + full.self_loops_skipped <= cap {
            prop_assert_eq!(stats.edges, full.edges);
            prop_assert_eq!(stats.downsampled, 0);
        }
    }
}

/// The malformed-input corpus: every bad shape is rejected with the right
/// line number, covering the trailing-garbage fixes in both text formats
/// and the SNAP record grammar.
#[test]
fn malformed_corpus_is_rejected_with_line_numbers() {
    let snap_cases: &[(&str, usize)] = &[
        // Wrong arity.
        ("1 2\n", 1),
        ("1\n", 1),
        ("1 2 3 4\n", 1),
        ("# ok\n1 2 10\n1 2 10 trailing\n", 3),
        // Bad tokens.
        ("a 2 10\n", 1),
        ("1 b 10\n", 1),
        ("1 2 ten\n", 1),
        ("1 2 10.5\n", 1),
        ("-1 2 10\n", 1),
        // Sentinel-colliding timestamps.
        ("1 2 9223372036854775807\n", 1),
        ("1 2 -9223372036854775808\n", 1),
    ];
    for &(text, line) in snap_cases {
        match parse_snap(text, &SnapOptions::default()).unwrap_err() {
            GraphError::Parse(l, _) => assert_eq!(l, line, "{text:?}"),
            other => panic!("{text:?}: expected Parse, got {other:?}"),
        }
    }

    let native_cases: &[(&str, usize)] =
        &[("v 0 1 junk\n", 1), ("v 0 1\nv 1 2\ne 0 1 5 7 extra\n", 3)];
    for &(text, line) in native_cases {
        match parse_temporal_graph(text).unwrap_err() {
            GraphError::Parse(l, msg) => {
                assert_eq!(l, line, "{text:?}");
                assert!(msg.contains("trailing token"), "{msg}");
            }
            other => panic!("{text:?}: expected Parse, got {other:?}"),
        }
    }
}

/// A timestamp span wider than the finite `Ts` domain cannot be shifted
/// into it: rescaling must refuse instead of wrapping `t - shift`.
#[test]
fn epoch_span_wider_than_the_domain_is_refused() {
    let lo = i64::MIN + 2; // passes the per-token sentinel filter
    let hi = i64::MAX - 2;
    let text = format!("1 2 {lo}\n2 3 {hi}\n");
    match parse_snap(&text, &SnapOptions::default()).unwrap_err() {
        GraphError::EpochSpanOverflow(min, max) => {
            assert_eq!((min, max), (lo, hi));
        }
        other => panic!("expected EpochSpanOverflow, got {other:?}"),
    }
    // Without rescaling the same records parse (and overflow is then the
    // EventQueue's problem, below).
    let opts = SnapOptions {
        rescale_epoch: false,
        ..SnapOptions::default()
    };
    assert!(parse_snap(&text, &opts).is_ok());
}

/// Near-`Ts::MAX` arrivals: ingest without rescaling hands the overflow to
/// `EventQueue::new`, which must refuse instead of merging expiry batches;
/// the default rescaling path sails through.
#[test]
fn unrescaled_epochs_near_the_domain_end_are_refused_downstream() {
    let hi = i64::MAX - 5;
    let text = format!("1 2 {hi}\n2 3 {}\n", hi + 1);
    let opts = SnapOptions {
        rescale_epoch: false,
        ..SnapOptions::default()
    };
    let g = parse_snap(&text, &opts).unwrap();
    assert!(matches!(
        EventQueue::new(&g, 100).unwrap_err(),
        GraphError::ExpiryOverflow(_, _)
    ));
    // With the default rescale the same stream is fine.
    let g = parse_snap(&text, &SnapOptions::default()).unwrap();
    assert!(EventQueue::new(&g, 100).is_ok());
}
