//! # tcsm-graph
//!
//! Substrate crate for the TCM reproduction: temporal multigraphs, temporal
//! query graphs with a strict partial order on edges, and the sliding-window
//! streaming machinery of the paper's problem statement (§II).
//!
//! A *temporal data graph* `G = (V, E, L_G, T_G)` assigns a label to every
//! vertex and a timestamp to every edge; parallel edges between the same
//! vertex pair are distinguished by timestamp. With a window `δ` and current
//! time `t`, only edges with timestamp in `(t − δ, t]` are alive, which turns
//! `G` into a stream of arrival/expiration events (`stream` module) over a
//! live [`WindowGraph`].
//!
//! A *temporal query graph* `q = (V, E, L_q, ≺)` additionally carries a
//! strict partial order `≺` on its edge set (`order` module); an embedding
//! must respect both the topology and `≺` (Definition II.3).
//!
//! # Batch memory model
//!
//! Bursty streams are processed in same-`(timestamp, kind)` *delta batches*
//! ([`EventQueue::batches`]): every event of one instant-and-kind group is
//! staged against the structures before any downstream consumer runs. The
//! staging contract in this crate is the window's deferred reclamation —
//! [`WindowGraph::begin_batch`] reclaims the pair buckets the *previous*
//! batch drained, and [`WindowGraph::remove_deferred`] parks newly drained
//! buckets on a dying list whose [`PairId`]s stay resolvable (reading as
//! empty) until the next batch opens. Downstream pair-indexed slabs (DCS
//! multiplicities, filter rows) therefore keep index-addressing removal
//! deltas for a whole batch, and slab memory is reclaimed exactly one batch
//! late — bounded by the alive-pair spread, never by stream length.

pub mod audit;
pub mod bitset;
pub mod codec;
pub mod data;
pub mod error;
pub mod fx;
pub mod io;
pub mod order;
pub mod query;
pub mod stream;
pub mod time;
pub mod window;

pub use audit::{AuditLevel, AuditViolation};
pub use bitset::{DenseBits, Set64};
pub use codec::{CodecError, Decoder, Encoder};
pub use data::{EdgeKey, TemporalEdge, TemporalGraph, TemporalGraphBuilder, VertexId};
pub use error::GraphError;
pub use fx::{FxHashMap, FxHashSet};
pub use io::{SnapLabeling, SnapOptions, SnapStats};
pub use order::TemporalOrder;
pub use query::{
    Direction, QEdgeId, QVertexId, QueryEdge, QueryGraph, QueryGraphBuilder, MAX_QUERY_DIM,
};
pub use stream::{Event, EventKind, EventQueue};
pub use time::Ts;
pub use window::{EdgeConstraint, PairEdges, PairId, WindowGraph};

/// A vertex label. Label `0` is a valid label; unlabeled graphs use a single
/// label for every vertex.
pub type Label = u32;

/// An edge label. `EDGE_LABEL_ANY`-labelled query edges match any data edge.
pub type EdgeLabel = u32;

/// Wildcard edge label used by query edges that do not constrain the label.
pub const EDGE_LABEL_ANY: EdgeLabel = u32::MAX;
