//! The event stream derived from a temporal graph and a window `δ`.
//!
//! Problem statement (§II): for window `δ` and current time `t`, edges with
//! timestamp `≤ t − δ` have expired; the alive interval of an edge arriving
//! at `t_e` is `[t_e, t_e + δ)`. Algorithm 1 materializes this as the event
//! set `L = {(e, t, +), (e, t + δ, −)}` processed in chronological order;
//! expirations at a given instant precede arrivals at the same instant
//! (Example II.2: when `σ14` arrives at `t = 14` with `δ = 10`, `σ4` has
//! already left the window).
//!
//! # Delta batches
//!
//! Real temporal streams are bursty: many edges share a timestamp. Because
//! every edge's lifetime is exactly `δ`, the events at one instant `t` split
//! into two *homogeneous* groups — first every expiration (the edges that
//! arrived at `t − δ`, all of them), then every arrival (the edges with
//! timestamp `t`, all of them). [`EventQueue::batch_at`] and
//! [`EventQueue::batches`] expose these maximal same-`(time, kind)` runs as
//! [`EventBatch`]es so the engine can apply a whole group as one delta:
//! concatenating the batches in order reproduces [`EventQueue::events`]
//! exactly, so batch consumers see the same ordering semantics as serial
//! ones. Two invariants downstream layers rely on:
//!
//! * a batch is *complete*: every stream edge whose arrival timestamp equals
//!   the batch's arrival timestamp is in the batch (arrivals trivially;
//!   expirations because lifetimes are uniform), which lets consumers test
//!   batch membership of an alive edge by timestamp alone;
//! * events inside a batch are sorted by [`EdgeKey`], matching the serial
//!   tie-break, so per-pair arrival order (and hence expiry order) is
//!   unchanged.

use crate::data::{EdgeKey, TemporalGraph};
use crate::error::GraphError;
use crate::time::Ts;
use serde::{Deserialize, Serialize};

/// Arrival (`+`) or expiration (`−`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// Edge leaves the window. Ordered before `Insert` at equal times.
    Delete,
    /// Edge enters the window.
    Insert,
}

/// One stream event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// When the event fires.
    pub at: Ts,
    /// Arrival or expiration.
    pub kind: EventKind,
    /// The edge concerned.
    pub edge: EdgeKey,
}

/// A maximal run of events sharing one `(timestamp, kind)` — the unit of
/// batched application (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventBatch<'a> {
    /// The instant every event in the batch fires at.
    pub at: Ts,
    /// Arrival or expiration (homogeneous across the batch).
    pub kind: EventKind,
    /// The events, sorted by edge key (the serial tie-break order).
    pub events: &'a [Event],
}

impl<'a> EventBatch<'a> {
    /// Number of events in the batch (always ≥ 1).
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Batches are never empty; provided for clippy-idiomatic call sites.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The edge keys of the batch, in event order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeKey> + '_ {
        self.events.iter().map(|ev| ev.edge)
    }
}

/// The full chronological event list for a graph + window.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EventQueue {
    events: Vec<Event>,
    delta: i64,
}

impl EventQueue {
    /// Builds the event list `L` of Algorithm 1 for window length `delta`.
    ///
    /// Returns [`GraphError::ExpiryOverflow`] when any `t + δ` leaves the
    /// finite timestamp domain: a saturated expiry would land several
    /// arrival instants on *one* expiration instant, silently merging
    /// expiry batches and voiding the complete-batch invariant above.
    /// Callers with epoch-sized timestamps (e.g. raw SNAP dumps) should
    /// rescale them first (`io::SnapOptions::rescale_epoch` does).
    pub fn new(g: &TemporalGraph, delta: i64) -> Result<EventQueue, GraphError> {
        if delta <= 0 {
            return Err(GraphError::NonPositiveWindow(delta));
        }
        let mut events = Vec::with_capacity(g.num_edges() * 2);
        for e in g.edges() {
            let expiry = e
                .time
                .checked_plus(delta)
                .ok_or(GraphError::ExpiryOverflow(e.time.raw(), delta))?;
            events.push(Event {
                at: e.time,
                kind: EventKind::Insert,
                edge: e.key,
            });
            events.push(Event {
                at: expiry,
                kind: EventKind::Delete,
                edge: e.key,
            });
        }
        // Delete < Insert at equal timestamps; key-order ties keep arrival
        // (and hence expiry) order deterministic.
        events.sort_by_key(|ev| (ev.at, ev.kind, ev.edge));
        Ok(EventQueue { events, delta })
    }

    /// The window length used to build this queue.
    #[inline]
    pub fn delta(&self) -> i64 {
        self.delta
    }

    /// All events in processing order.
    #[inline]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events (`2 |E(G)|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the stream is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates events.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// The maximal same-`(time, kind)` batch starting at event index
    /// `start`, or `None` when the stream is exhausted. Consuming
    /// `start + batch.len()` next reproduces the serial event order.
    pub fn batch_at(&self, start: usize) -> Option<EventBatch<'_>> {
        let first = self.events.get(start)?;
        let end = start
            + self.events[start..]
                .iter()
                .position(|ev| (ev.at, ev.kind) != (first.at, first.kind))
                .unwrap_or(self.events.len() - start);
        Some(EventBatch {
            at: first.at,
            kind: first.kind,
            events: &self.events[start..end],
        })
    }

    /// Iterates the delta batches in processing order (expirations before
    /// arrivals at equal instants, exactly as [`EventQueue::events`]).
    pub fn batches(&self) -> impl Iterator<Item = EventBatch<'_>> {
        let mut next = 0usize;
        std::iter::from_fn(move || {
            let b = self.batch_at(next)?;
            next += b.len();
            Some(b)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::TemporalGraphBuilder;

    #[test]
    fn example_ii_2_ordering() {
        // Edges σ4 (t=4) and σ14 (t=14), δ = 10: σ4 must expire before σ14
        // arrives.
        let mut b = TemporalGraphBuilder::new();
        let v = b.vertices(4, 0);
        let k4 = b.edge(v, v + 1, 4);
        let k14 = b.edge(v + 2, v + 3, 14);
        let g = b.build().unwrap();
        let q = EventQueue::new(&g, 10).unwrap();
        let evs = q.events();
        assert_eq!(evs.len(), 4);
        let pos_del4 = evs
            .iter()
            .position(|e| e.edge == k4 && e.kind == EventKind::Delete)
            .unwrap();
        let pos_ins14 = evs
            .iter()
            .position(|e| e.edge == k14 && e.kind == EventKind::Insert)
            .unwrap();
        assert_eq!(evs[pos_del4].at, Ts::new(14));
        assert!(pos_del4 < pos_ins14, "expiry precedes same-time arrival");
    }

    #[test]
    fn every_edge_appears_twice() {
        let mut b = TemporalGraphBuilder::new();
        let v = b.vertices(3, 0);
        for t in 1..=5 {
            b.edge(v, v + 1, t);
            b.edge(v + 1, v + 2, t + 3);
        }
        let g = b.build().unwrap();
        let q = EventQueue::new(&g, 7).unwrap();
        assert_eq!(q.len(), 2 * g.num_edges());
        let inserts = q.iter().filter(|e| e.kind == EventKind::Insert).count();
        assert_eq!(inserts, g.num_edges());
        // Chronologically sorted.
        assert!(q.events().windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn rejects_bad_window() {
        let g = TemporalGraphBuilder::new().build().unwrap();
        assert!(matches!(
            EventQueue::new(&g, 0).unwrap_err(),
            GraphError::NonPositiveWindow(0)
        ));
    }

    #[test]
    fn rejects_expiry_overflow_instead_of_merging_batches() {
        // Two distinct arrivals near Ts::MAX whose saturated expiries would
        // collapse onto one instant — construction must fail, not merge.
        let hi = i64::MAX - 3;
        let mut b = TemporalGraphBuilder::new();
        let v = b.vertices(3, 0);
        b.edge(v, v + 1, hi);
        b.edge(v + 1, v + 2, hi + 1);
        let g = b.build().unwrap();
        match EventQueue::new(&g, 100).unwrap_err() {
            GraphError::ExpiryOverflow(t, d) => {
                assert_eq!(t, hi);
                assert_eq!(d, 100);
            }
            other => panic!("expected ExpiryOverflow, got {other:?}"),
        }
        // The largest window that still fits both expiries is accepted, and
        // the expiries stay distinct.
        let q = EventQueue::new(&g, 1).unwrap();
        let dels: Vec<Ts> = q
            .iter()
            .filter(|e| e.kind == EventKind::Delete)
            .map(|e| e.at)
            .collect();
        assert_eq!(dels.len(), 2);
        assert_ne!(dels[0], dels[1], "expiry instants must stay distinct");
    }

    #[test]
    fn batches_concatenate_to_the_serial_event_order() {
        // Bursty stream: several edges per timestamp, overlapping expiries.
        let mut b = TemporalGraphBuilder::new();
        let v = b.vertices(5, 0);
        for (i, t) in [1, 1, 1, 3, 3, 4, 7, 7].iter().enumerate() {
            b.edge(v + (i as u32 % 4), v + 4, *t);
        }
        let g = b.build().unwrap();
        let q = EventQueue::new(&g, 2).unwrap();
        let concat: Vec<Event> = q.batches().flat_map(|b| b.events.iter().copied()).collect();
        assert_eq!(concat, q.events(), "batches must tile the serial order");
        // Each batch is homogeneous and internally key-sorted.
        for batch in q.batches() {
            assert!(!batch.is_empty());
            assert!(batch
                .events
                .iter()
                .all(|ev| ev.at == batch.at && ev.kind == batch.kind));
            assert!(batch.events.windows(2).all(|w| w[0].edge < w[1].edge));
        }
        // Batch boundaries are maximal: adjacent batches differ in (at, kind).
        let metas: Vec<(Ts, EventKind)> = q.batches().map(|b| (b.at, b.kind)).collect();
        assert!(metas.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn same_instant_puts_expirations_before_arrivals() {
        // δ = 2: the t=1 edges expire at t=3, where new edges also arrive.
        let mut b = TemporalGraphBuilder::new();
        let v = b.vertices(3, 0);
        b.edge(v, v + 1, 1);
        b.edge(v, v + 2, 1);
        b.edge(v + 1, v + 2, 3);
        b.edge(v, v + 1, 3);
        let g = b.build().unwrap();
        let q = EventQueue::new(&g, 2).unwrap();
        let batches: Vec<_> = q.batches().collect();
        assert_eq!(batches.len(), 4);
        assert_eq!(
            (batches[0].at, batches[0].kind, batches[0].len()),
            (Ts::new(1), EventKind::Insert, 2)
        );
        assert_eq!(
            (batches[1].at, batches[1].kind, batches[1].len()),
            (Ts::new(3), EventKind::Delete, 2),
            "expirations precede same-instant arrivals"
        );
        assert_eq!(
            (batches[2].at, batches[2].kind, batches[2].len()),
            (Ts::new(3), EventKind::Insert, 2)
        );
        assert_eq!(
            (batches[3].at, batches[3].kind, batches[3].len()),
            (Ts::new(5), EventKind::Delete, 2)
        );
    }

    #[test]
    fn degenerate_all_edges_one_timestamp() {
        // Every edge at t=5: one arrival batch, one expiration batch.
        let mut b = TemporalGraphBuilder::new();
        let v = b.vertices(4, 0);
        for i in 0..3u32 {
            b.edge(v + i, v + i + 1, 5);
        }
        let g = b.build().unwrap();
        let q = EventQueue::new(&g, 1).unwrap();
        let batches: Vec<_> = q.batches().collect();
        assert_eq!(batches.len(), 2);
        assert_eq!((batches[0].kind, batches[0].len()), (EventKind::Insert, 3));
        assert_eq!((batches[1].kind, batches[1].len()), (EventKind::Delete, 3));
        assert_eq!(batches[1].at, Ts::new(6));
        // Batch completeness: the expiration batch holds *all* edges whose
        // arrival timestamp is t − δ (the invariant batch consumers index by).
        let keys: Vec<EdgeKey> = batches[1].edges().collect();
        let mut expect: Vec<EdgeKey> = g.edges().iter().map(|e| e.key).collect();
        expect.sort();
        assert_eq!(keys, expect);
    }

    #[test]
    fn empty_stream_has_no_batches() {
        let g = TemporalGraphBuilder::new().build().unwrap();
        let q = EventQueue::new(&g, 3).unwrap();
        assert_eq!(q.batches().count(), 0);
        assert!(q.batch_at(0).is_none());
    }

    #[test]
    fn unique_timestamps_give_singleton_batches() {
        // The serial regime: every batch has exactly one event, so batched
        // processing degenerates to the pre-batch per-event behaviour.
        let mut b = TemporalGraphBuilder::new();
        let v = b.vertices(2, 0);
        for t in [1, 4, 9, 12] {
            b.edge(v, v + 1, t);
        }
        let g = b.build().unwrap();
        let q = EventQueue::new(&g, 100).unwrap();
        assert!(q.batches().all(|b| b.len() == 1));
        assert_eq!(q.batches().count(), q.len());
    }

    #[test]
    fn expiry_order_equals_arrival_order_per_pair() {
        let mut b = TemporalGraphBuilder::new();
        let v = b.vertices(2, 0);
        let k1 = b.edge(v, v + 1, 1);
        let k2 = b.edge(v, v + 1, 1); // same timestamp, parallel
        let g = b.build().unwrap();
        let q = EventQueue::new(&g, 5).unwrap();
        let dels: Vec<EdgeKey> = q
            .iter()
            .filter(|e| e.kind == EventKind::Delete)
            .map(|e| e.edge)
            .collect();
        let ins: Vec<EdgeKey> = q
            .iter()
            .filter(|e| e.kind == EventKind::Insert)
            .map(|e| e.edge)
            .collect();
        assert_eq!(dels, ins);
        assert_eq!(ins, vec![k1, k2]);
    }
}
