//! The event stream derived from a temporal graph and a window `δ`.
//!
//! Problem statement (§II): for window `δ` and current time `t`, edges with
//! timestamp `≤ t − δ` have expired; the alive interval of an edge arriving
//! at `t_e` is `[t_e, t_e + δ)`. Algorithm 1 materializes this as the event
//! set `L = {(e, t, +), (e, t + δ, −)}` processed in chronological order;
//! expirations at a given instant precede arrivals at the same instant
//! (Example II.2: when `σ14` arrives at `t = 14` with `δ = 10`, `σ4` has
//! already left the window).

use crate::data::{EdgeKey, TemporalGraph};
use crate::error::GraphError;
use crate::time::Ts;
use serde::{Deserialize, Serialize};

/// Arrival (`+`) or expiration (`−`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// Edge leaves the window. Ordered before `Insert` at equal times.
    Delete,
    /// Edge enters the window.
    Insert,
}

/// One stream event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// When the event fires.
    pub at: Ts,
    /// Arrival or expiration.
    pub kind: EventKind,
    /// The edge concerned.
    pub edge: EdgeKey,
}

/// The full chronological event list for a graph + window.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EventQueue {
    events: Vec<Event>,
    delta: i64,
}

impl EventQueue {
    /// Builds the event list `L` of Algorithm 1 for window length `delta`.
    pub fn new(g: &TemporalGraph, delta: i64) -> Result<EventQueue, GraphError> {
        if delta <= 0 {
            return Err(GraphError::NonPositiveWindow(delta));
        }
        let mut events = Vec::with_capacity(g.num_edges() * 2);
        for e in g.edges() {
            events.push(Event {
                at: e.time,
                kind: EventKind::Insert,
                edge: e.key,
            });
            events.push(Event {
                at: e.time.plus(delta),
                kind: EventKind::Delete,
                edge: e.key,
            });
        }
        // Delete < Insert at equal timestamps; key-order ties keep arrival
        // (and hence expiry) order deterministic.
        events.sort_by_key(|ev| (ev.at, ev.kind, ev.edge));
        Ok(EventQueue { events, delta })
    }

    /// The window length used to build this queue.
    #[inline]
    pub fn delta(&self) -> i64 {
        self.delta
    }

    /// All events in processing order.
    #[inline]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events (`2 |E(G)|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the stream is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates events.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::TemporalGraphBuilder;

    #[test]
    fn example_ii_2_ordering() {
        // Edges σ4 (t=4) and σ14 (t=14), δ = 10: σ4 must expire before σ14
        // arrives.
        let mut b = TemporalGraphBuilder::new();
        let v = b.vertices(4, 0);
        let k4 = b.edge(v, v + 1, 4);
        let k14 = b.edge(v + 2, v + 3, 14);
        let g = b.build().unwrap();
        let q = EventQueue::new(&g, 10).unwrap();
        let evs = q.events();
        assert_eq!(evs.len(), 4);
        let pos_del4 = evs
            .iter()
            .position(|e| e.edge == k4 && e.kind == EventKind::Delete)
            .unwrap();
        let pos_ins14 = evs
            .iter()
            .position(|e| e.edge == k14 && e.kind == EventKind::Insert)
            .unwrap();
        assert_eq!(evs[pos_del4].at, Ts::new(14));
        assert!(pos_del4 < pos_ins14, "expiry precedes same-time arrival");
    }

    #[test]
    fn every_edge_appears_twice() {
        let mut b = TemporalGraphBuilder::new();
        let v = b.vertices(3, 0);
        for t in 1..=5 {
            b.edge(v, v + 1, t);
            b.edge(v + 1, v + 2, t + 3);
        }
        let g = b.build().unwrap();
        let q = EventQueue::new(&g, 7).unwrap();
        assert_eq!(q.len(), 2 * g.num_edges());
        let inserts = q.iter().filter(|e| e.kind == EventKind::Insert).count();
        assert_eq!(inserts, g.num_edges());
        // Chronologically sorted.
        assert!(q.events().windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn rejects_bad_window() {
        let g = TemporalGraphBuilder::new().build().unwrap();
        assert!(matches!(
            EventQueue::new(&g, 0).unwrap_err(),
            GraphError::NonPositiveWindow(0)
        ));
    }

    #[test]
    fn expiry_order_equals_arrival_order_per_pair() {
        let mut b = TemporalGraphBuilder::new();
        let v = b.vertices(2, 0);
        let k1 = b.edge(v, v + 1, 1);
        let k2 = b.edge(v, v + 1, 1); // same timestamp, parallel
        let g = b.build().unwrap();
        let q = EventQueue::new(&g, 5).unwrap();
        let dels: Vec<EdgeKey> = q
            .iter()
            .filter(|e| e.kind == EventKind::Delete)
            .map(|e| e.edge)
            .collect();
        let ins: Vec<EdgeKey> = q
            .iter()
            .filter(|e| e.kind == EventKind::Insert)
            .map(|e| e.edge)
            .collect();
        assert_eq!(dels, ins);
        assert_eq!(ins, vec![k1, k2]);
    }
}
