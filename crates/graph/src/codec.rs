//! Hand-rolled length-prefixed binary codec for durable snapshots.
//!
//! The registry is unreachable in this environment, so — like the text
//! parsers in [`crate::io`] — everything here is written by hand against
//! `std` alone. The format is deliberately simple and paranoid:
//!
//! * every file is a **frame**: a 4-byte magic (`TCSM`), a `u32` format
//!   version, a `u8` frame kind, the payload, and a trailing 64-bit
//!   FNV-1a checksum over everything before it;
//! * multi-byte integers are little-endian;
//! * variable-length data is length-prefixed (`u64` counts), and payload
//!   regions that downstream readers skip over are wrapped in
//!   length-prefixed **sections** so a reader can bound-check a declared
//!   length against the bytes that actually exist;
//! * every read is bounds-checked. A truncated file, a flipped byte, a
//!   wrong version, or a lying section length surfaces as a typed
//!   [`CodecError`] — never a panic, never silently wrong data.
//!
//! The snapshot consumers layered on top (window state in
//! [`crate::window`], runtime state in `tcsm-core`, the service checkpoint
//! files in `tcsm-service`) additionally cross-validate decoded state
//! against construction-time invariants (slab lengths, bit censuses,
//! sorted adjacency), so even a corruption that forges a valid checksum
//! cannot smuggle in inconsistent state.

use crate::bitset::DenseBits;
use crate::time::Ts;
use std::fmt;

/// Leading magic of every snapshot frame.
pub const MAGIC: [u8; 4] = *b"TCSM";

/// Current snapshot/wire format version. Bump on any layout change;
/// decoders refuse other versions with [`CodecError::UnsupportedVersion`].
/// (v4: the service manifest and wire stats carry the retired-side
/// kernel accumulators and the retired-stats eviction counter;
/// v3 stored logical `TR(u)` lanes plus kernel counters in
/// filter-instance state and the kernel counter triple in engine/service
/// stats; v2 added the service manifest disconnect counter and
/// retirement order. Older frames are refused.)
pub const FORMAT_VERSION: u32 = 4;

/// Size of the fixed frame header (magic + version + kind).
const HEADER_LEN: usize = 4 + 4 + 1;

/// Size of the trailing checksum.
const CHECKSUM_LEN: usize = 8;

/// Typed decoding failure. Every corruption mode of the snapshot corpus
/// maps to one of these; decoding never panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes remain than a read needs (truncation).
    Truncated {
        /// Bytes the read needed.
        need: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// The frame does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The frame's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The frame kind byte is not the one the reader expected.
    BadKind {
        /// Kind the reader expected.
        expected: u8,
        /// Kind found in the frame.
        found: u8,
    },
    /// The trailing checksum does not match the frame contents.
    Checksum {
        /// Checksum stored in the frame.
        stored: u64,
        /// Checksum recomputed over the frame contents.
        computed: u64,
    },
    /// A section declares more bytes than remain (a section-length lie).
    SectionLength {
        /// Length the section header declared.
        declared: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// A reader finished with bytes left over.
    TrailingBytes(usize),
    /// Decoded state violates a structural invariant of its consumer.
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            CodecError::BadMagic(m) => write!(f, "bad magic {m:?} (expected {MAGIC:?})"),
            CodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported format version {v} (expected {FORMAT_VERSION})"
                )
            }
            CodecError::BadKind { expected, found } => {
                write!(f, "wrong frame kind {found} (expected {expected})")
            }
            CodecError::Checksum { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CodecError::SectionLength {
                declared,
                available,
            } => write!(
                f,
                "section declares {declared} bytes but only {available} remain"
            ),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            CodecError::Invalid(msg) => write!(f, "invalid snapshot state: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// 64-bit FNV-1a over a byte slice — the frame checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `N` bytes of `bytes` starting at `at`, as a fixed array. Callers have
/// already length-checked the slice.
fn array_at<const N: usize>(bytes: &[u8], at: usize) -> [u8; N] {
    let mut a = [0u8; N];
    a.copy_from_slice(&bytes[at..at + N]);
    a
}

/// A `usize` widened to the 64-bit wire representation.
fn wire_u64(v: usize) -> u64 {
    u64::try_from(v).expect("usize fits the 64-bit wire format")
}

/// Append-only snapshot writer. Build one with [`Encoder::new`] (bare
/// payload, for composing) or via [`encode_frame`] (full framed file).
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// New empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// A `usize` as `u64` (the format is 64-bit regardless of host width).
    #[inline]
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(wire_u64(v));
    }

    /// A timestamp, as its raw `i64` (sentinels included).
    #[inline]
    pub fn put_ts(&mut self, t: Ts) {
        self.put_i64(t.raw());
    }

    /// Raw bytes with a `u64` length prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// A UTF-8 string with a `u64` length prefix.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// A dense bitmap: bit capacity, then the backing words.
    pub fn put_bits(&mut self, bits: &DenseBits) {
        self.put_usize(bits.len());
        for &w in bits.words() {
            self.put_u64(w);
        }
    }

    /// Writes a length-prefixed section: an 8-byte length slot, the bytes
    /// `f` produces, then the slot patched with the actual byte count.
    /// Readers recover the region with [`Decoder::section`], which
    /// bound-checks the declared length against the remaining bytes.
    pub fn section(&mut self, f: impl FnOnce(&mut Encoder)) {
        let at = self.buf.len();
        self.buf.extend_from_slice(&[0u8; 8]);
        f(self);
        let len = wire_u64(self.buf.len() - at - 8);
        self.buf[at..at + 8].copy_from_slice(&len.to_le_bytes());
    }

    /// The raw payload bytes (no framing).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Encodes one complete framed file: header, the payload `f` writes, and
/// the trailing checksum.
pub fn encode_frame(kind: u8, f: impl FnOnce(&mut Encoder)) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.buf.extend_from_slice(&MAGIC);
    enc.put_u32(FORMAT_VERSION);
    enc.put_u8(kind);
    f(&mut enc);
    let sum = fnv1a(&enc.buf);
    enc.put_u64(sum);
    enc.buf
}

/// Bounds-checked snapshot reader over a byte region.
#[derive(Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Reader over a bare payload region (no framing). For framed files
    /// use [`open_frame`].
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` bytes, or reports truncation.
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Takes exactly `N` bytes as a fixed array, or reports truncation.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }

    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take_array()?))
    }

    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Invalid(format!("bad bool byte {other}"))),
        }
    }

    /// A `u64` that must fit the host `usize`.
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CodecError::Invalid(format!("count {v} exceeds usize")))
    }

    /// A length prefix that is about to gate reading `width`-byte items:
    /// bounds-checked against the remaining bytes *before* any allocation,
    /// so a lying count cannot trigger a huge reserve.
    pub fn get_count(&mut self, width: usize) -> Result<usize, CodecError> {
        let n = self.get_usize()?;
        let need = n
            .checked_mul(width)
            .ok_or_else(|| CodecError::Invalid(format!("count {n} overflows at width {width}")))?;
        if need > self.remaining() {
            return Err(CodecError::Truncated {
                need,
                have: self.remaining(),
            });
        }
        Ok(n)
    }

    /// A timestamp, by total mapping: the sentinel raws decode to the
    /// sentinel constants, everything else through `Ts::new` — so no raw
    /// byte pattern can panic the constructor.
    pub fn get_ts(&mut self) -> Result<Ts, CodecError> {
        let raw = self.get_i64()?;
        Ok(match raw {
            i64::MIN => Ts::NEG_INF,
            i64::MAX => Ts::INF,
            v => Ts::new(v),
        })
    }

    /// Length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.get_count(1)?;
        self.take(n)
    }

    /// A length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, CodecError> {
        let bytes = self.get_bytes()?;
        std::str::from_utf8(bytes).map_err(|e| CodecError::Invalid(format!("bad utf-8: {e}")))
    }

    /// A dense bitmap whose capacity must equal `expected_len`, with any
    /// bits past the capacity required to be zero (so censuses like
    /// `count_ones` stay truthful).
    pub fn get_bits(&mut self, expected_len: usize) -> Result<DenseBits, CodecError> {
        let len = self.get_usize()?;
        if len != expected_len {
            return Err(CodecError::Invalid(format!(
                "bitmap capacity {len} (expected {expected_len})"
            )));
        }
        let nwords = len.div_ceil(64);
        let mut words = Vec::with_capacity(nwords.min(self.remaining() / 8 + 1));
        for _ in 0..nwords {
            words.push(self.get_u64()?);
        }
        DenseBits::from_words(words, len)
            .ok_or_else(|| CodecError::Invalid("bitmap has bits past its capacity".into()))
    }

    /// Opens a length-prefixed section written by [`Encoder::section`]:
    /// returns a sub-reader over exactly the declared bytes and advances
    /// this reader past them. A declared length exceeding the remaining
    /// bytes is a [`CodecError::SectionLength`].
    pub fn section(&mut self) -> Result<Decoder<'a>, CodecError> {
        let len = self.get_u64()?;
        let avail = wire_u64(self.remaining());
        if len > avail {
            return Err(CodecError::SectionLength {
                declared: len,
                available: avail,
            });
        }
        let len = usize::try_from(len).expect("bounded by remaining(), which is a usize");
        let sub = Decoder {
            buf: &self.buf[self.pos..self.pos + len],
            pos: 0,
        };
        self.pos += len;
        Ok(sub)
    }

    /// Asserts that every byte was consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

/// Verifies a framed file (magic, version, kind, trailing checksum) and
/// returns a reader over its payload.
pub fn open_frame(bytes: &[u8], expected_kind: u8) -> Result<Decoder<'_>, CodecError> {
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(CodecError::Truncated {
            need: HEADER_LEN + CHECKSUM_LEN,
            have: bytes.len(),
        });
    }
    let magic: [u8; 4] = array_at(bytes, 0);
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let version = u32::from_le_bytes(array_at(bytes, 4));
    if version != FORMAT_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let kind = bytes[8];
    if kind != expected_kind {
        return Err(CodecError::BadKind {
            expected: expected_kind,
            found: kind,
        });
    }
    let body_end = bytes.len() - CHECKSUM_LEN;
    let stored = u64::from_le_bytes(array_at(bytes, body_end));
    let computed = fnv1a(&bytes[..body_end]);
    if stored != computed {
        return Err(CodecError::Checksum { stored, computed });
    }
    Ok(Decoder::new(&bytes[HEADER_LEN..body_end]))
}

/// Reads the kind byte of a framed region after checking magic, version,
/// and minimum length — the dispatch step for readers that accept several
/// frame kinds. The checksum is **not** verified here; follow up with
/// [`open_frame`] once the expected kind is known.
pub fn frame_kind(bytes: &[u8]) -> Result<u8, CodecError> {
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(CodecError::Truncated {
            need: HEADER_LEN + CHECKSUM_LEN,
            have: bytes.len(),
        });
    }
    let magic: [u8; 4] = array_at(bytes, 0);
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let version = u32::from_le_bytes(array_at(bytes, 4));
    if version != FORMAT_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    Ok(bytes[8])
}

// ---- wire framing -------------------------------------------------------
//
// Snapshot frames are whole files; on a byte *stream* (a TCP connection)
// each frame is preceded by a `u32` little-endian length so the reader
// knows where it ends before validating it. The length is transport
// plumbing only — everything inside it is a regular checksummed frame.

/// Failure while reading a length-prefixed frame off a byte stream.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed (includes truncation mid-frame,
    /// surfaced as `UnexpectedEof`).
    Io(std::io::Error),
    /// The length prefix declares more bytes than the reader's cap. The
    /// stream cannot be resynchronized after this — close the connection.
    Oversized {
        /// Length the prefix declared.
        declared: u64,
        /// The reader's cap.
        max: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O: {e}"),
            WireError::Oversized { declared, max } => {
                write!(f, "wire frame declares {declared} bytes (cap {max})")
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            WireError::Oversized { .. } => None,
        }
    }
}

/// Writes one frame to a byte stream: `u32` little-endian length, then the
/// frame bytes (as produced by [`encode_frame`]). The two writes happen
/// under the caller's exclusivity — interleave-free framing on a shared
/// connection needs external locking.
pub fn write_wire_frame(w: &mut impl std::io::Write, frame: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(frame.len()).map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "frame exceeds the u32 wire length prefix",
        )
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(frame)?;
    w.flush()
}

/// Reads one length-prefixed frame from a byte stream. Returns `Ok(None)`
/// on a clean end-of-stream (the peer closed between frames); truncation
/// *inside* a frame is `WireError::Io(UnexpectedEof)`. A length prefix
/// above `max_len` is [`WireError::Oversized`] and the bytes are **not**
/// consumed — the stream is unsynchronizable and must be closed.
///
/// The returned bytes are an unvalidated frame: dispatch on
/// [`frame_kind`], then validate with [`open_frame`].
pub fn read_wire_frame(
    r: &mut impl std::io::Read,
    max_len: usize,
) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_bytes = [0u8; 4];
    // Hand-rolled read_exact for the prefix so a clean EOF before the
    // first byte is distinguishable from one mid-prefix.
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_bytes[got..]).map_err(WireError::Io)? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame length prefix",
                )))
            }
            n => got += n,
        }
    }
    let declared = u64::from(u32::from_le_bytes(len_bytes));
    if declared > wire_u64(max_len) {
        return Err(WireError::Oversized {
            declared,
            max: wire_u64(max_len),
        });
    }
    let len = usize::try_from(declared).expect("bounded by max_len, which is a usize");
    let mut frame = vec![0u8; len];
    r.read_exact(&mut frame).map_err(WireError::Io)?;
    Ok(Some(frame))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        enc.put_u32(0xdead_beef);
        enc.put_u64(u64::MAX);
        enc.put_i64(-42);
        enc.put_bool(true);
        enc.put_str("snapshot");
        enc.put_ts(Ts::new(99));
        enc.put_ts(Ts::NEG_INF);
        enc.put_ts(Ts::INF);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_u8().unwrap(), 7);
        assert_eq!(dec.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(dec.get_u64().unwrap(), u64::MAX);
        assert_eq!(dec.get_i64().unwrap(), -42);
        assert!(dec.get_bool().unwrap());
        assert_eq!(dec.get_str().unwrap(), "snapshot");
        assert_eq!(dec.get_ts().unwrap(), Ts::new(99));
        assert_eq!(dec.get_ts().unwrap(), Ts::NEG_INF);
        assert_eq!(dec.get_ts().unwrap(), Ts::INF);
        dec.finish().unwrap();
    }

    #[test]
    fn frame_roundtrip_and_header_checks() {
        let frame = encode_frame(3, |e| e.put_u32(12345));
        let mut dec = open_frame(&frame, 3).unwrap();
        assert_eq!(dec.get_u32().unwrap(), 12345);
        dec.finish().unwrap();

        assert!(matches!(
            open_frame(&frame, 4),
            Err(CodecError::BadKind {
                expected: 4,
                found: 3
            })
        ));
        let mut bad = frame.clone();
        bad[0] = b'X';
        assert!(matches!(open_frame(&bad, 3), Err(CodecError::BadMagic(_))));
        let mut bad = frame.clone();
        bad[4] = 99;
        assert!(matches!(
            open_frame(&bad, 3),
            Err(CodecError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let frame = encode_frame(1, |e| {
            e.put_str("payload");
            e.put_u64(7);
        });
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            assert!(open_frame(&bad, 1).is_err(), "flip at byte {i} undetected");
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let frame = encode_frame(1, |e| e.put_bytes(&[1, 2, 3, 4, 5]));
        for keep in 0..frame.len() {
            assert!(
                open_frame(&frame[..keep], 1).is_err(),
                "prefix {keep} accepted"
            );
        }
    }

    #[test]
    fn section_length_lie_is_bounded() {
        // A section claiming more bytes than the frame holds must be a
        // typed error even when the checksum is made to agree.
        let mut enc = Encoder::new();
        enc.buf.extend_from_slice(&MAGIC);
        enc.put_u32(FORMAT_VERSION);
        enc.put_u8(1);
        enc.put_u64(1 << 40); // section length lie
        let sum = fnv1a(&enc.buf);
        enc.put_u64(sum);
        let bytes = enc.into_bytes();
        let mut dec = open_frame(&bytes, 1).unwrap();
        assert!(matches!(
            dec.section(),
            Err(CodecError::SectionLength { .. })
        ));
    }

    #[test]
    fn lying_count_cannot_overallocate() {
        let mut enc = Encoder::new();
        enc.put_u64(u64::MAX); // count lie
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(dec.get_count(4).is_err());
        let mut dec = Decoder::new(&bytes);
        assert!(dec.get_bytes().is_err());
    }

    #[test]
    fn sections_nest_and_skip() {
        let mut enc = Encoder::new();
        enc.section(|e| {
            e.put_u32(1);
            e.section(|e| e.put_str("inner"));
        });
        enc.put_u32(2);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        {
            let mut s = dec.section().unwrap();
            assert_eq!(s.get_u32().unwrap(), 1);
            let mut inner = s.section().unwrap();
            assert_eq!(inner.get_str().unwrap(), "inner");
            inner.finish().unwrap();
            s.finish().unwrap();
        }
        assert_eq!(dec.get_u32().unwrap(), 2);
        dec.finish().unwrap();
    }

    #[test]
    fn wire_frames_roundtrip_and_detect_eof() {
        let f1 = encode_frame(7, |e| e.put_str("first"));
        let f2 = encode_frame(8, |e| e.put_u64(2));
        let mut buf = Vec::new();
        write_wire_frame(&mut buf, &f1).unwrap();
        write_wire_frame(&mut buf, &f2).unwrap();
        let mut r = &buf[..];
        let got1 = read_wire_frame(&mut r, 1 << 20).unwrap().unwrap();
        assert_eq!(frame_kind(&got1).unwrap(), 7);
        assert_eq!(got1, f1);
        let got2 = read_wire_frame(&mut r, 1 << 20).unwrap().unwrap();
        assert_eq!(got2, f2);
        assert!(read_wire_frame(&mut r, 1 << 20).unwrap().is_none());

        // Truncation inside a prefix or inside a body is an Io error (not
        // a clean end-of-stream) once the reader drains up to the cut.
        for cut in [1usize, 3, 5, buf.len() - 1] {
            let mut r = &buf[..cut];
            let outcome = loop {
                match read_wire_frame(&mut r, 1 << 20) {
                    Ok(Some(_)) => continue,
                    other => break other,
                }
            };
            assert!(
                matches!(outcome, Err(WireError::Io(_))),
                "cut at {cut} not detected: {outcome:?}"
            );
        }
        // An oversized declaration is refused before any allocation.
        let mut lying = Vec::new();
        lying.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = &lying[..];
        assert!(matches!(
            read_wire_frame(&mut r, 1 << 20),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn frame_kind_checks_header_only() {
        let frame = encode_frame(9, |e| e.put_u8(1));
        assert_eq!(frame_kind(&frame).unwrap(), 9);
        let mut bad = frame.clone();
        bad[0] = b'Y';
        assert!(matches!(frame_kind(&bad), Err(CodecError::BadMagic(_))));
        let mut bad = frame.clone();
        bad[4] = 77;
        assert!(matches!(
            frame_kind(&bad),
            Err(CodecError::UnsupportedVersion(77))
        ));
        // A checksum flip passes frame_kind (dispatch) but not open_frame.
        let mut bad = frame.clone();
        let at = bad.len() - 1;
        bad[at] ^= 1;
        assert_eq!(frame_kind(&bad).unwrap(), 9);
        assert!(matches!(
            open_frame(&bad, 9),
            Err(CodecError::Checksum { .. })
        ));
    }

    #[test]
    fn bits_roundtrip_rejects_phantom_bits() {
        let mut b = DenseBits::new(70);
        b.set(0);
        b.set(69);
        let mut enc = Encoder::new();
        enc.put_bits(&b);
        let bytes = enc.into_bytes();
        let got = Decoder::new(&bytes).get_bits(70).unwrap();
        assert_eq!(got, b);
        assert!(Decoder::new(&bytes).get_bits(71).is_err());
        // Forge a bit past the capacity: the decode must refuse it.
        let mut forged = bytes.clone();
        let last = forged.len() - 1;
        forged[last] |= 0x80; // bit 127 of a 70-bit map
        assert!(Decoder::new(&forged).get_bits(70).is_err());
    }
}
