//! The live windowed data graph `g` (§III "Updating the data structures").
//!
//! Edges arrive in chronological order and expire in the same order, so each
//! vertex-pair bucket is a queue: arrivals push at the back, expirations pop
//! from the front (the paper's "removing the edge from the front of the
//! adjacency list"). Adjacency is a per-vertex hash map from neighbour to a
//! shared pair bucket, so parallel edges between the same endpoints are
//! iterated without rescanning the whole neighbourhood.

use crate::data::{EdgeKey, TemporalEdge, VertexId};
use crate::fx::FxHashMap;
use crate::query::Direction;
use crate::time::Ts;
use crate::{EdgeLabel, Label, EDGE_LABEL_ANY};
use std::collections::VecDeque;

/// Constraint a data edge must satisfy to match a given (oriented) query
/// edge: label compatibility plus an optional direction requirement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeConstraint {
    /// Required edge label ([`EDGE_LABEL_ANY`] accepts everything).
    pub label: EdgeLabel,
    /// Direction requirement, expressed relative to the *pair bucket's*
    /// canonical `(a, b)` endpoint order via [`EdgeConstraint::matches`].
    pub direction: Direction,
    /// When `direction == AToB`: true if the query-edge source maps to the
    /// bucket's `a` endpoint, false if it maps to `b`.
    pub src_is_a: bool,
}

impl EdgeConstraint {
    /// Unconstrained (undirected, any label).
    pub const ANY: EdgeConstraint = EdgeConstraint {
        label: EDGE_LABEL_ANY,
        direction: Direction::Undirected,
        src_is_a: true,
    };

    /// Does the alive edge `rec` (stored in a bucket with canonical order
    /// `(a, b)`) satisfy this constraint?
    #[inline]
    pub fn matches(&self, rec: &EdgeRecord) -> bool {
        (self.label == EDGE_LABEL_ANY || self.label == rec.label)
            && match self.direction {
                Direction::Undirected => true,
                Direction::AToB => rec.src_is_a == self.src_is_a,
            }
    }
}

/// One alive edge inside a pair bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeRecord {
    /// Stable identity.
    pub key: EdgeKey,
    /// Arrival timestamp.
    pub time: Ts,
    /// Edge label.
    pub label: EdgeLabel,
    /// True iff the original edge's `src` is the bucket's canonical `a`
    /// endpoint (`a < b`).
    pub src_is_a: bool,
}

/// All alive parallel edges between one vertex pair, in arrival order.
#[derive(Clone, Debug, Default)]
pub struct PairEdges {
    /// Canonical smaller endpoint.
    pub a: VertexId,
    /// Canonical larger endpoint.
    pub b: VertexId,
    edges: VecDeque<EdgeRecord>,
}

impl PairEdges {
    /// Alive edges in arrival order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = &EdgeRecord> + Clone {
        self.edges.iter()
    }

    /// Alive edges matching `c`, in arrival order.
    #[inline]
    pub fn iter_matching(
        &self,
        c: EdgeConstraint,
    ) -> impl Iterator<Item = &EdgeRecord> + Clone {
        self.edges.iter().filter(move |r| c.matches(r))
    }

    /// Largest alive timestamp among edges matching `c`.
    pub fn max_time(&self, c: EdgeConstraint) -> Option<Ts> {
        self.iter_matching(c).map(|r| r.time).max()
    }

    /// Smallest alive timestamp among edges matching `c`.
    pub fn min_time(&self, c: EdgeConstraint) -> Option<Ts> {
        self.iter_matching(c).map(|r| r.time).min()
    }

    /// Number of alive parallel edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when no edge is alive (the bucket is then dropped).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// The live windowed graph.
#[derive(Clone, Debug)]
pub struct WindowGraph {
    labels: Vec<Label>,
    /// `adj[v][w]` = bucket of alive edges between `v` and `w`.
    adj: Vec<FxHashMap<VertexId, PairEdges>>,
    alive_edges: usize,
    directed: bool,
}

impl WindowGraph {
    /// Empty window over a fixed vertex set.
    pub fn new(labels: Vec<Label>, directed: bool) -> WindowGraph {
        let n = labels.len();
        WindowGraph {
            labels,
            adj: (0..n).map(|_| FxHashMap::default()).collect(),
            alive_edges: 0,
            directed,
        }
    }

    /// Whether edge direction is semantically meaningful for this graph.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Vertex label.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v as usize]
    }

    /// Total vertex count (fixed for the stream's lifetime).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of currently alive edges.
    #[inline]
    pub fn num_alive_edges(&self) -> usize {
        self.alive_edges
    }

    /// Number of alive edges incident to `v` (counting parallels).
    pub fn alive_degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].values().map(|p| p.len()).sum()
    }

    /// Inserts an arriving edge. Panics if it is older than an already-alive
    /// edge between the same endpoints (arrival order violated).
    pub fn insert(&mut self, e: &TemporalEdge) {
        let (a, b) = (e.src.min(e.dst), e.src.max(e.dst));
        let rec = EdgeRecord {
            key: e.key,
            time: e.time,
            label: e.label,
            src_is_a: e.src == a,
        };
        for &(v, w) in &[(a, b), (b, a)] {
            let bucket = self.adj[v as usize].entry(w).or_insert_with(|| PairEdges {
                a,
                b,
                edges: VecDeque::new(),
            });
            if let Some(last) = bucket.edges.back() {
                debug_assert!(last.time <= rec.time, "out-of-order arrival");
            }
            bucket.edges.push_back(rec);
        }
        self.alive_edges += 1;
    }

    /// Removes an expiring edge. Expiry order equals arrival order, so the
    /// edge must sit at the front of its bucket.
    ///
    /// # Panics
    /// Panics if the edge is not alive or not the oldest of its bucket.
    pub fn remove(&mut self, e: &TemporalEdge) {
        let (a, b) = (e.src.min(e.dst), e.src.max(e.dst));
        for &(v, w) in &[(a, b), (b, a)] {
            let m = &mut self.adj[v as usize];
            let bucket = m.get_mut(&w).expect("expiring edge has no bucket");
            let front = bucket.edges.pop_front().expect("bucket empty");
            assert_eq!(front.key, e.key, "expiry order violated");
            if bucket.edges.is_empty() {
                m.remove(&w);
            }
        }
        self.alive_edges -= 1;
    }

    /// The bucket of alive edges between `v` and `w`, if any.
    #[inline]
    pub fn pair(&self, v: VertexId, w: VertexId) -> Option<&PairEdges> {
        self.adj[v as usize].get(&w)
    }

    /// Iterates `(neighbour, bucket)` over all alive neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, &PairEdges)> {
        self.adj[v as usize].iter().map(|(&w, p)| (w, p))
    }

    /// Number of distinct alive neighbours of `v`.
    #[inline]
    pub fn num_neighbors(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// Iterates every alive pair bucket exactly once.
    pub fn buckets(&self) -> impl Iterator<Item = &PairEdges> {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(v, m)| {
                m.values()
                    .filter(move |p| p.a as usize == v)
            })
    }

    /// Builds the [`EdgeConstraint`] for matching a query edge onto the pair
    /// `(vsrc, vdst)` where `vsrc` is the image of the query edge's source
    /// endpoint. `required_dir` is the query edge's direction requirement.
    #[inline]
    pub fn constraint_for(
        &self,
        vsrc: VertexId,
        vdst: VertexId,
        required_dir: Direction,
        label: EdgeLabel,
    ) -> EdgeConstraint {
        let direction = if self.directed { required_dir } else { Direction::Undirected };
        EdgeConstraint {
            label,
            direction,
            src_is_a: vsrc < vdst,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::TemporalGraphBuilder;

    fn setup() -> (WindowGraph, Vec<TemporalEdge>) {
        let mut b = TemporalGraphBuilder::new();
        let v0 = b.vertex(0);
        let v1 = b.vertex(1);
        let v2 = b.vertex(0);
        b.edge_full(v0, v1, 1, 10);
        b.edge_full(v1, v0, 2, 11); // parallel, reversed storage order
        b.edge_full(v1, v2, 3, 10);
        let g = b.build().unwrap();
        let w = WindowGraph::new(g.labels().to_vec(), false);
        (w, g.edges().to_vec())
    }

    #[test]
    fn insert_query_remove() {
        let (mut w, es) = setup();
        for e in &es {
            w.insert(e);
        }
        assert_eq!(w.num_alive_edges(), 3);
        assert_eq!(w.alive_degree(1), 3);
        assert_eq!(w.num_neighbors(1), 2);
        let p = w.pair(0, 1).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.min_time(EdgeConstraint::ANY), Some(Ts::new(1)));
        assert_eq!(p.max_time(EdgeConstraint::ANY), Some(Ts::new(2)));
        // Expire in arrival order.
        w.remove(&es[0]);
        assert_eq!(w.pair(0, 1).unwrap().len(), 1);
        w.remove(&es[1]);
        assert!(w.pair(0, 1).is_none());
        assert_eq!(w.num_alive_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "expiry order violated")]
    fn out_of_order_expiry_panics() {
        let (mut w, es) = setup();
        for e in &es {
            w.insert(e);
        }
        w.remove(&es[1]); // es[0] arrived earlier between the same pair
    }

    #[test]
    fn label_constraint_filters() {
        let (mut w, es) = setup();
        for e in &es {
            w.insert(e);
        }
        let p = w.pair(0, 1).unwrap();
        let only_11 = EdgeConstraint {
            label: 11,
            direction: Direction::Undirected,
            src_is_a: true,
        };
        let got: Vec<_> = p.iter_matching(only_11).map(|r| r.time.raw()).collect();
        assert_eq!(got, vec![2]);
    }

    #[test]
    fn direction_constraint_filters_in_directed_mode() {
        let mut b = TemporalGraphBuilder::new();
        let v0 = b.vertex(0);
        let v1 = b.vertex(0);
        b.edge(v0, v1, 1); // 0 -> 1
        b.edge(v1, v0, 2); // 1 -> 0
        let g = b.build().unwrap();
        let mut w = WindowGraph::new(g.labels().to_vec(), true);
        for e in g.edges() {
            w.insert(e);
        }
        let p = w.pair(0, 1).unwrap();
        // Require direction 0 -> 1 (source maps to canonical a = 0).
        let c = w.constraint_for(0, 1, Direction::AToB, EDGE_LABEL_ANY);
        let got: Vec<_> = p.iter_matching(c).map(|r| r.time.raw()).collect();
        assert_eq!(got, vec![1]);
        // Require direction 1 -> 0.
        let c = w.constraint_for(1, 0, Direction::AToB, EDGE_LABEL_ANY);
        let got: Vec<_> = p.iter_matching(c).map(|r| r.time.raw()).collect();
        assert_eq!(got, vec![2]);
    }

    #[test]
    fn undirected_mode_ignores_direction_requirement() {
        let (mut w, es) = setup();
        for e in &es {
            w.insert(e);
        }
        let c = w.constraint_for(1, 0, Direction::AToB, EDGE_LABEL_ANY);
        assert_eq!(c.direction, Direction::Undirected);
        assert_eq!(w.pair(0, 1).unwrap().iter_matching(c).count(), 2);
    }
}
