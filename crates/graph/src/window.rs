//! The live windowed data graph `g` (§III "Updating the data structures").
//!
//! Edges arrive in chronological order and expire in the same order, so each
//! vertex-pair bucket is a queue: arrivals push at the back, expirations pop
//! from the front (the paper's "removing the edge from the front of the
//! adjacency list").
//!
//! # Layout
//!
//! Adjacency is *flat and index-addressed*, not hash-keyed: every alive
//! vertex pair owns one [`PairEdges`] bucket in a slab, identified by a
//! stable [`PairId`] that survives for the bucket's whole lifetime. Each
//! vertex keeps its neighbours as a **sorted** `(neighbour, PairId)` array,
//! so `pair(v, w)` is a binary search, neighbourhood scans are contiguous
//! slice walks, and downstream structures (the DCS multiplicity index, the
//! filter tables) can use the `PairId` as a direct array index instead of
//! hashing `(v, w)` tuples.
//!
//! # Deferred bucket reclamation
//!
//! When the last edge of a bucket expires, the bucket becomes *dying*: it is
//! hidden from every iteration/accessor (`pair`, `neighbors`, `buckets`,
//! `num_neighbors`) but its `PairId` remains resolvable via [`WindowGraph::pair_id`]
//! until the **next** mutation, which recycles it. This gives the filter and
//! DCS layers — which process an expiration *after* the window was updated —
//! a stable id to index their removal deltas with, without any hash lookups
//! and without dangling ids.
//!
//! # Batched mutation
//!
//! A same-timestamp delta batch removes (or inserts) several edges before
//! the filter/DCS layers run once over the combined delta, so *several*
//! buckets may be dying at once and all of their ids must stay resolvable
//! until that batch's downstream processing completes. The batch protocol
//! is: call [`WindowGraph::begin_batch`] (which reclaims every bucket left
//! dying by the previous event or batch), then apply the batch's mutations
//! with [`WindowGraph::insert_deferred`] / [`WindowGraph::remove_deferred`]
//! — which never reclaim. The serial [`WindowGraph::insert`] /
//! [`WindowGraph::remove`] are exactly `begin_batch` + the deferred form,
//! i.e. a batch of size one, so the two regimes share every invariant.

use crate::codec::{CodecError, Decoder, Encoder};
use crate::data::{EdgeKey, TemporalEdge, VertexId};
use crate::query::Direction;
use crate::time::Ts;
use crate::{EdgeLabel, Label, EDGE_LABEL_ANY};
use std::collections::VecDeque;

/// Stable index of an alive (or currently dying) pair bucket.
pub type PairId = u32;

/// Constraint a data edge must satisfy to match a given (oriented) query
/// edge: label compatibility plus an optional direction requirement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeConstraint {
    /// Required edge label ([`EDGE_LABEL_ANY`] accepts everything).
    pub label: EdgeLabel,
    /// Direction requirement, expressed relative to the *pair bucket's*
    /// canonical `(a, b)` endpoint order via [`EdgeConstraint::matches`].
    pub direction: Direction,
    /// When `direction == AToB`: true if the query-edge source maps to the
    /// bucket's `a` endpoint, false if it maps to `b`.
    pub src_is_a: bool,
}

impl EdgeConstraint {
    /// Unconstrained (undirected, any label).
    pub const ANY: EdgeConstraint = EdgeConstraint {
        label: EDGE_LABEL_ANY,
        direction: Direction::Undirected,
        src_is_a: true,
    };

    /// Does the alive edge `rec` (stored in a bucket with canonical order
    /// `(a, b)`) satisfy this constraint?
    #[inline]
    pub fn matches(&self, rec: &EdgeRecord) -> bool {
        (self.label == EDGE_LABEL_ANY || self.label == rec.label)
            && match self.direction {
                Direction::Undirected => true,
                Direction::AToB => rec.src_is_a == self.src_is_a,
            }
    }
}

/// One alive edge inside a pair bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeRecord {
    /// Stable identity.
    pub key: EdgeKey,
    /// Arrival timestamp.
    pub time: Ts,
    /// Edge label.
    pub label: EdgeLabel,
    /// True iff the original edge's `src` is the bucket's canonical `a`
    /// endpoint (`a < b`).
    pub src_is_a: bool,
}

/// All alive parallel edges between one vertex pair, in arrival order.
#[derive(Clone, Debug, Default)]
pub struct PairEdges {
    /// Canonical smaller endpoint.
    pub a: VertexId,
    /// Canonical larger endpoint.
    pub b: VertexId,
    edges: VecDeque<EdgeRecord>,
}

impl PairEdges {
    /// Alive edges in arrival order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = &EdgeRecord> + Clone {
        self.edges.iter()
    }

    /// Alive edges matching `c`, in arrival order.
    #[inline]
    pub fn iter_matching(&self, c: EdgeConstraint) -> impl Iterator<Item = &EdgeRecord> + Clone {
        self.edges.iter().filter(move |r| c.matches(r))
    }

    /// Largest alive timestamp among edges matching `c`. Records are kept
    /// in arrival order (= non-decreasing time), so the scan runs from the
    /// back and stops at the first match.
    pub fn max_time(&self, c: EdgeConstraint) -> Option<Ts> {
        self.edges
            .iter()
            .rev()
            .find(|r| c.matches(r))
            .map(|r| r.time)
    }

    /// Smallest alive timestamp among edges matching `c` (first match from
    /// the front, by the same ordering argument).
    pub fn min_time(&self, c: EdgeConstraint) -> Option<Ts> {
        self.edges.iter().find(|r| c.matches(r)).map(|r| r.time)
    }

    /// Number of alive parallel edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when no edge is alive (the bucket is then hidden and recycled).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// The live windowed graph.
#[derive(Clone, Debug)]
pub struct WindowGraph {
    labels: Vec<Label>,
    /// Sorted `(neighbour, bucket id)` array per vertex. Entries of dying
    /// buckets linger until the next mutation.
    adj: Vec<Vec<(VertexId, PairId)>>,
    /// The pair-bucket slab; `free` holds recycled slots.
    buckets: Vec<PairEdges>,
    free: Vec<PairId>,
    /// Buckets emptied by the current event/batch, still resolvable by id
    /// (at most one in serial mode; one per drained pair in a delta batch).
    dying: Vec<PairId>,
    /// Non-empty bucket count per vertex (`num_neighbors` in O(1)).
    live_deg: Vec<u32>,
    alive_edges: usize,
    directed: bool,
}

impl WindowGraph {
    /// Empty window over a fixed vertex set.
    pub fn new(labels: Vec<Label>, directed: bool) -> WindowGraph {
        let n = labels.len();
        WindowGraph {
            labels,
            adj: vec![Vec::new(); n],
            buckets: Vec::new(),
            free: Vec::new(),
            dying: Vec::new(),
            live_deg: vec![0; n],
            alive_edges: 0,
            directed,
        }
    }

    /// Whether edge direction is semantically meaningful for this graph.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Vertex label.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v as usize]
    }

    /// Total vertex count (fixed for the stream's lifetime).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of currently alive edges.
    #[inline]
    pub fn num_alive_edges(&self) -> usize {
        self.alive_edges
    }

    /// Number of alive edges incident to `v` (counting parallels).
    pub fn alive_degree(&self, v: VertexId) -> usize {
        self.adj[v as usize]
            .iter()
            .map(|&(_, id)| self.buckets[id as usize].len())
            .sum()
    }

    /// Size of the bucket slab (upper bound on every live [`PairId`] + 1).
    /// Downstream pair-indexed tables size themselves with this.
    #[inline]
    pub fn pair_slab_len(&self) -> usize {
        self.buckets.len()
    }

    /// Position of `w` in `adj[v]`, if present (dying entries included).
    #[inline]
    fn adj_pos(&self, v: VertexId, w: VertexId) -> Result<usize, usize> {
        self.adj[v as usize].binary_search_by_key(&w, |&(x, _)| x)
    }

    /// Recycles every bucket emptied by the previous event/batch, if any.
    fn flush_dying(&mut self) {
        while let Some(id) = self.dying.pop() {
            let (a, b) = {
                let p = &self.buckets[id as usize];
                debug_assert!(p.is_empty(), "dying bucket refilled");
                (p.a, p.b)
            };
            for &(v, w) in &[(a, b), (b, a)] {
                let pos = self
                    .adj_pos(v, w)
                    .expect("dying bucket has adjacency entries");
                self.adj[v as usize].remove(pos);
            }
            self.free.push(id);
        }
    }

    /// Opens a delta batch: reclaims the buckets left dying by the previous
    /// event or batch, so their [`PairId`]s are recycled and every id handed
    /// out during the new batch stays resolvable until the *next* batch.
    /// Serial [`WindowGraph::insert`]/[`WindowGraph::remove`] do this
    /// implicitly per event.
    #[inline]
    pub fn begin_batch(&mut self) {
        self.flush_dying();
    }

    /// Inserts an arriving edge. Panics if it is older than an already-alive
    /// edge between the same endpoints (arrival order violated).
    pub fn insert(&mut self, e: &TemporalEdge) {
        self.flush_dying();
        self.insert_deferred(e);
    }

    /// [`WindowGraph::insert`] without the implicit reclamation — one
    /// mutation inside an open batch (see the module docs).
    pub fn insert_deferred(&mut self, e: &TemporalEdge) {
        let (a, b) = (e.src.min(e.dst), e.src.max(e.dst));
        let rec = EdgeRecord {
            key: e.key,
            time: e.time,
            label: e.label,
            src_is_a: e.src == a,
        };
        let id = match self.adj_pos(a, b) {
            Ok(pos) => {
                let id = self.adj[a as usize][pos].1;
                // Kind-homogeneous batches can't revive a bucket drained
                // earlier in the same batch; a hit here must be alive.
                debug_assert!(
                    !self.buckets[id as usize].is_empty(),
                    "insert into a dying bucket (half-applied batch?)"
                );
                id
            }
            Err(pos_a) => {
                let id = match self.free.pop() {
                    Some(id) => {
                        let p = &mut self.buckets[id as usize];
                        p.a = a;
                        p.b = b;
                        id
                    }
                    None => {
                        self.buckets.push(PairEdges {
                            a,
                            b,
                            edges: VecDeque::new(),
                        });
                        (self.buckets.len() - 1) as PairId
                    }
                };
                self.adj[a as usize].insert(pos_a, (b, id));
                if a != b {
                    let pos_b = self.adj_pos(b, a).expect_err("asymmetric adjacency");
                    self.adj[b as usize].insert(pos_b, (a, id));
                }
                self.live_deg[a as usize] += 1;
                self.live_deg[b as usize] += 1;
                id
            }
        };
        let bucket = &mut self.buckets[id as usize];
        if let Some(last) = bucket.edges.back() {
            debug_assert!(last.time <= rec.time, "out-of-order arrival");
        }
        bucket.edges.push_back(rec);
        self.alive_edges += 1;
    }

    /// Removes an expiring edge. Expiry order equals arrival order, so the
    /// edge must sit at the front of its bucket.
    ///
    /// # Panics
    /// Panics if the edge is not alive or not the oldest of its bucket.
    pub fn remove(&mut self, e: &TemporalEdge) {
        self.flush_dying();
        self.remove_deferred(e);
    }

    /// [`WindowGraph::remove`] without the implicit reclamation — one
    /// mutation inside an open batch. Every bucket the batch drains joins
    /// the dying set and stays id-resolvable until the next
    /// [`WindowGraph::begin_batch`] (or serial mutation).
    pub fn remove_deferred(&mut self, e: &TemporalEdge) {
        let (a, b) = (e.src.min(e.dst), e.src.max(e.dst));
        let pos = self
            .adj_pos(a, b)
            .unwrap_or_else(|_| panic!("expiring edge has no bucket"));
        let id = self.adj[a as usize][pos].1;
        let bucket = &mut self.buckets[id as usize];
        let front = bucket.edges.pop_front().expect("bucket empty");
        assert_eq!(front.key, e.key, "expiry order violated");
        if bucket.edges.is_empty() {
            // Keep the id resolvable for the rest of this batch's processing.
            self.dying.push(id);
            self.live_deg[a as usize] -= 1;
            self.live_deg[b as usize] -= 1;
        }
        self.alive_edges -= 1;
    }

    /// The bucket of alive edges between `v` and `w`, if any.
    #[inline]
    pub fn pair(&self, v: VertexId, w: VertexId) -> Option<&PairEdges> {
        match self.adj_pos(v, w) {
            Ok(pos) => {
                let p = &self.buckets[self.adj[v as usize][pos].1 as usize];
                (!p.is_empty()).then_some(p)
            }
            Err(_) => None,
        }
    }

    /// Stable bucket id for the pair `(v, w)`. Unlike [`WindowGraph::pair`]
    /// this also resolves the bucket emptied by the current event, so
    /// removal deltas can still be index-addressed downstream.
    #[inline]
    pub fn pair_id(&self, v: VertexId, w: VertexId) -> Option<PairId> {
        match self.adj_pos(v, w) {
            Ok(pos) => Some(self.adj[v as usize][pos].1),
            Err(_) => None,
        }
    }

    /// Bucket by stable id (dying buckets read as empty).
    #[inline]
    pub fn pair_by_id(&self, id: PairId) -> &PairEdges {
        &self.buckets[id as usize]
    }

    /// Iterates `(neighbour, bucket)` over all alive neighbours of `v`, in
    /// ascending neighbour order.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, &PairEdges)> {
        self.adj[v as usize].iter().filter_map(move |&(w, id)| {
            let p = &self.buckets[id as usize];
            (!p.is_empty()).then_some((w, p))
        })
    }

    /// Like [`WindowGraph::neighbors`] but also yields the stable bucket id,
    /// for index-addressed lookups in downstream pair tables.
    #[inline]
    pub fn neighbors_with_ids(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, PairId, &PairEdges)> {
        self.adj[v as usize].iter().filter_map(move |&(w, id)| {
            let p = &self.buckets[id as usize];
            (!p.is_empty()).then_some((w, id, p))
        })
    }

    /// Number of distinct alive neighbours of `v` (O(1)).
    #[inline]
    pub fn num_neighbors(&self, v: VertexId) -> usize {
        self.live_deg[v as usize] as usize
    }

    /// The raw sorted `(neighbour, bucket id)` array of `v` — the substrate
    /// for merge-style intersections against pair-indexed tables. Unlike
    /// [`WindowGraph::neighbors`] this may include entries of currently
    /// dying (empty) buckets; callers must gate on bucket emptiness or on a
    /// pair-indexed quantity that is zero for drained buckets (e.g. DCS
    /// multiplicities).
    #[inline]
    pub fn neighbor_entries(&self, v: VertexId) -> &[(VertexId, PairId)] {
        &self.adj[v as usize]
    }

    /// Iterates every alive pair bucket exactly once.
    pub fn buckets(&self) -> impl Iterator<Item = &PairEdges> {
        self.buckets.iter().filter(|p| !p.is_empty())
    }

    /// Serializes the complete window state — pair-bucket slab (free and
    /// dying lists included), sorted adjacency, degree census — so a
    /// restored window is **byte-identical**, not merely content-equal:
    /// future [`PairId`] allocation and recycling proceed exactly as in the
    /// uninterrupted run, which downstream pair-indexed slabs (DCS
    /// multiplicities) rely on.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_bool(self.directed);
        enc.put_usize(self.labels.len());
        enc.put_usize(self.alive_edges);
        enc.put_usize(self.buckets.len());
        for p in &self.buckets {
            enc.put_u32(p.a);
            enc.put_u32(p.b);
            enc.put_usize(p.edges.len());
            for r in &p.edges {
                enc.put_u32(r.key.0);
                enc.put_ts(r.time);
                enc.put_u32(r.label);
                enc.put_bool(r.src_is_a);
            }
        }
        enc.put_usize(self.free.len());
        for &id in &self.free {
            enc.put_u32(id);
        }
        enc.put_usize(self.dying.len());
        for &id in &self.dying {
            enc.put_u32(id);
        }
        for row in &self.adj {
            enc.put_usize(row.len());
            for &(w, id) in row {
                enc.put_u32(w);
                enc.put_u32(id);
            }
        }
    }

    /// Overlays serialized state onto a freshly constructed window (same
    /// vertex set, same direction mode). Every index is bounds-checked and
    /// the structural invariants (sorted adjacency, degree census, alive
    /// count, empty free/dying buckets) are re-validated, so corrupt input
    /// surfaces as a typed [`CodecError`] instead of a later panic.
    pub fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        let invalid = |msg: &str| CodecError::Invalid(format!("window: {msg}"));
        let n = self.labels.len();
        if dec.get_bool()? != self.directed {
            return Err(invalid("direction mode mismatch"));
        }
        if dec.get_usize()? != n {
            return Err(invalid("vertex count mismatch"));
        }
        let alive_edges = dec.get_usize()?;
        let num_buckets = dec.get_count(10)?;
        let mut buckets = Vec::with_capacity(num_buckets);
        let mut edge_total = 0usize;
        for _ in 0..num_buckets {
            let a = dec.get_u32()?;
            let b = dec.get_u32()?;
            if a as usize >= n || b as usize >= n {
                return Err(invalid("bucket endpoint out of range"));
            }
            let len = dec.get_count(14)?;
            let mut edges = VecDeque::with_capacity(len);
            let mut prev: Option<Ts> = None;
            for _ in 0..len {
                let rec = EdgeRecord {
                    key: EdgeKey(dec.get_u32()?),
                    time: dec.get_ts()?,
                    label: dec.get_u32()?,
                    src_is_a: dec.get_bool()?,
                };
                if prev.is_some_and(|p| p > rec.time) {
                    return Err(invalid("bucket edges out of arrival order"));
                }
                prev = Some(rec.time);
                edges.push_back(rec);
            }
            edge_total += len;
            buckets.push(PairEdges { a, b, edges });
        }
        if edge_total != alive_edges {
            return Err(invalid("alive-edge count disagrees with buckets"));
        }
        let get_ids =
            |dec: &mut Decoder<'_>, must_be_empty: &str| -> Result<Vec<PairId>, CodecError> {
                let len = dec.get_count(4)?;
                let mut ids = Vec::with_capacity(len);
                for _ in 0..len {
                    let id = dec.get_u32()?;
                    let Some(bucket) = buckets.get(id as usize) else {
                        return Err(CodecError::Invalid(format!(
                            "window: {must_be_empty} id {id} out of range"
                        )));
                    };
                    if !bucket.edges.is_empty() {
                        return Err(CodecError::Invalid(format!(
                            "window: {must_be_empty} bucket {id} is not empty"
                        )));
                    }
                    ids.push(id);
                }
                Ok(ids)
            };
        let free = get_ids(dec, "free")?;
        let dying = get_ids(dec, "dying")?;
        let mut adj: Vec<Vec<(VertexId, PairId)>> = Vec::with_capacity(n);
        let mut live_deg = vec![0u32; n];
        let mut adj_entries = 0usize;
        for v in 0..n {
            let len = dec.get_count(8)?;
            let mut row = Vec::with_capacity(len);
            let mut prev: Option<VertexId> = None;
            for _ in 0..len {
                let w = dec.get_u32()?;
                let id = dec.get_u32()?;
                if w as usize >= n {
                    return Err(invalid("adjacency neighbour out of range"));
                }
                let Some(bucket) = buckets.get(id as usize) else {
                    return Err(invalid("adjacency bucket id out of range"));
                };
                if prev.is_some_and(|p| p >= w) {
                    return Err(invalid("adjacency row not strictly sorted"));
                }
                // The entry must name its own bucket's endpoints.
                let (a, b) = (v as VertexId, w);
                if (bucket.a, bucket.b) != (a.min(b), a.max(b)) {
                    return Err(invalid("adjacency entry names a foreign bucket"));
                }
                if !bucket.edges.is_empty() && v as VertexId == bucket.a {
                    live_deg[bucket.a as usize] += 1;
                    live_deg[bucket.b as usize] += 1;
                }
                prev = Some(w);
                row.push((w, id));
            }
            adj_entries += len;
            adj.push(row);
        }
        // Every non-empty or dying bucket must be reachable from exactly
        // two adjacency rows; free buckets from none.
        if adj_entries != (num_buckets - free.len()) * 2 {
            return Err(invalid("adjacency entry count disagrees with buckets"));
        }
        self.buckets = buckets;
        self.free = free;
        self.dying = dying;
        self.adj = adj;
        self.live_deg = live_deg;
        self.alive_edges = alive_edges;
        Ok(())
    }

    /// Builds the [`EdgeConstraint`] for matching a query edge onto the pair
    /// `(vsrc, vdst)` where `vsrc` is the image of the query edge's source
    /// endpoint. `required_dir` is the query edge's direction requirement.
    #[inline]
    pub fn constraint_for(
        &self,
        vsrc: VertexId,
        vdst: VertexId,
        required_dir: Direction,
        label: EdgeLabel,
    ) -> EdgeConstraint {
        let direction = if self.directed {
            required_dir
        } else {
            Direction::Undirected
        };
        EdgeConstraint {
            label,
            direction,
            src_is_a: vsrc < vdst,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::TemporalGraphBuilder;

    fn setup() -> (WindowGraph, Vec<TemporalEdge>) {
        let mut b = TemporalGraphBuilder::new();
        let v0 = b.vertex(0);
        let v1 = b.vertex(1);
        let v2 = b.vertex(0);
        b.edge_full(v0, v1, 1, 10);
        b.edge_full(v1, v0, 2, 11); // parallel, reversed storage order
        b.edge_full(v1, v2, 3, 10);
        let g = b.build().unwrap();
        let w = WindowGraph::new(g.labels().to_vec(), false);
        (w, g.edges().to_vec())
    }

    #[test]
    fn insert_query_remove() {
        let (mut w, es) = setup();
        for e in &es {
            w.insert(e);
        }
        assert_eq!(w.num_alive_edges(), 3);
        assert_eq!(w.alive_degree(1), 3);
        assert_eq!(w.num_neighbors(1), 2);
        let p = w.pair(0, 1).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.min_time(EdgeConstraint::ANY), Some(Ts::new(1)));
        assert_eq!(p.max_time(EdgeConstraint::ANY), Some(Ts::new(2)));
        // Expire in arrival order.
        w.remove(&es[0]);
        assert_eq!(w.pair(0, 1).unwrap().len(), 1);
        w.remove(&es[1]);
        assert!(w.pair(0, 1).is_none());
        assert_eq!(w.num_alive_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "expiry order violated")]
    fn out_of_order_expiry_panics() {
        let (mut w, es) = setup();
        for e in &es {
            w.insert(e);
        }
        w.remove(&es[1]); // es[0] arrived earlier between the same pair
    }

    #[test]
    fn label_constraint_filters() {
        let (mut w, es) = setup();
        for e in &es {
            w.insert(e);
        }
        let p = w.pair(0, 1).unwrap();
        let only_11 = EdgeConstraint {
            label: 11,
            direction: Direction::Undirected,
            src_is_a: true,
        };
        let got: Vec<_> = p.iter_matching(only_11).map(|r| r.time.raw()).collect();
        assert_eq!(got, vec![2]);
    }

    #[test]
    fn direction_constraint_filters_in_directed_mode() {
        let mut b = TemporalGraphBuilder::new();
        let v0 = b.vertex(0);
        let v1 = b.vertex(0);
        b.edge(v0, v1, 1); // 0 -> 1
        b.edge(v1, v0, 2); // 1 -> 0
        let g = b.build().unwrap();
        let mut w = WindowGraph::new(g.labels().to_vec(), true);
        for e in g.edges() {
            w.insert(e);
        }
        let p = w.pair(0, 1).unwrap();
        // Require direction 0 -> 1 (source maps to canonical a = 0).
        let c = w.constraint_for(0, 1, Direction::AToB, EDGE_LABEL_ANY);
        let got: Vec<_> = p.iter_matching(c).map(|r| r.time.raw()).collect();
        assert_eq!(got, vec![1]);
        // Require direction 1 -> 0.
        let c = w.constraint_for(1, 0, Direction::AToB, EDGE_LABEL_ANY);
        let got: Vec<_> = p.iter_matching(c).map(|r| r.time.raw()).collect();
        assert_eq!(got, vec![2]);
    }

    #[test]
    fn undirected_mode_ignores_direction_requirement() {
        let (mut w, es) = setup();
        for e in &es {
            w.insert(e);
        }
        let c = w.constraint_for(1, 0, Direction::AToB, EDGE_LABEL_ANY);
        assert_eq!(c.direction, Direction::Undirected);
        assert_eq!(w.pair(0, 1).unwrap().iter_matching(c).count(), 2);
    }

    #[test]
    fn pair_ids_stay_resolvable_until_next_mutation() {
        let (mut w, es) = setup();
        for e in &es {
            w.insert(e);
        }
        let id01 = w.pair_id(0, 1).unwrap();
        assert_eq!(w.pair_id(1, 0), Some(id01));
        // Drain the (0,1) bucket: id keeps resolving, accessors hide it.
        w.remove(&es[0]);
        w.remove(&es[1]);
        assert!(w.pair(0, 1).is_none());
        assert_eq!(w.pair_id(0, 1), Some(id01));
        assert!(w.pair_by_id(id01).is_empty());
        assert_eq!(w.num_neighbors(0), 0);
        assert_eq!(w.neighbors(1).count(), 1);
        // Next mutation recycles the id.
        w.remove(&es[2]);
        assert_eq!(w.pair_id(0, 1), None);
    }

    #[test]
    fn batch_keeps_every_dying_bucket_resolvable() {
        // Two buckets drain inside one delta batch: both ids must resolve
        // until the next batch opens, then both get reclaimed.
        let mut b = TemporalGraphBuilder::new();
        let v0 = b.vertex(0);
        let v1 = b.vertex(0);
        let v2 = b.vertex(0);
        b.edge(v0, v1, 1);
        b.edge(v1, v2, 1);
        let g = b.build().unwrap();
        let es = g.edges().to_vec();
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        w.begin_batch();
        for e in &es {
            w.insert_deferred(e);
        }
        let id01 = w.pair_id(0, 1).unwrap();
        let id12 = w.pair_id(1, 2).unwrap();
        w.begin_batch();
        for e in &es {
            w.remove_deferred(e);
        }
        assert_eq!(w.num_alive_edges(), 0);
        assert_eq!(w.pair_id(0, 1), Some(id01));
        assert_eq!(w.pair_id(1, 2), Some(id12));
        assert!(w.pair_by_id(id01).is_empty() && w.pair_by_id(id12).is_empty());
        assert!(w.pair(0, 1).is_none() && w.pair(1, 2).is_none());
        assert_eq!(w.neighbors(1).count(), 0);
        // Raw entries still expose the dying buckets (callers gate on them).
        assert_eq!(w.neighbor_entries(1).len(), 2);
        w.begin_batch();
        assert_eq!(w.pair_id(0, 1), None);
        assert_eq!(w.pair_id(1, 2), None);
        assert!(w.neighbor_entries(1).is_empty());
    }

    #[test]
    fn serial_mutations_are_size_one_batches() {
        // remove() = begin_batch() + remove_deferred(): the dying id from a
        // serial removal is reclaimed by the next serial mutation.
        let (mut w, es) = setup();
        for e in &es {
            w.insert(e);
        }
        w.remove(&es[0]);
        w.remove(&es[1]);
        let id01 = w.pair_id(0, 1).unwrap();
        assert!(w.pair_by_id(id01).is_empty());
        w.insert(&es[0]); // next serial mutation reclaims the dying bucket
        assert_ne!(w.pair_id(0, 1), None);
        assert_eq!(w.pair(0, 1).unwrap().len(), 1);
    }

    #[test]
    fn bucket_slab_is_recycled() {
        let (mut w, es) = setup();
        for _ in 0..50 {
            for e in &es {
                w.insert(e);
            }
            for e in &[es[0], es[1], es[2]] {
                w.remove(e);
            }
        }
        // Two distinct pairs ever alive at once → slab stays tiny despite
        // 150 inserts.
        assert!(w.pair_slab_len() <= 3, "slab grew to {}", w.pair_slab_len());
        assert_eq!(w.num_alive_edges(), 0);
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut b = TemporalGraphBuilder::new();
        let vs: Vec<_> = (0..5).map(|_| b.vertex(0)).collect();
        b.edge(vs[2], vs[4], 1);
        b.edge(vs[2], vs[0], 2);
        b.edge(vs[2], vs[3], 3);
        b.edge(vs[2], vs[1], 4);
        let g = b.build().unwrap();
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        for e in g.edges() {
            w.insert(e);
        }
        let order: Vec<VertexId> = w.neighbors(2).map(|(v, _)| v).collect();
        assert_eq!(order, vec![0, 1, 3, 4]);
        let ids: Vec<PairId> = w.neighbors_with_ids(2).map(|(_, id, _)| id).collect();
        assert_eq!(ids.len(), 4);
        for (v, id) in order.iter().zip(&ids) {
            assert_eq!(w.pair_id(2, *v), Some(*id));
        }
    }
}
