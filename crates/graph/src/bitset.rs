//! Fixed-capacity bitsets over at most 64 elements.
//!
//! Query graphs are capped at 64 vertices and 64 edges (the paper evaluates
//! queries of 5–15 edges), which lets temporal-order rows, `R⁺/R⁻` sets and
//! temporal failing sets (Definition V.3) all be single machine words.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of element indices in `0..64`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Set64(u64);

impl Set64 {
    /// The empty set.
    pub const EMPTY: Set64 = Set64(0);

    /// Set containing the single element `i`.
    #[inline]
    pub fn singleton(i: usize) -> Set64 {
        debug_assert!(i < 64);
        Set64(1u64 << i)
    }

    /// Set containing all elements in `0..n`.
    #[inline]
    pub fn all(n: usize) -> Set64 {
        debug_assert!(n <= 64);
        if n == 64 {
            Set64(u64::MAX)
        } else {
            Set64((1u64 << n) - 1)
        }
    }

    #[inline]
    pub fn contains(self, i: usize) -> bool {
        debug_assert!(i < 64);
        self.0 & (1u64 << i) != 0
    }

    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < 64);
        self.0 |= 1u64 << i;
    }

    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < 64);
        self.0 &= !(1u64 << i);
    }

    #[inline]
    pub fn union(self, other: Set64) -> Set64 {
        Set64(self.0 | other.0)
    }

    #[inline]
    pub fn intersect(self, other: Set64) -> Set64 {
        Set64(self.0 & other.0)
    }

    #[inline]
    pub fn difference(self, other: Set64) -> Set64 {
        Set64(self.0 & !other.0)
    }

    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    #[inline]
    pub fn is_subset_of(self, other: Set64) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterates elements in increasing order.
    #[inline]
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }

    /// Raw word, for serialization and tests.
    #[inline]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Builds a set from a raw word.
    #[inline]
    pub fn from_bits(bits: u64) -> Set64 {
        Set64(bits)
    }
}

impl FromIterator<usize> for Set64 {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Set64 {
        let mut s = Set64::EMPTY;
        for i in iter {
            s.insert(i);
        }
        s
    }
}

/// Ascending-order iterator over a [`Set64`].
pub struct Iter(u64);

impl Iterator for Iter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(i)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl fmt::Debug for Set64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// A fixed-capacity flat bitmap over `0..len` elements.
///
/// The dense per-`(query vertex, data vertex)` slabs of the DCS and filter
/// layers store their boolean columns (`d1`, `d2`, existence, defaults) in
/// these: one allocation at construction, O(1) word-indexed access, no
/// hashing and no per-event allocation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DenseBits {
    words: Vec<u64>,
    len: usize,
}

impl DenseBits {
    /// All-zero bitmap with capacity for `len` bits.
    pub fn new(len: usize) -> DenseBits {
        DenseBits {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Bit capacity.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the capacity is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Sets bit `i` to 1.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] &= !(1u64 << (i & 63));
    }

    /// Writes bit `i`; returns the previous value.
    #[inline]
    pub fn replace(&mut self, i: usize, value: bool) -> bool {
        let old = self.get(i);
        if value {
            self.set(i);
        } else {
            self.clear(i);
        }
        old
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clears every bit (keeps the allocation).
    pub fn clear_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// The backing words, for serialization.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bitmap from backing words. Returns `None` when the word
    /// count does not match the capacity or any bit past the capacity is
    /// set — both would silently corrupt censuses like
    /// [`DenseBits::count_ones`], so deserializers must refuse them.
    pub fn from_words(words: Vec<u64>, len: usize) -> Option<DenseBits> {
        if words.len() != len.div_ceil(64) {
            return None;
        }
        if !len.is_multiple_of(64) {
            if let Some(&last) = words.last() {
                if last >> (len % 64) != 0 {
                    return None;
                }
            }
        }
        Some(DenseBits { words, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = Set64::EMPTY;
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(17);
        assert!(s.contains(0) && s.contains(63) && s.contains(17));
        assert_eq!(s.len(), 3);
        s.remove(17);
        assert!(!s.contains(17));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63]);
    }

    #[test]
    fn all_and_set_algebra() {
        let a = Set64::all(5);
        assert_eq!(a.len(), 5);
        let b: Set64 = [3, 4, 5, 6].into_iter().collect();
        assert_eq!(a.intersect(b).iter().collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(a.union(b).len(), 7);
        assert_eq!(a.difference(b).iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(Set64::singleton(3).is_subset_of(a));
        assert!(!b.is_subset_of(a));
        assert_eq!(Set64::all(64).len(), 64);
    }

    #[test]
    fn iterator_is_sorted_and_exact() {
        let s: Set64 = [9, 1, 33, 2].into_iter().collect();
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![1, 2, 9, 33]);
        assert_eq!(s.iter().len(), 4);
    }

    #[test]
    fn dense_bits_roundtrip() {
        let mut b = DenseBits::new(130);
        assert_eq!(b.len(), 130);
        assert!(!b.get(0) && !b.get(129));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129) && !b.get(1));
        assert_eq!(b.count_ones(), 3);
        assert!(b.replace(64, false));
        assert!(!b.get(64));
        assert!(!b.replace(7, true));
        assert!(b.get(7));
        b.clear(0);
        assert!(!b.get(0));
        b.clear_all();
        assert_eq!(b.count_ones(), 0);
    }
}
