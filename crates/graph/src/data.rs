//! Temporal data graphs (Definition II.1).
//!
//! A [`TemporalGraph`] is the *full* history: a vertex-labelled multigraph
//! whose every edge carries a timestamp. It is immutable once built; the
//! streaming view (window `δ`) is derived from it by [`crate::stream`] and
//! materialized incrementally in a [`crate::window::WindowGraph`].

use crate::error::GraphError;
use crate::time::Ts;
use crate::{EdgeLabel, Label};
use serde::{Deserialize, Serialize};

/// Index of a data vertex (`v` in the paper).
pub type VertexId = u32;

/// Stable identity of one data edge across its lifetime (`σ` in the paper).
///
/// Parallel edges between the same endpoints get distinct keys even when
/// they share a timestamp, so `EdgeKey` — not `(u, v, t)` — is the identity
/// used by mappings and the DCS.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeKey(pub u32);

/// One data edge `(src, dst, t)` with an optional label.
///
/// For undirected graphs `src`/`dst` is merely the storage order; direction
/// is only enforced when a query edge demands it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporalEdge {
    /// Stable identity.
    pub key: EdgeKey,
    /// Storage-order source endpoint.
    pub src: VertexId,
    /// Storage-order destination endpoint.
    pub dst: VertexId,
    /// Arrival timestamp `T_G(e)`.
    pub time: Ts,
    /// Edge label (`EDGE_LABEL_ANY`-labelled query edges ignore it).
    pub label: EdgeLabel,
}

impl TemporalEdge {
    /// The opposite endpoint.
    #[inline]
    pub fn other(&self, v: VertexId) -> VertexId {
        if v == self.src {
            self.dst
        } else {
            debug_assert_eq!(v, self.dst);
            self.src
        }
    }
}

/// A complete temporal data graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TemporalGraph {
    labels: Vec<Label>,
    /// Edges sorted by `(time, key)` — i.e., in arrival order.
    edges: Vec<TemporalEdge>,
    /// Position of each key in `edges` (`key_pos[key] = index`).
    key_pos: Vec<usize>,
}

impl TemporalGraph {
    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges over the whole history.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Label of a vertex.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v as usize]
    }

    /// All vertex labels, indexed by `VertexId`.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Edges in arrival order.
    #[inline]
    pub fn edges(&self) -> &[TemporalEdge] {
        &self.edges
    }

    /// Edge by key. Keys are dense (`0..num_edges`) but *not* in arrival
    /// order, so this is an indexed lookup, not `edges()[key]`.
    #[inline]
    pub fn edge(&self, key: EdgeKey) -> &TemporalEdge {
        // Keys are assigned before sorting; maintain a lookup by scanning is
        // O(m); instead we store edges sorted and keep a permutation.
        &self.edges[self.key_pos[key.0 as usize]]
    }

    /// Average number of parallel edges between adjacent vertex pairs
    /// (`mavg` in Table III).
    pub fn avg_parallel_edges(&self) -> f64 {
        let mut pairs: crate::fx::FxHashSet<(VertexId, VertexId)> = crate::fx::FxHashSet::default();
        for e in &self.edges {
            let k = (e.src.min(e.dst), e.src.max(e.dst));
            pairs.insert(k);
        }
        if pairs.is_empty() {
            0.0
        } else {
            self.edges.len() as f64 / pairs.len() as f64
        }
    }

    /// Average degree `2|E| / |V|` (`davg` in Table III; counts parallel
    /// edges like the paper does).
    pub fn avg_degree(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            2.0 * self.edges.len() as f64 / self.labels.len() as f64
        }
    }

    /// Number of distinct vertex labels.
    pub fn num_vertex_labels(&self) -> usize {
        let mut set: Vec<Label> = self.labels.clone();
        set.sort_unstable();
        set.dedup();
        set.len()
    }

    /// Number of distinct edge labels.
    pub fn num_edge_labels(&self) -> usize {
        let mut set: Vec<EdgeLabel> = self.edges.iter().map(|e| e.label).collect();
        set.sort_unstable();
        set.dedup();
        set.len()
    }

    /// Mean gap between consecutive arrival timestamps — the paper's unit
    /// for window sizes ("we set each unit of the window size as the average
    /// time span between two consecutive edges").
    pub fn avg_interarrival(&self) -> f64 {
        if self.edges.len() < 2 {
            return 1.0;
        }
        let first = self
            .edges
            .first()
            .expect("len >= 2 checked above")
            .time
            .raw();
        let last = self
            .edges
            .last()
            .expect("len >= 2 checked above")
            .time
            .raw();
        ((last - first) as f64 / (self.edges.len() - 1) as f64).max(f64::MIN_POSITIVE)
    }
}

/// Incremental constructor for [`TemporalGraph`].
#[derive(Default, Clone, Debug)]
pub struct TemporalGraphBuilder {
    labels: Vec<Label>,
    edges: Vec<TemporalEdge>,
}

impl TemporalGraphBuilder {
    /// New empty builder.
    pub fn new() -> TemporalGraphBuilder {
        TemporalGraphBuilder::default()
    }

    /// Adds a vertex; returns its id.
    pub fn vertex(&mut self, label: Label) -> VertexId {
        self.labels.push(label);
        (self.labels.len() - 1) as VertexId
    }

    /// Adds `n` vertices with the same label; returns the first id.
    pub fn vertices(&mut self, n: usize, label: Label) -> VertexId {
        let first = self.labels.len() as VertexId;
        self.labels.extend(std::iter::repeat_n(label, n));
        first
    }

    /// Adds an unlabelled edge at time `t`; returns its key.
    pub fn edge(&mut self, src: VertexId, dst: VertexId, t: i64) -> EdgeKey {
        self.edge_full(src, dst, t, 0)
    }

    /// Adds a labelled edge at time `t`; returns its key.
    pub fn edge_full(&mut self, src: VertexId, dst: VertexId, t: i64, label: EdgeLabel) -> EdgeKey {
        let key = EdgeKey(self.edges.len() as u32);
        self.edges.push(TemporalEdge {
            key,
            src,
            dst,
            time: Ts::new(t),
            label,
        });
        key
    }

    /// Validates endpoints and freezes the graph (edges sorted by arrival).
    pub fn build(self) -> Result<TemporalGraph, GraphError> {
        let n = self.labels.len() as u32;
        for e in &self.edges {
            if e.src >= n {
                return Err(GraphError::UnknownVertex(e.src));
            }
            if e.dst >= n {
                return Err(GraphError::UnknownVertex(e.dst));
            }
            if e.src == e.dst {
                return Err(GraphError::SelfLoop(e.src));
            }
        }
        let mut edges = self.edges;
        edges.sort_by_key(|e| (e.time, e.key));
        let mut key_pos = vec![0usize; edges.len()];
        for (pos, e) in edges.iter().enumerate() {
            key_pos[e.key.0 as usize] = pos;
        }
        Ok(TemporalGraph {
            labels: self.labels,
            edges,
            key_pos,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        let v0 = b.vertex(1);
        let v1 = b.vertex(2);
        let v2 = b.vertex(1);
        b.edge(v0, v1, 5);
        b.edge(v1, v2, 3);
        b.edge(v0, v1, 9); // parallel with the first
        b.build().unwrap()
    }

    #[test]
    fn edges_sorted_by_arrival_and_key_lookup() {
        let g = tiny();
        let times: Vec<i64> = g.edges().iter().map(|e| e.time.raw()).collect();
        assert_eq!(times, vec![3, 5, 9]);
        // EdgeKey(0) was the t=5 edge.
        assert_eq!(g.edge(EdgeKey(0)).time, Ts::new(5));
        assert_eq!(g.edge(EdgeKey(1)).time, Ts::new(3));
    }

    #[test]
    fn stats() {
        let g = tiny();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!((g.avg_parallel_edges() - 1.5).abs() < 1e-12);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
        assert_eq!(g.num_vertex_labels(), 2);
        assert_eq!(g.num_edge_labels(), 1);
        assert!((g.avg_interarrival() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn builder_validation() {
        let mut b = TemporalGraphBuilder::new();
        let v0 = b.vertex(0);
        b.edge(v0, 99, 1);
        assert!(matches!(
            b.build().unwrap_err(),
            GraphError::UnknownVertex(99)
        ));

        let mut b = TemporalGraphBuilder::new();
        let v0 = b.vertex(0);
        b.edge(v0, v0, 1);
        assert!(matches!(b.build().unwrap_err(), GraphError::SelfLoop(0)));
    }

    #[test]
    fn other_endpoint() {
        let g = tiny();
        let e = g.edge(EdgeKey(0));
        assert_eq!(e.other(e.src), e.dst);
        assert_eq!(e.other(e.dst), e.src);
    }
}
