//! A minimal FxHash-style hasher.
//!
//! All hot-path maps in this workspace are keyed by small integers or pairs
//! of small integers, for which SipHash (the std default) is needlessly slow.
//! The approved offline dependency set does not include `rustc-hash`, so we
//! implement the same multiply-and-rotate scheme here (~20 lines). HashDoS
//! resistance is irrelevant: keys are internal ids, never attacker data.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx-style word-at-a-time hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `HashMap` with the Fx hasher.
// lint: allow(default-hasher) — this alias supplies the Fx BuildHasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher.
// lint: allow(default-hasher) — this alias supplies the Fx BuildHasher.
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_hashes_mostly() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        // Fx is not cryptographic but must not collapse small integers.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for a in 0..50u32 {
            for b in 0..50u32 {
                m.insert((a, b), (a * 1000 + b) as u64);
            }
        }
        assert_eq!(m.len(), 2500);
        assert_eq!(m[&(13, 37)], 13_037);
    }

    #[test]
    fn byte_writes_match_padding_behaviour() {
        let mut a = FxHasher::default();
        a.write(b"abcdefgh");
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes(*b"abcdefgh"));
        assert_eq!(a.finish(), b.finish());
    }
}
