//! Cross-crate invariant auditing: levels, env plumbing, and the typed
//! violation record every structure's `audit` method emits.
//!
//! The incremental structures of this workspace (filter tables, bank
//! membership, DCS counters) each maintain censuses and bitmaps that must
//! stay consistent with a from-scratch recomputation. Historically each
//! crate had a panicking `check_consistency` for tests; the audit layer
//! unifies them behind one dial:
//!
//! * [`AuditLevel::Off`] — no checking (production default);
//! * [`AuditLevel::Cheap`] — O(state) census and subset checks, no oracle
//!   recomputation: pad-lane pinning, `exists ⊆ label_ok`, `d2 ⊆ d1`,
//!   `d2 ⊆ label_ok`, bitmap-vs-census agreement, page popcounts,
//!   stats conservation laws;
//! * [`AuditLevel::Deep`] — everything Cheap checks **plus** the
//!   from-scratch oracles: filter value slab vs a fresh `recompute_into`
//!   per entry, bank membership vs a from-scratch `passes_all` over every
//!   alive edge, DCS `d1`/`d2` vs a fixpoint recomputation, DCS support
//!   counters vs a per-slot neighbour recount, and the DCS multiplicity
//!   slab vs a recount of the alive window through the bank membership.
//!
//! The level is selected by `TCSM_AUDIT` (`off` | `cheap` | `deep`, read
//! once per process; unknown or empty values fall back to `Off`), and the
//! cadence by `TCSM_AUDIT_EVERY` (audit every Nth stream event, default
//! 64). Engines and the multi-query service read both at construction and
//! run the audit from their step paths; a non-empty violation list is a
//! bug in the incremental maintenance and panics with every violation
//! listed.
//!
//! # Violation catalogue
//!
//! Violations carry a stable kebab-case [`AuditViolation::name`] (asserted
//! by the corruption-seeding negative tests) plus a free-form detail:
//!
//! | name | invariant |
//! |------|-----------|
//! | `filter-pad-lane` | every padded row's trailing lane is pinned to `+∞` |
//! | `filter-exists-outside-label` | `W[u,v] ⊆ label_ok[u,v]` |
//! | `filter-nondefault-census` | `nondefault_count == popcount(nondefault)` |
//! | `filter-existence` | stored existence bit vs fresh recompute |
//! | `filter-value` | stored value row vs fresh recompute |
//! | `filter-nondefault-bit` | non-default bit vs fresh default classification |
//! | `bank-page-census` | per-page set-bit census vs page popcount |
//! | `bank-empty-page` | allocated membership page with zero census |
//! | `bank-pair-census` | `num_pairs == Σ page censuses` |
//! | `bank-member-missing` | pair passes all instances but bit is clear |
//! | `bank-member-stale` | pair fails an instance but bit is set |
//! | `dcs-d2-census` | `d2_count == popcount(d2)` |
//! | `dcs-d2-outside-d1` | `d2 ⊆ d1` |
//! | `dcs-d2-outside-label` | `d2 ⊆ label_ok` (the matcher's assumption) |
//! | `dcs-live-census` | `live_nodes == #{(u,v) : nonzero_slots > 0}` |
//! | `dcs-slot-census` | `nonzero_slots[u,v]` vs counter-row popcount |
//! | `dcs-mult-census` | `mult_groups`/`mult_total` vs multiplicity slab |
//! | `dcs-d1` | `d1` bit vs fixpoint recomputation |
//! | `dcs-d2` | `d2` bit vs fixpoint recomputation |
//! | `dcs-counter` | support counter vs per-slot neighbour recount |
//! | `dcs-mult` | multiplicity slab vs alive-window × membership recount |
//! | `stats-conservation` | monotone counter laws (see `tcsm-core`) |

use std::sync::OnceLock;

/// How much invariant checking the audit layer performs (see module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum AuditLevel {
    /// No checking.
    #[default]
    Off,
    /// Censuses, subset and pinning checks only (no oracle recompute).
    Cheap,
    /// Cheap checks plus every from-scratch oracle comparison.
    Deep,
}

impl AuditLevel {
    /// Parses an `TCSM_AUDIT`-style value. Unknown or empty strings fall
    /// back to `Off`, mirroring `TCSM_KERNEL`'s forgiving parse.
    pub fn parse(s: &str) -> AuditLevel {
        match s.trim().to_ascii_lowercase().as_str() {
            "cheap" => AuditLevel::Cheap,
            "deep" => AuditLevel::Deep,
            _ => AuditLevel::Off,
        }
    }

    /// Process-wide level from `TCSM_AUDIT`, read once.
    pub fn from_env() -> AuditLevel {
        static LEVEL: OnceLock<AuditLevel> = OnceLock::new();
        *LEVEL.get_or_init(|| {
            std::env::var("TCSM_AUDIT")
                .map(|v| AuditLevel::parse(&v))
                .unwrap_or(AuditLevel::Off)
        })
    }

    /// Does this level run any checks at all?
    #[inline]
    pub fn enabled(self) -> bool {
        self != AuditLevel::Off
    }

    /// Does this level run the from-scratch oracles?
    #[inline]
    pub fn deep(self) -> bool {
        self == AuditLevel::Deep
    }
}

/// Audit cadence from `TCSM_AUDIT_EVERY` (every Nth stream event; default
/// 64, clamped to ≥ 1), read once per process.
pub fn audit_every_from_env() -> u64 {
    static EVERY: OnceLock<u64> = OnceLock::new();
    *EVERY.get_or_init(|| {
        std::env::var("TCSM_AUDIT_EVERY")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(64)
            .max(1)
    })
}

/// One detected invariant violation: a stable kebab-case name (the typed
/// identity the negative-test corpus asserts on) plus a human-readable
/// detail naming the exact cell/counter and the stored-vs-recomputed pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditViolation {
    name: &'static str,
    detail: String,
}

impl AuditViolation {
    /// Creates a violation. `name` must be one of the catalogue names in
    /// the module docs (stable across releases; tests match on it).
    pub fn new(name: &'static str, detail: impl Into<String>) -> AuditViolation {
        AuditViolation {
            name,
            detail: detail.into(),
        }
    }

    /// The stable kebab-case violation id.
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The free-form detail (cell coordinates, stored vs recomputed, …).
    #[inline]
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.name, self.detail)
    }
}

/// Panics listing every violation if `violations` is non-empty — the shared
/// tripwire epilogue for `check_consistency` wrappers and step-path audits.
pub fn expect_clean(context: &str, violations: &[AuditViolation]) {
    if violations.is_empty() {
        return;
    }
    let mut msg = format!(
        "{context}: audit found {} invariant violation(s):\n",
        violations.len()
    );
    for v in violations {
        msg.push_str("  ");
        msg.push_str(&v.to_string());
        msg.push('\n');
    }
    panic!("{msg}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_levels() {
        assert_eq!(AuditLevel::parse("off"), AuditLevel::Off);
        assert_eq!(AuditLevel::parse("cheap"), AuditLevel::Cheap);
        assert_eq!(AuditLevel::parse(" Deep "), AuditLevel::Deep);
        assert_eq!(AuditLevel::parse(""), AuditLevel::Off);
        assert_eq!(AuditLevel::parse("bogus"), AuditLevel::Off);
        assert!(AuditLevel::Deep.deep() && AuditLevel::Deep.enabled());
        assert!(!AuditLevel::Cheap.deep() && AuditLevel::Cheap.enabled());
        assert!(!AuditLevel::Off.enabled());
        assert!(AuditLevel::Off < AuditLevel::Cheap && AuditLevel::Cheap < AuditLevel::Deep);
    }

    #[test]
    fn violation_display_and_name() {
        let v = AuditViolation::new("dcs-counter", "stored 3 recomputed 2 at (u1, v4, slot 0)");
        assert_eq!(v.name(), "dcs-counter");
        assert_eq!(
            v.to_string(),
            "[dcs-counter] stored 3 recomputed 2 at (u1, v4, slot 0)"
        );
    }

    #[test]
    fn expect_clean_passes_on_empty() {
        expect_clean("test", &[]);
    }

    #[test]
    #[should_panic(expected = "dcs-counter")]
    fn expect_clean_panics_with_names() {
        expect_clean("test", &[AuditViolation::new("dcs-counter", "boom")]);
    }
}
