//! Temporal query graphs (Definition II.2).
//!
//! A query graph is a connected, simple, vertex-labelled graph over at most
//! 64 vertices/edges, an optional direction and label on each edge (the
//! paper's §II extension, needed for the Netflow workload), and a strict
//! partial order `≺` on its edges.

use crate::bitset::Set64;
use crate::error::GraphError;
use crate::order::TemporalOrder;
use crate::{EdgeLabel, Label, EDGE_LABEL_ANY};
use serde::{Deserialize, Serialize};

/// Index of a query vertex (`u` in the paper).
pub type QVertexId = usize;
/// Index of a query edge (`ε` in the paper).
pub type QEdgeId = usize;

/// Hard upper bound on query vertices *and* edges.
///
/// Downstream hot-path structures bake this limit into their layout —
/// `Set64` edge/vertex sets, the filter's `rank_tbl[u · MAX_QUERY_DIM + e]`
/// lookup table, and the one-word `pending_pos: u64` worklist bitmask —
/// so exceeding it is a *typed* construction-time error
/// ([`GraphError::QueryTooLarge`]) here at the only gate through which
/// queries enter the system (builders, parsers, and the network daemon all
/// construct through [`QueryGraph::new`]), never a silent truncation or a
/// downstream panic.
pub const MAX_QUERY_DIM: usize = 64;

/// Direction requirement of a query edge with respect to its `(a, b)`
/// endpoint order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Matches data edges in either direction (undirected semantics, §II).
    Undirected,
    /// Matches only data edges directed from the image of `a` to the image
    /// of `b`.
    AToB,
}

/// One query edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryEdge {
    /// First endpoint.
    pub a: QVertexId,
    /// Second endpoint.
    pub b: QVertexId,
    /// Direction requirement relative to `(a, b)`.
    pub direction: Direction,
    /// Required edge label ([`EDGE_LABEL_ANY`] = unconstrained).
    pub label: EdgeLabel,
}

impl QueryEdge {
    /// Given one endpoint, returns the opposite one.
    ///
    /// # Panics
    /// Panics if `v` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, v: QVertexId) -> QVertexId {
        if v == self.a {
            self.b
        } else {
            debug_assert_eq!(v, self.b);
            self.a
        }
    }
}

/// A temporal query graph `q = (V, E, L_q, ≺)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QueryGraph {
    labels: Vec<Label>,
    edges: Vec<QueryEdge>,
    order: TemporalOrder,
    /// Per-vertex incident edges: `(edge id, other endpoint)`.
    adj: Vec<Vec<(QEdgeId, QVertexId)>>,
    /// Per-vertex incident-edge set as a bitmask.
    incident: Vec<Set64>,
}

impl QueryGraph {
    /// Validates and builds a query graph. See [`QueryGraphBuilder`] for an
    /// incremental interface.
    pub fn new(
        labels: Vec<Label>,
        edges: Vec<QueryEdge>,
        order: TemporalOrder,
    ) -> Result<QueryGraph, GraphError> {
        let n = labels.len();
        if n > MAX_QUERY_DIM {
            return Err(GraphError::QueryTooLarge("vertices", n));
        }
        if edges.len() > MAX_QUERY_DIM {
            return Err(GraphError::QueryTooLarge("edges", edges.len()));
        }
        if order.num_edges() != edges.len() {
            return Err(GraphError::UnknownEdge(order.num_edges()));
        }
        let mut seen_pairs = crate::fx::FxHashSet::default();
        for e in &edges {
            if e.a >= n {
                return Err(GraphError::UnknownVertex(e.a as u32));
            }
            if e.b >= n {
                return Err(GraphError::UnknownVertex(e.b as u32));
            }
            if e.a == e.b {
                return Err(GraphError::SelfLoop(e.a as u32));
            }
            let key = (e.a.min(e.b), e.a.max(e.b));
            if !seen_pairs.insert(key) {
                return Err(GraphError::DuplicateQueryEdge(key.0 as u32, key.1 as u32));
            }
        }
        let mut adj = vec![Vec::new(); n];
        let mut incident = vec![Set64::EMPTY; n];
        for (i, e) in edges.iter().enumerate() {
            adj[e.a].push((i, e.b));
            adj[e.b].push((i, e.a));
            incident[e.a].insert(i);
            incident[e.b].insert(i);
        }
        let q = QueryGraph {
            labels,
            edges,
            order,
            adj,
            incident,
        };
        if q.num_vertices() > 0 && !q.is_connected() {
            return Err(GraphError::DisconnectedQuery);
        }
        Ok(q)
    }

    fn is_connected(&self) -> bool {
        let n = self.num_vertices();
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &(_, w) in &self.adj[u] {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// Number of query vertices `|V(q)|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of query edges `|E(q)|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Label of vertex `u`.
    #[inline]
    pub fn label(&self, u: QVertexId) -> Label {
        self.labels[u]
    }

    /// Edge by id.
    #[inline]
    pub fn edge(&self, e: QEdgeId) -> &QueryEdge {
        &self.edges[e]
    }

    /// All edges.
    #[inline]
    pub fn edges(&self) -> &[QueryEdge] {
        &self.edges
    }

    /// The temporal order `≺`.
    #[inline]
    pub fn order(&self) -> &TemporalOrder {
        &self.order
    }

    /// Incident edges of `u` as `(edge id, other endpoint)` pairs.
    #[inline]
    pub fn incident_edges(&self, u: QVertexId) -> &[(QEdgeId, QVertexId)] {
        &self.adj[u]
    }

    /// Incident edge ids of `u` as a bitmask.
    #[inline]
    pub fn incident_set(&self, u: QVertexId) -> Set64 {
        self.incident[u]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: QVertexId) -> usize {
        self.adj[u].len()
    }

    /// Edge id between `a` and `b` if one exists (in either endpoint order).
    pub fn edge_between(&self, a: QVertexId, b: QVertexId) -> Option<QEdgeId> {
        self.adj[a].iter().find(|&&(_, w)| w == b).map(|&(e, _)| e)
    }
}

/// Convenience builder used by examples, tests and the query generator.
#[derive(Default, Clone, Debug)]
pub struct QueryGraphBuilder {
    labels: Vec<Label>,
    edges: Vec<QueryEdge>,
    pairs: Vec<(usize, usize)>,
}

impl QueryGraphBuilder {
    /// New empty builder.
    pub fn new() -> QueryGraphBuilder {
        QueryGraphBuilder::default()
    }

    /// Adds a vertex with the given label; returns its id.
    pub fn vertex(&mut self, label: Label) -> QVertexId {
        self.labels.push(label);
        self.labels.len() - 1
    }

    /// Adds an undirected, unlabelled edge; returns its id.
    pub fn edge(&mut self, a: QVertexId, b: QVertexId) -> QEdgeId {
        self.edge_full(a, b, Direction::Undirected, EDGE_LABEL_ANY)
    }

    /// Adds an edge with explicit direction and label; returns its id.
    pub fn edge_full(
        &mut self,
        a: QVertexId,
        b: QVertexId,
        direction: Direction,
        label: EdgeLabel,
    ) -> QEdgeId {
        self.edges.push(QueryEdge {
            a,
            b,
            direction,
            label,
        });
        self.edges.len() - 1
    }

    /// Declares `a ≺ b` (transitively closed at build time).
    pub fn precede(&mut self, a: QEdgeId, b: QEdgeId) -> &mut Self {
        self.pairs.push((a, b));
        self
    }

    /// Validates and builds the query graph.
    pub fn build(self) -> Result<QueryGraph, GraphError> {
        let order = TemporalOrder::new(self.edges.len(), &self.pairs)?;
        QueryGraph::new(self.labels, self.edges, order)
    }
}

/// Builds the running-example query of the paper (Figure 2c):
/// five vertices `u1..u5` with distinct labels (the figure's colours), six
/// edges `ε1..ε6` (0-indexed here), and the temporal constraints used
/// throughout §IV's examples.
pub fn paper_running_example() -> QueryGraph {
    let mut b = QueryGraphBuilder::new();
    let u1 = b.vertex(0);
    let u2 = b.vertex(1);
    let u3 = b.vertex(2);
    let u4 = b.vertex(3);
    let u5 = b.vertex(4);
    let e1 = b.edge(u1, u2); // ε1
    let e2 = b.edge(u1, u3); // ε2
    let e3 = b.edge(u2, u4); // ε3
    let e4 = b.edge(u3, u4); // ε4
    let e5 = b.edge(u4, u5); // ε5
    let e6 = b.edge(u3, u5); // ε6
    b.precede(e1, e3)
        .precede(e1, e5)
        .precede(e2, e4)
        .precede(e2, e5)
        .precede(e2, e6)
        .precede(e4, e6);
    b.build().expect("running example is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut b = QueryGraphBuilder::new();
        let v0 = b.vertex(7);
        let v1 = b.vertex(8);
        let v2 = b.vertex(7);
        let e0 = b.edge(v0, v1);
        let e1 = b.edge(v1, v2);
        b.precede(e0, e1);
        let q = b.build().unwrap();
        assert_eq!(q.num_vertices(), 3);
        assert_eq!(q.num_edges(), 2);
        assert_eq!(q.label(v2), 7);
        assert!(q.order().precedes(e0, e1));
        assert_eq!(q.edge_between(v1, v0), Some(e0));
        assert_eq!(q.edge_between(v0, v2), None);
        assert_eq!(q.degree(v1), 2);
        assert_eq!(q.incident_set(v1).len(), 2);
    }

    #[test]
    fn rejects_self_loop_duplicate_disconnected() {
        let mut b = QueryGraphBuilder::new();
        let v0 = b.vertex(0);
        b.edge(v0, v0);
        assert!(matches!(b.build().unwrap_err(), GraphError::SelfLoop(_)));

        let mut b = QueryGraphBuilder::new();
        let v0 = b.vertex(0);
        let v1 = b.vertex(0);
        b.edge(v0, v1);
        b.edge(v1, v0);
        assert!(matches!(
            b.build().unwrap_err(),
            GraphError::DuplicateQueryEdge(_, _)
        ));

        let mut b = QueryGraphBuilder::new();
        let v0 = b.vertex(0);
        let v1 = b.vertex(0);
        let _v2 = b.vertex(0);
        b.edge(v0, v1);
        assert!(matches!(
            b.build().unwrap_err(),
            GraphError::DisconnectedQuery
        ));
    }

    #[test]
    fn rejects_oversized_queries_with_typed_error() {
        // 65 vertices on a path: exceeds MAX_QUERY_DIM on the vertex axis.
        let mut b = QueryGraphBuilder::new();
        let vs: Vec<_> = (0..MAX_QUERY_DIM + 1).map(|_| b.vertex(0)).collect();
        for w in vs.windows(2) {
            b.edge(w[0], w[1]);
        }
        assert!(matches!(
            b.build().unwrap_err(),
            GraphError::QueryTooLarge("vertices", n) if n == MAX_QUERY_DIM + 1
        ));

        // 33 vertices arranged so the edge count (65) exceeds the limit
        // while the vertex count does not: a path plus chords.
        let mut b = QueryGraphBuilder::new();
        let vs: Vec<_> = (0..33).map(|_| b.vertex(0)).collect();
        for w in vs.windows(2) {
            b.edge(w[0], w[1]); // 32 path edges
        }
        for i in 0..31 {
            b.edge(vs[i], vs[i + 2]); // 31 chords
        }
        b.edge(vs[0], vs[3]);
        b.edge(vs[0], vs[4]); // total 65 edges
        assert!(matches!(
            b.build().unwrap_err(),
            GraphError::QueryTooLarge("edges", m) if m == MAX_QUERY_DIM + 1
        ));

        // Exactly MAX_QUERY_DIM vertices is accepted.
        let mut b = QueryGraphBuilder::new();
        let vs: Vec<_> = (0..MAX_QUERY_DIM).map(|_| b.vertex(0)).collect();
        for w in vs.windows(2) {
            b.edge(w[0], w[1]);
        }
        let q = b.build().unwrap();
        assert_eq!(q.num_vertices(), MAX_QUERY_DIM);
    }

    #[test]
    fn running_example_shape() {
        let q = paper_running_example();
        assert_eq!(q.num_vertices(), 5);
        assert_eq!(q.num_edges(), 6);
        // ε2 ≺ ε6 directly and ε2 ≺ ε6 via ε4 as well; closure keeps 6+... pairs
        assert!(q.order().precedes(1, 5));
        assert!(q.order().precedes(1, 3));
        assert!(!q.order().related(0, 1));
        // Density 0.5 in the paper's terms is approximate; just sanity-check.
        assert!(q.order().num_pairs() >= 6);
    }

    #[test]
    fn other_endpoint() {
        let e = QueryEdge {
            a: 3,
            b: 5,
            direction: Direction::Undirected,
            label: EDGE_LABEL_ANY,
        };
        assert_eq!(e.other(3), 5);
        assert_eq!(e.other(5), 3);
    }
}
