//! Error type shared by the substrate constructors.

use std::fmt;

/// Errors raised while building temporal graphs, query graphs, or temporal
/// orders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id referenced an out-of-range vertex.
    UnknownVertex(u32),
    /// Self-loops are not part of the paper's model.
    SelfLoop(u32),
    /// Query graphs must be simple (at most one edge per vertex pair).
    DuplicateQueryEdge(u32, u32),
    /// Query graphs are capped at 64 vertices / 64 edges (bitset layout).
    QueryTooLarge(&'static str, usize),
    /// The temporal order referenced an out-of-range edge index.
    UnknownEdge(usize),
    /// The relation's transitive closure was not irreflexive.
    NotAStrictOrder(usize),
    /// The query graph must be connected for the matching order to extend.
    DisconnectedQuery,
    /// A parse failure in the text loader, with the offending line number.
    Parse(usize, String),
    /// Window length must be positive.
    NonPositiveWindow(i64),
    /// An edge's expiration instant `t + δ` left the finite timestamp
    /// domain, which would collapse distinct expiries onto one instant and
    /// break the complete-batch invariant of [`crate::stream`]. Carries
    /// `(t, δ)`.
    ExpiryOverflow(i64, i64),
    /// A loader's timestamp span `[min, max]` is too wide to rescale into
    /// the finite timestamp domain. Carries `(min, max)`.
    EpochSpanOverflow(i64, i64),
    /// An I/O failure while reading a stream-backed loader input (message
    /// only, so the error stays `Clone`/`Eq`).
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownVertex(v) => write!(f, "unknown vertex id {v}"),
            GraphError::SelfLoop(v) => write!(f, "self-loop on vertex {v} is not supported"),
            GraphError::DuplicateQueryEdge(a, b) => {
                write!(
                    f,
                    "duplicate query edge between {a} and {b} (query graphs are simple)"
                )
            }
            GraphError::QueryTooLarge(what, n) => {
                write!(f, "query has {n} {what}; at most 64 are supported")
            }
            GraphError::UnknownEdge(e) => write!(f, "unknown edge index {e} in temporal order"),
            GraphError::NotAStrictOrder(e) => {
                write!(
                    f,
                    "temporal order closure contains e{e} ≺ e{e}; not a strict partial order"
                )
            }
            GraphError::DisconnectedQuery => write!(f, "query graph must be connected"),
            GraphError::Parse(line, msg) => write!(f, "parse error at line {line}: {msg}"),
            GraphError::NonPositiveWindow(d) => write!(f, "window must be positive, got {d}"),
            GraphError::ExpiryOverflow(t, d) => write!(
                f,
                "expiry time {t} + {d} overflows the timestamp domain; \
                 rescale the epoch (e.g. io::SnapOptions::rescale_epoch) or \
                 shrink the window"
            ),
            GraphError::EpochSpanOverflow(lo, hi) => write!(
                f,
                "timestamp span [{lo}, {hi}] exceeds the representable range; \
                 cannot rescale the epoch"
            ),
            GraphError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::DuplicateQueryEdge(1, 2);
        assert!(e.to_string().contains("duplicate query edge"));
        let e = GraphError::QueryTooLarge("edges", 65);
        assert!(e.to_string().contains("65"));
    }
}
