//! Strict partial orders on query edges (the temporal order `≺`).
//!
//! Definition II.2: a temporal query graph carries a strict partial order on
//! its edge set. Users supply any generating set of pairs; we take the
//! transitive closure, then verify irreflexivity (which, together with
//! transitivity, implies asymmetry). Rows are stored as [`Set64`] bitmasks so
//! `R⁺_M(e)` / `R⁻_M(e)` (Definition V.1) are single `AND`s in the matcher.

use crate::bitset::Set64;
use crate::error::GraphError;
use serde::{Deserialize, Serialize};

/// A strict partial order over edge indices `0..m` (m ≤ 64).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporalOrder {
    m: usize,
    /// `succ[e]` = set of `e'` with `e ≺ e'` (after closure).
    succ: Vec<Set64>,
    /// `pred[e]` = set of `e'` with `e' ≺ e`.
    pred: Vec<Set64>,
}

impl TemporalOrder {
    /// Builds the order over `m` edges from generating pairs `(a, b)` meaning
    /// `a ≺ b`, closing transitively and validating strictness.
    pub fn new(m: usize, pairs: &[(usize, usize)]) -> Result<TemporalOrder, GraphError> {
        if m > crate::query::MAX_QUERY_DIM {
            return Err(GraphError::QueryTooLarge("edges", m));
        }
        let mut succ = vec![Set64::EMPTY; m];
        for &(a, b) in pairs {
            if a >= m {
                return Err(GraphError::UnknownEdge(a));
            }
            if b >= m {
                return Err(GraphError::UnknownEdge(b));
            }
            succ[a].insert(b);
        }
        // Transitive closure: repeat `succ[a] |= succ[b]` for b ∈ succ[a]
        // until fixpoint. m ≤ 64 so the O(m^3 / 64)-ish loop is trivial.
        let mut changed = true;
        while changed {
            changed = false;
            for a in 0..m {
                let mut row = succ[a];
                for b in succ[a].iter() {
                    row = row.union(succ[b]);
                }
                if row != succ[a] {
                    succ[a] = row;
                    changed = true;
                }
            }
        }
        for (e, row) in succ.iter().enumerate() {
            if row.contains(e) {
                return Err(GraphError::NotAStrictOrder(e));
            }
        }
        let mut pred = vec![Set64::EMPTY; m];
        #[allow(clippy::needless_range_loop)]
        for a in 0..m {
            for b in succ[a].iter() {
                pred[b].insert(a);
            }
        }
        Ok(TemporalOrder { m, succ, pred })
    }

    /// The empty order (no constraints) over `m` edges.
    pub fn empty(m: usize) -> TemporalOrder {
        TemporalOrder::new(m, &[]).expect("empty order is always valid")
    }

    /// Number of edges the order ranges over.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// True iff `a ≺ b`.
    #[inline]
    pub fn precedes(&self, a: usize, b: usize) -> bool {
        self.succ[a].contains(b)
    }

    /// True iff `a ≺ b` or `b ≺ a` ("temporally related", Definition II.2).
    #[inline]
    pub fn related(&self, a: usize, b: usize) -> bool {
        self.succ[a].contains(b) || self.pred[a].contains(b)
    }

    /// Set of `e'` with `e ≺ e'`.
    #[inline]
    pub fn successors(&self, e: usize) -> Set64 {
        self.succ[e]
    }

    /// Set of `e'` with `e' ≺ e`.
    #[inline]
    pub fn predecessors(&self, e: usize) -> Set64 {
        self.pred[e]
    }

    /// Set of edges temporally related to `e` in either direction.
    #[inline]
    pub fn related_set(&self, e: usize) -> Set64 {
        self.succ[e].union(self.pred[e])
    }

    /// Number of ordered pairs in the relation.
    pub fn num_pairs(&self) -> usize {
        self.succ.iter().map(|s| s.len()).sum()
    }

    /// `density` of the order as defined in §VI: ordered pairs divided by the
    /// number of unordered edge pairs `C(m, 2)`. Returns 0 for `m < 2`.
    pub fn density(&self) -> f64 {
        if self.m < 2 {
            return 0.0;
        }
        let total = self.m * (self.m - 1) / 2;
        self.num_pairs() as f64 / total as f64
    }

    /// All ordered pairs `(a, b)` with `a ≺ b`, ascending.
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.num_pairs());
        for a in 0..self.m {
            for b in self.succ[a].iter() {
                out.push((a, b));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_and_queries() {
        // 0 ≺ 1, 1 ≺ 2 ⇒ 0 ≺ 2.
        let o = TemporalOrder::new(4, &[(0, 1), (1, 2)]).unwrap();
        assert!(o.precedes(0, 1));
        assert!(o.precedes(0, 2));
        assert!(!o.precedes(2, 0));
        assert!(o.related(2, 0));
        assert!(!o.related(0, 3));
        assert_eq!(o.num_pairs(), 3);
        assert_eq!(o.successors(0).iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(o.predecessors(2).iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn cycle_is_rejected() {
        let err = TemporalOrder::new(3, &[(0, 1), (1, 2), (2, 0)]).unwrap_err();
        assert!(matches!(err, GraphError::NotAStrictOrder(_)));
    }

    #[test]
    fn reflexive_pair_is_rejected() {
        let err = TemporalOrder::new(2, &[(1, 1)]).unwrap_err();
        assert!(matches!(err, GraphError::NotAStrictOrder(1)));
    }

    #[test]
    fn out_of_range_is_rejected() {
        assert!(matches!(
            TemporalOrder::new(2, &[(0, 5)]).unwrap_err(),
            GraphError::UnknownEdge(5)
        ));
    }

    #[test]
    fn density_of_total_order() {
        let o = TemporalOrder::new(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        // closure has all 6 pairs of a total order on 4 elements
        assert_eq!(o.num_pairs(), 6);
        assert!((o.density() - 1.0).abs() < 1e-12);
        assert_eq!(TemporalOrder::empty(4).density(), 0.0);
    }

    #[test]
    fn pairs_roundtrip_through_constructor() {
        let o = TemporalOrder::new(5, &[(0, 2), (2, 4), (1, 3)]).unwrap();
        let o2 = TemporalOrder::new(5, &o.pairs()).unwrap();
        assert_eq!(o, o2);
    }
}
