//! Plain-text loaders/savers for temporal graphs and queries.
//!
//! Data graph format (one record per line, `#` comments allowed):
//! ```text
//! v <vertex-id> <label>
//! e <src> <dst> <time> [edge-label]
//! ```
//! Query format adds direction/order records:
//! ```text
//! v <vertex-id> <label>
//! e <a> <b> [-> | --] [edge-label]
//! o <edge-index> <edge-index>     # left ≺ right
//! ```
//! Vertex ids must be dense (`0..n`) in both formats. Records with
//! unconsumed trailing tokens are parse errors, never silently truncated.
//!
//! # SNAP temporal edge lists
//!
//! [`parse_snap`] / [`parse_snap_reader`] ingest the format the SNAP
//! temporal dumps (`wiki-talk-temporal`, `sx-superuser`,
//! `sx-stackoverflow`, …) ship in: one `src dst unixtime` triple per line,
//! whitespace separated, `#`/`%` comment lines allowed, and **exactly**
//! three tokens per record. Real dumps violate every convenience the native
//! format guarantees, and the parser normalizes each one:
//!
//! * **sparse vertex ids** — raw (up to 64-bit) ids are densified to
//!   `0..n` in first-appearance order, so the density contract of the rest
//!   of the crate holds;
//! * **epoch timestamps** — with [`SnapOptions::rescale_epoch`] (the
//!   default) times are shifted so the earliest arrival is instant `0`,
//!   keeping `t + δ` far from the [`crate::time::Ts`] domain ends (see
//!   [`GraphError::ExpiryOverflow`]);
//! * **no labels** — a [`SnapLabeling`] policy synthesizes vertex labels
//!   (uniform, log-degree buckets, or a hash of the raw id) over an
//!   alphabet of [`SnapOptions::vertex_labels`]; edges get label `0`;
//! * **self-loops** — the paper's model forbids them; they are counted and
//!   skipped ([`SnapStats::self_loops_skipped`]);
//! * **duplicate `(src, dst, t)` triples** — kept as distinct parallel
//!   edges (the model's multigraph semantics) and tallied in
//!   [`SnapStats::duplicate_triples`];
//! * **unsorted input** — edges are sorted by timestamp with input order
//!   breaking ties, so replay order is deterministic.
//!
//! [`SnapOptions::max_edges`] optionally down-samples to the first `N`
//! edge records in file order, which keeps multi-gigabyte dumps usable for
//! laptop-scale experiments. [`write_snap`] emits the same format (in
//! original record order, dense ids), and `parse → write → parse` is an
//! identity for id-independent labelings — see the round-trip tests.

use crate::data::{TemporalGraph, TemporalGraphBuilder};
use crate::error::GraphError;
use crate::query::{Direction, QueryGraph, QueryGraphBuilder};
use crate::EDGE_LABEL_ANY;
use std::fmt::Write as _;
use std::io::BufRead;

fn parse_err(line: usize, msg: impl Into<String>) -> GraphError {
    GraphError::Parse(line, msg.into())
}

/// Fails when a record's token iterator has unconsumed tokens left —
/// `e 0 1 5 7 extra` must be a parse error at its line, not a silently
/// truncated record.
fn reject_trailing(line: usize, it: &mut std::str::SplitWhitespace<'_>) -> Result<(), GraphError> {
    match it.next() {
        Some(tok) => Err(parse_err(line, format!("trailing token '{tok}'"))),
        None => Ok(()),
    }
}

/// Parses a temporal data graph from the text format above.
pub fn parse_temporal_graph(text: &str) -> Result<TemporalGraph, GraphError> {
    let mut b = TemporalGraphBuilder::new();
    let mut expected_vid = 0u32;
    for (no, raw) in text.lines().enumerate() {
        let line = no + 1;
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        let mut it = l.split_whitespace();
        match it.next() {
            Some("v") => {
                let id: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line, "bad vertex id"))?;
                if id != expected_vid {
                    return Err(parse_err(
                        line,
                        format!("vertex ids must be dense, expected {expected_vid}"),
                    ));
                }
                let label: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line, "bad vertex label"))?;
                reject_trailing(line, &mut it)?;
                b.vertex(label);
                expected_vid += 1;
            }
            Some("e") => {
                let src: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line, "bad edge src"))?;
                let dst: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line, "bad edge dst"))?;
                let t: i64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line, "bad edge time"))?;
                let label: u32 = match it.next() {
                    Some(s) => s.parse().map_err(|_| parse_err(line, "bad edge label"))?,
                    None => 0,
                };
                reject_trailing(line, &mut it)?;
                b.edge_full(src, dst, t, label);
            }
            Some(tok) => return Err(parse_err(line, format!("unknown record '{tok}'"))),
            None => unreachable!(),
        }
    }
    b.build()
}

/// Serializes a temporal data graph to the text format.
pub fn write_temporal_graph(g: &TemporalGraph) -> String {
    let mut s = String::new();
    for (v, &label) in g.labels().iter().enumerate() {
        let _ = writeln!(s, "v {v} {label}");
    }
    for e in g.edges() {
        let _ = writeln!(s, "e {} {} {} {}", e.src, e.dst, e.time.raw(), e.label);
    }
    s
}

/// Parses a temporal query graph from the text format above.
pub fn parse_query_graph(text: &str) -> Result<QueryGraph, GraphError> {
    let mut b = QueryGraphBuilder::new();
    let mut expected_vid = 0usize;
    for (no, raw) in text.lines().enumerate() {
        let line = no + 1;
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        let mut it = l.split_whitespace();
        match it.next() {
            Some("v") => {
                let id: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line, "bad vertex id"))?;
                if id != expected_vid {
                    return Err(parse_err(
                        line,
                        format!("vertex ids must be dense, expected {expected_vid}"),
                    ));
                }
                let label: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line, "bad vertex label"))?;
                reject_trailing(line, &mut it)?;
                b.vertex(label);
                expected_vid += 1;
            }
            Some("e") => {
                let a: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line, "bad edge endpoint"))?;
                let bb: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line, "bad edge endpoint"))?;
                // Direction and label each appear at most once; a repeat is
                // unconsumed garbage, not a silent overwrite.
                let mut dir: Option<Direction> = None;
                let mut label: Option<u32> = None;
                for tok in it {
                    match tok {
                        "->" | "--" => {
                            if dir.is_some() {
                                return Err(parse_err(line, format!("trailing token '{tok}'")));
                            }
                            dir = Some(if tok == "->" {
                                Direction::AToB
                            } else {
                                Direction::Undirected
                            });
                        }
                        other => {
                            if label.is_some() {
                                return Err(parse_err(line, format!("trailing token '{other}'")));
                            }
                            label = Some(
                                other
                                    .parse()
                                    .map_err(|_| parse_err(line, "bad edge label"))?,
                            );
                        }
                    }
                }
                b.edge_full(
                    a,
                    bb,
                    dir.unwrap_or(Direction::Undirected),
                    label.unwrap_or(EDGE_LABEL_ANY),
                );
            }
            Some("o") => {
                let x: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line, "bad order pair"))?;
                let y: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line, "bad order pair"))?;
                reject_trailing(line, &mut it)?;
                b.precede(x, y);
            }
            Some(tok) => return Err(parse_err(line, format!("unknown record '{tok}'"))),
            None => unreachable!(),
        }
    }
    b.build()
}

/// Serializes a query graph to the text format.
pub fn write_query_graph(q: &QueryGraph) -> String {
    let mut s = String::new();
    for u in 0..q.num_vertices() {
        let _ = writeln!(s, "v {u} {}", q.label(u));
    }
    for e in q.edges() {
        let dir = match e.direction {
            Direction::AToB => "->",
            Direction::Undirected => "--",
        };
        if e.label == EDGE_LABEL_ANY {
            let _ = writeln!(s, "e {} {} {dir}", e.a, e.b);
        } else {
            let _ = writeln!(s, "e {} {} {dir} {}", e.a, e.b, e.label);
        }
    }
    for (a, b) in q.order().pairs() {
        let _ = writeln!(s, "o {a} {b}");
    }
    s
}

// ---- SNAP temporal edge lists ------------------------------------------

/// Vertex-label synthesis policy for unlabelled SNAP dumps (see the module
/// docs for the format contract).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapLabeling {
    /// Every vertex gets label `0` (the unlabelled-graph convention).
    Uniform,
    /// Label = `⌊log2(degree)⌋` clamped to the alphabet — buckets hubs and
    /// leaves apart, deterministic in the *structure* (survives id
    /// renumbering, so `parse → write → parse` round-trips exactly).
    DegreeBucket,
    /// Label = splitmix64 hash of the **raw** id, modulo the alphabet —
    /// uniform label frequencies independent of topology. Not id-stable
    /// across a densifying round-trip; prefer `DegreeBucket` when that
    /// matters.
    IdHash,
}

/// Knobs of the SNAP ingest pipeline.
#[derive(Clone, Copy, Debug)]
pub struct SnapOptions {
    /// How vertex labels are synthesized.
    pub labeling: SnapLabeling,
    /// Vertex-label alphabet size (`≥ 1`; ignored by `Uniform`).
    pub vertex_labels: u32,
    /// Keep only the first `N` edge records (file order) when set. Records
    /// past the cap are still grammar-checked (a corrupt tail stays a
    /// parse error), just not kept.
    pub max_edges: Option<usize>,
    /// Shift timestamps so the earliest arrival is instant `0`. Leave on
    /// for epoch-stamped dumps: it keeps expiry arithmetic
    /// (`t + δ`) far from the `Ts` domain ends.
    pub rescale_epoch: bool,
}

impl Default for SnapOptions {
    fn default() -> SnapOptions {
        SnapOptions {
            labeling: SnapLabeling::DegreeBucket,
            vertex_labels: 4,
            max_edges: None,
            rescale_epoch: true,
        }
    }
}

/// What the ingest saw and did — the numbers a loader caller wants to log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapStats {
    /// Total lines read (records, comments and blanks).
    pub lines: usize,
    /// Edge records kept (after self-loop skipping and down-sampling).
    pub edges: usize,
    /// Distinct vertices among kept edges (the densified id range).
    pub vertices: usize,
    /// Self-loop records skipped (the model forbids them).
    pub self_loops_skipped: usize,
    /// Edge records dropped by [`SnapOptions::max_edges`].
    pub downsampled: usize,
    /// Kept records whose `(src, dst, t)` triple duplicated an earlier one
    /// (retained as parallel edges).
    pub duplicate_triples: usize,
    /// Largest raw vertex id seen (sparsity witness).
    pub raw_id_max: u64,
    /// Raw timestamp range `[min, max]` before any rescaling.
    pub epoch_min: i64,
    /// See [`SnapStats::epoch_min`].
    pub epoch_max: i64,
}

/// The raw-deterministic splitmix64 mix used by [`SnapLabeling::IdHash`].
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Parses a SNAP-style temporal edge list from a string. Convenience
/// wrapper over [`parse_snap_reader`].
pub fn parse_snap(text: &str, opts: &SnapOptions) -> Result<TemporalGraph, GraphError> {
    parse_snap_reader(text.as_bytes(), opts).map(|(g, _)| g)
}

/// Like [`parse_snap`], returning the ingest statistics too.
pub fn parse_snap_with_stats(
    text: &str,
    opts: &SnapOptions,
) -> Result<(TemporalGraph, SnapStats), GraphError> {
    parse_snap_reader(text.as_bytes(), opts)
}

/// Streaming SNAP ingest: reads `src dst unixtime` records line by line
/// from any [`BufRead`] (so multi-gigabyte dumps never need one contiguous
/// string), then densifies ids, synthesizes labels, rescales the epoch and
/// freezes the graph per the module-docs contract.
pub fn parse_snap_reader<R: BufRead>(
    mut r: R,
    opts: &SnapOptions,
) -> Result<(TemporalGraph, SnapStats), GraphError> {
    assert!(opts.vertex_labels >= 1, "label alphabet must be non-empty");
    let mut stats = SnapStats::default();
    // Raw id → dense id, in first-appearance order.
    let mut dense: crate::fx::FxHashMap<u64, u32> = crate::fx::FxHashMap::default();
    // Kept records as (dense src, dense dst, raw t); labels come later.
    let mut records: Vec<(u32, u32, i64)> = Vec::new();
    let mut raw_ids: Vec<u64> = Vec::new(); // dense id → raw id
    let mut line_buf = String::new();
    let mut line_no = 0usize;
    loop {
        line_buf.clear();
        let n = r
            .read_line(&mut line_buf)
            .map_err(|e| GraphError::Io(format!("line {}: {e}", line_no + 1)))?;
        if n == 0 {
            break;
        }
        line_no += 1;
        stats.lines += 1;
        let l = line_buf.trim();
        if l.is_empty() || l.starts_with('#') || l.starts_with('%') {
            continue;
        }
        let mut it = l.split_whitespace();
        let src: u64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(line_no, "bad snap src id"))?;
        let dst: u64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(line_no, "bad snap dst id"))?;
        let t: i64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .filter(|&t| t != i64::MIN && t != i64::MAX)
            .ok_or_else(|| parse_err(line_no, "bad snap timestamp"))?;
        reject_trailing(line_no, &mut it)?;
        // The cap gates *keeping*, not validating: records past it are
        // still held to the three-token grammar, so a corrupt tail of a
        // down-sampled dump cannot ingest silently. It must run before the
        // self-loop skip so every record past the cap — loop or not —
        // counts as down-sampled and the kept tallies stay a file prefix.
        if opts
            .max_edges
            .is_some_and(|cap| records.len() + stats.self_loops_skipped >= cap)
        {
            stats.downsampled += 1;
            continue;
        }
        if src == dst {
            stats.self_loops_skipped += 1;
            continue;
        }
        stats.raw_id_max = stats.raw_id_max.max(src).max(dst);
        if records.is_empty() {
            (stats.epoch_min, stats.epoch_max) = (t, t);
        } else {
            stats.epoch_min = stats.epoch_min.min(t);
            stats.epoch_max = stats.epoch_max.max(t);
        }
        let mut densify = |raw: u64| -> u32 {
            *dense.entry(raw).or_insert_with(|| {
                raw_ids.push(raw);
                (raw_ids.len() - 1) as u32
            })
        };
        let (s, d) = (densify(src), densify(dst));
        records.push((s, d, t));
    }
    stats.edges = records.len();
    stats.vertices = raw_ids.len();

    // Duplicate-triple tally = kept records minus distinct triples, via a
    // transient sorted copy: densification is injective, so dense triples
    // collide exactly when raw ones do, and the copy dies here instead of
    // a dedup set living through the whole ingest of a multi-GB dump.
    {
        let mut sorted = records.clone();
        sorted.sort_unstable();
        stats.duplicate_triples = sorted.windows(2).filter(|w| w[0] == w[1]).count();
    }

    // Label synthesis over the kept records.
    let labels: Vec<crate::Label> = match opts.labeling {
        SnapLabeling::Uniform => vec![0; raw_ids.len()],
        SnapLabeling::DegreeBucket => {
            let mut deg = vec![0u64; raw_ids.len()];
            for &(s, d, _) in &records {
                deg[s as usize] += 1;
                deg[d as usize] += 1;
            }
            deg.iter()
                .map(|&d| (63 - d.max(1).leading_zeros()).min(opts.vertex_labels - 1))
                .collect()
        }
        SnapLabeling::IdHash => raw_ids
            .iter()
            .map(|&raw| (splitmix64(raw) % opts.vertex_labels as u64) as u32)
            .collect(),
    };

    // Epoch rescale: earliest arrival becomes instant 0. A span wider than
    // the finite `Ts` domain cannot be rescaled into it — refuse up front
    // so the per-edge `t - shift` below is provably overflow-free.
    let shift = if opts.rescale_epoch && !records.is_empty() {
        if stats
            .epoch_max
            .checked_sub(stats.epoch_min)
            .filter(|&span| span < i64::MAX)
            .is_none()
        {
            return Err(GraphError::EpochSpanOverflow(
                stats.epoch_min,
                stats.epoch_max,
            ));
        }
        stats.epoch_min
    } else {
        0
    };

    let mut b = TemporalGraphBuilder::new();
    for &l in &labels {
        b.vertex(l);
    }
    for &(s, d, t) in &records {
        // Overflow-free: when rescaling, shift ≤ t and the full span was
        // checked above; unshifted sentinel-colliding inputs were rejected
        // at parse time.
        b.edge(s, d, t - shift);
    }
    let g = b.build()?;
    Ok((g, stats))
}

/// Serializes a temporal graph to the SNAP three-token format, in original
/// record order (edge-key order) with the graph's dense ids as the raw
/// ids. Vertex labels are *not* representable in this format; re-ingesting
/// reconstructs them via the [`SnapLabeling`] policy.
pub fn write_snap(g: &TemporalGraph) -> String {
    let mut s = String::new();
    for key in 0..g.num_edges() {
        let e = g.edge(crate::data::EdgeKey(key as u32));
        let _ = writeln!(s, "{} {} {}", e.src, e.dst, e.time.raw());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_graph_roundtrip() {
        let text = "\n# demo\nv 0 1\nv 1 2\nv 2 1\ne 0 1 5 3\ne 1 2 7\n";
        let g = parse_temporal_graph(text).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        let text2 = write_temporal_graph(&g);
        let g2 = parse_temporal_graph(&text2).unwrap();
        assert_eq!(g2.num_edges(), 2);
        assert_eq!(g2.edges()[0].label, 3);
    }

    #[test]
    fn query_graph_roundtrip() {
        let text = "v 0 1\nv 1 1\nv 2 2\ne 0 1 -> 9\ne 1 2\no 0 1\n";
        let q = parse_query_graph(text).unwrap();
        assert_eq!(q.num_edges(), 2);
        assert_eq!(q.edge(0).direction, Direction::AToB);
        assert_eq!(q.edge(0).label, 9);
        assert!(q.order().precedes(0, 1));
        let q2 = parse_query_graph(&write_query_graph(&q)).unwrap();
        assert!(q2.order().precedes(0, 1));
        assert_eq!(q2.edge(0).label, 9);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_temporal_graph("v 0 1\nx 1 2\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse(2, _)));
        let err = parse_temporal_graph("v 1 1\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse(1, _)));
        let err = parse_query_graph("v 0 1\ne 0 zz\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse(2, _)));
    }

    #[test]
    fn trailing_tokens_are_rejected_with_the_line() {
        // Data format: v and e records with unconsumed tokens.
        for (text, bad_line) in [
            ("v 0 1 junk\n", 1),
            ("v 0 1\nv 1 2\ne 0 1 5 7 extra\n", 3),
            ("v 0 1\nv 1 2\ne 0 1 5 7\ne 0 1 6 2 9\n", 4),
        ] {
            match parse_temporal_graph(text).unwrap_err() {
                GraphError::Parse(line, msg) => {
                    assert_eq!(line, bad_line, "{text:?}");
                    assert!(msg.contains("trailing token"), "{msg}");
                }
                other => panic!("expected Parse, got {other:?}"),
            }
        }
        // Query format: v/o trailing tokens, plus duplicated direction or
        // label tokens on e records (previously a silent overwrite).
        for (text, bad_line) in [
            ("v 0 1 junk\n", 1),
            ("v 0 1\nv 1 1\ne 0 1\no 0 0 0\n", 4),
            ("v 0 1\nv 1 1\ne 0 1 -> -- 3\n", 3),
            ("v 0 1\nv 1 1\ne 0 1 3 4\n", 3),
        ] {
            match parse_query_graph(text).unwrap_err() {
                GraphError::Parse(line, msg) => {
                    assert_eq!(line, bad_line, "{text:?}");
                    assert!(msg.contains("trailing token"), "{msg}");
                }
                other => panic!("expected Parse, got {other:?}"),
            }
        }
        // The maximal well-formed records still parse.
        assert!(parse_temporal_graph("v 0 1\nv 1 2\ne 0 1 5 7\n").is_ok());
        assert!(parse_query_graph("v 0 1\nv 1 1\ne 0 1 -> 3\n").is_ok());
    }

    // ---- SNAP ingest ----------------------------------------------------

    const SNAP_SAMPLE: &str = "\
# SNAP-style comment
% gnuplot-style comment too
1004 57 1217567877
57 1004 1217567877
1004 888888888 1217567890

888888888 57 1217567890
1004 1004 1217567900
57 888888888 1217567999
";

    #[test]
    fn snap_densifies_sparse_ids_and_rescales_the_epoch() {
        let (g, stats) = parse_snap_with_stats(SNAP_SAMPLE, &SnapOptions::default()).unwrap();
        // Three distinct raw ids → dense 0..3 in first-appearance order.
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(stats.vertices, 3);
        assert_eq!(stats.raw_id_max, 888_888_888);
        // The self-loop is skipped, all other records kept.
        assert_eq!(g.num_edges(), 5);
        assert_eq!(stats.self_loops_skipped, 1);
        assert_eq!(stats.duplicate_triples, 0);
        assert_eq!(stats.lines, 9);
        // Epoch rescale: earliest arrival is instant 0, spread preserved.
        assert_eq!((stats.epoch_min, stats.epoch_max), (1217567877, 1217567999));
        let times: Vec<i64> = g.edges().iter().map(|e| e.time.raw()).collect();
        assert_eq!(times, vec![0, 0, 13, 13, 122]);
        // The stream machinery accepts the compact epochs directly.
        assert!(crate::stream::EventQueue::new(&g, 10).is_ok());
    }

    #[test]
    fn snap_duplicate_triples_become_parallel_edges() {
        let text = "7 9 100\n7 9 100\n7 9 100\n9 7 100\n";
        let (g, stats) = parse_snap_with_stats(text, &SnapOptions::default()).unwrap();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(stats.duplicate_triples, 2);
        assert!((g.avg_parallel_edges() - 4.0).abs() < 1e-12);
        // Parallel same-timestamp edges keep distinct keys in input order.
        let keys: Vec<u32> = g.edges().iter().map(|e| e.key.0).collect();
        assert_eq!(keys, vec![0, 1, 2, 3]);
    }

    #[test]
    fn snap_label_policies_respect_the_alphabet() {
        for labeling in [
            SnapLabeling::Uniform,
            SnapLabeling::DegreeBucket,
            SnapLabeling::IdHash,
        ] {
            let opts = SnapOptions {
                labeling,
                vertex_labels: 3,
                ..SnapOptions::default()
            };
            let g = parse_snap(SNAP_SAMPLE, &opts).unwrap();
            assert!(g.labels().iter().all(|&l| l < 3), "{labeling:?}");
            if labeling == SnapLabeling::Uniform {
                assert!(g.labels().iter().all(|&l| l == 0));
            }
        }
        // DegreeBucket is structural: the hub out-buckets a leaf.
        let text = "1 2 10\n1 3 11\n1 4 12\n1 5 13\n1 6 14\n6 5 15\n";
        let opts = SnapOptions {
            labeling: SnapLabeling::DegreeBucket,
            vertex_labels: 4,
            ..SnapOptions::default()
        };
        let g = parse_snap(text, &opts).unwrap();
        // Vertex 0 (raw 1) has degree 5 → bucket 2; raw 2 has degree 1 → 0.
        assert_eq!(g.label(0), 2);
        assert_eq!(g.label(1), 0);
    }

    #[test]
    fn snap_down_sampling_keeps_the_file_prefix() {
        let opts = SnapOptions {
            max_edges: Some(3),
            ..SnapOptions::default()
        };
        let (g, stats) = parse_snap_with_stats(SNAP_SAMPLE, &opts).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert!(stats.downsampled > 0);
        // The prefix is by record order, not timestamp order.
        let times: Vec<i64> = g.edges().iter().map(|e| e.time.raw()).collect();
        assert_eq!(times, vec![0, 0, 13]);
        // Down-sampling never waives the grammar: garbage past the cap is
        // still a parse error, not silently-counted dropped records.
        let tight = SnapOptions {
            max_edges: Some(1),
            ..SnapOptions::default()
        };
        let err = parse_snap("1 2 10\n3 4 11\n?? binary garbage\n", &tight).unwrap_err();
        match err {
            GraphError::Parse(line, _) => assert_eq!(line, 3),
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn snap_rejects_malformed_records_with_line_numbers() {
        for (text, bad_line, needle) in [
            ("1 2 10\nx 2 11\n", 2, "bad snap src"),
            ("1 2 10\n2 zz 11\n", 2, "bad snap dst"),
            ("1 2 10\n2 3\n", 2, "bad snap timestamp"),
            ("1 2 10\n2 3 nope\n", 2, "bad snap timestamp"),
            ("1 2 10\n2 3 11 junk\n", 2, "trailing token"),
            ("# c\n1 2 9223372036854775807\n", 2, "bad snap timestamp"),
        ] {
            match parse_snap(text, &SnapOptions::default()).unwrap_err() {
                GraphError::Parse(line, msg) => {
                    assert_eq!(line, bad_line, "{text:?}");
                    assert!(msg.contains(needle), "{msg:?} vs {needle:?}");
                }
                other => panic!("expected Parse, got {other:?}"),
            }
        }
    }

    #[test]
    fn snap_empty_input_is_an_empty_graph() {
        let (g, stats) = parse_snap_with_stats("# nothing\n", &SnapOptions::default()).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(stats.edges, 0);
    }

    #[test]
    fn snap_write_then_parse_is_identity_for_structural_labelings() {
        for labeling in [SnapLabeling::Uniform, SnapLabeling::DegreeBucket] {
            let opts = SnapOptions {
                labeling,
                ..SnapOptions::default()
            };
            let (g1, _) = parse_snap_with_stats(SNAP_SAMPLE, &opts).unwrap();
            let text = write_snap(&g1);
            let (g2, _) = parse_snap_with_stats(&text, &opts).unwrap();
            assert_eq!(g1.labels(), g2.labels(), "{labeling:?}");
            assert_eq!(g1.edges(), g2.edges(), "{labeling:?}");
        }
    }
}
