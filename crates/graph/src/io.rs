//! Plain-text loaders/savers for temporal graphs and queries.
//!
//! Data graph format (one record per line, `#` comments allowed):
//! ```text
//! v <vertex-id> <label>
//! e <src> <dst> <time> [edge-label]
//! ```
//! Query format adds direction/order records:
//! ```text
//! v <vertex-id> <label>
//! e <a> <b> [-> | --] [edge-label]
//! o <edge-index> <edge-index>     # left ≺ right
//! ```
//! Vertex ids must be dense (`0..n`) in both formats.

use crate::data::{TemporalGraph, TemporalGraphBuilder};
use crate::error::GraphError;
use crate::query::{Direction, QueryGraph, QueryGraphBuilder};
use crate::EDGE_LABEL_ANY;
use std::fmt::Write as _;

fn parse_err(line: usize, msg: impl Into<String>) -> GraphError {
    GraphError::Parse(line, msg.into())
}

/// Parses a temporal data graph from the text format above.
pub fn parse_temporal_graph(text: &str) -> Result<TemporalGraph, GraphError> {
    let mut b = TemporalGraphBuilder::new();
    let mut expected_vid = 0u32;
    for (no, raw) in text.lines().enumerate() {
        let line = no + 1;
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        let mut it = l.split_whitespace();
        match it.next() {
            Some("v") => {
                let id: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line, "bad vertex id"))?;
                if id != expected_vid {
                    return Err(parse_err(
                        line,
                        format!("vertex ids must be dense, expected {expected_vid}"),
                    ));
                }
                let label: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line, "bad vertex label"))?;
                b.vertex(label);
                expected_vid += 1;
            }
            Some("e") => {
                let src: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line, "bad edge src"))?;
                let dst: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line, "bad edge dst"))?;
                let t: i64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line, "bad edge time"))?;
                let label: u32 = match it.next() {
                    Some(s) => s.parse().map_err(|_| parse_err(line, "bad edge label"))?,
                    None => 0,
                };
                b.edge_full(src, dst, t, label);
            }
            Some(tok) => return Err(parse_err(line, format!("unknown record '{tok}'"))),
            None => unreachable!(),
        }
    }
    b.build()
}

/// Serializes a temporal data graph to the text format.
pub fn write_temporal_graph(g: &TemporalGraph) -> String {
    let mut s = String::new();
    for (v, &label) in g.labels().iter().enumerate() {
        let _ = writeln!(s, "v {v} {label}");
    }
    for e in g.edges() {
        let _ = writeln!(s, "e {} {} {} {}", e.src, e.dst, e.time.raw(), e.label);
    }
    s
}

/// Parses a temporal query graph from the text format above.
pub fn parse_query_graph(text: &str) -> Result<QueryGraph, GraphError> {
    let mut b = QueryGraphBuilder::new();
    let mut expected_vid = 0usize;
    for (no, raw) in text.lines().enumerate() {
        let line = no + 1;
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        let mut it = l.split_whitespace();
        match it.next() {
            Some("v") => {
                let id: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line, "bad vertex id"))?;
                if id != expected_vid {
                    return Err(parse_err(
                        line,
                        format!("vertex ids must be dense, expected {expected_vid}"),
                    ));
                }
                let label: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line, "bad vertex label"))?;
                b.vertex(label);
                expected_vid += 1;
            }
            Some("e") => {
                let a: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line, "bad edge endpoint"))?;
                let bb: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line, "bad edge endpoint"))?;
                let mut dir = Direction::Undirected;
                let mut label = EDGE_LABEL_ANY;
                for tok in it {
                    match tok {
                        "->" => dir = Direction::AToB,
                        "--" => dir = Direction::Undirected,
                        other => {
                            label = other
                                .parse()
                                .map_err(|_| parse_err(line, "bad edge label"))?;
                        }
                    }
                }
                b.edge_full(a, bb, dir, label);
            }
            Some("o") => {
                let x: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line, "bad order pair"))?;
                let y: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(line, "bad order pair"))?;
                b.precede(x, y);
            }
            Some(tok) => return Err(parse_err(line, format!("unknown record '{tok}'"))),
            None => unreachable!(),
        }
    }
    b.build()
}

/// Serializes a query graph to the text format.
pub fn write_query_graph(q: &QueryGraph) -> String {
    let mut s = String::new();
    for u in 0..q.num_vertices() {
        let _ = writeln!(s, "v {u} {}", q.label(u));
    }
    for e in q.edges() {
        let dir = match e.direction {
            Direction::AToB => "->",
            Direction::Undirected => "--",
        };
        if e.label == EDGE_LABEL_ANY {
            let _ = writeln!(s, "e {} {} {dir}", e.a, e.b);
        } else {
            let _ = writeln!(s, "e {} {} {dir} {}", e.a, e.b, e.label);
        }
    }
    for (a, b) in q.order().pairs() {
        let _ = writeln!(s, "o {a} {b}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_graph_roundtrip() {
        let text = "\n# demo\nv 0 1\nv 1 2\nv 2 1\ne 0 1 5 3\ne 1 2 7\n";
        let g = parse_temporal_graph(text).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        let text2 = write_temporal_graph(&g);
        let g2 = parse_temporal_graph(&text2).unwrap();
        assert_eq!(g2.num_edges(), 2);
        assert_eq!(g2.edges()[0].label, 3);
    }

    #[test]
    fn query_graph_roundtrip() {
        let text = "v 0 1\nv 1 1\nv 2 2\ne 0 1 -> 9\ne 1 2\no 0 1\n";
        let q = parse_query_graph(text).unwrap();
        assert_eq!(q.num_edges(), 2);
        assert_eq!(q.edge(0).direction, Direction::AToB);
        assert_eq!(q.edge(0).label, 9);
        assert!(q.order().precedes(0, 1));
        let q2 = parse_query_graph(&write_query_graph(&q)).unwrap();
        assert!(q2.order().precedes(0, 1));
        assert_eq!(q2.edge(0).label, 9);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_temporal_graph("v 0 1\nx 1 2\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse(2, _)));
        let err = parse_temporal_graph("v 1 1\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse(1, _)));
        let err = parse_query_graph("v 0 1\ne 0 zz\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse(2, _)));
    }
}
