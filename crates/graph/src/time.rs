//! Timestamps with `±∞` sentinels.
//!
//! The max-min timestamp recurrence (paper Eq. 1) needs `−∞` ("no weak
//! embedding exists") and `∞` ("no temporally related descendant") as
//! ordinary values, and the *earlier-than* polarity of the filter is run on
//! negated timestamps (DESIGN.md §4), so negation must map the sentinels onto
//! each other without overflow.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A timestamp: a finite instant, or one of the two infinities.
///
/// Finite values are restricted to the open interval
/// `(i64::MIN, i64::MAX)` so that negation is total.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ts(i64);

impl Ts {
    /// Smaller than every finite timestamp.
    pub const NEG_INF: Ts = Ts(i64::MIN);
    /// Larger than every finite timestamp.
    pub const INF: Ts = Ts(i64::MAX);
    /// The zero instant.
    pub const ZERO: Ts = Ts(0);

    /// Creates a finite timestamp.
    ///
    /// # Panics
    /// Panics if `v` equals either sentinel (`i64::MIN` / `i64::MAX`).
    #[inline]
    pub fn new(v: i64) -> Ts {
        assert!(
            v != i64::MIN && v != i64::MAX,
            "timestamp {v} collides with a sentinel"
        );
        Ts(v)
    }

    /// Returns the raw value; sentinels keep their extreme representation.
    #[inline]
    pub fn raw(self) -> i64 {
        self.0
    }

    /// Inverse of [`Ts::raw`]: reinterprets a raw `i64` as a timestamp.
    ///
    /// Every `i64` is a valid representation — `i64::MIN`/`i64::MAX` map
    /// onto the sentinels — and `Ts` derives `Ord` on the raw value, so
    /// `Ts` ordering and raw ordering coincide. This is the bridge that
    /// lets bulk min/max kernels (`tcsm-filter::kernel`) work on plain
    /// `i64` lanes and convert only at API boundaries.
    #[inline]
    pub fn from_raw(v: i64) -> Ts {
        Ts(v)
    }

    /// True when neither `INF` nor `NEG_INF`.
    #[inline]
    pub fn is_finite(self) -> bool {
        self != Ts::INF && self != Ts::NEG_INF
    }

    /// Order-reversing involution: `neg(INF) = NEG_INF`, finite `t ↦ −t`.
    /// (Deliberately not `std::ops::Neg`: sentinel handling differs.)
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Ts {
        match self {
            Ts::INF => Ts::NEG_INF,
            Ts::NEG_INF => Ts::INF,
            Ts(v) => Ts(-v),
        }
    }

    /// Timestamp shifted by a window length; saturates at the sentinels.
    ///
    /// Saturation collapses distinct instants near the domain ends onto one
    /// value, which merges expiry batches — code deriving *expiration
    /// times* must use [`Ts::checked_plus`] and surface the overflow
    /// instead (see [`crate::stream::EventQueue::new`]).
    #[inline]
    pub fn plus(self, delta: i64) -> Ts {
        if !self.is_finite() {
            return self;
        }
        let v = self.0.saturating_add(delta);
        Ts(v.clamp(i64::MIN + 1, i64::MAX - 1))
    }

    /// Timestamp shifted by a window length, or `None` when the finite
    /// result would leave the representable open interval
    /// `(i64::MIN, i64::MAX)` — unlike [`Ts::plus`], distinct inputs never
    /// collapse onto one output. Sentinels are absorbing, as in `plus`.
    #[inline]
    pub fn checked_plus(self, delta: i64) -> Option<Ts> {
        if !self.is_finite() {
            return Some(self);
        }
        self.0
            .checked_add(delta)
            .filter(|&v| v > i64::MIN && v < i64::MAX)
            .map(Ts)
    }
}

impl From<i64> for Ts {
    #[inline]
    fn from(v: i64) -> Ts {
        Ts::new(v)
    }
}

impl fmt::Debug for Ts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Ts::INF => write!(f, "+inf"),
            Ts::NEG_INF => write!(f, "-inf"),
            Ts(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Display for Ts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_of_sentinels() {
        assert!(Ts::NEG_INF < Ts::new(-5));
        assert!(Ts::new(-5) < Ts::new(0));
        assert!(Ts::new(0) < Ts::INF);
        assert!(Ts::NEG_INF < Ts::INF);
    }

    #[test]
    fn negation_is_order_reversing_involution() {
        let samples = [Ts::NEG_INF, Ts::new(-7), Ts::ZERO, Ts::new(42), Ts::INF];
        for &a in &samples {
            assert_eq!(a.neg().neg(), a);
            for &b in &samples {
                assert_eq!(a < b, b.neg() < a.neg());
            }
        }
    }

    #[test]
    #[should_panic]
    fn finite_constructor_rejects_sentinel() {
        let _ = Ts::new(i64::MAX);
    }

    #[test]
    fn plus_saturates_and_preserves_sentinels() {
        assert_eq!(Ts::INF.plus(10), Ts::INF);
        assert_eq!(Ts::NEG_INF.plus(10), Ts::NEG_INF);
        assert_eq!(Ts::new(5).plus(10), Ts::new(15));
        assert!(Ts::new(i64::MAX - 2).plus(100).is_finite());
    }

    #[test]
    fn checked_plus_refuses_to_collapse_distinct_instants() {
        assert_eq!(Ts::new(5).checked_plus(10), Some(Ts::new(15)));
        assert_eq!(Ts::INF.checked_plus(10), Some(Ts::INF));
        assert_eq!(Ts::NEG_INF.checked_plus(-10), Some(Ts::NEG_INF));
        // The saturating collapse cases all report overflow instead.
        assert_eq!(Ts::new(i64::MAX - 2).checked_plus(100), None);
        assert_eq!(Ts::new(i64::MAX - 1).checked_plus(1), None);
        assert_eq!(Ts::new(i64::MIN + 1).checked_plus(-1), None);
        // The largest shift that still fits is accepted.
        assert_eq!(
            Ts::new(i64::MAX - 2).checked_plus(1),
            Some(Ts::new(i64::MAX - 1))
        );
    }
}
