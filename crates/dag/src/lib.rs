//! # tcsm-dag
//!
//! Query DAGs for the TCM algorithm (paper §III–§IV-B).
//!
//! A rooted DAG `ˆq` is obtained from the temporal query graph `q` by
//! directing every edge; the TC-matchable-edge filter considers the ordered
//! pairs of edges that are in the *temporal ancestor–descendant* relation
//! `⇝` of `ˆq` (Definition II.4), so the greedy [`build::build_dag`]
//! (Algorithm 2) maximizes the number of such pairs, and
//! [`build::build_best_dag`] tries every vertex as the root (Algorithm 1,
//! lines 1–6).
//!
//! [`QueryDag`] precomputes the ancestry artefacts used throughout the
//! filter and matcher: vertex ancestor/descendant sets, sub-DAG edge sets
//! `ˆq_u` (Definition II.5), ancestor-edge sets `A(u)`, and the
//! polarity-split *temporally relevant* sets `TR(u)` (DESIGN.md §4).
//! [`path_tree::PathTree`] materializes Definition II.6 for the test oracle.

pub mod build;
pub mod dag;
pub mod path_tree;
pub mod polarity;

pub use build::{build_best_dag, build_dag};
pub use dag::QueryDag;
pub use path_tree::PathTree;
pub use polarity::Polarity;
