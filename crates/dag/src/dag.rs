//! The [`QueryDag`] structure and its precomputed ancestry artefacts.

use crate::polarity::Polarity;
use serde::{Deserialize, Serialize};
use tcsm_graph::{QEdgeId, QVertexId, QueryGraph, Set64};

/// A direction assignment over the edges of a query graph, together with
/// everything the filter/matcher repeatedly asks about it.
///
/// Edge ids and vertex ids are those of the originating [`QueryGraph`]; the
/// DAG only adds an orientation `tail(e) → head(e)` per edge (the paper's
/// convention "(u1, u2) where u1 is the parent").
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QueryDag {
    /// Root vertex when the DAG was built rooted (forward DAGs); reversed
    /// DAGs generally have several sources and store `None`.
    root: Option<QVertexId>,
    /// `tail[e] → head[e]` orientation per query edge.
    tail: Vec<QVertexId>,
    head: Vec<QVertexId>,
    /// `children[u]` = outgoing `(edge, child)` pairs; `parents[u]` mirrors.
    children: Vec<Vec<(QEdgeId, QVertexId)>>,
    parents: Vec<Vec<(QEdgeId, QVertexId)>>,
    /// Vertices in a topological order (every tail before its head).
    topo: Vec<QVertexId>,
    /// Ancestor / descendant *vertex* sets per vertex (strict).
    vanc: Vec<Set64>,
    vdesc: Vec<Set64>,
    /// `sub_edges[u]` = edge set of the sub-DAG `ˆq_u` (Definition II.5):
    /// edges whose tail is `u` or a descendant of `u`.
    sub_edges: Vec<Set64>,
    /// `anc_edges[u]` = `A(u)`: edges whose head is `u` or an ancestor of
    /// `u` — exactly the edges that are DAG-ancestors of every edge leaving
    /// `u`.
    anc_edges: Vec<Set64>,
    /// `TR(u)` per polarity: the temporally relevant subset of `A(u)` whose
    /// max-min timestamps must actually be stored at `u` (DESIGN.md §4).
    relevant: [Vec<Set64>; 2],
    /// Number of ordered `⇝` pairs (the DAG's score `S_r`, §III).
    score: usize,
}

impl QueryDag {
    /// Builds a `QueryDag` from an explicit orientation. `orient[e] == true`
    /// means edge `e` is directed `q.edge(e).a → q.edge(e).b`.
    ///
    /// # Panics
    /// Panics if the orientation contains a cycle.
    pub fn from_orientation(q: &QueryGraph, orient: &[bool], root: Option<QVertexId>) -> QueryDag {
        let n = q.num_vertices();
        let m = q.num_edges();
        assert_eq!(orient.len(), m);
        let mut tail = vec![0; m];
        let mut head = vec![0; m];
        let mut children = vec![Vec::new(); n];
        let mut parents = vec![Vec::new(); n];
        for e in 0..m {
            let qe = q.edge(e);
            let (t, h) = if orient[e] {
                (qe.a, qe.b)
            } else {
                (qe.b, qe.a)
            };
            tail[e] = t;
            head[e] = h;
            children[t].push((e, h));
            parents[h].push((e, t));
        }
        // Kahn topological sort.
        let mut indeg: Vec<usize> = (0..n).map(|u| parents[u].len()).collect();
        let mut topo = Vec::with_capacity(n);
        let mut stack: Vec<QVertexId> = (0..n).filter(|&u| indeg[u] == 0).collect();
        while let Some(u) = stack.pop() {
            topo.push(u);
            for &(_, c) in &children[u] {
                indeg[c] -= 1;
                if indeg[c] == 0 {
                    stack.push(c);
                }
            }
        }
        assert_eq!(topo.len(), n, "orientation contains a cycle");

        // Ancestor sets in topo order; descendant sets in reverse.
        let mut vanc = vec![Set64::EMPTY; n];
        for &u in &topo {
            for &(_, c) in &children[u] {
                let merged = vanc[c].union(vanc[u]).union(Set64::singleton(u));
                vanc[c] = merged;
            }
        }
        let mut vdesc = vec![Set64::EMPTY; n];
        let mut sub_edges = vec![Set64::EMPTY; n];
        for &u in topo.iter().rev() {
            for &(e, c) in &children[u] {
                let merged_v = vdesc[u].union(vdesc[c]).union(Set64::singleton(c));
                vdesc[u] = merged_v;
                let merged_e = sub_edges[u].union(sub_edges[c]).union(Set64::singleton(e));
                sub_edges[u] = merged_e;
            }
        }
        let mut anc_edges = vec![Set64::EMPTY; n];
        for &u in &topo {
            for &(e, c) in &children[u] {
                let merged = anc_edges[c].union(anc_edges[u]).union(Set64::singleton(e));
                anc_edges[c] = merged;
            }
        }

        // TR(u) per polarity and the DAG score.
        let order = q.order();
        let mut relevant = [vec![Set64::EMPTY; n], vec![Set64::EMPTY; n]];
        for (pi, pol) in Polarity::BOTH.iter().enumerate() {
            for u in 0..n {
                let mut tr = Set64::EMPTY;
                for e in anc_edges[u].iter() {
                    // e' must have a constrained edge inside ˆq_u.
                    if !pol
                        .constrained_side(order, e)
                        .intersect(sub_edges[u])
                        .is_empty()
                    {
                        tr.insert(e);
                    }
                }
                relevant[pi][u] = tr;
            }
        }
        let mut score = 0;
        for e2 in 0..m {
            score += anc_edges[tail[e2]].intersect(order.related_set(e2)).len();
        }

        QueryDag {
            root,
            tail,
            head,
            children,
            parents,
            topo,
            vanc,
            vdesc,
            sub_edges,
            anc_edges,
            relevant,
            score,
        }
    }

    /// The reversed DAG `ˆq⁻¹` (every edge flipped; same ids).
    pub fn reversed(&self, q: &QueryGraph) -> QueryDag {
        // Reversed orientation directs `a → b` exactly when `a` is the
        // current head.
        let orient: Vec<bool> = (0..q.num_edges())
            .map(|e| self.head[e] == q.edge(e).a)
            .collect();
        QueryDag::from_orientation(q, &orient, None)
    }

    /// The root, for rooted (forward) DAGs.
    #[inline]
    pub fn root(&self) -> Option<QVertexId> {
        self.root
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.children.len()
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.tail.len()
    }

    /// Tail (parent endpoint) of edge `e`.
    #[inline]
    pub fn tail(&self, e: QEdgeId) -> QVertexId {
        self.tail[e]
    }

    /// Head (child endpoint) of edge `e`.
    #[inline]
    pub fn head(&self, e: QEdgeId) -> QVertexId {
        self.head[e]
    }

    /// Outgoing `(edge, child)` pairs of `u`.
    #[inline]
    pub fn children(&self, u: QVertexId) -> &[(QEdgeId, QVertexId)] {
        &self.children[u]
    }

    /// Incoming `(edge, parent)` pairs of `u`.
    #[inline]
    pub fn parents(&self, u: QVertexId) -> &[(QEdgeId, QVertexId)] {
        &self.parents[u]
    }

    /// Vertices in topological order (tails before heads).
    #[inline]
    pub fn topo_order(&self) -> &[QVertexId] {
        &self.topo
    }

    /// Strict ancestor vertex set of `u`.
    #[inline]
    pub fn ancestors(&self, u: QVertexId) -> Set64 {
        self.vanc[u]
    }

    /// Strict descendant vertex set of `u`.
    #[inline]
    pub fn descendants(&self, u: QVertexId) -> Set64 {
        self.vdesc[u]
    }

    /// Edge set of the sub-DAG `ˆq_u`.
    #[inline]
    pub fn sub_dag_edges(&self, u: QVertexId) -> Set64 {
        self.sub_edges[u]
    }

    /// `A(u)`: edges whose head is `u` or an ancestor of `u`.
    #[inline]
    pub fn ancestor_edges(&self, u: QVertexId) -> Set64 {
        self.anc_edges[u]
    }

    /// `TR(u)` for a polarity: ancestor edges whose max-min timestamp is
    /// stored at `u`.
    #[inline]
    pub fn relevant_ancestors(&self, u: QVertexId, pol: Polarity) -> Set64 {
        match pol {
            Polarity::Later => self.relevant[0][u],
            Polarity::Earlier => self.relevant[1][u],
        }
    }

    /// True iff edge `a` is a DAG-ancestor of edge `b`
    /// (`head(a) = tail(b)` or `head(a)` an ancestor of `tail(b)`).
    #[inline]
    pub fn edge_is_ancestor(&self, a: QEdgeId, b: QEdgeId) -> bool {
        self.anc_edges[self.tail[b]].contains(a)
    }

    /// `e1 ⇝ e2` under a polarity: DAG-ancestry plus the polarity's temporal
    /// relation (Definition II.4 split per DESIGN.md §4).
    #[inline]
    pub fn temporal_ancestor(
        &self,
        q: &QueryGraph,
        pol: Polarity,
        e1: QEdgeId,
        e2: QEdgeId,
    ) -> bool {
        self.edge_is_ancestor(e1, e2) && pol.relates(q.order(), e1, e2)
    }

    /// The DAG score `S_r`: number of ordered pairs in the temporal
    /// ancestor–descendant relation (both polarities).
    #[inline]
    pub fn score(&self) -> usize {
        self.score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsm_graph::query::paper_running_example;

    /// Orientation of Figure 3a: ε1=(u1,u2), ε2=(u1,u3), ε3=(u2,u4),
    /// ε4=(u3,u4), ε5=(u4,u5), ε6=(u3,u5) — all stored `a → b` already.
    fn figure_3a() -> (tcsm_graph::QueryGraph, QueryDag) {
        let q = paper_running_example();
        let orient = vec![true; 6];
        let dag = QueryDag::from_orientation(&q, &orient, Some(0));
        (q, dag)
    }

    #[test]
    fn ancestry_matches_figure_3a() {
        let (_q, dag) = figure_3a();
        // ˆq_{u3} contains ε4, ε5, ε6 (Definition II.5 example).
        let s = dag.sub_dag_edges(2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 4, 5]);
        // ˆq_{ε2} = {ε2} ∪ ˆq_{u3} — edge sub-DAG is edge + sub_edges(head).
        let e2_sub = dag.sub_dag_edges(dag.head(1)).union(Set64::singleton(1));
        assert_eq!(e2_sub.iter().collect::<Vec<_>>(), vec![1, 3, 4, 5]);
        // ε2 is an ancestor of ε4, ε5, ε6 (paper: "ε2 is an ancestor of ε4,
        // ε5, and ε6 in Figure 3a").
        assert!(dag.edge_is_ancestor(1, 3));
        assert!(dag.edge_is_ancestor(1, 4));
        assert!(dag.edge_is_ancestor(1, 5));
        assert!(!dag.edge_is_ancestor(1, 0));
        // ε4 is NOT an ancestor of ε6 (different branch under u3).
        assert!(!dag.edge_is_ancestor(3, 5));
    }

    #[test]
    fn score_matches_paper_example() {
        // Example IV.2: the DAG of Figure 3a has score 5.
        // Our score counts both polarities; all 5 pairs are Later-polarity
        // pairs here: (ε1,ε3), (ε1,ε5), (ε2,ε4), (ε2,ε5), (ε2,ε6).
        let (_q, dag) = figure_3a();
        assert_eq!(dag.score(), 5);
    }

    #[test]
    fn reversal_is_involutive_and_flips_ancestry() {
        let (q, dag) = figure_3a();
        let rev = dag.reversed(&q);
        assert_eq!(rev.tail(0), dag.head(0));
        assert_eq!(rev.head(0), dag.tail(0));
        let back = rev.reversed(&q);
        for e in 0..q.num_edges() {
            assert_eq!(back.tail(e), dag.tail(e));
        }
        // In ˆq⁻¹, ε5=(u5,u4): ε5 is now an ancestor of ε1 (u4 → u2 path).
        assert!(rev.edge_is_ancestor(4, 0));
    }

    #[test]
    fn relevant_sets_respect_polarity() {
        let (q, dag) = figure_3a();
        // At u4 (=index 3): A(u4) = {ε3, ε4, ε1, ε2}; ˆq_{u4} = {ε5}.
        let a = dag.ancestor_edges(3);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        // Later-polarity TR(u4): ancestors with a successor inside {ε5}:
        // ε1 ≺ ε5 and ε2 ≺ ε5 ⇒ {ε1, ε2}.
        let tr = dag.relevant_ancestors(3, Polarity::Later);
        assert_eq!(tr.iter().collect::<Vec<_>>(), vec![0, 1]);
        // Earlier-polarity TR(u4): ancestors with a predecessor inside {ε5}:
        // none (ε5 precedes nothing in the running example).
        assert!(dag.relevant_ancestors(3, Polarity::Earlier).is_empty());
        let _ = q;
    }

    #[test]
    fn topo_order_is_consistent() {
        let (_q, dag) = figure_3a();
        let pos: Vec<usize> = {
            let mut p = vec![0; dag.num_vertices()];
            for (i, &u) in dag.topo_order().iter().enumerate() {
                p[u] = i;
            }
            p
        };
        for e in 0..dag.num_edges() {
            assert!(pos[dag.tail(e)] < pos[dag.head(e)]);
        }
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cyclic_orientation_panics() {
        let mut b = tcsm_graph::QueryGraphBuilder::new();
        let v0 = b.vertex(0);
        let v1 = b.vertex(0);
        let v2 = b.vertex(0);
        b.edge(v0, v1);
        b.edge(v1, v2);
        b.edge(v2, v0);
        let q = b.build().unwrap();
        // 0→1, 1→2, 2→0 is a cycle.
        let _ = QueryDag::from_orientation(&q, &[true, true, true], None);
    }
}
