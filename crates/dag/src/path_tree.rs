//! Path trees (Definition II.6) — the semantic reference for weak
//! embeddings.
//!
//! The production filter never materializes path trees (the Eq. 1 recurrence
//! subsumes them); this module exists so tests can check the recurrence
//! against the *definition*: a weak embedding of `ˆq_u` at `v` is a
//! homomorphism of the path tree of `ˆq_u` with `u ↦ v` (Definition II.7).
//! Path trees can be exponentially larger than their DAG, so construction is
//! size-capped.

use crate::dag::QueryDag;
use tcsm_graph::{QEdgeId, QVertexId};

/// One node of a path tree: a copy of a query vertex.
#[derive(Clone, Debug)]
pub struct PathTreeNode {
    /// The query vertex this node is a copy of.
    pub vertex: QVertexId,
    /// Children as `(query edge, child node index)`.
    pub children: Vec<(QEdgeId, usize)>,
}

/// The path tree of a sub-DAG `ˆq_u` (Definition II.6): each root-to-leaf
/// path corresponds to a distinct root-to-leaf path of the DAG, with common
/// prefixes shared.
#[derive(Clone, Debug)]
pub struct PathTree {
    nodes: Vec<PathTreeNode>,
}

impl PathTree {
    /// Builds the path tree of `ˆq_u`. Returns `None` if more than
    /// `max_nodes` nodes would be created.
    pub fn of_vertex(dag: &QueryDag, u: QVertexId, max_nodes: usize) -> Option<PathTree> {
        let mut t = PathTree { nodes: Vec::new() };
        t.nodes.push(PathTreeNode {
            vertex: u,
            children: Vec::new(),
        });
        t.expand(dag, 0, max_nodes)?;
        Some(t)
    }

    /// Builds the path tree of `ˆq_e` (paths starting at edge `e`).
    pub fn of_edge(dag: &QueryDag, e: QEdgeId, max_nodes: usize) -> Option<PathTree> {
        let mut t = PathTree { nodes: Vec::new() };
        t.nodes.push(PathTreeNode {
            vertex: dag.tail(e),
            children: Vec::new(),
        });
        t.nodes.push(PathTreeNode {
            vertex: dag.head(e),
            children: Vec::new(),
        });
        t.nodes[0].children.push((e, 1));
        t.expand(dag, 1, max_nodes)?;
        Some(t)
    }

    fn expand(&mut self, dag: &QueryDag, node: usize, max_nodes: usize) -> Option<()> {
        // The path tree duplicates the sub-DAG under every distinct path, so
        // a plain recursive unfolding is exactly the definition.
        let qv = self.nodes[node].vertex;
        for &(e, c) in dag.children(qv) {
            if self.nodes.len() >= max_nodes {
                return None;
            }
            let idx = self.nodes.len();
            self.nodes.push(PathTreeNode {
                vertex: c,
                children: Vec::new(),
            });
            self.nodes[node].children.push((e, idx));
            self.expand(dag, idx, max_nodes)?;
        }
        Some(())
    }

    /// Root node index (always 0).
    #[inline]
    pub fn root(&self) -> usize {
        0
    }

    /// All nodes.
    #[inline]
    pub fn nodes(&self) -> &[PathTreeNode] {
        &self.nodes
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree is a single node.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Number of distinct root-to-leaf paths.
    pub fn num_paths(&self) -> usize {
        fn rec(t: &PathTree, n: usize) -> usize {
            if t.nodes[n].children.is_empty() {
                1
            } else {
                t.nodes[n].children.iter().map(|&(_, c)| rec(t, c)).sum()
            }
        }
        rec(self, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::QueryDag;
    use tcsm_graph::query::paper_running_example;

    #[test]
    fn figure_3c_path_tree_shape() {
        // Path tree of ˆq (Figure 3a) rooted at u1 (Figure 3c):
        // u1 has paths ε1→ε3→ε5, ε2→ε4→ε5, ε2→ε6 ⇒ 3 leaves.
        let q = paper_running_example();
        let dag = QueryDag::from_orientation(&q, &[true; 6], Some(0));
        let t = PathTree::of_vertex(&dag, 0, 1000).unwrap();
        assert_eq!(t.num_paths(), 3);
        // Nodes: u1, u2, u4, u5 (via ε1ε3ε5), u3, u4', u5', u5'' ⇒ 8 copies.
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn edge_sub_tree() {
        let q = paper_running_example();
        let dag = QueryDag::from_orientation(&q, &[true; 6], Some(0));
        // ˆq_{ε2}: ε2 then {ε4→ε5, ε6} ⇒ 2 paths, 5 nodes.
        let t = PathTree::of_edge(&dag, 1, 1000).unwrap();
        assert_eq!(t.num_paths(), 2);
        assert_eq!(t.len(), 5);
        assert_eq!(t.nodes()[0].vertex, 0); // u1
    }

    #[test]
    fn size_cap_returns_none() {
        let q = paper_running_example();
        let dag = QueryDag::from_orientation(&q, &[true; 6], Some(0));
        assert!(PathTree::of_vertex(&dag, 0, 3).is_none());
    }

    #[test]
    fn leaf_vertex_tree_is_single_node() {
        let q = paper_running_example();
        let dag = QueryDag::from_orientation(&q, &[true; 6], Some(0));
        let t = PathTree::of_vertex(&dag, 4, 10).unwrap(); // u5 is a leaf
        assert!(t.is_empty());
        assert_eq!(t.num_paths(), 1);
    }
}
