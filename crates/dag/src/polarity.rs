//! Temporal polarity of the `⇝` relation.
//!
//! Definition II.4 makes `e1 ⇝ e2` hold when `e1` is a DAG-ancestor of `e2`
//! and the two are temporally related in *either* direction. The paper
//! presents only the `e1 ≺ e2` case and implements `e2 ≺ e1` "in a
//! symmetrical way"; we split `⇝` by polarity and run one max-min filter
//! instance per polarity (DESIGN.md §4), mapping the `Earlier` case onto the
//! `Later` machinery via timestamp negation.

use serde::{Deserialize, Serialize};
use tcsm_graph::{Set64, TemporalOrder};

/// Which temporal direction a filter instance enforces on DAG descendants.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Polarity {
    /// Descendants `e'` with `e ≺ e'`: their images must be **later** than
    /// the image of `e`.
    Later,
    /// Descendants `e'` with `e' ≺ e`: their images must be **earlier**.
    Earlier,
}

impl Polarity {
    /// Both polarities, in a fixed order.
    pub const BOTH: [Polarity; 2] = [Polarity::Later, Polarity::Earlier];

    /// Edges that must be on this polarity's side of `e`:
    /// successors of `e` for `Later`, predecessors for `Earlier`.
    #[inline]
    pub fn constrained_side(self, order: &TemporalOrder, e: usize) -> Set64 {
        match self {
            Polarity::Later => order.successors(e),
            Polarity::Earlier => order.predecessors(e),
        }
    }

    /// True iff `anc ⇝ desc` holds *temporally* under this polarity
    /// (the DAG-ancestry half of `⇝` is checked by the caller).
    #[inline]
    pub fn relates(self, order: &TemporalOrder, anc: usize, desc: usize) -> bool {
        match self {
            Polarity::Later => order.precedes(anc, desc),
            Polarity::Earlier => order.precedes(desc, anc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sides_are_mirrors() {
        let o = TemporalOrder::new(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(Polarity::Later.constrained_side(&o, 0), o.successors(0));
        assert_eq!(Polarity::Earlier.constrained_side(&o, 2), o.predecessors(2));
        assert!(Polarity::Later.relates(&o, 0, 2));
        assert!(!Polarity::Later.relates(&o, 2, 0));
        assert!(Polarity::Earlier.relates(&o, 2, 0));
    }
}
