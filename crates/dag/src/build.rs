//! Greedy query-DAG construction (Algorithm 2 and Algorithm 1 lines 1–6).
//!
//! `BuildDAG(q, r)` grows a rooted DAG one vertex at a time: among the
//! candidate vertices adjacent to the current DAG it picks the one whose
//! selection creates the most temporal ancestor–descendant pairs, breaking
//! ties by earliest insertion into the candidate set (Example IV.2).
//!
//! Score accounting follows the complexity proof of Lemma IV.2 — `Score[u′]`
//! is recomputed on every visit of an edge `(u, u′)` and, for each neighbour
//! `u′_n` outside the DAG, counts the temporally related ancestor edges of
//! the would-be edge `(u′, u′_n)` (current DAG edges plus `u′`'s would-be
//! in-edges). The paper's Example IV.2 score trace is not reproducible under
//! any single reading of the pseudocode (see DESIGN.md §4); the final score
//! `S_r` is computed exactly from the finished DAG, as §III defines it, so
//! root selection is deterministic and unambiguous.

use crate::dag::QueryDag;
use tcsm_graph::{QVertexId, QueryGraph, Set64};

/// Builds the rooted DAG `ˆq_r` with root `r` via the greedy of Algorithm 2.
/// Returns the DAG; its exact score is available as [`QueryDag::score`].
pub fn build_dag(q: &QueryGraph, root: QVertexId) -> QueryDag {
    let n = q.num_vertices();
    assert!(root < n, "root out of range");
    let order = q.order();

    // Partial-DAG state.
    let mut in_dag = Set64::EMPTY; // vertices added so far
    let mut vanc = vec![Set64::EMPTY; n]; // strict vertex ancestors (partial)
    let mut anc_edges = vec![Set64::EMPTY; n]; // A(u) in the partial DAG
    let mut orient = vec![true; q.num_edges()];

    // Candidate bookkeeping: score + FIFO sequence for tie-breaks.
    let mut in_cand = vec![false; n];
    let mut score = vec![0usize; n];
    let mut seq = vec![usize::MAX; n];
    let mut next_seq = 0usize;

    // Score[u'] per the Lemma IV.2 reading (recomputed on each edge visit).
    let compute_score = |u2: QVertexId, in_dag: &Set64, anc_edges: &[Set64]| -> usize {
        // Hypothetical ancestor-edge set of u' if selected now: the union of
        // A(w) over DAG neighbours w, plus the new in-edges (w, u').
        let mut hyp = Set64::EMPTY;
        for &(e, w) in q.incident_edges(u2) {
            if in_dag.contains(w) {
                hyp = hyp.union(anc_edges[w]).union(Set64::singleton(e));
            }
        }
        let mut s = 0;
        for &(e, w) in q.incident_edges(u2) {
            if !in_dag.contains(w) {
                s += hyp.intersect(order.related_set(e)).len();
            }
        }
        s
    };

    in_cand[root] = true;
    score[root] = 0;
    seq[root] = next_seq;
    next_seq += 1;

    for _ in 0..n {
        // Pop candidate with max score; FIFO tie-break.
        let u = (0..n)
            .filter(|&v| in_cand[v])
            .max_by(|&x, &y| score[x].cmp(&score[y]).then(seq[y].cmp(&seq[x])))
            .expect("query graph is connected");
        in_cand[u] = false;
        in_dag.insert(u);

        // Add in-edges from DAG neighbours, maintaining partial ancestry.
        let mut anc_v = Set64::EMPTY;
        let mut anc_e = Set64::EMPTY;
        for &(e, w) in q.incident_edges(u) {
            if in_dag.contains(w) && w != u {
                // Edge directed w → u.
                orient[e] = q.edge(e).a == w;
                anc_v = anc_v.union(vanc[w]).union(Set64::singleton(w));
                anc_e = anc_e.union(anc_edges[w]).union(Set64::singleton(e));
            }
        }
        vanc[u] = anc_v;
        anc_edges[u] = anc_e;

        // Visit edges to non-DAG neighbours: enqueue + (re)score.
        for &(_, w) in q.incident_edges(u) {
            if !in_dag.contains(w) {
                if !in_cand[w] {
                    in_cand[w] = true;
                    seq[w] = next_seq;
                    next_seq += 1;
                }
                score[w] = compute_score(w, &in_dag, &anc_edges);
            }
        }
    }

    QueryDag::from_orientation(q, &orient, Some(root))
}

/// Algorithm 1 lines 1–6: builds `ˆq_r` for every root and keeps the DAG
/// with the highest score (ties: smallest root id).
pub fn build_best_dag(q: &QueryGraph) -> QueryDag {
    let mut best: Option<QueryDag> = None;
    for r in 0..q.num_vertices() {
        let dag = build_dag(q, r);
        let better = match &best {
            None => true,
            Some(b) => dag.score() > b.score(),
        };
        if better {
            best = Some(dag);
        }
    }
    best.expect("query graph has at least one vertex")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsm_graph::query::paper_running_example;
    use tcsm_graph::QueryGraphBuilder;

    #[test]
    fn running_example_root_u1_recovers_figure_3a() {
        let q = paper_running_example();
        let dag = build_dag(&q, 0);
        // Example IV.2: selection order u1, u3, u2, u4, u5 and score 5.
        assert_eq!(dag.score(), 5);
        // Figure 3a orientations.
        let expect = [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (2, 4)];
        for (e, &(t, h)) in expect.iter().enumerate() {
            assert_eq!((dag.tail(e), dag.head(e)), (t, h), "edge {e}");
        }
    }

    #[test]
    fn best_dag_is_at_least_as_good_as_every_root() {
        let q = paper_running_example();
        let best = build_best_dag(&q);
        for r in 0..q.num_vertices() {
            assert!(best.score() >= build_dag(&q, r).score());
        }
        assert!(best.score() >= 5);
    }

    #[test]
    fn empty_order_gives_zero_score() {
        let mut b = QueryGraphBuilder::new();
        let v0 = b.vertex(0);
        let v1 = b.vertex(0);
        let v2 = b.vertex(0);
        b.edge(v0, v1);
        b.edge(v1, v2);
        let q = b.build().unwrap();
        let dag = build_best_dag(&q);
        assert_eq!(dag.score(), 0);
        assert_eq!(dag.num_edges(), 2);
    }

    #[test]
    fn every_root_yields_valid_rooted_dag() {
        let q = paper_running_example();
        for r in 0..q.num_vertices() {
            let dag = build_dag(&q, r);
            assert_eq!(dag.root(), Some(r));
            // Root has no parents.
            assert!(dag.parents(r).is_empty());
            // All vertices reachable from the root (connected query).
            let reach = dag.descendants(r).union(Set64::singleton(r));
            assert_eq!(reach.len(), q.num_vertices());
        }
    }

    #[test]
    fn total_order_path_scores_all_pairs() {
        // Path v0-v1-v2-v3 with total order e0 ≺ e1 ≺ e2. Rooted at v0 the
        // DAG is the path itself: ancestry relates every pair ⇒ score 3.
        let mut b = QueryGraphBuilder::new();
        let v: Vec<_> = (0..4).map(|_| b.vertex(0)).collect();
        let e0 = b.edge(v[0], v[1]);
        let e1 = b.edge(v[1], v[2]);
        let e2 = b.edge(v[2], v[3]);
        b.precede(e0, e1).precede(e1, e2);
        let q = b.build().unwrap();
        let dag = build_dag(&q, 0);
        assert_eq!(dag.score(), 3);
        // Rooted mid-path the two arms split: (v2 root) edges e2 and e1,e0;
        // pairs across arms are not DAG-related, so the score drops.
        let mid = build_dag(&q, 2);
        assert!(mid.score() < 3);
        // And the best root therefore picks an endpoint.
        assert_eq!(build_best_dag(&q).score(), 3);
    }
}
