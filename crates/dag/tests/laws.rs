//! Structural laws of query DAGs on random queries.

use proptest::prelude::*;
use tcsm_dag::{build_best_dag, build_dag, Polarity};
use tcsm_graph::{QueryGraphBuilder, Set64};

fn arb_query() -> impl Strategy<Value = tcsm_graph::QueryGraph> {
    (
        2usize..8,
        any::<u64>(),
        prop::collection::vec((0usize..16, 0usize..16), 0..8),
    )
        .prop_map(|(n, seed, order_pairs)| {
            let mut qb = QueryGraphBuilder::new();
            for i in 0..n {
                qb.vertex((seed >> i) as u32 % 3);
            }
            let mut m = 0usize;
            for i in 1..n {
                qb.edge((seed as usize >> i) % i, i);
                m += 1;
            }
            // A couple of closing edges when they stay simple.
            for k in 0..2usize {
                let a = (seed as usize >> (2 * k)) % n;
                let b = (seed as usize >> (2 * k + 7)) % n;
                if a != b {
                    let mut qb2 = qb.clone();
                    qb2.edge(a.min(b), a.max(b));
                    if qb2.clone().build().is_ok() {
                        qb = qb2;
                        m += 1;
                    }
                }
            }
            for &(x, y) in &order_pairs {
                if m >= 2 {
                    let x = x % m;
                    let y = y % m;
                    if x != y {
                        qb.precede(x.min(y), x.max(y));
                    }
                }
            }
            qb.build().expect("valid random query")
        })
}

proptest! {
    #[test]
    fn dag_structure_laws(q in arb_query()) {
        for root in 0..q.num_vertices() {
            let dag = build_dag(&q, root);
            // Root has no parents; every other vertex has at least one.
            prop_assert!(dag.parents(root).is_empty());
            for u in 0..q.num_vertices() {
                if u != root {
                    prop_assert!(!dag.parents(u).is_empty());
                }
                // TR(u) ⊆ A(u) for both polarities.
                for pol in Polarity::BOTH {
                    prop_assert!(dag
                        .relevant_ancestors(u, pol)
                        .is_subset_of(dag.ancestor_edges(u)));
                }
                // Ancestor/descendant sets are consistent duals.
                for w in dag.ancestors(u).iter() {
                    prop_assert!(dag.descendants(w).contains(u));
                }
                // sub_dag_edges(u) = edges whose tail is u or a descendant.
                let mut expect = Set64::EMPTY;
                for e in 0..q.num_edges() {
                    let t = dag.tail(e);
                    if t == u || dag.descendants(u).contains(t) {
                        expect.insert(e);
                    }
                }
                prop_assert_eq!(dag.sub_dag_edges(u), expect);
            }
            // Reversal is an involution and swaps ancestor relations.
            let rev = dag.reversed(&q);
            for e in 0..q.num_edges() {
                prop_assert_eq!(rev.tail(e), dag.head(e));
                prop_assert_eq!(rev.head(e), dag.tail(e));
            }
            for a in 0..q.num_edges() {
                for b in 0..q.num_edges() {
                    if dag.edge_is_ancestor(a, b) {
                        prop_assert!(rev.edge_is_ancestor(b, a));
                    }
                }
            }
            // Score equals the direct pair count over both polarities.
            let mut count = 0;
            for a in 0..q.num_edges() {
                for b in 0..q.num_edges() {
                    if dag.edge_is_ancestor(a, b) && q.order().related(a, b) {
                        count += 1;
                    }
                }
            }
            prop_assert_eq!(dag.score(), count);
        }
    }

    #[test]
    fn best_dag_dominates_every_root(q in arb_query()) {
        let best = build_best_dag(&q);
        for root in 0..q.num_vertices() {
            prop_assert!(best.score() >= build_dag(&q, root).score());
        }
        // The score can never exceed the number of related ordered pairs
        // (each unordered related pair contributes at most one ⇝ pair,
        // since DAG ancestry is antisymmetric).
        prop_assert!(best.score() <= q.order().num_pairs());
    }
}
