//! Experiment CLI: regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p tcsm-bench --bin experiments -- <cmd> [flags]
//!
//! cmds:  table3 | settings | fig7 | fig8 | fig9 | fig10 | fig11 | table5 | all
//! flags: --scale F        dataset scale (default 0.25; 1.0 = 1:1000 paper)
//!        --queries N      queries per set (default 3; paper uses 100)
//!        --budget N       node budget per run (default 3_000_000)
//!        --dataset NAME   restrict to one dataset (repeatable)
//!        --undirected     treat graphs as undirected
//!        --batched        drive TcmEngine through the batched delta path
//!        --seed N         base seed
//!        --out DIR        CSV output dir (default results/)
//! ```

use tcsm_bench::experiments::Suite;
use tcsm_bench::mem::CountingAlloc;
use tcsm_datasets::ALL_PROFILES;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    CountingAlloc::mark_installed();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmds: Vec<String> = Vec::new();
    let mut suite = Suite::default();
    let mut picked_datasets: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                suite.scale = args[i].parse().expect("--scale takes a float");
            }
            "--queries" => {
                i += 1;
                suite.queries_per_set = args[i].parse().expect("--queries takes an int");
            }
            "--budget" => {
                i += 1;
                suite.run_cfg.max_total_nodes = args[i].parse().expect("--budget takes an int");
            }
            "--seed" => {
                i += 1;
                suite.seed = args[i].parse().expect("--seed takes an int");
            }
            "--out" => {
                i += 1;
                suite.results_dir = args[i].clone().into();
            }
            "--dataset" => {
                i += 1;
                picked_datasets.push(args[i].to_lowercase());
            }
            "--undirected" => suite.run_cfg.directed = false,
            "--batched" => suite.run_cfg.batching = true,
            other => cmds.push(other.to_string()),
        }
        i += 1;
    }
    if !picked_datasets.is_empty() {
        suite.datasets = ALL_PROFILES
            .iter()
            .filter(|p| {
                picked_datasets
                    .iter()
                    .any(|n| p.name.to_lowercase().contains(n))
            })
            .copied()
            .collect();
        assert!(!suite.datasets.is_empty(), "no dataset matched");
    }
    if cmds.is_empty() {
        eprintln!("usage: experiments <table3|settings|fig7|fig8|fig9|fig10|fig11|table5|ablation|all> [flags]");
        std::process::exit(2);
    }
    for cmd in &cmds {
        match cmd.as_str() {
            "table3" => suite.table3(),
            "settings" => suite.settings(),
            "fig7" => suite.fig7(),
            "fig8" => suite.fig8(),
            "fig9" => suite.fig9(),
            "fig10" => suite.fig10(),
            "fig11" => suite.fig11(),
            "table5" => suite.table5(),
            "ablation" => suite.ablation(),
            "all" => suite.all(),
            other => {
                eprintln!("unknown command {other}");
                std::process::exit(2);
            }
        }
    }
}
