//! Experiment CLI: regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p tcsm-bench --bin experiments -- <cmd> [flags]
//!
//! cmds:  table3 | settings | fig7 | fig8 | fig9 | fig10 | fig11 | table5 |
//!        service | all
//! flags: --scale F        dataset scale (default 0.25; 1.0 = 1:1000 paper)
//!        --queries N      queries per set (default 3; paper uses 100)
//!        --service        run the multi-query service driver (alias for
//!                         the `service` command): N standing queries
//!                         through tcsm-service's shared-window shards vs
//!                         the run-N-engines baseline
//!        --shards N       shard count for --service (default
//!                         min(4, queries))
//!        --budget N       node budget per run (default 3_000_000)
//!        --dataset NAME   restrict to one synthetic dataset (repeatable)
//!        --input FILE     run on a real dump instead of the profiles
//!                         (repeatable; see --format)
//!        --format F       format of subsequent --input files:
//!                         snap (src dst unixtime lines) | native (v/e text)
//!        --labels N       SNAP ingest: vertex-label alphabet size (default 4)
//!        --labeling P     SNAP ingest: uniform | degree | hash (default degree)
//!        --max-edges N    SNAP ingest: keep only the first N edge records
//!                         (like --format, the SNAP knobs configure the
//!                         --input files that follow them; with a single
//!                         --input, flag order doesn't matter)
//!        --undirected     treat graphs as undirected
//!        --batched        drive TcmEngine through the batched delta path
//!        --seed N         base seed
//!        --out DIR        CSV output dir (default results/)
//! ```
//!
//! `--input` replaces the synthetic profile list with the given file(s);
//! everything downstream (query generation, window derivation, every
//! figure/table driver) is source-agnostic. The SNAP format contract —
//! sparse-id densification, epoch rescaling, label synthesis — is
//! documented on `tcsm_graph::io`.

use tcsm_bench::experiments::Suite;
use tcsm_bench::mem::CountingAlloc;
use tcsm_datasets::{FileFormat, FileSource, SourceSpec, ALL_PROFILES};
use tcsm_graph::io::{SnapLabeling, SnapOptions};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Reports a usage error and exits with status 2 (bad invocation), the
/// sibling of the unknown-command path below.
fn usage_err(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Parses a flag's value, mapping a malformed one to a usage error
/// instead of a panic.
fn parse_flag<T: std::str::FromStr>(value: &str, what: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| usage_err(&format!("{what} (got '{value}')")))
}

fn main() {
    CountingAlloc::mark_installed();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmds: Vec<String> = Vec::new();
    let mut suite = Suite::default();
    let mut picked_datasets: Vec<String> = Vec::new();
    let mut inputs: Vec<FileSource> = Vec::new();
    let mut format = FileFormat::Snap;
    let mut snap = SnapOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                suite.scale = parse_flag(&args[i], "--scale takes a float");
            }
            "--queries" => {
                i += 1;
                suite.queries_per_set = parse_flag(&args[i], "--queries takes an int");
            }
            "--budget" => {
                i += 1;
                suite.run_cfg.max_total_nodes = parse_flag(&args[i], "--budget takes an int");
            }
            "--seed" => {
                i += 1;
                suite.seed = parse_flag(&args[i], "--seed takes an int");
            }
            "--out" => {
                i += 1;
                suite.results_dir = args[i].clone().into();
            }
            "--dataset" => {
                i += 1;
                picked_datasets.push(args[i].to_lowercase());
            }
            "--format" => {
                i += 1;
                format = FileFormat::from_name(&args[i])
                    .unwrap_or_else(|| usage_err("--format takes 'snap' or 'native'"));
            }
            "--labels" => {
                i += 1;
                snap.vertex_labels = parse_flag(&args[i], "--labels takes an int ≥ 1");
                if snap.vertex_labels < 1 {
                    usage_err("--labels takes an int ≥ 1");
                }
            }
            "--labeling" => {
                i += 1;
                snap.labeling = match args[i].as_str() {
                    "uniform" => SnapLabeling::Uniform,
                    "degree" => SnapLabeling::DegreeBucket,
                    "hash" => SnapLabeling::IdHash,
                    other => usage_err(&format!("--labeling: unknown policy '{other}'")),
                };
            }
            "--max-edges" => {
                i += 1;
                snap.max_edges = Some(parse_flag(&args[i], "--max-edges takes an int"));
            }
            "--input" => {
                i += 1;
                inputs.push(FileSource {
                    path: args[i].clone().into(),
                    format,
                    snap,
                    directed: true,
                });
            }
            "--undirected" => suite.run_cfg.directed = false,
            "--batched" => suite.run_cfg.batching = true,
            "--service" => cmds.push("service".to_string()),
            "--shards" => {
                i += 1;
                suite.service_shards = parse_flag(&args[i], "--shards takes an int ≥ 1");
                if suite.service_shards < 1 {
                    usage_err("--shards takes an int ≥ 1");
                }
            }
            other => cmds.push(other.to_string()),
        }
        i += 1;
    }
    if !inputs.is_empty() {
        if !picked_datasets.is_empty() {
            usage_err("--input and --dataset are mutually exclusive");
        }
        // With a single --input, --format and the SNAP knobs parsed after
        // it still apply (flag order shouldn't matter for the common
        // invocation). With several, each input keeps what was in force
        // when it appeared — the flags configure *subsequent* files.
        if let [only] = &mut inputs[..] {
            only.format = format;
            if only.format == FileFormat::Snap {
                only.snap = snap;
            }
        }
        suite.sources = inputs.into_iter().map(SourceSpec::File).collect();
    } else if !picked_datasets.is_empty() {
        suite.sources = ALL_PROFILES
            .iter()
            .filter(|p| {
                picked_datasets
                    .iter()
                    .any(|n| p.name.to_lowercase().contains(n))
            })
            .copied()
            .map(SourceSpec::Profile)
            .collect();
        if suite.sources.is_empty() {
            usage_err("no dataset matched");
        }
    }
    if cmds.is_empty() {
        eprintln!("usage: experiments <table3|settings|fig7|fig8|fig9|fig10|fig11|table5|ablation|service|all> [flags]");
        std::process::exit(2);
    }
    for cmd in &cmds {
        let outcome = match cmd.as_str() {
            "table3" => suite.table3(),
            "settings" => suite.settings(),
            "fig7" => suite.fig7(),
            "fig8" => suite.fig8(),
            "fig9" => suite.fig9(),
            "fig10" => suite.fig10(),
            "fig11" => suite.fig11(),
            "table5" => suite.table5(),
            "ablation" => suite.ablation(),
            "service" => suite.service(),
            "all" => suite.all(),
            other => {
                eprintln!("unknown command {other}");
                std::process::exit(2);
            }
        };
        if let Err(e) = outcome {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
