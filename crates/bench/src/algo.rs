//! Uniform runner over all evaluated algorithms.

use std::time::Duration;
use tcsm_baselines::{RapidFlowLite, TimingJoin};
use tcsm_core::{AlgorithmPreset, EngineConfig, SearchBudget, TcmEngine};
use tcsm_graph::{QueryGraph, TemporalGraph};
use tcsm_telemetry::{Clock, SystemClock};

/// The algorithms of §VI (plus one extra ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// Full TCM.
    Tcm,
    /// `TCM-Pruning` of §VI-B: filter on, backtracking pruning off.
    TcmPruning,
    /// Extra ablation: pruning on, filter off (not in the paper).
    TcmNoFilter,
    /// SymBi + temporal post-check.
    SymBi,
    /// RapidFlow-lite + temporal post-check (DESIGN.md §5).
    RapidFlow,
    /// Timing-style materialized join.
    Timing,
}

impl Algo {
    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Tcm => "TCM",
            Algo::TcmPruning => "TCM-Pruning",
            Algo::TcmNoFilter => "TCM-NoFilter",
            Algo::SymBi => "SymBi",
            Algo::RapidFlow => "RapidFlow",
            Algo::Timing => "Timing",
        }
    }

    /// The four algorithms of Figures 7–9.
    pub const MAIN: [Algo; 4] = [Algo::Tcm, Algo::Timing, Algo::RapidFlow, Algo::SymBi];
    /// The three variants of Figure 11 / §VI-B.
    pub const ABLATION: [Algo; 3] = [Algo::SymBi, Algo::TcmPruning, Algo::Tcm];
}

/// Limits emulating the paper's 1-hour timeout at laptop scale.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Total backtracking-node budget per (query, stream) run.
    pub max_total_nodes: u64,
    /// Materialized-partial cap for Timing.
    pub max_partials: usize,
    /// Treat graphs as directed.
    pub directed: bool,
    /// Drive the engine through the batched delta path (`TcmEngine` only;
    /// the baselines have no batched mode).
    pub batching: bool,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            max_total_nodes: 3_000_000,
            max_partials: 1_500_000,
            directed: true,
            batching: false,
        }
    }
}

/// Outcome of one (algorithm, query, stream) run.
#[derive(Clone, Copy, Debug)]
pub struct RunResult {
    /// Wall-clock time for the whole stream.
    pub elapsed: Duration,
    /// False when a budget was exhausted (counts as unsolved).
    pub solved: bool,
    /// Occurred / expired embedding counts.
    pub occurred: u64,
    pub expired: u64,
    /// Backtracking nodes (or join attempts).
    pub search_nodes: u64,
    /// Peak heap growth above the pre-run baseline (0 without the counting
    /// allocator). Baseline-relative so bytes resident before the run —
    /// e.g. other cached datasets — don't leak into the measurement; add
    /// the dataset's own size for a whole-working-set figure.
    pub peak_mem: usize,
    /// Average DCS edge pairs per event (TCM/SymBi presets only).
    pub avg_dcs_edges: f64,
    /// Average `d2` candidate vertices per event.
    pub avg_dcs_vertices: f64,
}

/// Runs one algorithm over one stream, counting matches.
pub fn run_one(
    algo: Algo,
    q: &QueryGraph,
    g: &TemporalGraph,
    delta: i64,
    rc: &RunConfig,
) -> RunResult {
    let base = crate::mem::live_bytes();
    crate::mem::reset_peak();
    let clock = SystemClock::new();
    let budget = SearchBudget {
        max_total_nodes: rc.max_total_nodes,
        ..Default::default()
    };
    let (solved, occurred, expired, nodes, de, dv) = match algo {
        Algo::Tcm | Algo::TcmPruning | Algo::TcmNoFilter | Algo::SymBi => {
            let preset = match algo {
                Algo::Tcm => AlgorithmPreset::Tcm,
                Algo::TcmPruning => AlgorithmPreset::TcmNoPruning,
                Algo::TcmNoFilter => AlgorithmPreset::TcmNoFilter,
                _ => AlgorithmPreset::SymBiPostCheck,
            };
            let cfg = EngineConfig {
                preset,
                pruning_override: None,
                budget,
                directed: rc.directed,
                collect_matches: false,
                batching: rc.batching,
                // Honour the TCSM_THREADS-aware default for the pool width.
                ..EngineConfig::default()
            };
            let mut e = TcmEngine::new(q, g, delta, cfg).expect("valid run inputs");
            let s = *e.run_counting();
            (
                !s.budget_exhausted,
                s.occurred,
                s.expired,
                s.search_nodes,
                s.avg_dcs_edges(),
                s.avg_dcs_vertices(),
            )
        }
        Algo::RapidFlow => {
            let mut e = RapidFlowLite::new(q, g, delta, rc.directed, budget, false)
                .expect("valid run inputs");
            let _ = e.run();
            let s = *e.stats();
            (
                !s.budget_exhausted,
                s.occurred,
                s.expired,
                s.search_nodes,
                0.0,
                0.0,
            )
        }
        Algo::Timing => {
            let mut e = TimingJoin::new(q, g, delta, rc.directed, rc.max_partials, false)
                .expect("valid run inputs");
            e.set_max_join_attempts(rc.max_total_nodes * 4);
            let _ = e.run();
            let s = *e.stats();
            (
                !s.budget_exhausted,
                s.occurred,
                s.expired,
                s.search_nodes,
                0.0,
                0.0,
            )
        }
    };
    RunResult {
        elapsed: Duration::from_micros(clock.micros()),
        solved,
        occurred,
        expired,
        search_nodes: nodes,
        peak_mem: crate::mem::peak_bytes().saturating_sub(base),
        avg_dcs_edges: de,
        avg_dcs_vertices: dv,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsm_datasets::{profiles::SUPERUSER, QueryGen};

    #[test]
    fn all_algorithms_agree_on_counts() {
        let g = SUPERUSER.generate(1, 0.3);
        let qg = QueryGen::new(&g);
        let delta = SUPERUSER.window_sizes(0.3)[2];
        let q = qg.generate(5, 0.5, delta / 2, 3).expect("query");
        let rc = RunConfig::default();
        let results: Vec<RunResult> = [
            Algo::Tcm,
            Algo::TcmPruning,
            Algo::SymBi,
            Algo::RapidFlow,
            Algo::Timing,
        ]
        .iter()
        .map(|&a| run_one(a, &q, &g, delta, &rc))
        .collect();
        for r in &results {
            assert!(r.solved);
            assert_eq!(r.occurred, results[0].occurred, "{results:?}");
            assert_eq!(r.expired, results[0].expired);
        }
        // The generated query is guaranteed at least one match.
        assert!(results[0].occurred > 0);
    }
}
