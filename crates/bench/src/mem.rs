//! Peak-heap tracking for the Figure 10 reproduction.
//!
//! The paper measures peak RSS with `ps`; here a counting global allocator
//! tracks live heap bytes and their high-water mark, resettable between
//! algorithm runs. The `experiments` binary installs [`CountingAlloc`] as
//! its global allocator; library users that don't install it simply read
//! zeros (reported as n/a).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static INSTALLED: AtomicUsize = AtomicUsize::new(0);

/// A `System`-backed allocator that tracks live bytes and the peak.
pub struct CountingAlloc;

impl CountingAlloc {
    /// Marks the allocator as installed (call once from `main`).
    pub fn mark_installed() {
        INSTALLED.store(1, Ordering::Relaxed);
    }
}

// SAFETY: every method delegates verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the wrapper only reads `layout`/`new_size` to
// maintain byte-count atomics and never fabricates, retains, or resizes a
// pointer itself.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwarded to `System.alloc` under the caller's contract
    // (non-zero-sized `layout`); the atomics are bookkeeping only.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    // SAFETY: forwarded to `System.dealloc` under the caller's contract
    // (`ptr` was allocated here with this `layout`).
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    // SAFETY: forwarded to `System.realloc` under the caller's contract
    // (`ptr` from this allocator, `layout` its current layout, `new_size`
    // non-zero); the branches only adjust the live-byte census.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                let add = new_size - layout.size();
                let live = LIVE.fetch_add(add, Ordering::Relaxed) + add;
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// True when the counting allocator is the process allocator.
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed) == 1
}

/// Resets the high-water mark to the current live size.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Peak live bytes since the last reset (0 when not installed).
pub fn peak_bytes() -> usize {
    if installed() {
        PEAK.load(Ordering::Relaxed)
    } else {
        0
    }
}

/// Current live bytes.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}
