//! # tcsm-bench
//!
//! The experiment harness behind EXPERIMENTS.md: for every table and figure
//! of the paper's evaluation (§VI) there is a driver here that regenerates
//! the corresponding rows/series on the synthetic dataset profiles.
//!
//! * Figure 7 — query-size sweep ([`experiments::fig7`])
//! * Figure 8 — density sweep ([`experiments::fig8`])
//! * Figure 9 — window sweep ([`experiments::fig9`])
//! * Figure 10 — peak memory ([`experiments::fig10`])
//! * Figure 11 — ablation ([`experiments::fig11`])
//! * Table III — dataset characteristics ([`experiments::table3`])
//! * Table V — filtering power ([`experiments::table5`])
//!
//! Run `cargo run --release -p tcsm-bench --bin experiments -- all` for the
//! full suite, or a single id (`fig7`, `table5`, …).

pub mod algo;
pub mod experiments;
pub mod mem;
pub mod report;

pub use algo::{run_one, Algo, RunConfig, RunResult};
