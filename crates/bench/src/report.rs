//! Plain-text/CSV tables for the experiment outputs.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple column-aligned table with a caption.
pub struct Table {
    caption: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given caption and column headers.
    pub fn new(caption: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            caption: caption.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Renders as aligned text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut s = String::new();
        let _ = writeln!(s, "== {} ==", self.caption);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(line, "{:<w$}  ", c, w = widths[i]);
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(s, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
        let _ = writeln!(s, "{}", "-".repeat(total));
        for r in &self.rows {
            let _ = writeln!(s, "{}", fmt_row(r, &widths));
        }
        s
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{}",
                r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        s
    }

    /// Writes the CSV next to the results dir and prints the text table.
    /// A failed write (missing permissions, full disk) is the caller's to
    /// report — the text table has already been printed by then.
    pub fn emit(&self, results_dir: &Path, file_stem: &str) -> std::io::Result<()> {
        println!("{}", self.to_text());
        fs::create_dir_all(results_dir)
            .and_then(|_| fs::write(results_dir.join(format!("{file_stem}.csv")), self.to_csv()))
    }
}

/// Formats a millisecond value like the paper's log plots (3 significant-ish
/// digits).
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.3}")
    }
}

/// Formats bytes as MB with one decimal.
pub fn fmt_mb(bytes: usize) -> String {
    if bytes == 0 {
        "n/a".to_string()
    } else {
        format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let text = t.to_text();
        assert!(text.contains("== demo =="));
        assert!(text.contains("333"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ms(1234.5), "1234"); // round-half-to-even
        assert_eq!(fmt_ms(12.34), "12.3");
        assert_eq!(fmt_ms(0.1234), "0.123");
        assert_eq!(fmt_mb(0), "n/a");
        assert_eq!(fmt_mb(1024 * 1024 * 3 / 2), "1.5");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
