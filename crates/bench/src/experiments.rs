//! Drivers regenerating the paper's tables and figures (§VI).
//!
//! Absolute numbers will differ from the paper (synthetic scaled datasets,
//! different hardware); the *shapes* are the reproduction target: who wins,
//! by roughly what factor, and how gaps move along each swept axis. See
//! EXPERIMENTS.md for the recorded outcomes.

use crate::algo::{run_one, Algo, RunConfig, RunResult};
use crate::report::{fmt_mb, fmt_ms, Table};
use std::cell::OnceCell;
use std::fmt;
use std::path::PathBuf;
use tcsm_datasets::{DatasetSource, IngestError, QueryGen, SourceSpec, ALL_PROFILES};
use tcsm_graph::{GraphError, QueryGraph, TemporalGraph};

/// A driver failure: dataset ingest, engine construction, or report
/// output. Every variant reaches the CLI as a message plus a nonzero exit
/// code — the drivers themselves never panic on bad input or a full disk.
#[derive(Debug)]
pub enum SuiteError {
    /// A dataset source failed to load or validate.
    Ingest(IngestError),
    /// An engine or service rejected its inputs.
    Graph(GraphError),
    /// A results CSV could not be written.
    Report(PathBuf, std::io::Error),
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteError::Ingest(e) => write!(f, "dataset ingest failed: {e}"),
            SuiteError::Graph(e) => write!(f, "run failed: {e}"),
            SuiteError::Report(p, e) => write!(f, "could not write {}: {e}", p.display()),
        }
    }
}

impl std::error::Error for SuiteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SuiteError::Ingest(e) => Some(e),
            SuiteError::Graph(e) => Some(e),
            SuiteError::Report(_, e) => Some(e),
        }
    }
}

impl From<IngestError> for SuiteError {
    fn from(e: IngestError) -> SuiteError {
        SuiteError::Ingest(e)
    }
}

impl From<GraphError> for SuiteError {
    fn from(e: GraphError) -> SuiteError {
        SuiteError::Graph(e)
    }
}

/// Experiment-wide parameters (Table IV, plus laptop-scale knobs).
#[derive(Clone, Debug)]
pub struct Suite {
    /// Dataset scale relative to the 1:1000 profiles (synthetic sources
    /// only; file-backed sources are used as-is).
    pub scale: f64,
    /// Queries per (dataset, size, density) set — the paper uses 100.
    pub queries_per_set: usize,
    /// Dataset sources to include: synthetic Table III profiles and/or
    /// file-backed dumps (`--input FILE --format snap`).
    pub sources: Vec<SourceSpec>,
    /// Budgets standing in for the paper's 1 h timeout.
    pub run_cfg: RunConfig,
    /// Where CSVs are written.
    pub results_dir: PathBuf,
    /// Base RNG seed.
    pub seed: u64,
    /// Shards for the multi-query `service` driver (0 = auto:
    /// `min(4, queries)`).
    pub service_shards: usize,
    /// Ingested-once cache of `sources` (a multi-gigabyte dump must not be
    /// re-read per command). Configure `sources`/`seed`/`scale` *before*
    /// the first command; later mutations don't re-ingest.
    loaded: OnceCell<Vec<Loaded>>,
}

impl Default for Suite {
    fn default() -> Suite {
        Suite {
            scale: 0.25,
            queries_per_set: 3,
            sources: ALL_PROFILES
                .iter()
                .copied()
                .map(SourceSpec::Profile)
                .collect(),
            run_cfg: RunConfig::default(),
            results_dir: PathBuf::from("results"),
            seed: 0xC0FFEE,
            service_shards: 0,
            loaded: OnceCell::new(),
        }
    }
}

/// One ingested dataset: the graph plus the per-dataset experiment
/// parameters every driver loops over.
#[derive(Clone, Debug)]
struct Loaded {
    name: String,
    directed: bool,
    g: TemporalGraph,
    windows: [i64; 5],
    /// Resident heap bytes of `g` (live-byte delta around the load), so
    /// memory drivers can report graph + run working sets without the
    /// other cached datasets bleeding into the figure.
    graph_live: usize,
}

/// The paper's parameter grids (Table IV); defaults in the middle.
pub const QUERY_SIZES: [usize; 6] = [5, 7, 9, 11, 13, 15];
/// Temporal-order densities.
pub const DENSITIES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];
/// Default query size / density / window index.
pub const DEFAULT_SIZE: usize = 9;
pub const DEFAULT_DENSITY: f64 = 0.5;
pub const DEFAULT_WINDOW_IDX: usize = 2; // "30k"
/// Names of the five window settings.
pub const WINDOW_NAMES: [&str; 5] = ["10k", "20k", "30k", "40k", "50k"];

impl Suite {
    /// Ingests every source once per `Suite` (cached across commands, so
    /// `all` on a file-backed dump reads it a single time). Synthetic
    /// sources honour `seed`/`scale`; file-backed ones read their dump.
    /// Ingest failures are fatal here — every driver needs every dataset —
    /// but they surface as a [`SuiteError`] for the CLI to report, not a
    /// panic.
    fn materialize(&self) -> Result<&[Loaded], SuiteError> {
        if self.loaded.get().is_none() {
            let loaded = self
                .sources
                .iter()
                .map(|s| {
                    let before = crate::mem::live_bytes();
                    let g = s.load(self.seed, self.scale)?;
                    let graph_live = crate::mem::live_bytes().saturating_sub(before);
                    let windows = s.window_sizes(&g, self.scale);
                    Ok(Loaded {
                        name: s.name(),
                        directed: s.directed(),
                        g,
                        windows,
                        graph_live,
                    })
                })
                .collect::<Result<Vec<Loaded>, IngestError>>()?;
            let _ = self.loaded.set(loaded);
        }
        Ok(self.loaded.get().expect("just initialized"))
    }

    /// Emits a table, mapping a failed CSV write to a [`SuiteError`].
    fn emit(&self, t: &Table, stem: &str) -> Result<(), SuiteError> {
        t.emit(&self.results_dir, stem)
            .map_err(|e| SuiteError::Report(self.results_dir.join(format!("{stem}.csv")), e))
    }

    fn queries(&self, d: &Loaded, size: usize, density: f64, delta: i64) -> Vec<QueryGraph> {
        let g = &d.g;
        let mut qg = QueryGen::new(g);
        qg.directed = self.run_cfg.directed && d.directed;
        let mut out = Vec::new();
        for i in 0..self.queries_per_set {
            let seed = self
                .seed
                .wrapping_add((size as u64) << 32)
                .wrapping_add((density * 100.0) as u64)
                .wrapping_add(i as u64 * 7919);
            if let Some(q) = qg.generate(size, density, (delta * 3 / 4).max(4), seed) {
                out.push(q);
            }
        }
        out
    }

    /// Runs a set of algorithms over a query set; returns per-algorithm
    /// (mean elapsed ms over queries, #solved, mean peak MB, per-query
    /// results).
    fn run_set(
        &self,
        algos: &[Algo],
        queries: &[QueryGraph],
        g: &tcsm_graph::TemporalGraph,
        delta: i64,
    ) -> Vec<(f64, usize, usize, Vec<RunResult>)> {
        algos
            .iter()
            .map(|&a| {
                let results: Vec<RunResult> = queries
                    .iter()
                    .map(|q| run_one(a, q, g, delta, &self.run_cfg))
                    .collect();
                let solved = results.iter().filter(|r| r.solved).count();
                let mean_ms = if results.is_empty() {
                    0.0
                } else {
                    results
                        .iter()
                        .map(|r| r.elapsed.as_secs_f64() * 1e3)
                        .sum::<f64>()
                        / results.len() as f64
                };
                let mean_peak = if results.is_empty() {
                    0
                } else {
                    results.iter().map(|r| r.peak_mem).sum::<usize>() / results.len()
                };
                (mean_ms, solved, mean_peak, results)
            })
            .collect()
    }

    /// Table III: characteristics of the (synthetic, scaled) datasets.
    pub fn table3(&self) -> Result<(), SuiteError> {
        let mut t = Table::new(
            format!("Table III — dataset characteristics (scale {})", self.scale),
            &["dataset", "|V|", "|E|", "|ΣV|", "|ΣE|", "davg", "mavg"],
        );
        for d in self.materialize()? {
            let g = &d.g;
            t.row(vec![
                d.name.clone(),
                g.num_vertices().to_string(),
                g.num_edges().to_string(),
                g.num_vertex_labels().to_string(),
                g.num_edge_labels().to_string(),
                format!("{:.1}", g.avg_degree()),
                format!("{:.2}", g.avg_parallel_edges()),
            ]);
        }
        self.emit(&t, "table3")
    }

    /// Table IV: the experiment settings in effect.
    pub fn settings(&self) -> Result<(), SuiteError> {
        let mut t = Table::new(
            "Table IV — experiment settings",
            &["parameter", "values (bold = default)"],
        );
        t.row(vec![
            "datasets".into(),
            self.sources
                .iter()
                .map(|s| s.name())
                .collect::<Vec<_>>()
                .join(", "),
        ]);
        t.row(vec!["query size".into(), "5 7 [9] 11 13 15".into()]);
        t.row(vec!["density".into(), "0 0.25 [0.50] 0.75 1".into()]);
        t.row(vec![
            "window".into(),
            "10k 20k [30k] 40k 50k (see EXPERIMENTS.md scaling)".into(),
        ]);
        t.row(vec!["queries/set".into(), self.queries_per_set.to_string()]);
        t.row(vec![
            "node budget".into(),
            self.run_cfg.max_total_nodes.to_string(),
        ]);
        self.emit(&t, "table4")
    }

    /// Figure 7: elapsed time and solved counts vs query size.
    pub fn fig7(&self) -> Result<(), SuiteError> {
        self.size_sweep("fig7", &Algo::MAIN, "Figure 7")
    }

    /// Figure 11: the §VI-B ablation (SymBi vs TCM-Pruning vs TCM).
    pub fn fig11(&self) -> Result<(), SuiteError> {
        self.size_sweep("fig11", &Algo::ABLATION, "Figure 11")
    }

    fn size_sweep(&self, stem: &str, algos: &[Algo], caption: &str) -> Result<(), SuiteError> {
        let names: Vec<&str> = algos.iter().map(|a| a.name()).collect();
        let mut headers = vec!["dataset", "size"];
        headers.extend(names.iter());
        let mut ta = Table::new(
            format!("{caption}(a) — avg elapsed ms (density 0.5, window 30k)"),
            &headers,
        );
        let mut tb = Table::new(
            format!(
                "{caption}(b) — solved queries (of {})",
                self.queries_per_set
            ),
            &headers,
        );
        for d in self.materialize()? {
            let delta = d.windows[DEFAULT_WINDOW_IDX];
            for &size in &QUERY_SIZES {
                let queries = self.queries(d, size, DEFAULT_DENSITY, delta);
                let res = self.run_set(algos, &queries, &d.g, delta);
                let mut ra = vec![d.name.clone(), size.to_string()];
                let mut rb = ra.clone();
                for (ms, solved, _, _) in &res {
                    ra.push(fmt_ms(*ms));
                    rb.push(format!("{solved}/{}", queries.len()));
                }
                ta.row(ra);
                tb.row(rb);
                eprintln!("[{stem}] {} size {size} done", d.name);
            }
        }
        self.emit(&ta, &format!("{stem}a"))?;
        self.emit(&tb, &format!("{stem}b"))
    }

    /// Figure 8: elapsed time and solved counts vs temporal-order density.
    pub fn fig8(&self) -> Result<(), SuiteError> {
        let algos = Algo::MAIN;
        let names: Vec<&str> = algos.iter().map(|a| a.name()).collect();
        let mut headers = vec!["dataset", "density"];
        headers.extend(names.iter());
        let mut ta = Table::new(
            "Figure 8(a) — avg elapsed ms (size 9, window 30k)",
            &headers,
        );
        let mut tb = Table::new(
            format!("Figure 8(b) — solved queries (of {})", self.queries_per_set),
            &headers,
        );
        for ds in self.materialize()? {
            let delta = ds.windows[DEFAULT_WINDOW_IDX];
            for &d in &DENSITIES {
                let queries = self.queries(ds, DEFAULT_SIZE, d, delta);
                let res = self.run_set(&algos, &queries, &ds.g, delta);
                let mut ra = vec![ds.name.clone(), format!("{d:.2}")];
                let mut rb = ra.clone();
                for (ms, solved, _, _) in &res {
                    ra.push(fmt_ms(*ms));
                    rb.push(format!("{solved}/{}", queries.len()));
                }
                ta.row(ra);
                tb.row(rb);
                eprintln!("[fig8] {} density {d} done", ds.name);
            }
        }
        self.emit(&ta, "fig8a")?;
        self.emit(&tb, "fig8b")
    }

    /// Figure 9: elapsed time and solved counts vs window size.
    pub fn fig9(&self) -> Result<(), SuiteError> {
        let algos = Algo::MAIN;
        let names: Vec<&str> = algos.iter().map(|a| a.name()).collect();
        let mut headers = vec!["dataset", "window"];
        headers.extend(names.iter());
        let mut ta = Table::new(
            "Figure 9(a) — avg elapsed ms (size 9, density 0.5)",
            &headers,
        );
        let mut tb = Table::new(
            format!("Figure 9(b) — solved queries (of {})", self.queries_per_set),
            &headers,
        );
        for d in self.materialize()? {
            for (wi, &delta) in d.windows.iter().enumerate() {
                let queries = self.queries(d, DEFAULT_SIZE, DEFAULT_DENSITY, delta);
                let res = self.run_set(&algos, &queries, &d.g, delta);
                let mut ra = vec![d.name.clone(), WINDOW_NAMES[wi].to_string()];
                let mut rb = ra.clone();
                for (ms, solved, _, _) in &res {
                    ra.push(fmt_ms(*ms));
                    rb.push(format!("{solved}/{}", queries.len()));
                }
                ta.row(ra);
                tb.row(rb);
                eprintln!("[fig9] {} window {} done", d.name, WINDOW_NAMES[wi]);
            }
        }
        self.emit(&ta, "fig9a")?;
        self.emit(&tb, "fig9b")
    }

    /// Figure 10: average peak memory vs query size.
    pub fn fig10(&self) -> Result<(), SuiteError> {
        if !crate::mem::installed() {
            eprintln!(
                "[fig10] counting allocator not installed — run via the \
                 `experiments` binary for real numbers"
            );
        }
        let algos = Algo::MAIN;
        let names: Vec<&str> = algos.iter().map(|a| a.name()).collect();
        let mut headers = vec!["dataset", "size"];
        headers.extend(names.iter());
        let mut t = Table::new(
            "Figure 10 — avg peak memory MB (density 0.5, window 30k)",
            &headers,
        );
        for d in self.materialize()? {
            let delta = d.windows[DEFAULT_WINDOW_IDX];
            for &size in &QUERY_SIZES {
                let queries = self.queries(d, size, DEFAULT_DENSITY, delta);
                let res = self.run_set(&algos, &queries, &d.g, delta);
                let mut row = vec![d.name.clone(), size.to_string()];
                for (_, _, peak, _) in &res {
                    // Working set of one run = the dataset graph plus the
                    // run's heap growth; `peak` is baseline-relative so
                    // the other cached datasets stay out of the figure.
                    row.push(fmt_mb(peak + d.graph_live));
                }
                t.row(row);
                eprintln!("[fig10] {} size {size} done", d.name);
            }
        }
        self.emit(&t, "fig10")
    }

    /// Table V: filtering power of the TC-matchable edge — the ratio of DCS
    /// edges and surviving DCS vertices with vs without the filter.
    pub fn table5(&self) -> Result<(), SuiteError> {
        let mut t = Table::new(
            "Table V — filtering power (TCM / SymBi ratios; smaller = more filtering)",
            &["dataset", "size", "edge ratio", "vertex ratio"],
        );
        for d in self.materialize()? {
            let g = &d.g;
            let delta = d.windows[DEFAULT_WINDOW_IDX];
            for &size in &QUERY_SIZES {
                let queries = self.queries(d, size, DEFAULT_DENSITY, delta);
                if queries.is_empty() {
                    continue;
                }
                let (mut er, mut vr, mut n) = (0.0, 0.0, 0);
                for q in &queries {
                    let tcm = run_one(Algo::Tcm, q, g, delta, &self.run_cfg);
                    let sym = run_one(Algo::SymBi, q, g, delta, &self.run_cfg);
                    // Unsolved runs processed different event prefixes, so
                    // their per-event averages are not comparable.
                    if !(tcm.solved && sym.solved) {
                        continue;
                    }
                    if sym.avg_dcs_edges > 0.0 {
                        er += tcm.avg_dcs_edges / sym.avg_dcs_edges;
                        vr += if sym.avg_dcs_vertices > 0.0 {
                            tcm.avg_dcs_vertices / sym.avg_dcs_vertices
                        } else {
                            1.0
                        };
                        n += 1;
                    }
                }
                if n > 0 {
                    t.row(vec![
                        d.name.clone(),
                        size.to_string(),
                        format!("{:.3}", er / n as f64),
                        format!("{:.3}", vr / n as f64),
                    ]);
                }
                eprintln!("[table5] {} size {size} done", d.name);
            }
        }
        self.emit(&t, "table5")
    }

    /// Extra ablation (beyond the paper): each §V pruning technique
    /// enabled in isolation, measured by search nodes and elapsed time.
    pub fn ablation(&self) -> Result<(), SuiteError> {
        use tcsm_core::{EngineConfig, PruningFlags, SearchBudget, TcmEngine};
        let variants: [(&str, PruningFlags); 5] = [
            ("none", PruningFlags::NONE),
            ("case1", PruningFlags::only(1)),
            ("case2", PruningFlags::only(2)),
            ("case3", PruningFlags::only(3)),
            ("all", PruningFlags::ALL),
        ];
        let mut t = Table::new(
            "Ablation — §V pruning techniques in isolation (search nodes | ms)",
            &["dataset", "none", "case1", "case2", "case3", "all"],
        );
        for d in self.materialize()? {
            let g = &d.g;
            let delta = d.windows[DEFAULT_WINDOW_IDX];
            let queries = self.queries(d, DEFAULT_SIZE, DEFAULT_DENSITY, delta);
            if queries.is_empty() {
                continue;
            }
            let mut row = vec![d.name.clone()];
            for (_, flags) in variants {
                let (mut nodes, mut ms) = (0u64, 0.0f64);
                for q in &queries {
                    let cfg = EngineConfig {
                        pruning_override: Some(flags),
                        directed: self.run_cfg.directed,
                        collect_matches: false,
                        budget: SearchBudget {
                            max_total_nodes: self.run_cfg.max_total_nodes,
                            ..Default::default()
                        },
                        ..Default::default()
                    };
                    let clock = tcsm_telemetry::SystemClock::new();
                    let mut e = TcmEngine::new(q, g, delta, cfg)?;
                    let s = e.run_counting();
                    nodes += s.search_nodes;
                    ms += tcsm_telemetry::Clock::micros(&clock) as f64 / 1e3;
                }
                row.push(format!("{nodes} | {}", fmt_ms(ms / queries.len() as f64)));
            }
            t.row(row);
            eprintln!("[ablation] {} done", d.name);
        }
        self.emit(&t, "ablation")
    }

    /// Multi-query throughput (beyond the paper): the `tcsm-service`
    /// sharded service — one shared window per shard — against the
    /// run-N-independent-engines baseline it replaces (one full window
    /// copy per query). Same queries, same stream, matches counted on
    /// both sides and asserted equal.
    pub fn service(&self) -> Result<(), SuiteError> {
        use tcsm_core::{EngineConfig, WorkerPool};
        use tcsm_service::{CountingSink, MatchService, ServiceConfig, ShardPolicy};
        // Resolve the width up front: the two sides interpret 0 differently
        // (baseline: one lane per CPU; service: no pool at all), and a fair
        // comparison needs both running the same number of lanes.
        let threads = WorkerPool::resolve_width(EngineConfig::default().threads);
        let mut t = Table::new(
            format!(
                "Service — N-query throughput, shared-window shards vs \
                 one engine per query (threads {threads})"
            ),
            &[
                "dataset",
                "queries",
                "shards",
                "engines ms",
                "service ms",
                "speedup",
                "matches",
            ],
        );
        for d in self.materialize()? {
            let g = &d.g;
            let delta = d.windows[DEFAULT_WINDOW_IDX];
            let queries = self.queries(d, DEFAULT_SIZE, DEFAULT_DENSITY, delta);
            if queries.is_empty() {
                continue;
            }
            let shards = match self.service_shards {
                0 => queries.len().min(4),
                n => n.min(queries.len()),
            };
            let cfg = EngineConfig {
                directed: self.run_cfg.directed,
                batching: self.run_cfg.batching,
                collect_matches: false,
                ..Default::default()
            };
            // Baseline: the deprecated one-engine-per-query fan-out this
            // service replaces (kept callable exactly for this comparison).
            let clock = tcsm_telemetry::SystemClock::new();
            #[allow(deprecated)]
            let engine_stats = tcsm_core::run_queries_parallel(&queries, g, delta, cfg, threads)?;
            let engines_ms = tcsm_telemetry::Clock::micros(&clock) as f64 / 1e3;
            let engines_matches: u64 = engine_stats.iter().map(|s| s.occurred).sum();

            let clock = tcsm_telemetry::SystemClock::new();
            let mut svc = MatchService::new(
                g,
                delta,
                ServiceConfig {
                    shards,
                    policy: ShardPolicy::LabelLocality,
                    threads,
                    batching: self.run_cfg.batching,
                    directed: self.run_cfg.directed,
                },
            )?;
            let ids: Vec<_> = queries
                .iter()
                .map(|q| svc.add_query(q, cfg, Box::new(CountingSink::new().0)))
                .collect();
            svc.run();
            let service_ms = tcsm_telemetry::Clock::micros(&clock) as f64 / 1e3;
            let service_matches: u64 = ids
                .iter()
                .map(|&id| svc.query_stats(id).expect("resident").occurred)
                .sum();
            assert_eq!(
                service_matches, engines_matches,
                "service diverged from the engine baseline on {}",
                d.name
            );
            assert_eq!(svc.stats().windows_allocated, shards as u64);
            t.row(vec![
                d.name.clone(),
                queries.len().to_string(),
                shards.to_string(),
                fmt_ms(engines_ms),
                fmt_ms(service_ms),
                format!("{:.2}x", engines_ms / service_ms.max(1e-9)),
                service_matches.to_string(),
            ]);
            eprintln!("[service] {} done", d.name);
        }
        self.emit(&t, "service")
    }

    /// Runs everything in figure order.
    pub fn all(&self) -> Result<(), SuiteError> {
        self.table3()?;
        self.settings()?;
        self.fig7()?;
        self.fig8()?;
        self.fig9()?;
        self.fig10()?;
        self.fig11()?;
        self.table5()?;
        self.ablation()
    }
}
