//! Criterion microbench for the Figure 9 axis: window size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tcsm_bench::{run_one, Algo, RunConfig};
use tcsm_datasets::{profiles::SUPERUSER, QueryGen};

fn bench(c: &mut Criterion) {
    let scale = 0.15;
    let g = SUPERUSER.generate(11, scale);
    let windows = SUPERUSER.window_sizes(scale);
    let qg = QueryGen::new(&g);
    let rc = RunConfig {
        max_total_nodes: 200_000,
        ..Default::default()
    };
    let mut group = c.benchmark_group("fig9_window");
    group.sample_size(10);
    let Some(q) = qg.generate(7, 0.5, windows[0] / 2, 5) else {
        return;
    };
    for (i, &delta) in windows.iter().enumerate() {
        group.bench_with_input(
            BenchmarkId::new("TCM", format!("{}0k", i + 1)),
            &q,
            |b, q| b.iter(|| run_one(Algo::Tcm, q, &g, delta, &rc)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
