//! Criterion microbench for the Figure 11 ablation: SymBi vs TCM-Pruning
//! (filter only) vs full TCM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tcsm_bench::{run_one, Algo, RunConfig};
use tcsm_datasets::{profiles::YAHOO, QueryGen};

fn bench(c: &mut Criterion) {
    let scale = 0.2;
    let g = YAHOO.generate(5, scale);
    let delta = YAHOO.window_sizes(scale)[2];
    let qg = QueryGen::new(&g);
    let rc = RunConfig {
        max_total_nodes: 200_000,
        ..Default::default()
    };
    let mut group = c.benchmark_group("fig11_ablation");
    group.sample_size(10);
    let Some(q) = qg.generate(9, 0.5, delta / 2, 23) else {
        return;
    };
    for algo in Algo::ABLATION {
        group.bench_with_input(BenchmarkId::new(algo.name(), 9), &q, |b, q| {
            b.iter(|| run_one(algo, q, &g, delta, &rc))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
