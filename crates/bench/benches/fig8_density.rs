//! Criterion microbench for the Figure 8 axis: temporal-order density.
//! TCM should get *faster* with density; SymBi's post-check stays flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tcsm_bench::{run_one, Algo, RunConfig};
use tcsm_datasets::{profiles::YAHOO, QueryGen};

fn bench(c: &mut Criterion) {
    let scale = 0.2;
    let g = YAHOO.generate(5, scale);
    let delta = YAHOO.window_sizes(scale)[2];
    let qg = QueryGen::new(&g);
    let rc = RunConfig {
        max_total_nodes: 200_000,
        ..Default::default()
    };
    let mut group = c.benchmark_group("fig8_density");
    group.sample_size(10);
    for density in [0.0f64, 0.5, 1.0] {
        let Some(q) = qg.generate(7, density, delta / 2, 17) else {
            continue;
        };
        for algo in [Algo::Tcm, Algo::SymBi] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), format!("{density:.2}")),
                &q,
                |b, q| b.iter(|| run_one(algo, q, &g, delta, &rc)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
