//! Criterion microbench for the Figure 7 axis: query-size scaling of full
//! stream processing, TCM vs the SymBi post-check baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tcsm_bench::{run_one, Algo, RunConfig};
use tcsm_datasets::{profiles::SUPERUSER, QueryGen};

fn bench(c: &mut Criterion) {
    let scale = 0.15;
    let g = SUPERUSER.generate(11, scale);
    let delta = SUPERUSER.window_sizes(scale)[2];
    let qg = QueryGen::new(&g);
    let rc = RunConfig {
        max_total_nodes: 200_000,
        ..Default::default()
    };
    let mut group = c.benchmark_group("fig7_query_size");
    group.sample_size(10);
    for size in [5usize, 9, 13] {
        let Some(q) = qg.generate(size, 0.5, delta / 2, 42) else {
            continue;
        };
        for algo in [Algo::Tcm, Algo::SymBi] {
            group.bench_with_input(BenchmarkId::new(algo.name(), size), &q, |b, q| {
                b.iter(|| run_one(algo, q, &g, delta, &rc))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
