//! Substrate microbenches: greedy DAG construction, max-min timestamp
//! maintenance (Algorithm 3), DCS maintenance throughput, and the
//! end-to-end `TcmEngine::run` on a Table III-style profile.
//!
//! These are the numbers tracked in the repo-root `BENCH_*.json` perf
//! trajectory — run with `cargo bench -p tcsm-bench --bench substrates`
//! and copy `target/criterion-stub/substrates.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tcsm_core::{EngineConfig, TcmEngine};
use tcsm_dag::build_best_dag;
use tcsm_datasets::{profiles::SUPERUSER, QueryGen};
use tcsm_dcs::Dcs;
use tcsm_filter::{FilterBank, FilterMode};
use tcsm_graph::{EventKind, EventQueue, WindowGraph};

fn bench(c: &mut Criterion) {
    let scale = 0.15;
    let g = SUPERUSER.generate(11, scale);
    let delta = SUPERUSER.window_sizes(scale)[2];
    let qg = QueryGen::new(&g);

    let mut group = c.benchmark_group("substrates");
    group.sample_size(10);
    for size in [5usize, 11] {
        let Some(q) = qg.generate(size, 0.5, delta / 2, 99) else {
            continue;
        };
        group.bench_with_input(BenchmarkId::new("build_dag", size), &q, |b, q| {
            b.iter(|| build_best_dag(q))
        });
        // Filter maintenance alone: the max-min tables over the stream.
        group.bench_with_input(BenchmarkId::new("maxmin_update", size), &q, |b, q| {
            b.iter(|| {
                let dag = build_best_dag(q);
                let mut w = WindowGraph::new(g.labels().to_vec(), true);
                let mut bank = FilterBank::new(q, &dag, FilterMode::Tc, &w);
                let queue = EventQueue::new(&g, delta).unwrap();
                let mut deltas = Vec::new();
                let mut total = 0usize;
                for ev in queue.iter() {
                    let edge = *g.edge(ev.edge);
                    deltas.clear();
                    match ev.kind {
                        EventKind::Insert => {
                            w.insert(&edge);
                            bank.on_insert(q, &w, &edge, |k| g.edge(k), &mut deltas);
                        }
                        EventKind::Delete => {
                            w.remove(&edge);
                            bank.on_delete(q, &w, &edge, |k| g.edge(k), &mut deltas);
                        }
                    }
                    total += deltas.len();
                }
                total
            })
        });
        // Full-stream maintenance without any matching: filter + DCS.
        group.bench_with_input(
            BenchmarkId::new("maxmin_and_dcs_update", size),
            &q,
            |b, q| {
                b.iter(|| {
                    let dag = build_best_dag(q);
                    let mut w = WindowGraph::new(g.labels().to_vec(), true);
                    let mut bank = FilterBank::new(q, &dag, FilterMode::Tc, &w);
                    let mut dcs = Dcs::new(dag.clone(), q, &w);
                    let queue = EventQueue::new(&g, delta).unwrap();
                    let mut deltas = Vec::new();
                    for ev in queue.iter() {
                        let edge = *g.edge(ev.edge);
                        deltas.clear();
                        match ev.kind {
                            EventKind::Insert => {
                                w.insert(&edge);
                                bank.on_insert(q, &w, &edge, |k| g.edge(k), &mut deltas);
                            }
                            EventKind::Delete => {
                                w.remove(&edge);
                                bank.on_delete(q, &w, &edge, |k| g.edge(k), &mut deltas);
                            }
                        }
                        dcs.apply(q, &w, |k| g.edge(k), &deltas);
                    }
                    dcs.num_edges()
                })
            },
        );
        // End to end: the full Algorithm 1 pipeline including FindMatches.
        group.bench_with_input(BenchmarkId::new("engine_run", size), &q, |b, q| {
            b.iter(|| {
                let cfg = EngineConfig {
                    collect_matches: false,
                    directed: true,
                    ..Default::default()
                };
                let mut engine = TcmEngine::new(q, &g, delta, cfg).unwrap();
                engine.run_counting().occurred
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
