//! Substrate microbenches: greedy DAG construction, max-min timestamp
//! maintenance (Algorithm 3), DCS maintenance throughput, and the
//! end-to-end `TcmEngine::run` on a Table III-style profile — in both the
//! serial and the batched (`engine_run_batched*`) regimes, on the uniform
//! one-edge-per-tick stream and on a bursty re-timing of the same stream
//! (several arrivals per tick, where delta batches amortize).
//!
//! These are the numbers tracked in the repo-root `BENCH_*.json` perf
//! trajectory — run with `cargo bench -p tcsm-bench --bench substrates`
//! and copy `target/criterion-stub/substrates.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use tcsm_core::{EngineConfig, TcmEngine, WorkerPool};
use tcsm_dag::build_best_dag;
use tcsm_datasets::{profiles::SUPERUSER, QueryGen};
use tcsm_dcs::Dcs;
use tcsm_filter::{kernel, DcsDelta, Exec, FilterBank, FilterMode, KernelKind};
use tcsm_graph::{EventKind, EventQueue, WindowGraph};

/// Deterministic SplitMix64 for the synthetic kernel workload.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn bench(c: &mut Criterion) {
    let scale = 0.15;
    let g = SUPERUSER.generate(11, scale);
    let delta = SUPERUSER.window_sizes(scale)[2];
    let qg = QueryGen::new(&g);

    let mut group = c.benchmark_group("substrates");
    group.sample_size(10);
    // The Eq. (1) kernel alone, scalar vs chunked, on one synthetic
    // workload: random lane values, ranks, and relation masks, so the
    // scalar reference's per-lane branches mispredict the way mixed
    // real rows make them. The two entries run back to back in the same
    // process (interleaved same-machine methodology).
    {
        const WIDTH: usize = 48;
        const ROWS: usize = 256;
        let mut s = 0x5EEDu64;
        let rows: Vec<[i64; WIDTH + 1]> = (0..ROWS)
            .map(|_| {
                let mut row = [0i64; WIDTH + 1];
                for lane in row.iter_mut().take(WIDTH) {
                    *lane = (mix(&mut s) as i64) >> 16;
                }
                row[WIDTH] = i64::MAX; // pad lane
                row
            })
            .collect();
        let ranks: Vec<[u8; WIDTH]> = (0..ROWS)
            .map(|_| std::array::from_fn(|_| (mix(&mut s) as usize % (WIDTH + 1)) as u8))
            .collect();
        let relmasks: Vec<[i64; WIDTH]> = (0..ROWS)
            .map(|_| std::array::from_fn(|_| if mix(&mut s) & 1 == 0 { -1 } else { 0 }))
            .collect();
        let tmaxes: Vec<i64> = (0..ROWS).map(|_| (mix(&mut s) as i64) >> 16).collect();
        for (name, kind) in [
            ("chunked", KernelKind::Chunked),
            ("scalar", KernelKind::Scalar),
        ] {
            group.bench_function(BenchmarkId::new("kernel_maxmin", name), |b| {
                b.iter(|| {
                    let mut best = [i64::MIN; WIDTH];
                    for r in 0..ROWS {
                        kernel::accumulate(
                            kind,
                            &mut best,
                            &rows[r],
                            &ranks[r],
                            &relmasks[r],
                            tmaxes[r],
                        );
                    }
                    best[0]
                })
            });
        }
    }
    for size in [5usize, 11] {
        let Some(q) = qg.generate(size, 0.5, delta / 2, 99) else {
            continue;
        };
        group.bench_with_input(BenchmarkId::new("build_dag", size), &q, |b, q| {
            b.iter(|| build_best_dag(q))
        });
        // Filter maintenance alone: the max-min tables over the stream —
        // once per kernel, registered back to back so the scalar/chunked
        // comparison is an interleaved same-machine run.
        for (name, kind) in [
            ("maxmin_update", KernelKind::Chunked),
            ("maxmin_update_scalar", KernelKind::Scalar),
        ] {
            group.bench_with_input(BenchmarkId::new(name, size), &q, |b, q| {
                b.iter(|| {
                    let dag = build_best_dag(q);
                    let mut w = WindowGraph::new(g.labels().to_vec(), true);
                    let mut bank = FilterBank::new(q, &dag, FilterMode::Tc, &w);
                    bank.set_kernel(kind);
                    let queue = EventQueue::new(&g, delta).unwrap();
                    let mut deltas = Vec::new();
                    let mut total = 0usize;
                    for ev in queue.iter() {
                        let edge = *g.edge(ev.edge);
                        deltas.clear();
                        match ev.kind {
                            EventKind::Insert => {
                                w.insert(&edge);
                                bank.on_insert(q, &w, &edge, |k| g.edge(k), &mut deltas);
                            }
                            EventKind::Delete => {
                                w.remove(&edge);
                                bank.on_delete(q, &w, &edge, |k| g.edge(k), &mut deltas);
                            }
                        }
                        total += deltas.len();
                    }
                    total
                })
            });
        }
        // Full-stream maintenance without any matching: filter + DCS.
        group.bench_with_input(
            BenchmarkId::new("maxmin_and_dcs_update", size),
            &q,
            |b, q| {
                b.iter(|| {
                    let dag = build_best_dag(q);
                    let mut w = WindowGraph::new(g.labels().to_vec(), true);
                    let mut bank = FilterBank::new(q, &dag, FilterMode::Tc, &w);
                    let mut dcs = Dcs::new(dag.clone(), q, &w);
                    let queue = EventQueue::new(&g, delta).unwrap();
                    let mut deltas = Vec::new();
                    for ev in queue.iter() {
                        let edge = *g.edge(ev.edge);
                        deltas.clear();
                        match ev.kind {
                            EventKind::Insert => {
                                w.insert(&edge);
                                bank.on_insert(q, &w, &edge, |k| g.edge(k), &mut deltas);
                            }
                            EventKind::Delete => {
                                w.remove(&edge);
                                bank.on_delete(q, &w, &edge, |k| g.edge(k), &mut deltas);
                            }
                        }
                        dcs.apply(q, &w, |k| g.edge(k), &deltas);
                    }
                    dcs.num_edges()
                })
            },
        );
        // Thread sweep of the same filter+DCS maintenance loop: the four
        // instance updates fan out over a shared worker pool per event.
        for threads in [2usize, 4] {
            let pool = Arc::new(WorkerPool::new(threads));
            group.bench_with_input(
                BenchmarkId::new(format!("maxmin_and_dcs_update_t{threads}"), size),
                &q,
                |b, q| {
                    b.iter(|| {
                        let dag = build_best_dag(q);
                        let mut w = WindowGraph::new(g.labels().to_vec(), true);
                        let mut bank = FilterBank::new(q, &dag, FilterMode::Tc, &w);
                        bank.set_exec(Some(Arc::clone(&pool) as Arc<dyn Exec>));
                        let mut dcs = Dcs::new(dag.clone(), q, &w);
                        let queue = EventQueue::new(&g, delta).unwrap();
                        let mut deltas = Vec::new();
                        for ev in queue.iter() {
                            let edge = *g.edge(ev.edge);
                            deltas.clear();
                            match ev.kind {
                                EventKind::Insert => {
                                    w.insert(&edge);
                                    bank.on_insert(q, &w, &edge, |k| g.edge(k), &mut deltas);
                                }
                                EventKind::Delete => {
                                    w.remove(&edge);
                                    bank.on_delete(q, &w, &edge, |k| g.edge(k), &mut deltas);
                                }
                            }
                            dcs.apply(q, &w, |k| g.edge(k), &deltas);
                        }
                        dcs.num_edges()
                    })
                },
            );
        }
        // Per-phase DCS maintenance (the cache-audit counterpart of
        // `maxmin_update`): the bank's per-event delta lists are
        // precomputed, so the measured loop is window replay + `Dcs::apply`
        // alone — the pair-slab walks and d1/d2 bitmap refreshes.
        group.bench_with_input(BenchmarkId::new("dcs_apply", size), &q, |b, q| {
            let dag = build_best_dag(q);
            let mut w = WindowGraph::new(g.labels().to_vec(), true);
            let mut bank = FilterBank::new(q, &dag, FilterMode::Tc, &w);
            let queue = EventQueue::new(&g, delta).unwrap();
            let mut per_event: Vec<Vec<DcsDelta>> = Vec::with_capacity(queue.len());
            let mut deltas = Vec::new();
            for ev in queue.iter() {
                let edge = *g.edge(ev.edge);
                deltas.clear();
                match ev.kind {
                    EventKind::Insert => {
                        w.insert(&edge);
                        bank.on_insert(q, &w, &edge, |k| g.edge(k), &mut deltas);
                    }
                    EventKind::Delete => {
                        w.remove(&edge);
                        bank.on_delete(q, &w, &edge, |k| g.edge(k), &mut deltas);
                    }
                }
                per_event.push(deltas.clone());
            }
            b.iter(|| {
                let mut w = WindowGraph::new(g.labels().to_vec(), true);
                let mut dcs = Dcs::new(dag.clone(), q, &w);
                for (ev, deltas) in queue.iter().zip(&per_event) {
                    let edge = *g.edge(ev.edge);
                    match ev.kind {
                        EventKind::Insert => w.insert(&edge),
                        EventKind::Delete => w.remove(&edge),
                    }
                    dcs.apply(q, &w, |k| g.edge(k), deltas);
                }
                dcs.num_edges()
            })
        });
        // End to end: the full Algorithm 1 pipeline including FindMatches —
        // once per kernel (interleaved same-machine runs, as above).
        for (name, kind) in [
            ("engine_run", KernelKind::Chunked),
            ("engine_run_scalar", KernelKind::Scalar),
        ] {
            group.bench_with_input(BenchmarkId::new(name, size), &q, |b, q| {
                b.iter(|| {
                    let cfg = EngineConfig {
                        collect_matches: false,
                        directed: true,
                        ..Default::default()
                    };
                    let mut engine = TcmEngine::new(q, &g, delta, cfg).unwrap();
                    engine.set_kernel(kind);
                    engine.run_counting().occurred
                })
            });
        }
        // The same pipeline under each telemetry trace level, registered
        // back to back (interleaved same-machine runs): `off` vs the plain
        // `engine_run` above bounds the cost of the disabled-recorder
        // branch, `counters`/`spans` price the enabled paths.
        for (name, level) in [
            ("engine_run_trace_off", tcsm_telemetry::TraceLevel::Off),
            (
                "engine_run_trace_counters",
                tcsm_telemetry::TraceLevel::Counters,
            ),
            ("engine_run_trace_spans", tcsm_telemetry::TraceLevel::Spans),
        ] {
            group.bench_with_input(BenchmarkId::new(name, size), &q, |b, q| {
                let clock: Arc<dyn tcsm_telemetry::Clock> =
                    Arc::new(tcsm_telemetry::SystemClock::new());
                b.iter(|| {
                    let cfg = EngineConfig {
                        collect_matches: false,
                        directed: true,
                        ..Default::default()
                    };
                    let mut engine = TcmEngine::new(q, &g, delta, cfg).unwrap();
                    engine.set_trace(level, Arc::clone(&clock));
                    engine.run_counting().occurred
                })
            });
        }
        // Batched path on the same uniform stream (size-one batches): pins
        // that batching support costs nothing when bursts don't exist.
        group.bench_with_input(BenchmarkId::new("engine_run_batched", size), &q, |b, q| {
            b.iter(|| {
                let cfg = EngineConfig {
                    collect_matches: false,
                    directed: true,
                    batching: true,
                    ..Default::default()
                };
                let mut engine = TcmEngine::new(q, &g, delta, cfg).unwrap();
                engine.run_counting().occurred
            })
        });
    }

    // Same-timestamp-dense regime: the identical stream re-timed so BURST
    // arrivals share each tick (window scaled to keep the same number of
    // alive edges). This is where one worklist drain + one sweep per batch
    // pays off.
    const BURST: usize = 8;
    let g_bursty = SUPERUSER.generate_bursty(11, scale, BURST);
    let delta_bursty = (delta / BURST as i64).max(2);
    let qgb = QueryGen::new(&g_bursty);
    for size in [5usize, 11] {
        let Some(q) = qgb.generate(size, 0.5, (delta_bursty / 2).max(2), 99) else {
            continue;
        };
        for (name, batching) in [
            ("engine_run_bursty", false),
            ("engine_run_batched_bursty", true),
        ] {
            group.bench_with_input(BenchmarkId::new(name, size), &q, |b, q| {
                b.iter(|| {
                    let cfg = EngineConfig {
                        collect_matches: false,
                        directed: true,
                        batching,
                        ..Default::default()
                    };
                    let mut engine = TcmEngine::new(q, &g_bursty, delta_bursty, cfg).unwrap();
                    engine.run_counting().occurred
                })
            });
        }
        // Thread sweep of the batched bursty run: filter instances and the
        // per-seed sweeps of every delta batch fan out over a shared pool.
        // t1 runs a width-1 pool, whose dispatches inline on the caller:
        // it prices the fan-out plumbing (per-seed matcher setup, shard and
        // slot merges) without the publish/claim coordination, which only
        // t2/t4 pay.
        for threads in [1usize, 2, 4] {
            let pool = Arc::new(WorkerPool::new(threads));
            group.bench_with_input(
                BenchmarkId::new(format!("engine_run_batched_bursty_t{threads}"), size),
                &q,
                |b, q| {
                    b.iter(|| {
                        let cfg = EngineConfig {
                            collect_matches: false,
                            directed: true,
                            batching: true,
                            ..Default::default()
                        };
                        let mut engine = TcmEngine::with_pool(
                            q,
                            &g_bursty,
                            delta_bursty,
                            cfg,
                            Arc::clone(&pool),
                        )
                        .unwrap();
                        engine.run_counting().occurred
                    })
                },
            );
        }
    }

    // Real SNAP-shaped stream: ingest throughput on the checked-in fixture
    // (sparse-id densification + label synthesis + epoch rescale + sort),
    // and the end-to-end replay BENCH can now track on a real stream shape
    // (bursts, duplicate triples, hub-skewed multigraph).
    let snap_text = include_str!("../../datasets/fixtures/mini-snap.txt");
    let snap_opts = tcsm_graph::SnapOptions::default();
    group.bench_function("snap_ingest", |b| {
        b.iter(|| {
            tcsm_graph::io::parse_snap(snap_text, &snap_opts)
                .unwrap()
                .num_edges()
        })
    });
    let g_snap = tcsm_graph::io::parse_snap(snap_text, &snap_opts).unwrap();
    // Same derivation as the experiments CLI: window index 2, size-5 walk.
    let delta_snap = tcsm_datasets::ingest::windows_for_stream(&g_snap)[2];
    let qg_snap = QueryGen::new(&g_snap);
    if let Some(q) = qg_snap.generate(5, 0.5, (delta_snap * 3 / 4).max(4), 42) {
        for (name, batching) in [
            ("engine_run_snap", false),
            ("engine_run_snap_batched", true),
        ] {
            group.bench_with_input(BenchmarkId::new(name, 5usize), &q, |b, q| {
                b.iter(|| {
                    let cfg = EngineConfig {
                        collect_matches: false,
                        directed: true,
                        batching,
                        ..Default::default()
                    };
                    let mut engine = TcmEngine::new(q, &g_snap, delta_snap, cfg).unwrap();
                    engine.run_counting().occurred
                })
            });
        }
    }
    // Multi-query serving: N standing queries over one stream through the
    // sharded service (one shared WindowGraph per shard) vs the
    // run-N-independent-engines baseline it replaces (one window copy and
    // one full maintenance pipeline per query). Serial drive on this
    // single-CPU container — the entry measures the shared-window work
    // dedup, not thread scaling.
    {
        use tcsm_service::{CountingSink, MatchService, ServiceConfig, ShardPolicy};
        const N_QUERIES: usize = 8;
        let qg = QueryGen::new(&g);
        let queries: Vec<_> = (0..(4 * N_QUERIES) as u64)
            .filter_map(|seed| qg.generate(5 + (seed % 3) as usize * 2, 0.5, delta / 2, 7 + seed))
            .take(N_QUERIES)
            .collect();
        assert_eq!(queries.len(), N_QUERIES, "profile hosts the bench queries");
        let cfg = EngineConfig {
            collect_matches: false,
            directed: true,
            threads: 0,
            ..Default::default()
        };
        group.bench_function(BenchmarkId::new("service_multi_query", "engines8"), |b| {
            b.iter(|| {
                #[allow(deprecated)]
                let stats = tcsm_core::run_queries_parallel(&queries, &g, delta, cfg, 1).unwrap();
                stats.iter().map(|s| s.occurred).sum::<u64>()
            })
        });
        for shards in [1usize, 4] {
            group.bench_function(
                BenchmarkId::new("service_multi_query", format!("service8_s{shards}")),
                |b| {
                    b.iter(|| {
                        let mut svc = MatchService::new(
                            &g,
                            delta,
                            ServiceConfig {
                                shards,
                                policy: ShardPolicy::LabelLocality,
                                threads: 0,
                                batching: false,
                                directed: true,
                            },
                        )
                        .unwrap();
                        let ids: Vec<_> = queries
                            .iter()
                            .map(|q| svc.add_query(q, cfg, Box::new(CountingSink::new().0)))
                            .collect();
                        svc.run();
                        ids.iter()
                            .map(|&id| svc.query_stats(id).unwrap().occurred)
                            .sum::<u64>()
                    })
                },
            );
        }
    }
    // Crash-safe serving: snapshot write + restore against the cold
    // rebuild they replace. `snapshot_restore` decodes and overlays every
    // per-query slab from the shard frames; `snapshot_cold_rebuild`
    // restores the same checkpoint with the shard files deleted, so every
    // shard takes the Rebuild path — serial stream replay plus a
    // from-scratch `sync_to_window` per query. The gap between the two is
    // what the snapshot format buys at recovery time.
    {
        use tcsm_service::{
            CountingSink, MatchService, RecoveryPolicy, ServiceConfig, ShardPolicy,
        };
        let queries: Vec<_> = (0..16u64)
            .filter_map(|seed| qg.generate(5 + (seed % 3) as usize * 2, 0.5, delta / 2, 7 + seed))
            .take(4)
            .collect();
        let svc_cfg = ServiceConfig {
            shards: 2,
            policy: ShardPolicy::LabelLocality,
            threads: 0,
            batching: false,
            directed: true,
        };
        let cfg = EngineConfig {
            collect_matches: false,
            directed: true,
            threads: 0,
            ..Default::default()
        };
        let mut svc = MatchService::new(&g, delta, svc_cfg).unwrap();
        for q in &queries {
            svc.add_query(q, cfg, Box::new(CountingSink::new().0));
        }
        let half = g.num_edges(); // half of the 2·|E| event stream
        for _ in 0..half {
            svc.step();
        }
        let dir = std::env::temp_dir().join(format!("tcsm-bench-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        group.bench_function("snapshot_write", |b| {
            b.iter(|| svc.checkpoint(&dir).unwrap())
        });
        svc.checkpoint(&dir).unwrap();
        group.bench_function("snapshot_restore", |b| {
            b.iter(|| {
                let svc = MatchService::restore(&g, &dir, RecoveryPolicy::Strict, |_| {
                    Box::new(CountingSink::new().0)
                })
                .unwrap();
                svc.stats().events
            })
        });
        // Delete the shard frames: every shard now rebuilds from the
        // stream prefix — the cold path a snapshot-less service would
        // always pay.
        for i in 0..2 {
            std::fs::remove_file(dir.join(format!("shard-{i}.tcsm"))).unwrap();
        }
        group.bench_function("snapshot_cold_rebuild", |b| {
            b.iter(|| {
                let svc = MatchService::restore(&g, &dir, RecoveryPolicy::Rebuild, |_| {
                    Box::new(CountingSink::new().0)
                })
                .unwrap();
                svc.stats().events
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
