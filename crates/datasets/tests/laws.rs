//! Workload-generation contracts the experiments rely on.

use tcsm_core::{MatchKind, TcmEngine};
use tcsm_datasets::{QueryGen, ALL_PROFILES};

#[test]
fn every_profile_generates_matchable_queries() {
    // The §VI protocol guarantees each query has at least one match in the
    // stream (the walked subgraph itself). Verify per profile.
    for p in ALL_PROFILES {
        let g = p.generate(31, 0.12);
        let delta = p.window_sizes(0.12)[2];
        let qg = QueryGen::new(&g);
        let mut found_any = false;
        for seed in 0..6u64 {
            let Some(q) = qg.generate(5, 0.5, delta * 3 / 4, seed) else {
                continue;
            };
            let cfg = tcsm_core::EngineConfig {
                directed: true,
                collect_matches: false,
                ..Default::default()
            };
            let mut e = TcmEngine::new(&q, &g, delta, cfg).unwrap();
            let s = e.run_counting();
            if s.occurred > 0 {
                found_any = true;
                break;
            }
        }
        assert!(found_any, "{}: no generated query matched", p.name);
    }
}

#[test]
fn walk_witness_occurs_at_expected_density_one() {
    // Density 1 queries force a total order; the walk witness must still
    // occur.
    let p = ALL_PROFILES[2]; // Superuser
    let g = p.generate(8, 0.3);
    let delta = p.window_sizes(0.3)[2];
    let qg = QueryGen::new(&g);
    let q = qg.generate(7, 1.0, delta * 3 / 4, 3).expect("query");
    assert!((q.order().density() - 1.0).abs() < 1e-9);
    let cfg = tcsm_core::EngineConfig {
        directed: true,
        ..Default::default()
    };
    let mut e = TcmEngine::new(&q, &g, delta, cfg).unwrap();
    let events = e.run();
    assert!(events.iter().any(|m| m.kind == MatchKind::Occurred));
}

#[test]
fn scaled_profiles_preserve_shape_ratios() {
    for p in ALL_PROFILES {
        let small = p.generate(1, 0.1);
        let big = p.generate(1, 0.4);
        // Edge/vertex ratio (≈ davg/2) stays within 2× across scales.
        let r_small = small.num_edges() as f64 / small.num_vertices() as f64;
        let r_big = big.num_edges() as f64 / big.num_vertices() as f64;
        let ratio = r_small.max(r_big) / r_small.min(r_big).max(1e-9);
        assert!(ratio < 2.0, "{}: davg drifted {ratio}", p.name);
    }
}

#[test]
fn queries_inherit_labels_from_data() {
    let p = ALL_PROFILES[0]; // Netflow: edge labels matter
    let g = p.generate(2, 0.2);
    let delta = p.window_sizes(0.2)[2];
    let qg = QueryGen::new(&g);
    let q = qg.generate(6, 0.5, delta * 3 / 4, 11).expect("query");
    // Netflow has a single vertex label.
    for u in 0..q.num_vertices() {
        assert_eq!(q.label(u), g.label(0));
    }
    // Edge labels are copied from the walked data edges.
    assert!(q
        .edges()
        .iter()
        .all(|e| e.label != tcsm_graph::EDGE_LABEL_ANY));
}
