//! # tcsm-datasets
//!
//! Workload generation for the TCM evaluation (§VI).
//!
//! The paper evaluates on six datasets (Table III): Netflow, Wiki-talk,
//! Superuser, StackOverflow, Yahoo and LSBench. None of these dumps is
//! available offline, so [`profiles`] provides parameterized synthetic
//! generators matched to each dataset's published statistics — vertex/edge
//! counts (scaled 1:1000 by default), label alphabet sizes, degree skew and
//! the average parallel-edge multiplicity `mavg` that drives the paper's
//! multigraph arguments. See DESIGN.md §5 for why this substitution
//! preserves the experiment shapes.
//!
//! [`querygen`] reimplements the paper's query generation protocol: random
//! walks over the data graph (restricted to a time span so at least one
//! time-constrained embedding occurs), plus temporal orders derived from a
//! random permutation filtered by actual timestamps, with densities
//! {0, 0.25, 0.5, 0.75, 1} (§VI "Queries").

pub mod profiles;
pub mod querygen;

pub use profiles::{DatasetProfile, ALL_PROFILES};
pub use querygen::QueryGen;
