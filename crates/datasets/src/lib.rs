//! # tcsm-datasets
//!
//! Workload provisioning for the TCM evaluation (§VI): synthetic Table III
//! profiles, real-dump ingest, and the query generator.
//!
//! The paper evaluates on six datasets (Table III): Netflow, Wiki-talk,
//! Superuser, StackOverflow, Yahoo and LSBench. [`profiles`] provides
//! parameterized synthetic generators matched to each dataset's published
//! statistics — vertex/edge counts (scaled 1:1000 by default), label
//! alphabet sizes, degree skew and the average parallel-edge multiplicity
//! `mavg` that drives the paper's multigraph arguments. See DESIGN.md §5
//! for why this substitution preserves the experiment shapes.
//!
//! [`ingest`] opens the same experiment surface to *real* temporal streams:
//! a [`DatasetSource`] trait unifies the synthetic profiles with
//! file-backed [`FileSource`]s, so the `experiments` CLI's
//! `--input FILE --format snap` and `QueryGen` random walks run on either.
//! SNAP dumps (`src dst unixtime` lines, as in `wiki-talk-temporal` /
//! `sx-superuser` / `sx-stackoverflow`) go through `tcsm_graph::io`'s SNAP
//! parser, which densifies sparse ids, rescales epoch timestamps so the
//! earliest arrival is instant 0, synthesizes vertex labels
//! (uniform / degree-bucket / id-hash over a configurable alphabet) and
//! optionally down-samples to a record-prefix — the full contract is
//! documented on `tcsm_graph::io`. A miniature checked-in dump
//! (`fixtures/mini-snap.txt`) keeps the whole path exercised offline.
//!
//! [`querygen`] reimplements the paper's query generation protocol: random
//! walks over the data graph (restricted to a time span so at least one
//! time-constrained embedding occurs), plus temporal orders derived from a
//! random permutation filtered by actual timestamps, with densities
//! {0, 0.25, 0.5, 0.75, 1} (§VI "Queries").

pub mod ingest;
pub mod profiles;
pub mod querygen;

pub use ingest::{DatasetSource, FileFormat, FileSource, IngestError, SourceSpec};
pub use profiles::{DatasetProfile, ALL_PROFILES};
pub use querygen::QueryGen;
