//! One trait over synthetic and file-backed datasets.
//!
//! The experiments layer historically iterated `DatasetProfile`s directly,
//! which hard-wired the whole BENCH trajectory to synthetic streams.
//! [`DatasetSource`] abstracts "something that yields a [`TemporalGraph`]
//! plus its experiment parameters", with two implementations:
//!
//! * [`DatasetProfile`] — the Table III synthetic generators (`seed` and
//!   `scale` mean what they always did);
//! * [`FileSource`] — a real on-disk dump, either a SNAP temporal edge
//!   list (`src dst unixtime`, see `tcsm_graph::io`'s SNAP section) or the
//!   native `v`/`e` text format. `seed`/`scale` are ignored: the file *is*
//!   the dataset, and down-sampling is the loader's explicit
//!   [`SnapOptions::max_edges`] knob rather than an implicit rescale.
//!
//! [`SourceSpec`] is the closed enum the CLI plumbs around (it stays
//! `Clone + Debug`, which trait objects would forfeit). Everything
//! downstream of a source — `QueryGen` random walks, the engine, the
//! figure drivers — already works on any `TemporalGraph`, so file-backed
//! streams flow through the entire experiment surface unchanged.

use crate::profiles::DatasetProfile;
use std::fmt;
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use tcsm_graph::io::{parse_snap_reader, parse_temporal_graph, SnapOptions};
use tcsm_graph::{GraphError, TemporalGraph};

/// Ingest failure: the filesystem said no, or the contents did.
#[derive(Debug)]
pub enum IngestError {
    /// Could not open/read the file.
    Io(PathBuf, std::io::Error),
    /// The contents failed to parse or validate.
    Graph(PathBuf, GraphError),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            IngestError::Graph(p, e) => write!(f, "{}: {e}", p.display()),
        }
    }
}

impl std::error::Error for IngestError {}

/// The five named window sizes for an arbitrary stream: window `i` is
/// sized to hold `i/16` of the stream's edges (floored at 8), converted
/// into a *time* length via the stream's mean interarrival gap — the
/// paper's own window unit ("each unit of the window size as the average
/// time span between two consecutive edges"). The synthetic profiles emit
/// exactly one edge per tick, so their formula is this one's
/// interarrival-1 special case; real dumps (wiki-talk averages tens of
/// seconds between edges, the bursty fixture under one) need the scaling
/// or the window silently holds interarrival-fold too few/many edges.
pub fn windows_for_stream(g: &TemporalGraph) -> [i64; 5] {
    let m = g.num_edges() as i64;
    let avg = g.avg_interarrival();
    [1, 2, 3, 4, 5].map(|i| (((i * m / 16).max(8) as f64) * avg).round().max(1.0) as i64)
}

/// Anything the experiment drivers can treat as a dataset.
pub trait DatasetSource {
    /// Display name (figure/table row label).
    fn name(&self) -> String;

    /// Whether query edges should be matched directed on this stream.
    fn directed(&self) -> bool {
        true
    }

    /// Produces the temporal graph. Synthetic sources honour `seed` and
    /// `scale`; file-backed sources ignore both (see the module docs).
    fn load(&self, seed: u64, scale: f64) -> Result<TemporalGraph, IngestError>;

    /// The five named window sizes for the loaded graph.
    fn window_sizes(&self, g: &TemporalGraph, scale: f64) -> [i64; 5] {
        let _ = scale;
        windows_for_stream(g)
    }
}

impl DatasetSource for DatasetProfile {
    fn name(&self) -> String {
        self.name.to_string()
    }

    fn directed(&self) -> bool {
        self.directed
    }

    fn load(&self, seed: u64, scale: f64) -> Result<TemporalGraph, IngestError> {
        Ok(self.generate(seed, scale))
    }

    fn window_sizes(&self, _g: &TemporalGraph, scale: f64) -> [i64; 5] {
        DatasetProfile::window_sizes(self, scale)
    }
}

/// On-disk dataset formats the loader understands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileFormat {
    /// SNAP temporal edge list: `src dst unixtime` lines.
    Snap,
    /// The native `v`/`e` text format of `tcsm_graph::io`.
    Native,
}

impl FileFormat {
    /// Parses a `--format` CLI value.
    pub fn from_name(s: &str) -> Option<FileFormat> {
        match s.to_ascii_lowercase().as_str() {
            "snap" => Some(FileFormat::Snap),
            "native" | "tcsm" => Some(FileFormat::Native),
            _ => None,
        }
    }
}

/// A file-backed dataset source.
#[derive(Clone, Debug)]
pub struct FileSource {
    /// Path of the dump.
    pub path: PathBuf,
    /// How to parse it.
    pub format: FileFormat,
    /// SNAP ingest knobs (label synthesis, down-sampling, epoch rescale);
    /// ignored by [`FileFormat::Native`].
    pub snap: SnapOptions,
    /// Whether the stream's edges are directed interactions.
    pub directed: bool,
}

impl FileSource {
    /// A SNAP-format source with default ingest options.
    pub fn snap(path: impl Into<PathBuf>) -> FileSource {
        FileSource {
            path: path.into(),
            format: FileFormat::Snap,
            snap: SnapOptions::default(),
            directed: true,
        }
    }

    /// A native-format source.
    pub fn native(path: impl Into<PathBuf>) -> FileSource {
        FileSource {
            format: FileFormat::Native,
            ..FileSource::snap(path)
        }
    }

    fn stem(&self) -> String {
        Path::new(&self.path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| self.path.display().to_string())
    }
}

impl DatasetSource for FileSource {
    fn name(&self) -> String {
        self.stem()
    }

    fn directed(&self) -> bool {
        self.directed
    }

    fn load(&self, _seed: u64, _scale: f64) -> Result<TemporalGraph, IngestError> {
        let err_io = |e| IngestError::Io(self.path.clone(), e);
        let err_graph = |e| IngestError::Graph(self.path.clone(), e);
        match self.format {
            FileFormat::Snap => {
                let file = File::open(&self.path).map_err(err_io)?;
                parse_snap_reader(BufReader::new(file), &self.snap)
                    .map(|(g, _)| g)
                    .map_err(err_graph)
            }
            FileFormat::Native => {
                let text = std::fs::read_to_string(&self.path).map_err(err_io)?;
                parse_temporal_graph(&text).map_err(err_graph)
            }
        }
    }
}

/// The closed source enum the CLI and `Suite` carry (`Clone + Debug`,
/// unlike a boxed trait object).
#[derive(Clone, Debug)]
pub enum SourceSpec {
    /// A Table III synthetic profile.
    Profile(DatasetProfile),
    /// A file-backed dump.
    File(FileSource),
}

impl DatasetSource for SourceSpec {
    fn name(&self) -> String {
        match self {
            SourceSpec::Profile(p) => DatasetSource::name(p),
            SourceSpec::File(f) => f.name(),
        }
    }

    fn directed(&self) -> bool {
        match self {
            SourceSpec::Profile(p) => DatasetSource::directed(p),
            SourceSpec::File(f) => DatasetSource::directed(f),
        }
    }

    fn load(&self, seed: u64, scale: f64) -> Result<TemporalGraph, IngestError> {
        match self {
            SourceSpec::Profile(p) => p.load(seed, scale),
            SourceSpec::File(f) => f.load(seed, scale),
        }
    }

    fn window_sizes(&self, g: &TemporalGraph, scale: f64) -> [i64; 5] {
        match self {
            SourceSpec::Profile(p) => DatasetSource::window_sizes(p, g, scale),
            SourceSpec::File(f) => DatasetSource::window_sizes(f, g, scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_path() -> PathBuf {
        PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/fixtures/mini-snap.txt"
        ))
    }

    #[test]
    fn windows_scale_with_the_stream_and_stay_increasing() {
        // One edge per tick: reduces to the profiles' i·m/16 formula.
        let mut b = tcsm_graph::TemporalGraphBuilder::new();
        let v = b.vertices(2, 0);
        for t in 1..=160 {
            b.edge(v, v + 1, t);
        }
        let g = b.build().unwrap();
        let w = windows_for_stream(&g);
        assert_eq!(w, [10, 20, 30, 40, 50]);
        assert!(w.windows(2).all(|p| p[0] < p[1]));

        // Ten ticks between edges: the same edges-held targets need a 10×
        // longer time window.
        let mut b = tcsm_graph::TemporalGraphBuilder::new();
        let v = b.vertices(2, 0);
        for t in 1..=160 {
            b.edge(v, v + 1, t * 10);
        }
        let g10 = b.build().unwrap();
        assert_eq!(windows_for_stream(&g10), [100, 200, 300, 400, 500]);

        // Degenerate streams still yield positive windows.
        let g0 = tcsm_graph::TemporalGraphBuilder::new().build().unwrap();
        assert_eq!(windows_for_stream(&g0), [8; 5]);
    }

    #[test]
    fn profile_and_file_share_the_trait_surface() {
        let spec = SourceSpec::Profile(crate::profiles::SUPERUSER);
        let g = spec.load(3, 0.2).unwrap();
        assert!(g.num_edges() > 0);
        assert_eq!(DatasetSource::name(&spec), "Superuser");
        // Profile windows delegate to the profile's own formula.
        assert_eq!(
            spec.window_sizes(&g, 0.2),
            crate::profiles::SUPERUSER.window_sizes(0.2)
        );

        let spec = SourceSpec::File(FileSource::snap(fixture_path()));
        let g = spec.load(0, 1.0).unwrap();
        assert!(g.num_edges() > 0);
        assert_eq!(DatasetSource::name(&spec), "mini-snap");
        assert_eq!(spec.window_sizes(&g, 1.0), windows_for_stream(&g));
    }

    #[test]
    fn missing_file_is_an_io_error_with_the_path() {
        let src = FileSource::snap("/definitely/not/here.txt");
        match src.load(0, 1.0).unwrap_err() {
            IngestError::Io(p, _) => assert!(p.display().to_string().contains("not/here")),
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn native_format_round_trips_through_a_file_source() {
        let g = crate::profiles::YAHOO.generate(5, 0.1);
        let dir = std::env::temp_dir().join("tcsm-ingest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("native.txt");
        std::fs::write(&path, tcsm_graph::io::write_temporal_graph(&g)).unwrap();
        let src = FileSource::native(&path);
        let g2 = src.load(0, 1.0).unwrap();
        assert_eq!(g.edges(), g2.edges());
        assert_eq!(g.labels(), g2.labels());
    }
}
