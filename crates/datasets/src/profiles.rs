//! The six dataset profiles of Table III, as synthetic generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcsm_graph::{TemporalGraph, TemporalGraphBuilder, VertexId};

/// A synthetic stand-in for one evaluation dataset.
///
/// Counts are the paper's Table III values divided by 1000 (the default
/// `scale = 1.0`); raise `scale` to approach the originals.
#[derive(Clone, Copy, Debug)]
pub struct DatasetProfile {
    /// Dataset name as used in the paper's figures.
    pub name: &'static str,
    /// Vertex count at `scale = 1`.
    pub num_vertices: usize,
    /// Edge count at `scale = 1`.
    pub num_edges: usize,
    /// Vertex label alphabet size (`|Σ_V|`).
    pub vertex_labels: u32,
    /// Edge label alphabet size (`|Σ_E|`; 1 = unlabelled).
    pub edge_labels: u32,
    /// Probability an arriving edge duplicates an existing vertex pair —
    /// tuned so the expected parallel multiplicity matches `mavg`.
    pub parallel_prob: f64,
    /// Zipf exponent of the endpoint sampler (degree skew).
    pub zipf_exponent: f64,
    /// Whether the dataset is directed (all six are interaction networks,
    /// matched directed in the paper's experiments).
    pub directed: bool,
}

/// Netflow: 1 vertex label, a huge edge-label alphabet, extreme parallelism.
pub const NETFLOW: DatasetProfile = DatasetProfile {
    name: "Netflow",
    num_vertices: 370,
    num_edges: 15_960,
    vertex_labels: 1,
    edge_labels: 24,
    parallel_prob: 0.964, // mavg ≈ 27.6
    zipf_exponent: 1.1,
    directed: true,
};

/// Wiki-talk: many vertex labels, moderate parallelism.
pub const WIKI_TALK: DatasetProfile = DatasetProfile {
    name: "Wiki-talk",
    num_vertices: 1_140,
    num_edges: 7_830,
    vertex_labels: 26,
    edge_labels: 1,
    parallel_prob: 0.578, // mavg ≈ 2.37
    zipf_exponent: 1.2,
    directed: true,
};

/// Superuser: 5 vertex labels, 3 interaction-type edge labels.
pub const SUPERUSER: DatasetProfile = DatasetProfile {
    name: "Superuser",
    num_vertices: 190,
    num_edges: 1_440,
    vertex_labels: 5,
    edge_labels: 3,
    parallel_prob: 0.359, // mavg ≈ 1.56
    zipf_exponent: 1.0,
    directed: true,
};

/// StackOverflow: the largest stream.
pub const STACKOVERFLOW: DatasetProfile = DatasetProfile {
    name: "StackOverflow",
    num_vertices: 2_600,
    num_edges: 63_500,
    vertex_labels: 5,
    edge_labels: 3,
    parallel_prob: 0.43, // mavg ≈ 1.75
    zipf_exponent: 1.1,
    directed: true,
};

/// Yahoo: dense messaging network.
pub const YAHOO: DatasetProfile = DatasetProfile {
    name: "Yahoo",
    num_vertices: 100,
    num_edges: 3_180,
    vertex_labels: 5,
    edge_labels: 1,
    parallel_prob: 0.715, // mavg ≈ 3.51
    zipf_exponent: 0.9,
    directed: true,
};

/// LSBench: sparse synthetic social stream, no parallel edges.
pub const LSBENCH: DatasetProfile = DatasetProfile {
    name: "LSBench",
    num_vertices: 13_120,
    num_edges: 21_040,
    vertex_labels: 11,
    edge_labels: 19,
    parallel_prob: 0.0, // mavg = 1.00
    zipf_exponent: 0.8,
    directed: true,
};

/// All six profiles in the paper's figure order.
pub const ALL_PROFILES: [DatasetProfile; 6] =
    [NETFLOW, WIKI_TALK, SUPERUSER, STACKOVERFLOW, YAHOO, LSBENCH];

/// Zipf-distributed index sampler over `0..n` (cumulative table + binary
/// search; n is at most a few thousand here).
struct Zipf {
    cum: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Zipf {
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cum.push(acc);
        }
        Zipf { cum }
    }

    fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cum.last().expect("non-empty");
        let x = rng.gen::<f64>() * total;
        self.cum.partition_point(|&c| c < x).min(self.cum.len() - 1)
    }
}

impl DatasetProfile {
    /// Generates the synthetic temporal graph: one edge per tick
    /// (`t = 1..=m`), Zipf endpoints, parallel-pair duplication, random
    /// labels. Deterministic in `seed`.
    pub fn generate(&self, seed: u64, scale: f64) -> TemporalGraph {
        let n = ((self.num_vertices as f64 * scale).round() as usize).max(4);
        let m = ((self.num_edges as f64 * scale).round() as usize).max(8);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7c5a_31f0);
        let mut b = TemporalGraphBuilder::new();
        for _ in 0..n {
            b.vertex(rng.gen_range(0..self.vertex_labels));
        }
        let zipf = Zipf::new(n, self.zipf_exponent);
        // Vertex identities are shuffled so the Zipf head isn't id 0..k.
        let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
        for i in (1..n).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
        let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
        let mut pair_set: tcsm_graph::FxHashSet<(VertexId, VertexId)> =
            tcsm_graph::FxHashSet::default();
        for t in 1..=m as i64 {
            let (src, dst) = if !pairs.is_empty() && rng.gen::<f64>() < self.parallel_prob {
                pairs[rng.gen_range(0..pairs.len())]
            } else {
                loop {
                    let a = perm[zipf.sample(&mut rng)];
                    let c = perm[zipf.sample(&mut rng)];
                    if a != c {
                        break (a, c);
                    }
                }
            };
            if pair_set.insert((src.min(dst), src.max(dst))) {
                pairs.push((src, dst));
            }
            let label = if self.edge_labels <= 1 {
                0
            } else {
                rng.gen_range(0..self.edge_labels)
            };
            b.edge_full(src, dst, t, label);
        }
        b.build().expect("generator produces valid graphs")
    }

    /// [`DatasetProfile::generate`] with bursty timestamps: `burst` edges
    /// share each tick instead of one, so same-timestamp delta batches are
    /// non-trivial (`burst = 1` reproduces `generate` exactly). Edge counts,
    /// endpoints and labels are identical to `generate` for the same seed —
    /// only the time axis is compressed — which makes uniform-vs-bursty
    /// comparisons (the batched-engine benchmark) apples-to-apples.
    pub fn generate_bursty(&self, seed: u64, scale: f64, burst: usize) -> TemporalGraph {
        assert!(burst >= 1, "burst length must be positive");
        let uniform = self.generate(seed, scale);
        if burst == 1 {
            return uniform;
        }
        let mut b = TemporalGraphBuilder::new();
        for &l in uniform.labels() {
            b.vertex(l);
        }
        // `edges()` is in arrival order; compress each run of `burst`
        // consecutive arrivals onto one tick.
        for (i, e) in uniform.edges().iter().enumerate() {
            b.edge_full(e.src, e.dst, 1 + (i / burst) as i64, e.label);
        }
        b.build().expect("re-timing preserves validity")
    }

    /// The named window sizes of Table IV (`10k … 50k`), mapped onto the
    /// scaled stream: the paper's windows hold 10k–50k edges of a stream of
    /// millions; here window *i* holds `i/16` of the stream so the live
    /// graph remains non-trivial at laptop scale (see EXPERIMENTS.md).
    pub fn window_sizes(&self, scale: f64) -> [i64; 5] {
        let m = (self.num_edges as f64 * scale).round() as i64;
        [1, 2, 3, 4, 5].map(|i| (i * m / 16).max(8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_match_profiles_roughly() {
        for p in ALL_PROFILES {
            let g = p.generate(42, 0.25);
            let want_v = (p.num_vertices as f64 * 0.25).round();
            assert!(
                (g.num_vertices() as f64 - want_v).abs() <= 1.0,
                "{}",
                p.name
            );
            // mavg within a factor ~1.6 of the target (Zipf head collisions
            // add parallel pairs beyond parallel_prob).
            let target_mavg = 1.0 / (1.0 - p.parallel_prob);
            let got = g.avg_parallel_edges();
            assert!(
                got >= target_mavg * 0.75 && got <= target_mavg * 2.5,
                "{}: mavg {got} vs target {target_mavg}",
                p.name
            );
            // Labels within the alphabet.
            assert!(g.num_vertex_labels() <= p.vertex_labels as usize);
            assert!(g.num_edge_labels() <= p.edge_labels.max(1) as usize);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = NETFLOW.generate(7, 0.1);
        let b = NETFLOW.generate(7, 0.1);
        assert_eq!(a.edges(), b.edges());
        let c = NETFLOW.generate(8, 0.1);
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn timestamps_are_unique_ticks() {
        let g = SUPERUSER.generate(3, 0.5);
        let mut times: Vec<i64> = g.edges().iter().map(|e| e.time.raw()).collect();
        times.sort_unstable();
        times.dedup();
        assert_eq!(times.len(), g.num_edges());
    }

    #[test]
    fn bursty_generation_compresses_the_time_axis_only() {
        let uniform = SUPERUSER.generate(5, 0.3);
        let bursty = SUPERUSER.generate_bursty(5, 0.3, 4);
        assert_eq!(uniform.num_edges(), bursty.num_edges());
        assert_eq!(uniform.labels(), bursty.labels());
        // Endpoints and labels match arrival-position-wise.
        for (u, b) in uniform.edges().iter().zip(bursty.edges()) {
            assert_eq!((u.src, u.dst, u.label), (b.src, b.dst, b.label));
        }
        // Exactly ⌈m/4⌉ distinct ticks.
        let mut times: Vec<i64> = bursty.edges().iter().map(|e| e.time.raw()).collect();
        times.sort_unstable();
        times.dedup();
        assert_eq!(times.len(), uniform.num_edges().div_ceil(4));
        // burst = 1 is the identity.
        assert_eq!(
            SUPERUSER.generate_bursty(5, 0.3, 1).edges(),
            uniform.edges()
        );
    }

    #[test]
    fn window_sizes_are_increasing() {
        let w = STACKOVERFLOW.window_sizes(1.0);
        assert!(w.windows(2).all(|p| p[0] < p[1]));
        assert!(w[0] >= 4);
    }
}
