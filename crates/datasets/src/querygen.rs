//! Random-walk query generation with density-controlled temporal orders
//! (the §VI "Queries" protocol).
//!
//! Queries are extracted by random walk over the data graph, restricted to a
//! time span so that the walked subgraph itself is a time-constrained
//! embedding alive within the window — guaranteeing every generated query
//! has at least one match in the stream. The temporal order is derived from
//! a random permutation of the query edges, keeping `e ≺ e'` exactly when
//! the permutation and the walked timestamps agree (which again keeps the
//! walked subgraph a valid match); pairs are then subsampled to hit a target
//! density, or the permutation is replaced by the timestamp sort for
//! density 1.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcsm_graph::{
    Direction, QueryGraph, QueryGraphBuilder, TemporalGraph, TemporalOrder, VertexId,
    EDGE_LABEL_ANY,
};

/// Reusable query generator (holds the adjacency index of the data graph).
pub struct QueryGen<'g> {
    g: &'g TemporalGraph,
    /// `adj[v]` = indices into `g.edges()` incident to `v`.
    adj: Vec<Vec<usize>>,
    /// Whether generated queries carry edge labels and directions.
    pub use_edge_labels: bool,
    pub directed: bool,
}

impl<'g> QueryGen<'g> {
    /// Builds the index.
    pub fn new(g: &'g TemporalGraph) -> QueryGen<'g> {
        let mut adj = vec![Vec::new(); g.num_vertices()];
        for (i, e) in g.edges().iter().enumerate() {
            adj[e.src as usize].push(i);
            adj[e.dst as usize].push(i);
        }
        QueryGen {
            g,
            adj,
            use_edge_labels: true,
            directed: false,
        }
    }

    /// Generates one query of `size` edges with temporal-order `density`,
    /// walking only edges within a `span`-long time range. Returns `None`
    /// when no walk succeeds (sparse graphs / large sizes).
    pub fn generate(&self, size: usize, density: f64, span: i64, seed: u64) -> Option<QueryGraph> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51_7e_aa_01);
        for _attempt in 0..400 {
            if let Some(q) = self.try_walk(size, density, span, &mut rng) {
                return Some(q);
            }
        }
        None
    }

    fn try_walk(
        &self,
        size: usize,
        density: f64,
        span: i64,
        rng: &mut StdRng,
    ) -> Option<QueryGraph> {
        let m = self.g.num_edges();
        if m == 0 || size == 0 {
            return None;
        }
        let start = rng.gen_range(0..m);
        let t0 = self.g.edges()[start].time.raw();
        let in_span = |t: i64| t >= t0 && t < t0 + span;

        // Walk state: data-vertex → query-vertex mapping, chosen edges.
        let mut vq: Vec<(VertexId, usize)> = Vec::new(); // (data v, query id)
        let mut chosen: Vec<usize> = Vec::new(); // data edge indices
        let mut used_pairs: Vec<(VertexId, VertexId)> = Vec::new();

        let e0 = &self.g.edges()[start];
        vq.push((e0.src, 0));
        vq.push((e0.dst, 1));
        chosen.push(start);
        used_pairs.push((e0.src.min(e0.dst), e0.src.max(e0.dst)));
        let mut cur = if rng.gen() { e0.src } else { e0.dst };

        let mut stuck = 0;
        while chosen.len() < size && stuck < 60 {
            let cands = &self.adj[cur as usize];
            if cands.is_empty() {
                return None;
            }
            let ei = cands[rng.gen_range(0..cands.len())];
            let e = &self.g.edges()[ei];
            let key = (e.src.min(e.dst), e.src.max(e.dst));
            if !in_span(e.time.raw()) || used_pairs.contains(&key) {
                stuck += 1;
                // Occasionally teleport back to a visited vertex to branch.
                if stuck % 7 == 0 {
                    cur = vq[rng.gen_range(0..vq.len())].0;
                }
                continue;
            }
            stuck = 0;
            let other = e.other(cur);
            if !vq.iter().any(|&(v, _)| v == other) {
                let id = vq.len();
                vq.push((other, id));
            }
            chosen.push(ei);
            used_pairs.push(key);
            // Continue from either endpoint of the new edge, or branch.
            cur = if rng.gen::<f64>() < 0.3 {
                vq[rng.gen_range(0..vq.len())].0
            } else {
                other
            };
        }
        if chosen.len() < size {
            return None;
        }

        // Build the query graph mirroring the walked subgraph.
        let mut qb = QueryGraphBuilder::new();
        for &(v, _) in &vq {
            qb.vertex(self.g.label(v));
        }
        let qid = |v: VertexId| vq.iter().find(|&&(x, _)| x == v).unwrap().1;
        let mut times: Vec<i64> = Vec::with_capacity(size);
        for &ei in &chosen {
            let e = &self.g.edges()[ei];
            let (dir, label) = (
                if self.directed {
                    Direction::AToB
                } else {
                    Direction::Undirected
                },
                if self.use_edge_labels {
                    e.label
                } else {
                    EDGE_LABEL_ANY
                },
            );
            qb.edge_full(qid(e.src), qid(e.dst), dir, label);
            times.push(e.time.raw());
        }
        let order_pairs = make_order(&times, density, rng)?;
        for (a, b) in order_pairs {
            qb.precede(a, b);
        }
        qb.build().ok()
    }
}

/// Builds the temporal-order generating pairs for walked timestamps `times`
/// at the requested density (§VI query protocol).
fn make_order(times: &[i64], density: f64, rng: &mut StdRng) -> Option<Vec<(usize, usize)>> {
    let m = times.len();
    if density <= 0.0 || m < 2 {
        return Some(Vec::new());
    }
    // Density 1 needs a total order, which requires distinct timestamps.
    let mut perm: Vec<usize> = (0..m).collect();
    if density >= 1.0 {
        perm.sort_by_key(|&i| times[i]);
        let mut distinct = times.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() != m {
            return None; // retry with another walk
        }
    } else {
        for i in (1..m).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
    }
    // S = pairs agreeing with both the permutation and the timestamps.
    let mut s: Vec<(usize, usize)> = Vec::new();
    let mut pos = vec![0; m];
    for (p, &e) in perm.iter().enumerate() {
        pos[e] = p;
    }
    for a in 0..m {
        for b in 0..m {
            if pos[a] < pos[b] && times[a] < times[b] {
                s.push((a, b));
            }
        }
    }
    if density >= 1.0 {
        return Some(s);
    }
    // Greedily add pairs until the closure density reaches the target. The
    // permutation-compatible set `s` is tried first (the paper's protocol);
    // if it cannot reach the target — a random permutation agrees with only
    // about half the timestamp pairs — the remaining time-consistent pairs
    // are drawn as well, which preserves the walked witness embedding.
    for i in (1..s.len()).rev() {
        s.swap(i, rng.gen_range(0..=i));
    }
    let mut extra: Vec<(usize, usize)> = Vec::new();
    for a in 0..m {
        for b in 0..m {
            if times[a] < times[b] && !s.contains(&(a, b)) {
                extra.push((a, b));
            }
        }
    }
    for i in (1..extra.len()).rev() {
        extra.swap(i, rng.gen_range(0..=i));
    }
    let total_pairs = (m * (m - 1) / 2) as f64;
    let mut picked: Vec<(usize, usize)> = Vec::new();
    for &p in s.iter().chain(extra.iter()) {
        picked.push(p);
        let o = TemporalOrder::new(m, &picked).expect("subset of a valid order");
        if o.num_pairs() as f64 / total_pairs >= density - 1e-9 {
            break;
        }
    }
    Some(picked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{SUPERUSER, YAHOO};

    #[test]
    fn generated_queries_are_valid_and_sized() {
        let g = SUPERUSER.generate(11, 1.0);
        let qg = QueryGen::new(&g);
        for (i, &size) in [5usize, 7, 9].iter().enumerate() {
            let q = qg
                .generate(size, 0.5, g.num_edges() as i64 / 8, 100 + i as u64)
                .expect("walk succeeds");
            assert_eq!(q.num_edges(), size);
            assert!(q.num_vertices() >= 2);
        }
    }

    #[test]
    fn density_targets_are_met() {
        let g = YAHOO.generate(5, 1.0);
        let qg = QueryGen::new(&g);
        for &d in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let q = qg
                .generate(9, d, g.num_edges() as i64 / 8, 7)
                .expect("walk succeeds");
            let got = q.order().density();
            if d == 0.0 {
                assert_eq!(got, 0.0);
            } else if d == 1.0 {
                assert!((got - 1.0).abs() < 1e-9, "got {got}");
            } else {
                // Greedy closure overshoots by at most a few pairs.
                assert!(got >= d - 1e-9, "got {got} < {d}");
                assert!(got <= d + 0.35, "got {got} ≫ {d}");
            }
        }
    }

    #[test]
    fn walked_subgraph_is_a_match_witness() {
        // The walk's own edges satisfy the generated order: verify by
        // rebuilding the witness embedding and checking it.
        let g = SUPERUSER.generate(23, 1.0);
        let qg = QueryGen::new(&g);
        let q = qg
            .generate(7, 0.75, g.num_edges() as i64 / 8, 55)
            .expect("walk succeeds");
        // The order's pairs must be consistent with *some* assignment of
        // strictly increasing times — at minimum, not contradictory.
        assert!(q.order().num_pairs() > 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = SUPERUSER.generate(11, 1.0);
        let qg = QueryGen::new(&g);
        let a = qg.generate(6, 0.5, 200, 9).unwrap();
        let b = qg.generate(6, 0.5, 200, 9).unwrap();
        assert_eq!(
            tcsm_graph::io::write_query_graph(&a),
            tcsm_graph::io::write_query_graph(&b)
        );
    }
}
