//! DCS candidacy laws on random streams.

use proptest::prelude::*;
use tcsm_dag::build_best_dag;
use tcsm_dcs::Dcs;
use tcsm_filter::{FilterBank, FilterMode};
use tcsm_graph::*;

fn arb_stream() -> impl Strategy<Value = (TemporalGraph, QueryGraph, i64)> {
    (
        3usize..6,
        prop::collection::vec((0u32..8, 0u32..8, 1i64..20, 0u32..2), 4..14),
        2usize..5,
        any::<u64>(),
        3i64..12,
    )
        .prop_map(|(n, edges, qn, seed, delta)| {
            let mut b = TemporalGraphBuilder::new();
            for i in 0..n {
                b.vertex((seed >> i) as u32 % 2);
            }
            for (a, c, t, l) in edges {
                let (a, c) = (a % n as u32, c % n as u32);
                if a != c {
                    b.edge_full(a, c, t, l);
                }
            }
            let g = b.build().unwrap();
            let mut qb = QueryGraphBuilder::new();
            for i in 0..qn {
                qb.vertex((seed >> (i + 8)) as u32 % 2);
            }
            for i in 1..qn {
                qb.edge((seed as usize >> i) % i, i);
            }
            (g, qb.build().unwrap(), delta)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn d2_implies_d1_implies_labels((g, q, delta) in arb_stream()) {
        for mode in [FilterMode::Tc, FilterMode::LabelOnly] {
            let dag = build_best_dag(&q);
            let mut w = WindowGraph::new(g.labels().to_vec(), false);
            let mut bank = FilterBank::new(&q, &dag, mode, &w);
            let mut dcs = Dcs::new(dag.clone(), &q, &w);
            let mut deltas = Vec::new();
            let queue = EventQueue::new(&g, delta).unwrap();
            for ev in queue.iter() {
                let edge = *g.edge(ev.edge);
                deltas.clear();
                match ev.kind {
                    EventKind::Insert => {
                        w.insert(&edge);
                        bank.on_insert(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                    }
                    EventKind::Delete => {
                        w.remove(&edge);
                        bank.on_delete(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                    }
                }
                dcs.apply(&q, &w, |k| g.edge(k), &deltas);
                let mut d2_count = 0;
                for u in 0..q.num_vertices() {
                    for v in 0..g.num_vertices() as u32 {
                        if dcs.d2(u, v) {
                            d2_count += 1;
                            prop_assert!(dcs.d1(u, v), "d2 without d1");
                        }
                        if dcs.d1(u, v) {
                            prop_assert_eq!(q.label(u), g.label(v), "d1 label mismatch");
                        }
                    }
                }
                prop_assert_eq!(d2_count, dcs.num_candidate_vertices());
                // Edge groups are bounded by alive edges × query edges × 2.
                prop_assert!(
                    dcs.num_edges() <= w.num_alive_edges() * q.num_edges() * 2
                );
            }
        }
    }

    #[test]
    fn tc_mode_never_has_more_candidates((g, q, delta) in arb_stream()) {
        let dag = build_best_dag(&q);
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        let mut bank_tc = FilterBank::new(&q, &dag, FilterMode::Tc, &w);
        let mut bank_lo = FilterBank::new(&q, &dag, FilterMode::LabelOnly, &w);
        let mut dcs_tc = Dcs::new(dag.clone(), &q, &w);
        let mut dcs_lo = Dcs::new(dag.clone(), &q, &w);
        let mut deltas = Vec::new();
        let queue = EventQueue::new(&g, delta).unwrap();
        for ev in queue.iter() {
            let edge = *g.edge(ev.edge);
            match ev.kind {
                EventKind::Insert => {
                    w.insert(&edge);
                    deltas.clear();
                    bank_tc.on_insert(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                    dcs_tc.apply(&q, &w, |k| g.edge(k), &deltas);
                    deltas.clear();
                    bank_lo.on_insert(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                    dcs_lo.apply(&q, &w, |k| g.edge(k), &deltas);
                }
                EventKind::Delete => {
                    w.remove(&edge);
                    deltas.clear();
                    bank_tc.on_delete(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                    dcs_tc.apply(&q, &w, |k| g.edge(k), &deltas);
                    deltas.clear();
                    bank_lo.on_delete(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                    dcs_lo.apply(&q, &w, |k| g.edge(k), &deltas);
                }
            }
            // Table V's premise as an invariant: the TC filter only shrinks.
            prop_assert!(dcs_tc.num_edges() <= dcs_lo.num_edges());
            prop_assert!(
                dcs_tc.num_candidate_vertices() <= dcs_lo.num_candidate_vertices()
            );
        }
    }
}
