//! Equivalence of the dense slab state with simple hash-map oracles, plus
//! the expiration regression: sliding windows must zero the slabs and must
//! not grow them without bound.
//!
//! The production structures are deliberately hash-free; these tests keep a
//! plain `FxHashMap` shadow of the multiplicity index (fed from the same
//! deltas) and re-derive every `(u, v)` candidacy from it by fixpoint, so a
//! dense-indexing bug (wrong stride, stale slot, missed zeroing) shows up as
//! a divergence from an independently maintained model.

use proptest::prelude::*;
use tcsm_dag::{build_best_dag, Polarity};
use tcsm_dcs::Dcs;
use tcsm_filter::{FilterBank, FilterInstance, FilterMode};
use tcsm_graph::*;

fn arb_stream() -> impl Strategy<Value = (TemporalGraph, QueryGraph, i64)> {
    (
        3usize..6,
        prop::collection::vec((0u32..8, 0u32..8, 1i64..20, 0u32..2), 4..16),
        2usize..5,
        any::<u64>(),
        3i64..12,
    )
        .prop_map(|(n, edges, qn, seed, delta)| {
            let mut b = TemporalGraphBuilder::new();
            for i in 0..n {
                b.vertex((seed >> i) as u32 % 2);
            }
            for (a, c, t, l) in edges {
                let (a, c) = (a % n as u32, c % n as u32);
                if a != c {
                    b.edge_full(a, c, t, l);
                }
            }
            let g = b.build().unwrap();
            let mut qb = QueryGraphBuilder::new();
            for i in 0..qn {
                qb.vertex((seed >> (i + 8)) as u32 % 2);
            }
            for i in 1..qn {
                qb.edge((seed as usize >> i) % i, i);
            }
            (g, qb.build().unwrap(), delta)
        })
}

/// Re-derives `d1`/`d2` for every `(u, v)` from a hash-map multiplicity
/// oracle by the SymBi fixpoint, fully independent of the dense slabs.
fn oracle_candidacies(
    q: &QueryGraph,
    g: &WindowGraph,
    dag: &tcsm_dag::QueryDag,
    mult: &FxHashMap<(QEdgeId, VertexId, VertexId), u32>,
) -> (Vec<Vec<bool>>, Vec<Vec<bool>>) {
    let n = g.num_vertices() as VertexId;
    let nq = q.num_vertices();
    let m = |e: QEdgeId, vt: VertexId, vh: VertexId| mult.get(&(e, vt, vh)).copied().unwrap_or(0);
    let mut d1 = vec![vec![false; n as usize]; nq];
    for &u in dag.topo_order() {
        for v in 0..n {
            if q.label(u) != g.label(v) {
                continue;
            }
            d1[u][v as usize] = dag
                .parents(u)
                .iter()
                .all(|&(e, up)| (0..n).any(|vp| m(e, vp, v) > 0 && d1[up][vp as usize]));
        }
    }
    let mut d2 = vec![vec![false; n as usize]; nq];
    for &u in dag.topo_order().iter().rev() {
        for v in 0..n {
            if !d1[u][v as usize] {
                continue;
            }
            d2[u][v as usize] = dag
                .children(u)
                .iter()
                .all(|&(e, uc)| (0..n).any(|vc| m(e, v, vc) > 0 && d2[uc][vc as usize]));
        }
    }
    (d1, d2)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn dense_dcs_matches_hashmap_oracle((g, q, delta) in arb_stream()) {
        let dag = build_best_dag(&q);
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        let mut bank = FilterBank::new(&q, &dag, FilterMode::Tc, &w);
        let mut dcs = Dcs::new(dag.clone(), &q, &w);
        // The shadow model: a plain hash map fed from the same deltas.
        let mut mult_oracle: FxHashMap<(QEdgeId, VertexId, VertexId), u32> =
            FxHashMap::default();
        let mut deltas = Vec::new();
        let queue = EventQueue::new(&g, delta).unwrap();
        for ev in queue.iter() {
            let edge = *g.edge(ev.edge);
            deltas.clear();
            match ev.kind {
                EventKind::Insert => {
                    w.insert(&edge);
                    bank.on_insert(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                }
                EventKind::Delete => {
                    w.remove(&edge);
                    bank.on_delete(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                }
            }
            dcs.apply(&q, &w, |k| g.edge(k), &deltas);
            for d in &deltas {
                let sigma = g.edge(d.pair.key);
                let e = d.pair.qedge;
                let key = (
                    e,
                    d.pair.image_of(&q, sigma, dag.tail(e)),
                    d.pair.image_of(&q, sigma, dag.head(e)),
                );
                let c = mult_oracle.entry(key).or_insert(0);
                if d.added {
                    *c += 1;
                } else {
                    prop_assert!(*c > 0, "oracle underflow — delta stream broken");
                    *c -= 1;
                    if *c == 0 {
                        mult_oracle.remove(&key);
                    }
                }
            }
            // Every (e, v_tail, v_head) multiplicity agrees with the shadow.
            let n = g.num_vertices() as VertexId;
            for e in 0..q.num_edges() {
                for vt in 0..n {
                    for vh in 0..n {
                        if vt == vh {
                            continue;
                        }
                        let want = mult_oracle.get(&(e, vt, vh)).copied().unwrap_or(0);
                        prop_assert_eq!(
                            dcs.mult(&w, e, vt, vh), want,
                            "mult diverged at (e{}, v{}, v{})", e, vt, vh
                        );
                    }
                }
            }
            prop_assert_eq!(
                dcs.num_edges(),
                mult_oracle.values().map(|&c| c as usize).sum::<usize>()
            );
            prop_assert_eq!(dcs.num_edge_groups(), mult_oracle.len());
            // Every (u, v) candidacy agrees with the fixpoint over the shadow.
            let (d1, d2) = oracle_candidacies(&q, &w, &dag, &mult_oracle);
            for u in 0..q.num_vertices() {
                for v in 0..n {
                    prop_assert_eq!(dcs.d1(u, v), d1[u][v as usize], "d1 (u{}, v{})", u, v);
                    prop_assert_eq!(dcs.d2(u, v), d2[u][v as usize], "d2 (u{}, v{})", u, v);
                }
            }
        }
        prop_assert!(mult_oracle.is_empty());
        prop_assert_eq!(dcs.num_edges(), 0);
        prop_assert_eq!(dcs.num_nodes(), 0, "counters not zeroed after drain");
    }

    #[test]
    fn dense_filter_matches_fresh_replay((g, q, delta) in arb_stream()) {
        // A long-lived instance that has seen inserts AND expirations must
        // hold exactly the state of a fresh instance replaying only the
        // currently-alive edges — i.e. expiration really clears dense slots.
        let dag = build_best_dag(&q);
        for pol in Polarity::BOTH {
            let mut w = WindowGraph::new(g.labels().to_vec(), false);
            let mut inst = FilterInstance::new(dag.clone(), pol, &q, &w);
            let mut alive: Vec<TemporalEdge> = Vec::new();
            let mut flips = Vec::new();
            let queue = EventQueue::new(&g, delta).unwrap();
            for ev in queue.iter() {
                let edge = *g.edge(ev.edge);
                match ev.kind {
                    EventKind::Insert => {
                        w.insert(&edge);
                        alive.push(edge);
                        inst.apply(&q, &w, &edge, &mut flips);
                    }
                    EventKind::Delete => {
                        alive.retain(|e| e.key != edge.key);
                        w.remove(&edge);
                        inst.apply(&q, &w, &edge, &mut flips);
                    }
                }
                // Fresh replay over the alive set only.
                let mut w2 = WindowGraph::new(g.labels().to_vec(), false);
                let mut fresh = FilterInstance::new(dag.clone(), pol, &q, &w2);
                for e in &alive {
                    w2.insert(e);
                    flips.clear();
                    fresh.apply(&q, &w2, e, &mut flips);
                }
                for u in 0..q.num_vertices() {
                    for v in 0..g.num_vertices() as VertexId {
                        for e in dag.ancestor_edges(u).iter() {
                            prop_assert_eq!(
                                inst.natural_value(u, v, e),
                                fresh.natural_value(u, v, e),
                                "stale dense slot at (u{}, v{}, e{}) {:?}", u, v, e, pol
                            );
                        }
                    }
                }
                prop_assert_eq!(inst.table_len(), fresh.table_len());
            }
            prop_assert_eq!(inst.table_len(), 0);
        }
    }
}

#[test]
fn sliding_windows_do_not_grow_slabs() {
    // The same traffic pattern repeated over many windows: every pair-keyed
    // slab must stabilize after the first window instead of growing with
    // stream length, and a fully drained stream must leave all slabs zeroed.
    let q = tcsm_graph::query::paper_running_example();
    let dag = build_best_dag(&q);
    let mut b = TemporalGraphBuilder::new();
    let labels = [0u32, 1, 5, 2, 3, 5, 4];
    let v: Vec<_> = labels.iter().map(|&l| b.vertex(l)).collect();
    let pattern = [
        (0usize, 1usize),
        (3, 4),
        (0, 3),
        (3, 6),
        (4, 6),
        (1, 4),
        (3, 4),
    ];
    let rounds = 12;
    for r in 0..rounds {
        for (i, &(a, c)) in pattern.iter().enumerate() {
            b.edge(v[a], v[c], (r * pattern.len() + i) as i64 + 1);
        }
    }
    let g = b.build().unwrap();
    let delta = pattern.len() as i64; // one round alive at a time
    let mut w = WindowGraph::new(g.labels().to_vec(), false);
    let mut bank = FilterBank::new(&q, &dag, FilterMode::Tc, &w);
    let mut dcs = Dcs::new(dag.clone(), &q, &w);
    let mut deltas = Vec::new();
    let mut slab_after_round_2: Option<(usize, usize)> = None;
    let queue = EventQueue::new(&g, delta).unwrap();
    for (i, ev) in queue.iter().enumerate() {
        let edge = *g.edge(ev.edge);
        deltas.clear();
        match ev.kind {
            EventKind::Insert => {
                w.insert(&edge);
                bank.on_insert(&q, &w, &edge, |k| g.edge(k), &mut deltas);
            }
            EventKind::Delete => {
                w.remove(&edge);
                bank.on_delete(&q, &w, &edge, |k| g.edge(k), &mut deltas);
            }
        }
        dcs.apply(&q, &w, |k| g.edge(k), &deltas);
        // After two full rounds every recurring pair has been seen; the
        // slabs must not grow past this point.
        if i + 1 == 4 * pattern.len() {
            slab_after_round_2 = Some((w.pair_slab_len(), dcs.mult_slab_len()));
        }
    }
    let (pair_slab, mult_slab) = slab_after_round_2.expect("stream long enough");
    assert_eq!(
        w.pair_slab_len(),
        pair_slab,
        "window pair slab grew across identical sliding windows"
    );
    assert_eq!(
        dcs.mult_slab_len(),
        mult_slab,
        "DCS mult slab grew across identical sliding windows"
    );
    // Drained stream ⇒ every dense structure is back to its zero state.
    assert_eq!(w.num_alive_edges(), 0);
    assert_eq!(bank.num_pairs(), 0);
    assert_eq!(dcs.num_edges(), 0);
    assert_eq!(dcs.num_candidate_vertices(), 0);
    assert_eq!(dcs.num_nodes(), 0, "expiration left nonzero counters");
    dcs.check_consistency(&q, &w);
}
