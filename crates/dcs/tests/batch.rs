//! A batch's DCS deltas applied in one `apply` call equal the same deltas
//! applied one at a time (the counter scheme is order- and
//! granularity-independent within a monotone batch), and the incremental
//! state matches the from-scratch recomputation after every batch.

use tcsm_dag::build_best_dag;
use tcsm_dcs::Dcs;
use tcsm_filter::{FilterBank, FilterMode};
use tcsm_graph::query::paper_running_example;
use tcsm_graph::{EventKind, EventQueue, TemporalEdge, TemporalGraphBuilder, WindowGraph};

#[test]
fn one_shot_batch_apply_equals_per_delta_apply() {
    let q = paper_running_example();
    let dag = build_best_dag(&q);
    // Bursty rewrite of Figure 2a: three arrivals per tick.
    let mut b = TemporalGraphBuilder::new();
    let labels = [0u32, 1, 5, 2, 3, 5, 4];
    let v: Vec<_> = labels.iter().map(|&l| b.vertex(l)).collect();
    let pairs = [
        (0, 1),
        (3, 4),
        (3, 4),
        (0, 3),
        (3, 6),
        (0, 1),
        (3, 6),
        (0, 3),
        (4, 6),
        (4, 6),
        (1, 4),
        (0, 3),
        (3, 4),
        (3, 6),
    ];
    for (i, (a, c)) in pairs.iter().enumerate() {
        b.edge(v[*a], v[*c], 1 + (i as i64 / 3));
    }
    let g = b.build().unwrap();

    let mut w = WindowGraph::new(g.labels().to_vec(), false);
    let mut bank = FilterBank::new(&q, &dag, FilterMode::Tc, &w);
    let mut one_shot = Dcs::new(dag.clone(), &q, &w);
    let mut per_delta = Dcs::new(dag.clone(), &q, &w);
    let queue = EventQueue::new(&g, 2).unwrap();
    let mut deltas = Vec::new();
    for batch in queue.batches() {
        let edges: Vec<TemporalEdge> = batch.edges().map(|k| *g.edge(k)).collect();
        deltas.clear();
        w.begin_batch();
        match batch.kind {
            EventKind::Insert => {
                for e in &edges {
                    w.insert_deferred(e);
                }
                bank.on_insert_batch(&q, &w, &edges, |k| g.edge(k), &mut deltas);
            }
            EventKind::Delete => {
                for e in &edges {
                    w.remove_deferred(e);
                }
                bank.on_delete_batch(&q, &w, &edges, |k| g.edge(k), &mut deltas);
            }
        }
        one_shot.apply(&q, &w, |k| g.edge(k), &deltas);
        for d in &deltas {
            per_delta.apply(&q, &w, |k| g.edge(k), std::slice::from_ref(d));
        }
        assert_eq!(one_shot.num_edges(), per_delta.num_edges());
        assert_eq!(one_shot.num_edge_groups(), per_delta.num_edge_groups());
        assert_eq!(
            one_shot.num_candidate_vertices(),
            per_delta.num_candidate_vertices()
        );
        one_shot.check_consistency(&q, &w);
        per_delta.check_consistency(&q, &w);
    }
    assert_eq!(one_shot.num_edges(), 0);
    assert_eq!(one_shot.num_nodes(), 0, "slab zeroed after drain");
    assert_eq!(per_delta.num_nodes(), 0);
}
