//! DCS storage: per-node counters and the multiplicity index.

use tcsm_dag::QueryDag;
use tcsm_graph::{FxHashMap, QEdgeId, QVertexId, QueryGraph, VertexId};

/// Per-`(u, v)` candidacy state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct NodeState {
    /// Per parent slot: number of distinct `v_p` with a supporting DCS edge
    /// (`mult > 0` and `d1[u_p, v_p]`).
    pub n1: Box<[u32]>,
    /// Per child slot: number of distinct `v_c` with `mult > 0` and
    /// `d2[u_c, v_c]`.
    pub n2: Box<[u32]>,
    /// Cached `d1` / `d2` booleans (consistent with the counters).
    pub d1: bool,
    pub d2: bool,
}

impl NodeState {
    pub(crate) fn n1_sat(&self) -> bool {
        self.n1.iter().all(|&c| c > 0)
    }

    pub(crate) fn n2_sat(&self) -> bool {
        self.n2.iter().all(|&c| c > 0)
    }

    pub(crate) fn is_zero(&self) -> bool {
        self.n1.iter().all(|&c| c == 0) && self.n2.iter().all(|&c| c == 0)
    }
}

/// The dynamic candidate space.
pub struct Dcs {
    pub(crate) dag: QueryDag,
    /// Multiplicity of DCS edges per `(qedge, image of tail, image of head)`:
    /// the number of alive oriented pairs currently admitted by the filter.
    pub(crate) mult: FxHashMap<(QEdgeId, VertexId, VertexId), u32>,
    pub(crate) nodes: FxHashMap<(QVertexId, VertexId), NodeState>,
    /// Number of nodes with `d2 == true` (the Table V vertex metric).
    pub(crate) d2_count: usize,
    /// Parent/child slot of each edge at its head/tail (cached).
    pub(crate) parent_slot: Vec<usize>,
    pub(crate) child_slot: Vec<usize>,
}

impl Dcs {
    /// Creates an empty DCS over the forward query DAG.
    pub fn new(dag: QueryDag) -> Dcs {
        let m = dag.num_edges();
        let mut parent_slot = vec![0; m];
        let mut child_slot = vec![0; m];
        for u in 0..dag.num_vertices() {
            for (i, &(e, _)) in dag.parents(u).iter().enumerate() {
                parent_slot[e] = i;
            }
            for (i, &(e, _)) in dag.children(u).iter().enumerate() {
                child_slot[e] = i;
            }
        }
        Dcs {
            dag,
            mult: FxHashMap::default(),
            nodes: FxHashMap::default(),
            d2_count: 0,
            parent_slot,
            child_slot,
        }
    }

    /// The DAG this DCS is built over.
    #[inline]
    pub fn dag(&self) -> &QueryDag {
        &self.dag
    }

    /// Number of alive DCS edges for `(e, v_tail, v_head)` — i.e. how many
    /// parallel data edges between the two images are admitted for `e`.
    #[inline]
    pub fn mult(&self, e: QEdgeId, v_tail: VertexId, v_head: VertexId) -> u32 {
        self.mult.get(&(e, v_tail, v_head)).copied().unwrap_or(0)
    }

    /// `d1[u, v]` (ancestor-side candidacy).
    #[inline]
    pub fn d1(&self, q: &QueryGraph, g: &tcsm_graph::WindowGraph, u: QVertexId, v: VertexId) -> bool {
        match self.nodes.get(&(u, v)) {
            Some(n) => n.d1,
            None => q.label(u) == g.label(v) && self.dag.parents(u).is_empty(),
        }
    }

    /// `d2[u, v]` (full candidacy; implies `d1`).
    #[inline]
    pub fn d2(&self, q: &QueryGraph, g: &tcsm_graph::WindowGraph, u: QVertexId, v: VertexId) -> bool {
        match self.nodes.get(&(u, v)) {
            Some(n) => n.d2,
            None => {
                q.label(u) == g.label(v)
                    && self.dag.parents(u).is_empty()
                    && self.dag.children(u).is_empty()
            }
        }
    }

    /// Number of distinct `(qedge, data pair)` groups with alive DCS edges.
    #[inline]
    pub fn num_edge_groups(&self) -> usize {
        self.mult.len()
    }

    /// Total DCS edge multiplicity (= number of admitted oriented pairs).
    pub fn num_edges(&self) -> usize {
        self.mult.values().map(|&c| c as usize).sum()
    }

    /// Number of `(u, v)` pairs with `d2` — the "vertices remaining in DCS
    /// after filtering" metric of Table V.
    ///
    /// Nodes that are candidates *by default* (isolated single-vertex
    /// queries) are not counted; every query this library accepts has at
    /// least one edge, so default-`d2` nodes cannot occur.
    #[inline]
    pub fn num_candidate_vertices(&self) -> usize {
        self.d2_count
    }

    /// Number of materialized node states (memory diagnostics).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}
