//! DCS storage: dense per-`(u, v)` counter slabs and the pair-indexed
//! multiplicity slab.
//!
//! # Memory model
//!
//! Query vertices are bounded by 64 and the data-vertex count `n` is fixed
//! when the stream opens, so *all* per-node state lives in flat arrays
//! allocated once at construction:
//!
//! * `counters` — for every query vertex `u`, an `n × (parents(u) +
//!   children(u))` block of `u32` support counters, one row per data vertex
//!   (`O(|E(q)| · n)` words total, rows contiguous so one node's
//!   `n1`/`n2` check is a short cache-resident scan);
//! * `d1` / `d2` — one bit per `(u, v)` pair (`O(|V(q)| · n)` bits), plus a
//!   precomputed `label_ok` bitmap so candidacy refreshes never touch the
//!   label arrays;
//! * `mult` — DCS edge multiplicities addressed by **window pair-bucket id**
//!   (`pair · 2|E(q)| + ε·2 + orientation`), the stable ids handed out by
//!   [`tcsm_graph::WindowGraph`]. This slab grows amortized with the peak
//!   number of concurrently alive vertex pairs and is then reused; no
//!   per-event allocation is proportional to anything.
//!
//! There is no hashing anywhere on the per-event path.

use tcsm_dag::QueryDag;
use tcsm_graph::codec::{CodecError, Decoder, Encoder};
use tcsm_graph::{DenseBits, PairId, QEdgeId, QVertexId, QueryGraph, VertexId, WindowGraph};

/// The dynamic candidate space.
pub struct Dcs {
    pub(crate) dag: QueryDag,
    /// Data-vertex count (fixed at construction).
    pub(crate) n: usize,
    /// `2 · |E(q)|`: the `mult` stride per pair bucket.
    pub(crate) m2: usize,
    /// Parent count per query vertex (`n1` slots; `n2` slots follow).
    pub(crate) np: Vec<u32>,
    /// `parents + children` counter row width per query vertex.
    pub(crate) width: Vec<u32>,
    /// Prefix sums of `width`: block `u` starts at `cbase[u] * n`.
    pub(crate) cbase: Vec<u32>,
    /// The flat counter slab (see module docs).
    pub(crate) counters: Vec<u32>,
    /// Per `(u, v)`: number of nonzero counter slots (`0` = default node).
    pub(crate) nonzero_slots: Vec<u8>,
    /// Number of `(u, v)` nodes with any nonzero counter.
    pub(crate) live_nodes: usize,
    /// `d1`/`d2` candidacy bits per `(u, v)` (index `u·n + v`).
    pub(crate) d1: DenseBits,
    pub(crate) d2: DenseBits,
    /// `label(u) == label(v)` per `(u, v)`, precomputed.
    pub(crate) label_ok: DenseBits,
    /// Number of nodes with `d2 == true` (the Table V vertex metric).
    pub(crate) d2_count: usize,
    /// Parent/child slot of each edge at its head/tail (cached).
    pub(crate) parent_slot: Vec<usize>,
    pub(crate) child_slot: Vec<usize>,
    /// Worklist buffer reused across [`Dcs::apply`] calls.
    pub(crate) work_scratch: Vec<crate::update::Work>,
    /// Multiplicity of DCS edges per `(pair bucket, qedge, orientation)`.
    pub(crate) mult: Vec<u32>,
    /// Number of nonzero `mult` entries (= DCS edge groups).
    pub(crate) mult_groups: usize,
    /// Sum of all `mult` entries (= DCS edge multiplicity).
    pub(crate) mult_total: usize,
}

impl Dcs {
    /// Creates an empty DCS over the forward query DAG for the fixed vertex
    /// set of `g`. All `O(|V(q)|·|V(g)|)`-shaped slabs are allocated here,
    /// once, and reused for the stream's lifetime.
    pub fn new(dag: QueryDag, q: &QueryGraph, g: &WindowGraph) -> Dcs {
        let m = dag.num_edges();
        let nq = dag.num_vertices();
        let n = g.num_vertices();
        // Defense in depth behind the typed `GraphError::QueryTooLarge`
        // guard in `QueryGraph::new` (the slot/width tables and the
        // matcher's 64-bit vertex sets assume this bound).
        assert!(
            nq <= tcsm_graph::MAX_QUERY_DIM && m <= tcsm_graph::MAX_QUERY_DIM,
            "query exceeds MAX_QUERY_DIM={} (QueryGraph construction must reject this)",
            tcsm_graph::MAX_QUERY_DIM
        );
        let mut parent_slot = vec![0; m];
        let mut child_slot = vec![0; m];
        let mut np = vec![0u32; nq];
        let mut width = vec![0u32; nq];
        for u in 0..nq {
            for (i, &(e, _)) in dag.parents(u).iter().enumerate() {
                parent_slot[e] = i;
            }
            for (i, &(e, _)) in dag.children(u).iter().enumerate() {
                child_slot[e] = i;
            }
            np[u] = dag.parents(u).len() as u32;
            width[u] = (dag.parents(u).len() + dag.children(u).len()) as u32;
        }
        let mut cbase = vec![0u32; nq];
        let mut acc = 0u32;
        for u in 0..nq {
            cbase[u] = acc;
            acc += width[u];
        }
        let mut label_ok = DenseBits::new(nq * n);
        let mut d1 = DenseBits::new(nq * n);
        let mut d2 = DenseBits::new(nq * n);
        for u in 0..nq {
            let lu = q.label(u);
            let root_u = dag.parents(u).is_empty();
            let leaf_u = dag.children(u).is_empty();
            for v in 0..n {
                if lu == g.label(v as VertexId) {
                    label_ok.set(u * n + v);
                    // Counter-free defaults: roots are d1 on label match
                    // alone; d2 additionally needs zero children.
                    if root_u {
                        d1.set(u * n + v);
                        if leaf_u {
                            d2.set(u * n + v);
                        }
                    }
                }
            }
        }
        Dcs {
            dag,
            n,
            m2: 2 * m,
            np,
            width,
            cbase,
            counters: vec![0; acc as usize * n],
            nonzero_slots: vec![0; nq * n],
            live_nodes: 0,
            d1,
            d2,
            label_ok,
            d2_count: 0,
            parent_slot,
            child_slot,
            work_scratch: Vec::new(),
            mult: Vec::new(),
            mult_groups: 0,
            mult_total: 0,
        }
    }

    /// The DAG this DCS is built over.
    #[inline]
    pub fn dag(&self) -> &QueryDag {
        &self.dag
    }

    /// Start of the counter row for `(u, v)`.
    #[inline]
    pub(crate) fn row(&self, u: QVertexId, v: VertexId) -> usize {
        self.cbase[u] as usize * self.n + v as usize * self.width[u] as usize
    }

    /// `mult` slab index for `(pair, e, orientation)`.
    #[inline]
    pub(crate) fn mult_idx(pair: PairId, m2: usize, e: QEdgeId, tail_lt_head: bool) -> usize {
        pair as usize * m2 + e * 2 + tail_lt_head as usize
    }

    /// Multiplicity by direct pair-bucket index (the hot-path form).
    #[inline]
    pub fn mult_at(&self, pair: PairId, e: QEdgeId, tail_lt_head: bool) -> u32 {
        self.mult
            .get(Dcs::mult_idx(pair, self.m2, e, tail_lt_head))
            .copied()
            .unwrap_or(0)
    }

    /// Number of alive DCS edges for `(e, v_tail, v_head)` — i.e. how many
    /// parallel data edges between the two images are admitted for `e`.
    #[inline]
    pub fn mult(&self, g: &WindowGraph, e: QEdgeId, v_tail: VertexId, v_head: VertexId) -> u32 {
        match g.pair_id(v_tail, v_head) {
            Some(p) => self.mult_at(p, e, v_tail < v_head),
            None => 0,
        }
    }

    /// `d1[u, v]` (ancestor-side candidacy).
    #[inline]
    pub fn d1(&self, u: QVertexId, v: VertexId) -> bool {
        self.d1.get(u * self.n + v as usize)
    }

    /// `d2[u, v]` (full candidacy; implies `d1`).
    #[inline]
    pub fn d2(&self, u: QVertexId, v: VertexId) -> bool {
        self.d2.get(u * self.n + v as usize)
    }

    /// Number of distinct `(qedge, data pair)` groups with alive DCS edges.
    #[inline]
    pub fn num_edge_groups(&self) -> usize {
        self.mult_groups
    }

    /// Total DCS edge multiplicity (= number of admitted oriented pairs).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.mult_total
    }

    /// Number of `(u, v)` pairs with `d2` — the "vertices remaining in DCS
    /// after filtering" metric of Table V.
    ///
    /// Nodes that are candidates *by default* (isolated single-vertex
    /// queries) are not counted; every query this library accepts has at
    /// least one edge, so default-`d2` nodes cannot occur.
    #[inline]
    pub fn num_candidate_vertices(&self) -> usize {
        self.d2_count
    }

    /// Number of `(u, v)` nodes holding any nonzero counter (the dense
    /// analogue of "materialized node states"; memory diagnostics).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.live_nodes
    }

    /// Current length of the pair-indexed multiplicity slab, in entries.
    /// Grows with the peak number of concurrently alive vertex pairs and is
    /// then stable — the expiration regression test pins this.
    #[inline]
    pub fn mult_slab_len(&self) -> usize {
        self.mult.len()
    }

    /// Serializes the dynamic state: counter slab, nonzero-slot censuses,
    /// candidacy bitmaps and the pair-indexed multiplicity slab. Everything
    /// else (DAG shape, slot tables, label bitmap) is a construction-time
    /// constant rebuilt by [`Dcs::new`].
    ///
    /// Must only be called at an event boundary (empty worklist).
    pub fn encode_state(&self, enc: &mut Encoder) {
        enc.put_usize(self.counters.len());
        for &c in &self.counters {
            enc.put_u32(c);
        }
        enc.put_usize(self.nonzero_slots.len());
        for &s in &self.nonzero_slots {
            enc.put_u8(s);
        }
        enc.put_usize(self.live_nodes);
        enc.put_bits(&self.d1);
        enc.put_bits(&self.d2);
        enc.put_usize(self.d2_count);
        enc.put_usize(self.mult.len());
        for &m in &self.mult {
            enc.put_u32(m);
        }
        enc.put_usize(self.mult_groups);
        enc.put_usize(self.mult_total);
    }

    /// Overlays serialized state onto a freshly constructed DCS of the same
    /// query and window shape. Slab lengths must match the construction
    /// shape (`mult` additionally must be a whole number of pair strides),
    /// and every stored census must agree with the slab it summarizes —
    /// anything else is corruption.
    pub fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        let nc = dec.get_count(4)?;
        if nc != self.counters.len() {
            return Err(CodecError::Invalid(format!(
                "counter slab has {nc} entries (expected {})",
                self.counters.len()
            )));
        }
        let mut counters = Vec::with_capacity(nc);
        for _ in 0..nc {
            counters.push(dec.get_u32()?);
        }
        let ns = dec.get_count(1)?;
        if ns != self.nonzero_slots.len() {
            return Err(CodecError::Invalid(format!(
                "nonzero-slot slab has {ns} entries (expected {})",
                self.nonzero_slots.len()
            )));
        }
        let mut nonzero_slots = Vec::with_capacity(ns);
        for _ in 0..ns {
            nonzero_slots.push(dec.get_u8()?);
        }
        let live_nodes = dec.get_usize()?;
        let live_census = nonzero_slots.iter().filter(|&&s| s != 0).count();
        if live_nodes != live_census {
            return Err(CodecError::Invalid(format!(
                "live-node count {live_nodes} disagrees with slot census {live_census}"
            )));
        }
        let d1 = dec.get_bits(self.d1.len())?;
        let d2 = dec.get_bits(self.d2.len())?;
        let d2_count = dec.get_usize()?;
        if d2_count != d2.count_ones() {
            return Err(CodecError::Invalid(format!(
                "d2 census {d2_count} disagrees with bitmap ({})",
                d2.count_ones()
            )));
        }
        let nm = dec.get_count(4)?;
        if self.m2 != 0 && !nm.is_multiple_of(self.m2) {
            return Err(CodecError::Invalid(format!(
                "mult slab length {nm} is not a multiple of the pair stride {}",
                self.m2
            )));
        }
        let mut mult = Vec::with_capacity(nm);
        for _ in 0..nm {
            mult.push(dec.get_u32()?);
        }
        let mult_groups = dec.get_usize()?;
        let mult_total = dec.get_usize()?;
        let groups_census = mult.iter().filter(|&&m| m != 0).count();
        let total_census: usize = mult.iter().map(|&m| m as usize).sum();
        if mult_groups != groups_census || mult_total != total_census {
            return Err(CodecError::Invalid(format!(
                "mult censuses ({mult_groups}, {mult_total}) disagree with slab \
                 ({groups_census}, {total_census})"
            )));
        }
        self.counters = counters;
        self.nonzero_slots = nonzero_slots;
        self.live_nodes = live_nodes;
        self.d1 = d1;
        self.d2 = d2;
        self.d2_count = d2_count;
        self.mult = mult;
        self.mult_groups = mult_groups;
        self.mult_total = mult_total;
        Ok(())
    }
}
