//! DCS invariant auditing (see `tcsm_graph::audit` for the level contract
//! and the violation catalogue).
//!
//! The Cheap tier checks every census the DCS maintains against the slab
//! it summarizes, plus the candidacy subset laws the matcher relies on
//! (`d2 ⊆ d1 ⊆ …` and `d2 ⊆ label_ok` — the precondition behind the
//! matcher's label-free candidate iteration). The Deep tier recomputes
//! `d1`/`d2` as a fixpoint from the multiplicity index and recounts every
//! support counter from the window's neighbourhood lists — the invariant
//! the incremental `DCSInsertion`/`DCSDeletion` worklist must preserve.

use crate::node::Dcs;
use tcsm_graph::{
    AuditLevel, AuditViolation, FxHashMap, PairId, QEdgeId, QueryGraph, VertexId, WindowGraph,
};

impl Dcs {
    /// Appends this DCS's invariant violations to `out`.
    ///
    /// * **Cheap**: `d2_count` equals the `d2` popcount; `d2 ⊆ d1` and
    ///   `d2 ⊆ label_ok`; `live_nodes` equals the number of `(u, v)` nodes
    ///   with a nonzero slot census; each `nonzero_slots[u, v]` equals its
    ///   counter row's actual nonzero count; `mult_groups`/`mult_total`
    ///   equal the multiplicity slab's nonzero-entry count and sum.
    /// * **Deep**: additionally recomputes `d1` (topological fixpoint over
    ///   the multiplicity index) and `d2` (reverse order), compares every
    ///   bit, and recounts every `n1`/`n2` support counter from the
    ///   window's neighbour lists under the fixpoint candidacies.
    pub fn audit(
        &self,
        q: &QueryGraph,
        g: &WindowGraph,
        level: AuditLevel,
        out: &mut Vec<AuditViolation>,
    ) {
        if !level.enabled() {
            return;
        }
        let n = self.n;
        let nq = self.dag.num_vertices();
        if self.d2_count != self.d2.count_ones() {
            out.push(AuditViolation::new(
                "dcs-d2-census",
                format!(
                    "d2_count {} vs bitmap popcount {}",
                    self.d2_count,
                    self.d2.count_ones()
                ),
            ));
        }
        for (i, (&w2, (&w1, &wl))) in self
            .d2
            .words()
            .iter()
            .zip(self.d1.words().iter().zip(self.label_ok.words()))
            .enumerate()
        {
            if w2 & !w1 != 0 {
                let bit = i * 64 + (w2 & !w1).trailing_zeros() as usize;
                out.push(AuditViolation::new(
                    "dcs-d2-outside-d1",
                    format!("d2 set without d1 at (u{}, v{})", bit / n, bit % n),
                ));
            }
            if w2 & !wl != 0 {
                let bit = i * 64 + (w2 & !wl).trailing_zeros() as usize;
                out.push(AuditViolation::new(
                    "dcs-d2-outside-label",
                    format!(
                        "d2 set where labels mismatch at (u{}, v{})",
                        bit / n,
                        bit % n
                    ),
                ));
            }
        }
        let mut live = 0usize;
        for u in 0..nq {
            let w = self.width[u] as usize;
            for v in 0..n {
                let row = self.row(u, v as VertexId);
                let nonzero = self.counters[row..row + w]
                    .iter()
                    .filter(|&&c| c > 0)
                    .count();
                let stored = self.nonzero_slots[u * n + v] as usize;
                if stored != nonzero {
                    out.push(AuditViolation::new(
                        "dcs-slot-census",
                        format!("nonzero_slots {stored} vs counter row {nonzero} at (u{u}, v{v})"),
                    ));
                }
                if nonzero > 0 {
                    live += 1;
                }
            }
        }
        if self.live_nodes != live {
            out.push(AuditViolation::new(
                "dcs-live-census",
                format!("live_nodes {} vs slab recount {live}", self.live_nodes),
            ));
        }
        let groups = self.mult.iter().filter(|&&m| m != 0).count();
        let total: usize = self.mult.iter().map(|&m| m as usize).sum();
        if self.mult_groups != groups || self.mult_total != total {
            out.push(AuditViolation::new(
                "dcs-mult-census",
                format!(
                    "mult censuses ({}, {}) vs slab recount ({groups}, {total})",
                    self.mult_groups, self.mult_total
                ),
            ));
        }
        if !level.deep() {
            return;
        }
        // Fixpoint d1 in topological order, then d2 in reverse order — the
        // ground truth the worklist maintenance must track.
        let mut d1 = vec![vec![false; n]; nq];
        for &u in self.dag.topo_order() {
            for v in 0..n as VertexId {
                if q.label(u) != g.label(v) {
                    continue;
                }
                d1[u][v as usize] = self.dag.parents(u).iter().all(|&(e, up)| {
                    (0..n as VertexId).any(|vp| self.mult(g, e, vp, v) > 0 && d1[up][vp as usize])
                });
            }
        }
        let mut d2 = vec![vec![false; n]; nq];
        for &u in self.dag.topo_order().iter().rev() {
            for v in 0..n as VertexId {
                if !d1[u][v as usize] {
                    continue;
                }
                d2[u][v as usize] = self.dag.children(u).iter().all(|&(e, uc)| {
                    (0..n as VertexId).any(|vc| self.mult(g, e, v, vc) > 0 && d2[uc][vc as usize])
                });
            }
        }
        for u in 0..nq {
            for v in 0..n as VertexId {
                if self.d1(u, v) != d1[u][v as usize] {
                    out.push(AuditViolation::new(
                        "dcs-d1",
                        format!(
                            "stored d1 {} vs fixpoint {} at (u{u}, v{v})",
                            self.d1(u, v),
                            d1[u][v as usize]
                        ),
                    ));
                }
                if self.d2(u, v) != d2[u][v as usize] {
                    out.push(AuditViolation::new(
                        "dcs-d2",
                        format!(
                            "stored d2 {} vs fixpoint {} at (u{u}, v{v})",
                            self.d2(u, v),
                            d2[u][v as usize]
                        ),
                    ));
                }
            }
        }
        // Counter recount: each n1 slot counts the distinct parent images
        // connected by an alive DCS edge group whose parent node holds
        // d1; each n2 slot the distinct child images holding d2.
        for u in 0..nq {
            for v in 0..n as VertexId {
                let row = self.row(u, v);
                for (i, &(e, up)) in self.dag.parents(u).iter().enumerate() {
                    let expected = g
                        .neighbors_with_ids(v)
                        .filter(|&(vp, pid, _)| {
                            self.mult_at(pid, e, vp < v) > 0 && d1[up][vp as usize]
                        })
                        .count() as u32;
                    let stored = self.counters[row + i];
                    if stored != expected {
                        out.push(AuditViolation::new(
                            "dcs-counter",
                            format!(
                                "n1 slot {i} (edge {e}) stored {stored} vs recount {expected} \
                                 at (u{u}, v{v})"
                            ),
                        ));
                    }
                }
                let np = self.np[u] as usize;
                for (i, &(e, uc)) in self.dag.children(u).iter().enumerate() {
                    let expected = g
                        .neighbors_with_ids(v)
                        .filter(|&(vc, pid, _)| {
                            self.mult_at(pid, e, v < vc) > 0 && d2[uc][vc as usize]
                        })
                        .count() as u32;
                    let stored = self.counters[row + np + i];
                    if stored != expected {
                        out.push(AuditViolation::new(
                            "dcs-counter",
                            format!(
                                "n2 slot {i} (edge {e}) stored {stored} vs recount {expected} \
                                 at (u{u}, v{v})"
                            ),
                        ));
                    }
                }
            }
        }
    }

    /// Compares the multiplicity slab against an expected recount keyed
    /// `(pair bucket, query edge, tail < head)` — built by the runtime
    /// audit from the alive window and the bank membership (the one
    /// cross-crate invariant neither crate can check alone). Slab entries
    /// absent from the map must be zero; map entries beyond the slab are
    /// pairs the slab never admitted.
    #[doc(hidden)]
    pub fn audit_mult(
        &self,
        expected: &FxHashMap<(PairId, QEdgeId, bool), u32>,
        out: &mut Vec<AuditViolation>,
    ) {
        for (idx, &stored) in self.mult.iter().enumerate() {
            let pair = (idx / self.m2) as PairId;
            let rem = idx % self.m2;
            let (e, orient) = (rem / 2, rem % 2 == 1);
            let want = expected.get(&(pair, e, orient)).copied().unwrap_or(0);
            if stored != want {
                out.push(AuditViolation::new(
                    "dcs-mult",
                    format!(
                        "mult stored {stored} vs window recount {want} \
                         at (pair {pair}, edge {e}, orient {orient})"
                    ),
                ));
            }
        }
        for (&(pair, e, orient), &want) in expected {
            let idx = Dcs::mult_idx(pair, self.m2, e, orient);
            if idx >= self.mult.len() && want > 0 {
                out.push(AuditViolation::new(
                    "dcs-mult",
                    format!(
                        "window recount {want} at (pair {pair}, edge {e}, orient {orient}) \
                         beyond the multiplicity slab"
                    ),
                ));
            }
        }
    }

    /// Corruption hook for the negative-test corpus: bumps one support
    /// counter without the matching slot-census/worklist bookkeeping.
    /// `slot` indexes the full `n1 ++ n2` row (must be `< width[u]`).
    #[doc(hidden)]
    pub fn corrupt_counter(&mut self, u: usize, v: VertexId, slot: usize) {
        assert!(slot < self.width[u] as usize, "slot beyond counter row");
        let row = self.row(u, v);
        self.counters[row + slot] += 1;
    }

    /// Corruption hook for the negative-test corpus: toggles one `d2` bit
    /// without updating `d2_count` or propagating support deltas.
    #[doc(hidden)]
    pub fn corrupt_d2(&mut self, u: usize, v: VertexId) {
        let uv = u * self.n + v as usize;
        let was = self.d2.get(uv);
        self.d2.replace(uv, !was);
    }
}
