//! # tcsm-dcs
//!
//! The **dynamic candidate space** (DCS) auxiliary structure, rebuilt from
//! SymBi (VLDB'21) as the paper's Algorithm 1 uses it (§III, "Updating the
//! data structures").
//!
//! The DCS stores, for every label-compatible `(query vertex u, data vertex
//! v)` pair, two boolean candidacies derived from weak embeddings of the
//! query DAG:
//!
//! * `d1[u, v]` — every parent `u_p` of `u` in `ˆq` has some DCS edge
//!   `((u_p, u), (v_p, v))`, with `d1[u_p, v_p]` (ancestor-side support);
//! * `d2[u, v]` — `d1[u, v]` holds and every child `u_c` has some DCS edge
//!   `((u, u_c), (v, v_c))` with `d2[u_c, v_c]` (descendant-side support).
//!
//! Where SymBi admits every label-matching edge pair as a DCS edge, TCM only
//! admits pairs that survived the TC-matchable-edge filter (`E⁺/E⁻_DCS` from
//! [`tcsm_filter::FilterBank`]), so both the update cost and the surviving
//! candidates shrink (Table V measures exactly these two quantities).
//!
//! Updates are counter-based and incremental: each event's pair deltas are
//! monotone (arrivals only add pairs, expirations only remove them), so the
//! boolean flips propagate once per node per event.
//!
//! # Memory model
//!
//! All per-`(u, v)` state is **dense and index-addressed** (see
//! [`node`](crate::Dcs)): the support-counter slab, the `d1`/`d2` bitmaps
//! and the label-compatibility bitmap are `O(|V(q)|·|V(g)|)`-shaped and
//! allocated once when the engine is constructed. The multiplicity index is
//! keyed by the window graph's stable pair-bucket ids and grows amortized
//! with the peak number of concurrently alive vertex pairs, after which it
//! is reused. Per-event work therefore allocates nothing proportional to
//! the table sizes and performs no hashing; window expiration zeroes slots
//! in place (`num_nodes()` returns to 0 on a drained stream — the
//! regression tests in `tests/dense_oracle.rs` pin this).

mod audit;
mod node;
mod update;

pub use node::Dcs;
