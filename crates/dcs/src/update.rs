//! Incremental DCS maintenance (`DCSInsertion` / `DCSDeletion` of
//! Algorithm 1, following SymBi's counter scheme) over the dense slabs.

use crate::node::Dcs;
use tcsm_filter::DcsDelta;
use tcsm_graph::{QEdgeId, QVertexId, QueryGraph, TemporalEdge, VertexId, WindowGraph};

/// A pending counter adjustment.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Work {
    /// `n1[u, v][slot] += delta` (support from a parent-side change).
    N1 {
        u: QVertexId,
        v: VertexId,
        slot: usize,
        delta: i32,
    },
    /// `n2[u, v][slot] += delta` (support from a child-side change).
    N2 {
        u: QVertexId,
        v: VertexId,
        slot: usize,
        delta: i32,
    },
}

impl Dcs {
    /// Applies one event's or one delta batch's DCS edge deltas (all
    /// additions or all removals — homogeneous, because arrival events/
    /// batches only add pairs and expiration ones only remove them).
    ///
    /// `g` is the window graph *after* the whole event/batch (never
    /// half-applied); `lookup` resolves pair keys to edge records (needed
    /// to place each pair's endpoint images).
    pub fn apply<'a>(
        &mut self,
        q: &QueryGraph,
        g: &WindowGraph,
        lookup: impl Fn(tcsm_graph::EdgeKey) -> &'a TemporalEdge,
        deltas: &[DcsDelta],
    ) {
        debug_assert!(
            deltas.windows(2).all(|w| w[0].added == w[1].added),
            "mixed add/remove deltas in one apply (half-applied batch?)"
        );
        // Reused across events: the worklist allocation is engine-lifetime.
        let mut work = std::mem::take(&mut self.work_scratch);
        debug_assert!(work.is_empty());
        for d in deltas {
            let e = d.pair.qedge;
            let sigma = lookup(d.pair.key);
            let tail = self.dag.tail(e);
            let head = self.dag.head(e);
            let v_tail = d.pair.image_of(q, sigma, tail);
            let v_head = d.pair.image_of(q, sigma, head);
            // The window keeps an expiring pair's bucket id resolvable until
            // the next mutation, so removal deltas still index directly.
            let Some(pid) = g.pair_id(v_tail, v_head) else {
                debug_assert!(false, "delta for a pair with no bucket");
                continue;
            };
            let idx = Dcs::mult_idx(pid, self.m2, e, v_tail < v_head);
            if d.added {
                if idx >= self.mult.len() {
                    // Amortized growth with the pair slab; reused thereafter.
                    self.mult.resize((pid as usize + 1) * self.m2, 0);
                }
                let m = &mut self.mult[idx];
                *m += 1;
                self.mult_total += 1;
                if *m == 1 {
                    self.mult_groups += 1;
                    self.pair_edge_transition(e, v_tail, v_head, 1, &mut work);
                }
            } else {
                let Some(m) = self.mult.get_mut(idx).filter(|m| **m > 0) else {
                    // A malformed stream (removal of an untracked pair) must
                    // degrade, not abort the engine.
                    debug_assert!(false, "removing pair with zero multiplicity");
                    continue;
                };
                *m -= 1;
                self.mult_total -= 1;
                if *m == 0 {
                    self.mult_groups -= 1;
                    self.pair_edge_transition(e, v_tail, v_head, -1, &mut work);
                }
            }
        }
        work = self.drain(g, work);
        self.work_scratch = work;
    }

    /// A DCS edge group `(e, v_tail, v_head)` appeared (`delta = 1`) or
    /// disappeared (`delta = -1`); seed the counter adjustments it implies.
    fn pair_edge_transition(
        &mut self,
        e: QEdgeId,
        v_tail: VertexId,
        v_head: VertexId,
        delta: i32,
        work: &mut Vec<Work>,
    ) {
        let tail = self.dag.tail(e);
        let head = self.dag.head(e);
        // Parent-side support for the head node.
        if self.d1(tail, v_tail) {
            work.push(Work::N1 {
                u: head,
                v: v_head,
                slot: self.parent_slot[e],
                delta,
            });
        }
        // Child-side support for the tail node.
        if self.d2(head, v_head) {
            work.push(Work::N2 {
                u: tail,
                v: v_tail,
                slot: self.child_slot[e],
                delta,
            });
        }
    }

    /// Drains the worklist; returns the (now empty) buffer for reuse.
    fn drain(&mut self, g: &WindowGraph, mut work: Vec<Work>) -> Vec<Work> {
        while let Some(w) = work.pop() {
            let (u, v, slot) = match w {
                Work::N1 { u, v, slot, .. } => (u, v, slot),
                Work::N2 { u, v, slot, .. } => (u, v, self.np[u] as usize + slot),
            };
            let delta = match w {
                Work::N1 { delta, .. } | Work::N2 { delta, .. } => delta,
            };
            let ci = self.row(u, v) + slot;
            let before = self.counters[ci];
            let after = (before as i64 + delta as i64) as u32;
            self.counters[ci] = after;
            // Track node occupancy so expiration provably empties the slab.
            let uv = u * self.n + v as usize;
            if before == 0 && after > 0 {
                self.nonzero_slots[uv] += 1;
                if self.nonzero_slots[uv] == 1 {
                    self.live_nodes += 1;
                }
            } else if before > 0 && after == 0 {
                self.nonzero_slots[uv] -= 1;
                if self.nonzero_slots[uv] == 0 {
                    self.live_nodes -= 1;
                }
            }
            if (before == 0) != (after == 0) {
                self.refresh_node(g, u, v, &mut work);
            }
        }
        work
    }

    /// True when every `n1` counter of `(u, v)` is positive.
    #[inline]
    fn n1_sat(&self, u: QVertexId, v: VertexId) -> bool {
        let row = self.row(u, v);
        self.counters[row..row + self.np[u] as usize]
            .iter()
            .all(|&c| c > 0)
    }

    /// True when every `n2` counter of `(u, v)` is positive.
    #[inline]
    fn n2_sat(&self, u: QVertexId, v: VertexId) -> bool {
        let row = self.row(u, v);
        self.counters[row + self.np[u] as usize..row + self.width[u] as usize]
            .iter()
            .all(|&c| c > 0)
    }

    /// Recomputes `d1`/`d2` of a node from its counters; on flips, seeds the
    /// induced adjustments in neighbours.
    fn refresh_node(&mut self, g: &WindowGraph, u: QVertexId, v: VertexId, work: &mut Vec<Work>) {
        let uv = u * self.n + v as usize;
        let label_ok = self.label_ok.get(uv);
        let new_d1 = label_ok && self.n1_sat(u, v);
        let new_d2 = new_d1 && self.n2_sat(u, v);
        let old_d1 = self.d1.replace(uv, new_d1);
        let old_d2 = self.d2.replace(uv, new_d2);
        if new_d2 != old_d2 {
            if new_d2 {
                self.d2_count += 1;
            } else {
                self.d2_count -= 1;
            }
        }
        if new_d1 != old_d1 {
            // d1[u, v] supports n1 of every child image connected by an
            // alive DCS edge group.
            let delta = if new_d1 { 1 } else { -1 };
            for &(e, uc) in self.dag.children(u) {
                let slot = self.parent_slot[e];
                for (vc, pid, _) in g.neighbors_with_ids(v) {
                    if self.mult_at(pid, e, v < vc) > 0 {
                        work.push(Work::N1 {
                            u: uc,
                            v: vc,
                            slot,
                            delta,
                        });
                    }
                }
            }
        }
        if new_d2 != old_d2 {
            // d2[u, v] supports n2 of every parent image connected by an
            // alive DCS edge group.
            let delta = if new_d2 { 1 } else { -1 };
            for &(e, up) in self.dag.parents(u) {
                let slot = self.child_slot[e];
                for (vp, pid, _) in g.neighbors_with_ids(v) {
                    if self.mult_at(pid, e, vp < v) > 0 {
                        work.push(Work::N2 {
                            u: up,
                            v: vp,
                            slot,
                            delta,
                        });
                    }
                }
            }
        }
    }

    /// From-scratch recomputation of the incremental state — the
    /// historical panicking wrapper over [`Dcs::audit`] at
    /// [`tcsm_graph::AuditLevel::Deep`], kept for tests.
    #[doc(hidden)]
    pub fn check_consistency(&self, q: &QueryGraph, g: &WindowGraph) {
        let mut out = Vec::new();
        self.audit(q, g, tcsm_graph::AuditLevel::Deep, &mut out);
        tcsm_graph::audit::expect_clean("Dcs", &out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsm_dag::build_best_dag;
    use tcsm_filter::{FilterBank, FilterMode};
    use tcsm_graph::query::paper_running_example;
    use tcsm_graph::{EventKind, EventQueue, TemporalGraphBuilder, WindowGraph};

    fn figure_2a() -> tcsm_graph::TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        let labels = [0u32, 1, 5, 2, 3, 5, 4];
        let v: Vec<_> = labels.iter().map(|&l| b.vertex(l)).collect();
        b.edge(v[0], v[1], 1);
        b.edge(v[3], v[4], 2);
        b.edge(v[3], v[4], 3);
        b.edge(v[0], v[3], 4);
        b.edge(v[3], v[6], 5);
        b.edge(v[0], v[1], 6);
        b.edge(v[3], v[6], 7);
        b.edge(v[0], v[3], 8);
        b.edge(v[4], v[6], 9);
        b.edge(v[4], v[6], 10);
        b.edge(v[1], v[4], 11);
        b.edge(v[0], v[3], 12);
        b.edge(v[3], v[4], 13);
        b.edge(v[3], v[6], 14);
        b.build().unwrap()
    }

    fn run_stream(mode: FilterMode, delta: i64) -> (usize, usize) {
        let q = paper_running_example();
        let dag = build_best_dag(&q);
        let g = figure_2a();
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        let mut bank = FilterBank::new(&q, &dag, mode, &w);
        let mut dcs = Dcs::new(dag.clone(), &q, &w);
        let mut deltas = Vec::new();
        let mut peak_edges = 0;
        let mut peak_vertices = 0;
        let queue = EventQueue::new(&g, delta).unwrap();
        for ev in queue.iter() {
            let edge = *g.edge(ev.edge);
            deltas.clear();
            match ev.kind {
                EventKind::Insert => {
                    w.insert(&edge);
                    bank.on_insert(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                }
                EventKind::Delete => {
                    w.remove(&edge);
                    bank.on_delete(&q, &w, &edge, |k| g.edge(k), &mut deltas);
                }
            }
            dcs.apply(&q, &w, |k| g.edge(k), &deltas);
            dcs.check_consistency(&q, &w);
            peak_edges = peak_edges.max(dcs.num_edges());
            peak_vertices = peak_vertices.max(dcs.num_candidate_vertices());
        }
        assert_eq!(dcs.num_edges(), 0);
        assert_eq!(dcs.num_candidate_vertices(), 0);
        assert_eq!(dcs.num_nodes(), 0, "all node states zeroed after drain");
        (peak_edges, peak_vertices)
    }

    #[test]
    fn incremental_matches_scratch_tc_mode() {
        let (edges, vertices) = run_stream(FilterMode::Tc, 10);
        assert!(edges > 0);
        assert!(vertices > 0);
    }

    #[test]
    fn incremental_matches_scratch_label_only_mode() {
        let (edges, vertices) = run_stream(FilterMode::LabelOnly, 10);
        assert!(edges > 0);
        assert!(vertices > 0);
    }

    #[test]
    fn tc_filter_shrinks_dcs() {
        // Table V's premise: with the TC-matchable edge filter both the DCS
        // edge count and the surviving vertex count shrink (or tie).
        let (e_tc, v_tc) = run_stream(FilterMode::Tc, 14);
        let (e_lo, v_lo) = run_stream(FilterMode::LabelOnly, 14);
        assert!(e_tc < e_lo, "tc {e_tc} !< label-only {e_lo}");
        assert!(v_tc <= v_lo);
    }

    #[test]
    fn full_graph_d2_matches_expected_candidates() {
        // With all 14 edges alive and label-only filtering, d2 should accept
        // exactly the label-correct vertex pairs that have full support:
        // u1↦v1, u2↦v2, u3↦v4, u4↦v5, u5↦v7.
        let q = paper_running_example();
        let dag = build_best_dag(&q);
        let g = figure_2a();
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        let mut bank = FilterBank::new(&q, &dag, FilterMode::LabelOnly, &w);
        let mut dcs = Dcs::new(dag.clone(), &q, &w);
        let mut deltas = Vec::new();
        for e in g.edges() {
            w.insert(e);
            deltas.clear();
            bank.on_insert(&q, &w, e, |k| g.edge(k), &mut deltas);
            dcs.apply(&q, &w, |k| g.edge(k), &deltas);
        }
        let expect = [(0usize, 0u32), (1, 1), (2, 3), (3, 4), (4, 6)];
        for &(u, v) in &expect {
            assert!(dcs.d2(u, v), "expected d2 at (u{u}, v{v})");
        }
        assert_eq!(dcs.num_candidate_vertices(), expect.len());
    }

    #[test]
    fn malformed_removal_is_a_release_noop() {
        // Satellite regression: deleting a pair that was never tracked must
        // not abort in release builds (debug builds assert).
        let q = paper_running_example();
        let dag = build_best_dag(&q);
        let g = figure_2a();
        let mut w = WindowGraph::new(g.labels().to_vec(), false);
        let mut dcs = Dcs::new(dag.clone(), &q, &w);
        let sigma = g.edges()[0];
        w.insert(&sigma);
        let bogus = [tcsm_filter::DcsDelta {
            pair: tcsm_filter::CandPair {
                qedge: 0,
                key: sigma.key,
                a_to_src: true,
            },
            added: false,
        }];
        if cfg!(debug_assertions) {
            let got = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                dcs.apply(&q, &w, |k| g.edge(k), &bogus);
            }));
            assert!(got.is_err(), "debug builds keep the assertion");
        } else {
            dcs.apply(&q, &w, |k| g.edge(k), &bogus);
            assert_eq!(dcs.num_edges(), 0);
            dcs.check_consistency(&q, &w);
        }
    }
}
