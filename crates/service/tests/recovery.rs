//! Kill-and-resume differential suite plus the corrupt-snapshot corpus.
//!
//! The differential pins the checkpoint contract: a service checkpointed
//! after `k` steps, dropped, and restored must deliver the **byte-identical
//! match-stream suffix** of an uninterrupted run — across shard counts,
//! thread widths, both stream regimes, synthetic workloads, the mini-SNAP
//! fixture, and a Table III bursty profile.
//!
//! The corpus pins the robustness contract: every corruption mode
//! (truncation at any point, flipped bytes, wrong magic/version/kind,
//! section-length lies with a forged checksum, mixed checkpoint
//! generations, missing files) surfaces as a precise typed error under
//! [`RecoveryPolicy::Strict`] and recovers transparently under
//! [`RecoveryPolicy::Rebuild`] — and never, ever panics.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use tcsm_core::{EngineConfig, MatchEvent};
use tcsm_graph::io::{parse_snap, SnapOptions};
use tcsm_graph::{QueryGraph, QueryGraphBuilder, TemporalGraph, TemporalGraphBuilder};
use tcsm_service::{
    CollectedMatches, CollectingSink, MatchService, QueryId, RecoveryPolicy, ServiceConfig,
    ShardPolicy, SnapshotError,
};

const MINI_SNAP: &str = include_str!("../../datasets/fixtures/mini-snap.txt");

/// A fresh scratch directory under the system temp dir (no tempfile crate
/// in this environment); removed and recreated per call.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tcsm-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn workload() -> (Vec<QueryGraph>, TemporalGraph) {
    let mut gb = TemporalGraphBuilder::new();
    let v = gb.vertices(5, 0);
    for t in 1..=30i64 {
        gb.edge(v + (t % 5) as u32, v + ((t + 1) % 5) as u32, t);
    }
    let g = gb.build().unwrap();
    let queries = (2..=4usize)
        .map(|k| {
            let mut qb = QueryGraphBuilder::new();
            let vs: Vec<_> = (0..=k).map(|_| qb.vertex(0)).collect();
            let mut prev = None;
            for i in 0..k {
                let e = qb.edge(vs[i], vs[i + 1]);
                if let Some(p) = prev {
                    qb.precede(p, e);
                }
                prev = Some(e);
            }
            qb.build().unwrap()
        })
        .collect();
    (queries, g)
}

fn serial_cfg() -> EngineConfig {
    EngineConfig {
        threads: 0,
        batching: false,
        directed: false,
        ..EngineConfig::default()
    }
}

fn svc_cfg(shards: usize, threads: usize, batching: bool, directed: bool) -> ServiceConfig {
    ServiceConfig {
        shards,
        policy: ShardPolicy::LabelLocality,
        threads,
        batching,
        directed,
    }
}

/// Runs the full stream uninterrupted, returning each query's deliveries
/// split at step `kill_at` (prefix, suffix).
fn uninterrupted(
    g: &TemporalGraph,
    delta: i64,
    queries: &[QueryGraph],
    cfg: ServiceConfig,
    kill_at: usize,
) -> Vec<(QueryId, Vec<MatchEvent>, Vec<MatchEvent>)> {
    let ecfg = EngineConfig {
        directed: cfg.directed,
        ..serial_cfg()
    };
    let mut svc = MatchService::new(g, delta, cfg).unwrap();
    let handles: Vec<(QueryId, CollectedMatches)> = queries
        .iter()
        .map(|q| {
            let (sink, got) = CollectingSink::new();
            (svc.add_query(q, ecfg, Box::new(sink)), got)
        })
        .collect();
    for _ in 0..kill_at {
        // Batching merges deltas, so a nominal kill point may land past the
        // end; both runs clamp identically, keeping the differential valid.
        if !svc.step() {
            break;
        }
    }
    let prefixes: Vec<Vec<MatchEvent>> = handles.iter().map(|(_, got)| got.take()).collect();
    svc.run();
    handles
        .into_iter()
        .zip(prefixes)
        .map(|((id, got), prefix)| (id, prefix, got.take()))
        .collect()
}

/// Runs to `kill_at`, checkpoints into `dir`, and drops the service —
/// the "killed" process. Returns the admitted ids in admission order.
fn run_and_checkpoint(
    g: &TemporalGraph,
    delta: i64,
    queries: &[QueryGraph],
    cfg: ServiceConfig,
    kill_at: usize,
    dir: &Path,
) -> Vec<QueryId> {
    let ecfg = EngineConfig {
        directed: cfg.directed,
        ..serial_cfg()
    };
    let mut svc = MatchService::new(g, delta, cfg).unwrap();
    let ids: Vec<QueryId> = queries
        .iter()
        .map(|q| {
            let (sink, _got) = CollectingSink::new();
            svc.add_query(q, ecfg, Box::new(sink))
        })
        .collect();
    for _ in 0..kill_at {
        if !svc.step() {
            break;
        }
    }
    svc.checkpoint(dir).expect("checkpoint succeeds");
    ids
}

/// Restores from `dir` and drains the stream; returns per-query deliveries.
fn resume(
    g: &TemporalGraph,
    dir: &Path,
    policy: RecoveryPolicy,
) -> HashMap<QueryId, Vec<MatchEvent>> {
    let mut sinks: HashMap<QueryId, CollectedMatches> = HashMap::new();
    let mut svc = MatchService::restore(g, dir, policy, |qid| {
        let (sink, got) = CollectingSink::new();
        sinks.insert(qid, got);
        Box::new(sink)
    })
    .expect("restore succeeds");
    svc.run();
    sinks
        .into_iter()
        .map(|(id, got)| (id, got.take()))
        .collect()
}

/// The tentpole differential: checkpoint at several kill points across
/// shards × threads × regimes; the resumed suffix must be byte-identical.
fn kill_and_resume_case(
    g: &TemporalGraph,
    delta: i64,
    queries: &[QueryGraph],
    cfg: ServiceConfig,
    tag: &str,
) {
    let total = 2 * g.edges().len();
    for kill_at in [0, 1, total / 3, total / 2, total.saturating_sub(1)] {
        let split = uninterrupted(g, delta, queries, cfg, kill_at);
        let dir = scratch(&format!("{tag}-{kill_at}"));
        run_and_checkpoint(g, delta, queries, cfg, kill_at, &dir);
        let resumed = resume(g, &dir, RecoveryPolicy::Strict);
        assert_eq!(resumed.len(), queries.len());
        for (id, _prefix, suffix) in &split {
            assert_eq!(
                &resumed[id], suffix,
                "resumed stream diverged for {id} (kill at {kill_at}, {tag})"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn kill_and_resume_matrix() {
    let (queries, g) = workload();
    for shards in [1usize, 2] {
        for threads in [0usize, 2] {
            for batching in [false, true] {
                kill_and_resume_case(
                    &g,
                    10,
                    &queries,
                    svc_cfg(shards, threads, batching, false),
                    &format!("matrix-s{shards}-t{threads}-b{}", batching as u8),
                );
            }
        }
    }
}

#[test]
fn kill_and_resume_mini_snap() {
    let g = parse_snap(MINI_SNAP, &SnapOptions::default()).expect("fixture parses");
    let queries = {
        let mut qb = QueryGraphBuilder::new();
        let (a, b, c) = (qb.vertex(0), qb.vertex(0), qb.vertex(0));
        let (e0, e1) = (qb.edge(a, b), qb.edge(b, c));
        qb.precede(e0, e1);
        vec![qb.build().unwrap()]
    };
    let span = (g.edges().last().unwrap().time.raw() - g.edges()[0].time.raw()).max(1);
    kill_and_resume_case(
        &g,
        span / 4,
        &queries,
        svc_cfg(2, 2, true, true),
        "mini-snap",
    );
}

#[test]
fn kill_and_resume_bursty_profile() {
    // A Table III profile with bursty timestamps, so batched deltas span
    // many events and the checkpoint lands on real batch boundaries.
    let g = tcsm_datasets::profiles::SUPERUSER.generate_bursty(7, 0.05, 8);
    let (queries, _) = workload();
    let delta = tcsm_datasets::ingest::windows_for_stream(&g)[2];
    kill_and_resume_case(
        &g,
        delta,
        &queries[..2],
        svc_cfg(2, 0, true, true),
        "bursty",
    );
}

#[test]
fn restored_stats_match_uninterrupted() {
    let (queries, g) = workload();
    let cfg = svc_cfg(2, 0, false, false);
    let kill_at = 20;
    // Uninterrupted final stats.
    let mut svc = MatchService::new(&g, 10, cfg).unwrap();
    let ids: Vec<QueryId> = queries
        .iter()
        .map(|q| svc.add_query(q, serial_cfg(), Box::new(CollectingSink::new().0)))
        .collect();
    svc.run();
    let expect: Vec<_> = ids
        .iter()
        .map(|&id| svc.query_stats(id).unwrap().semantic())
        .collect();
    let expect_svc = svc.stats();
    // Killed + resumed final stats.
    let dir = scratch("stats");
    run_and_checkpoint(&g, 10, &queries, cfg, kill_at, &dir);
    let mut svc = MatchService::restore(&g, &dir, RecoveryPolicy::Strict, |_| {
        Box::new(CollectingSink::new().0)
    })
    .unwrap();
    svc.run();
    for (&id, want) in ids.iter().zip(&expect) {
        assert_eq!(
            &svc.query_stats(id).unwrap().semantic(),
            want,
            "per-query stats diverged after restore"
        );
    }
    let got_svc = svc.stats();
    assert_eq!(got_svc.events, expect_svc.events);
    assert_eq!(got_svc.admitted, expect_svc.admitted);
    assert_eq!(got_svc.resident_queries, expect_svc.resident_queries);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_after_retirement_restores_retired_stats() {
    let (queries, g) = workload();
    let cfg = svc_cfg(2, 0, false, false);
    let mut svc = MatchService::new(&g, 10, cfg).unwrap();
    let ids: Vec<QueryId> = queries
        .iter()
        .map(|q| svc.add_query(q, serial_cfg(), Box::new(CollectingSink::new().0)))
        .collect();
    for _ in 0..20 {
        svc.step();
    }
    let retired_stats = svc.remove_query(ids[0]).unwrap();
    let dir = scratch("retired");
    svc.checkpoint(&dir).unwrap();
    let svc = MatchService::restore(&g, &dir, RecoveryPolicy::Strict, |_| {
        Box::new(CollectingSink::new().0)
    })
    .unwrap();
    assert_eq!(svc.query_stats(ids[0]), Some(&retired_stats));
    assert_eq!(svc.stats().retired, 1);
    assert!(svc.shard_of(ids[0]).is_none(), "retired query not resident");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- corrupt-snapshot corpus -------------------------------------------

/// Builds a reference checkpoint and returns (graph, queries, dir,
/// per-query uninterrupted suffixes at the kill point).
fn corpus_checkpoint(tag: &str) -> (TemporalGraph, Vec<QueryGraph>, PathBuf, usize) {
    let (queries, g) = workload();
    let dir = scratch(tag);
    let kill_at = 20;
    run_and_checkpoint(&g, 10, &queries, svc_cfg(2, 0, false, false), kill_at, &dir);
    (g, queries, dir, kill_at)
}

fn strict_restore_err(g: &TemporalGraph, dir: &Path) -> SnapshotError {
    match MatchService::restore(g, dir, RecoveryPolicy::Strict, |_| {
        Box::new(CollectingSink::new().0)
    }) {
        Ok(_) => panic!("corrupt checkpoint restored under Strict"),
        Err(e) => e,
    }
}

/// Asserts Rebuild restores and the resumed stream equals the
/// uninterrupted suffix (shard corruption only — manifest corruption is
/// fatal under both policies).
fn rebuild_recovers(
    g: &TemporalGraph,
    delta: i64,
    queries: &[QueryGraph],
    cfg: ServiceConfig,
    kill_at: usize,
    dir: &Path,
    what: &str,
) {
    let split = uninterrupted(g, delta, queries, cfg, kill_at);
    let resumed = resume(g, dir, RecoveryPolicy::Rebuild);
    for (id, _prefix, suffix) in &split {
        assert_eq!(
            &resumed[id], suffix,
            "rebuild recovery diverged for {id} after {what}"
        );
    }
}

/// Every prefix truncation of every snapshot file must surface as a typed
/// error under Strict; shard truncations must recover under Rebuild.
#[test]
fn corpus_truncations() {
    let (g, queries, dir, kill_at) = corpus_checkpoint("trunc");
    let files = ["manifest.tcsm", "shard-0.tcsm", "shard-1.tcsm"];
    for file in files {
        let path = dir.join(file);
        let whole = std::fs::read(&path).unwrap();
        for keep in [0, 1, 8, whole.len() / 2, whole.len() - 1] {
            std::fs::write(&path, &whole[..keep]).unwrap();
            let err = strict_restore_err(&g, &dir);
            assert!(
                matches!(err, SnapshotError::Codec { .. }),
                "truncation of {file} to {keep} gave {err}"
            );
            if file != "manifest.tcsm" {
                rebuild_recovers(
                    &g,
                    10,
                    &queries,
                    svc_cfg(2, 0, false, false),
                    kill_at,
                    &dir,
                    &format!("{file} truncated to {keep}"),
                );
            }
        }
        std::fs::write(&path, &whole).unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Single-byte flips anywhere in a frame (header, payload, checksum) are
/// detected; manifest flips are fatal both ways, shard flips rebuild.
#[test]
fn corpus_byte_flips() {
    let (g, queries, dir, kill_at) = corpus_checkpoint("flip");
    for file in ["manifest.tcsm", "shard-0.tcsm"] {
        let path = dir.join(file);
        let whole = std::fs::read(&path).unwrap();
        let step = (whole.len() / 17).max(1);
        for at in (0..whole.len()).step_by(step).chain([whole.len() - 1]) {
            let mut bad = whole.clone();
            bad[at] ^= 0x20;
            std::fs::write(&path, &bad).unwrap();
            let err = strict_restore_err(&g, &dir);
            assert!(
                matches!(
                    err,
                    SnapshotError::Codec { .. } | SnapshotError::Mismatch(_)
                ),
                "flip at {at} of {file} gave {err}"
            );
        }
        std::fs::write(&path, &whole).unwrap();
    }
    // One representative shard flip must also rebuild cleanly.
    let path = dir.join("shard-1.tcsm");
    let whole = std::fs::read(&path).unwrap();
    let mut bad = whole.clone();
    bad[whole.len() / 2] ^= 0xff;
    std::fs::write(&path, &bad).unwrap();
    rebuild_recovers(
        &g,
        10,
        &queries,
        svc_cfg(2, 0, false, false),
        kill_at,
        &dir,
        "shard-1 byte flip",
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Wrong magic / wrong version / wrong frame kind give the precise typed
/// error, not a generic checksum failure.
#[test]
fn corpus_header_lies() {
    let (g, _queries, dir, _) = corpus_checkpoint("header");
    let path = dir.join("manifest.tcsm");
    let whole = std::fs::read(&path).unwrap();

    let mut bad = whole.clone();
    bad[0] = b'X';
    std::fs::write(&path, &bad).unwrap();
    let err = strict_restore_err(&g, &dir);
    assert!(
        matches!(
            &err,
            SnapshotError::Codec {
                source: tcsm_graph::CodecError::BadMagic(_),
                ..
            }
        ),
        "got {err}"
    );

    let mut bad = whole.clone();
    bad[4] = 0x63; // format version 99
    std::fs::write(&path, &bad).unwrap();
    let err = strict_restore_err(&g, &dir);
    assert!(
        matches!(
            &err,
            SnapshotError::Codec {
                source: tcsm_graph::CodecError::UnsupportedVersion(99),
                ..
            }
        ),
        "got {err}"
    );

    // A shard frame stored under the manifest name: wrong kind byte.
    let shard = std::fs::read(dir.join("shard-0.tcsm")).unwrap();
    std::fs::write(&path, &shard).unwrap();
    let err = strict_restore_err(&g, &dir);
    assert!(
        matches!(
            &err,
            SnapshotError::Codec {
                source: tcsm_graph::CodecError::BadKind { .. },
                ..
            }
        ),
        "got {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A section length lie with a **forged (recomputed) checksum** — the
/// checksum cannot catch it, the bounds check must.
#[test]
fn corpus_section_length_lie_with_forged_checksum() {
    let (g, queries, dir, kill_at) = corpus_checkpoint("seclie");
    let path = dir.join("shard-0.tcsm");
    let whole = std::fs::read(&path).unwrap();
    // Shard payload layout: fingerprint u64, cursor u64, shard-index u64,
    // then the window section's 8-byte length at offset 9 + 24 = 33.
    let mut bad = whole.clone();
    bad[33..41].copy_from_slice(&(1u64 << 40).to_le_bytes());
    let body_end = bad.len() - 8;
    let sum = tcsm_graph::codec::fnv1a(&bad[..body_end]);
    bad[body_end..].copy_from_slice(&sum.to_le_bytes());
    std::fs::write(&path, &bad).unwrap();
    let err = strict_restore_err(&g, &dir);
    assert!(
        matches!(
            &err,
            SnapshotError::Codec {
                source: tcsm_graph::CodecError::SectionLength { .. },
                ..
            }
        ),
        "got {err}"
    );
    rebuild_recovers(
        &g,
        10,
        &queries,
        svc_cfg(2, 0, false, false),
        kill_at,
        &dir,
        "section-length lie",
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A missing shard file errors under Strict and rebuilds under Rebuild.
#[test]
fn corpus_missing_shard_file() {
    let (g, queries, dir, kill_at) = corpus_checkpoint("missing");
    std::fs::remove_file(dir.join("shard-1.tcsm")).unwrap();
    let err = strict_restore_err(&g, &dir);
    assert!(matches!(err, SnapshotError::Io { .. }), "got {err}");
    rebuild_recovers(
        &g,
        10,
        &queries,
        svc_cfg(2, 0, false, false),
        kill_at,
        &dir,
        "missing shard file",
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A shard file left over from an older checkpoint generation (crash
/// between shard writes) is detected by its fingerprint/cursor stamp.
#[test]
fn corpus_mixed_generations() {
    let (queries, g) = workload();
    let cfg = svc_cfg(2, 0, false, false);
    let dir = scratch("mixedgen");
    let mut svc = MatchService::new(&g, 10, cfg).unwrap();
    for q in &queries {
        svc.add_query(q, serial_cfg(), Box::new(CollectingSink::new().0));
    }
    for _ in 0..10 {
        svc.step();
    }
    svc.checkpoint(&dir).unwrap();
    let old_shard = std::fs::read(dir.join("shard-0.tcsm")).unwrap();
    for _ in 0..10 {
        svc.step();
    }
    svc.checkpoint(&dir).unwrap();
    drop(svc);
    // Simulate the torn multi-file checkpoint: shard-0 from the older run.
    std::fs::write(dir.join("shard-0.tcsm"), &old_shard).unwrap();
    let err = strict_restore_err(&g, &dir);
    assert!(matches!(err, SnapshotError::Codec { .. }), "got {err}");
    rebuild_recovers(&g, 10, &queries, cfg, 20, &dir, "mixed generations");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Restoring against a different stream is refused by the fingerprint.
#[test]
fn corpus_wrong_stream_is_refused() {
    let (_g, _queries, dir, _) = corpus_checkpoint("wrongstream");
    let mut gb = TemporalGraphBuilder::new();
    let v = gb.vertices(5, 0);
    gb.edge(v, v + 1, 1);
    let other = gb.build().unwrap();
    for policy in [RecoveryPolicy::Strict, RecoveryPolicy::Rebuild] {
        let err = match MatchService::restore(&other, &dir, policy, |_| {
            Box::new(CollectingSink::new().0)
        }) {
            Ok(_) => panic!("restored against the wrong stream"),
            Err(e) => e,
        };
        assert!(matches!(err, SnapshotError::Mismatch(_)), "got {err}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Manifest corruption is fatal under Rebuild too — query definitions
/// cannot be rebuilt from the stream.
#[test]
fn corpus_manifest_corruption_is_fatal_under_rebuild() {
    let (g, _queries, dir, _) = corpus_checkpoint("manifest-rebuild");
    let path = dir.join("manifest.tcsm");
    let whole = std::fs::read(&path).unwrap();
    std::fs::write(&path, &whole[..whole.len() / 2]).unwrap();
    let err = match MatchService::restore(&g, &dir, RecoveryPolicy::Rebuild, |_| {
        Box::new(CollectingSink::new().0)
    }) {
        Ok(_) => panic!("truncated manifest restored under Rebuild"),
        Err(e) => e,
    };
    assert!(matches!(err, SnapshotError::Codec { .. }), "got {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Telemetry is observational: snapshots taken at every trace level are
/// byte-identical (timing is never serialized), and a restored service
/// carries no phase timings from its previous life.
#[test]
fn snapshots_are_byte_identical_across_trace_levels() {
    use std::sync::Arc;
    use tcsm_telemetry::{ManualClock, TraceLevel};
    let (queries, g) = workload();
    let cfg = svc_cfg(2, 0, false, false);
    let ecfg = EngineConfig {
        directed: cfg.directed,
        ..serial_cfg()
    };
    let mut dumps: Vec<(TraceLevel, PathBuf)> = Vec::new();
    for (tag, level) in [
        ("off", TraceLevel::Off),
        ("counters", TraceLevel::Counters),
        ("spans", TraceLevel::Spans),
    ] {
        let dir = scratch(&format!("trace-{tag}"));
        let mut svc = MatchService::new(&g, 10, cfg).unwrap();
        for q in &queries {
            svc.add_query(q, ecfg, Box::new(CollectingSink::new().0));
        }
        svc.set_trace(level, Arc::new(ManualClock::new(5)));
        for _ in 0..9 {
            svc.step();
        }
        svc.checkpoint(&dir).expect("checkpoint succeeds");
        if level == TraceLevel::Counters {
            assert!(
                svc.telemetry().total_us() > 0,
                "counters run must actually record timings"
            );
        }
        dumps.push((level, dir));
    }
    let files = |dir: &Path| -> Vec<(String, Vec<u8>)> {
        let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        out.sort();
        out
    };
    let baseline = files(&dumps[0].1);
    assert!(!baseline.is_empty(), "checkpoint wrote files");
    for (level, dir) in &dumps[1..] {
        assert_eq!(
            files(dir),
            baseline,
            "{level:?} snapshot differs from Off snapshot"
        );
    }
    // A restored service starts with a fresh recorder: the previous
    // process's timings do not leak through the snapshot.
    let restored = MatchService::restore(&g, &dumps[1].1, RecoveryPolicy::Strict, |_| {
        Box::new(CollectingSink::new().0)
    })
    .expect("restore succeeds");
    for phase in tcsm_telemetry::Phase::ALL {
        if phase == tcsm_telemetry::Phase::Restore {
            continue; // the restore itself may be timed (env-gated)
        }
        assert!(
            restored.telemetry().histogram(phase).is_none(),
            "{phase:?} timings leaked through the snapshot"
        );
    }
}
