//! Crash-safe checkpoint/restore for [`MatchService`] (see the crate docs'
//! "Checkpoint & recovery" section for the contract).
//!
//! # File layout
//!
//! A checkpoint directory holds one [`codec`](tcsm_graph::codec) frame per
//! shard (`shard-<i>.tcsm`, kind [`KIND_SHARD`]) plus a `manifest.tcsm`
//! (kind [`KIND_MANIFEST`]) written **last**. Every file is written to a
//! `.tmp` sibling, fsynced, then renamed into place, so a crash during
//! [`MatchService::checkpoint`] never leaves a torn file under the final
//! name — at worst a stale-but-complete previous generation, or no
//! manifest at all (no checkpoint).
//!
//! The manifest carries everything needed to *reconstruct* the service
//! shape (stream fingerprint, cursor, service config, query definitions
//! and engine configs, retired stats); the shard files carry the *dynamic*
//! state (window buckets, filter tables, DCS slabs, per-query stats).
//! Shard files repeat the fingerprint and cursor, so a directory holding
//! files from two different checkpoint generations (a crash between shard
//! writes) is detected as shard corruption rather than silently mixed.
//!
//! # Recovery
//!
//! Manifest problems are fatal under **both** [`RecoveryPolicy`]s — the
//! query definitions live there, and nothing can be rebuilt without them.
//! Shard-file problems are fatal under [`RecoveryPolicy::Strict`]; under
//! [`RecoveryPolicy::Rebuild`] the shard's window is replayed from the
//! stream prefix (`events[0..cursor]`) and every resident runtime is
//! re-derived with [`QueryRuntime::sync_to_window`] — the same machinery
//! mid-stream admission uses, so the resumed match stream is still exactly
//! the uninterrupted run's suffix. Rebuilt queries restart their stats
//! from zero (like a fresh admission); deliveries are per-delta count
//! deltas, so sinks are unaffected.

use super::*;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use tcsm_graph::codec::{encode_frame, fnv1a, open_frame, CodecError, Decoder, Encoder};
use tcsm_graph::io::{parse_query_graph, write_query_graph};

/// Frame kind of `manifest.tcsm`.
pub const KIND_MANIFEST: u8 = 1;
/// Frame kind of `shard-<i>.tcsm`.
pub const KIND_SHARD: u8 = 2;

/// File name of the manifest frame.
pub const MANIFEST_FILE: &str = "manifest.tcsm";

/// File name of shard `i`'s frame.
pub fn shard_file(i: usize) -> String {
    format!("shard-{i}.tcsm")
}

/// What [`MatchService::restore`] does about a corrupt or missing shard
/// file. Manifest corruption is fatal either way.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Surface a typed [`SnapshotError`]; nothing is restored.
    #[default]
    Strict,
    /// Rebuild the shard from the stream prefix: replay the window to the
    /// checkpoint cursor and re-derive every resident runtime
    /// (per-query stats restart from zero, the match stream does not).
    Rebuild,
}

/// Typed checkpoint/restore failure. Restoring never panics: every
/// corruption mode of the snapshot corpus maps here.
#[derive(Debug)]
pub enum SnapshotError {
    /// A filesystem operation failed.
    Io {
        /// The file concerned.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A snapshot frame failed to decode or validate.
    Codec {
        /// The file concerned (its name within the checkpoint directory).
        file: String,
        /// The underlying decode failure.
        source: CodecError,
    },
    /// The snapshot does not describe this service's stream (wrong graph,
    /// wrong δ, or internally inconsistent manifest).
    Mismatch(String),
    /// A query definition in the manifest failed to parse, or the stream
    /// could not be opened.
    Graph(GraphError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io { path, source } => {
                write!(f, "snapshot I/O on {}: {source}", path.display())
            }
            SnapshotError::Codec { file, source } => {
                write!(f, "corrupt snapshot frame {file}: {source}")
            }
            SnapshotError::Mismatch(msg) => write!(f, "snapshot mismatch: {msg}"),
            SnapshotError::Graph(e) => write!(f, "snapshot query definition: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io { source, .. } => Some(source),
            SnapshotError::Codec { source, .. } => Some(source),
            SnapshotError::Mismatch(_) => None,
            SnapshotError::Graph(e) => Some(e),
        }
    }
}

impl From<GraphError> for SnapshotError {
    fn from(e: GraphError) -> SnapshotError {
        SnapshotError::Graph(e)
    }
}

/// FNV-1a over the stream identity (δ, vertex labels, every edge record).
/// Stamped into every frame so a snapshot can refuse to resume against a
/// different graph or window length.
fn stream_fingerprint(g: &TemporalGraph, delta: i64) -> u64 {
    let mut enc = Encoder::new();
    enc.put_i64(delta);
    enc.put_usize(g.labels().len());
    for &l in g.labels() {
        enc.put_u32(l);
    }
    enc.put_usize(g.edges().len());
    for e in g.edges() {
        enc.put_u32(e.key.0);
        enc.put_u32(e.src);
        enc.put_u32(e.dst);
        enc.put_ts(e.time);
        enc.put_u32(e.label);
    }
    fnv1a(&enc.into_bytes())
}

/// Writes `bytes` to `path` atomically: `.tmp` sibling, fsync, rename.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let run = |tmp: &Path| -> std::io::Result<()> {
        let mut f = fs::File::create(tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(tmp, path)
    };
    let tmp = path.with_extension("tmp");
    run(&tmp).map_err(|source| SnapshotError::Io {
        path: path.to_path_buf(),
        source,
    })
}

fn read_file(dir: &Path, name: &str) -> Result<Vec<u8>, SnapshotError> {
    let path = dir.join(name);
    fs::read(&path).map_err(|source| SnapshotError::Io { path, source })
}

fn codec_err(file: &str) -> impl Fn(CodecError) -> SnapshotError + '_ {
    move |source| SnapshotError::Codec {
        file: file.to_string(),
        source,
    }
}

/// One query definition from the manifest.
struct SlotDef {
    id: u32,
    q: QueryGraph,
    cfg: EngineConfig,
}

/// Everything the manifest carries.
struct Manifest {
    fingerprint: u64,
    delta: i64,
    cursor: usize,
    cfg: ServiceConfig,
    next_id: u32,
    stats: ServiceStats,
    /// Retired stats in retirement order (oldest first), so the restored
    /// service evicts in the same order the checkpointed one would have.
    retired: Vec<(u32, EngineStats)>,
    /// Per shard, in slot order.
    slots: Vec<Vec<SlotDef>>,
}

fn decode_manifest(bytes: &[u8]) -> Result<Manifest, SnapshotError> {
    let err = codec_err(MANIFEST_FILE);
    let mut dec = open_frame(bytes, KIND_MANIFEST).map_err(&err)?;
    let inner = |dec: &mut Decoder<'_>| -> Result<Manifest, CodecError> {
        let fingerprint = dec.get_u64()?;
        let delta = dec.get_i64()?;
        let cursor = dec.get_usize()?;
        let num_shards = dec.get_usize()?;
        if num_shards == 0 {
            return Err(CodecError::Invalid("manifest declares zero shards".into()));
        }
        let policy = match dec.get_u8()? {
            0 => ShardPolicy::LabelLocality,
            1 => ShardPolicy::Spread,
            other => {
                return Err(CodecError::Invalid(format!("bad policy tag {other}")));
            }
        };
        let cfg = ServiceConfig {
            shards: num_shards,
            policy,
            threads: dec.get_usize()?,
            batching: dec.get_bool()?,
            directed: dec.get_bool()?,
        };
        let next_id = dec.get_u32()?;
        let stats = ServiceStats {
            shards: num_shards,
            windows_allocated: dec.get_u64()?,
            resident_queries: 0,
            admitted: dec.get_u64()?,
            retired: dec.get_u64()?,
            disconnected: dec.get_u64()?,
            events: dec.get_u64()?,
            batches: dec.get_u64()?,
            // The stored kernel counters are the retired-side
            // accumulators; resident contributions are re-derived at
            // `stats()` time from the restored runtimes.
            kernel_invocations: dec.get_u64()?,
            kernel_lanes: dec.get_u64()?,
            kernel_early_exits: dec.get_u64()?,
            retired_stats_evictions: dec.get_u64()?,
        };
        let nretired = dec.get_count(4)?;
        let mut retired = Vec::with_capacity(nretired);
        let mut retired_seen = std::collections::HashSet::new();
        for _ in 0..nretired {
            // No `id < next_id` check: ids are a wrapping u32 space, so a
            // long-lived service legitimately holds ids at or above the
            // wrapped cursor. Duplicates are still refused.
            let id = dec.get_u32()?;
            let mut sec = dec.section()?;
            let st = EngineStats::decode(&mut sec)?;
            sec.finish()?;
            if !retired_seen.insert(id) {
                return Err(CodecError::Invalid(format!("duplicate retired id {id}")));
            }
            retired.push((id, st));
        }
        let mut slots = Vec::with_capacity(num_shards);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..num_shards {
            let nslots = dec.get_count(4)?;
            let mut defs = Vec::with_capacity(nslots);
            for _ in 0..nslots {
                let id = dec.get_u32()?;
                if !seen.insert(id) {
                    return Err(CodecError::Invalid(format!("duplicate query id {id}")));
                }
                let text = dec.get_str()?;
                let q = parse_query_graph(text)
                    .map_err(|e| CodecError::Invalid(format!("query {id}: {e}")))?;
                let mut sec = dec.section()?;
                let cfg = EngineConfig::decode(&mut sec)?;
                sec.finish()?;
                defs.push(SlotDef { id, q, cfg });
            }
            slots.push(defs);
        }
        dec.finish()?;
        Ok(Manifest {
            fingerprint,
            delta,
            cursor,
            cfg,
            next_id,
            stats,
            retired,
            slots,
        })
    };
    inner(&mut dec).map_err(&err)
}

impl<'g> MatchService<'g> {
    /// Writes an atomic checkpoint of the whole service into `dir` (created
    /// if missing): one frame per shard, then the manifest, each written
    /// temp-then-rename so no torn file is ever visible under a final name.
    /// Restoring the checkpoint with [`MatchService::restore`] resumes the
    /// exact match-stream suffix an uninterrupted run would emit.
    ///
    /// May be called between any two [`MatchService::step`] calls; a later
    /// checkpoint into the same directory atomically supersedes file by
    /// file, manifest last.
    ///
    /// Takes `&mut self` only to record the wall-clock cost as a
    /// [`Phase::Checkpoint`](tcsm_telemetry::Phase) span on the service's
    /// phase recorder; no matching state is touched, and the written
    /// bytes are identical at every `TCSM_TRACE` level (timing is never
    /// serialized).
    pub fn checkpoint(&mut self, dir: &Path) -> Result<(), SnapshotError> {
        let t = self.recorder.start();
        let result = self.checkpoint_inner(dir);
        self.recorder.stop(tcsm_telemetry::Phase::Checkpoint, t);
        result
    }

    fn checkpoint_inner(&self, dir: &Path) -> Result<(), SnapshotError> {
        fs::create_dir_all(dir).map_err(|source| SnapshotError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let fp = stream_fingerprint(self.full, self.queue.delta());
        for (si, shard) in self.shards.iter().enumerate() {
            let frame = encode_frame(KIND_SHARD, |e| {
                e.put_u64(fp);
                e.put_usize(self.next_event);
                e.put_usize(si);
                e.section(|e| shard.window.encode(e));
                e.put_usize(shard.slots.len());
                for slot in &shard.slots {
                    e.put_u32(slot.id);
                    e.section(|e| slot.rt.encode_state(e));
                }
            });
            write_atomic(&dir.join(shard_file(si)), &frame)?;
        }
        let frame = encode_frame(KIND_MANIFEST, |e| {
            e.put_u64(fp);
            e.put_i64(self.queue.delta());
            e.put_usize(self.next_event);
            e.put_usize(self.shards.len());
            e.put_u8(match self.cfg.policy {
                ShardPolicy::LabelLocality => 0,
                ShardPolicy::Spread => 1,
            });
            e.put_usize(self.cfg.threads);
            e.put_bool(self.cfg.batching);
            e.put_bool(self.cfg.directed);
            e.put_u32(self.next_id);
            e.put_u64(self.stats.windows_allocated);
            e.put_u64(self.stats.admitted);
            e.put_u64(self.stats.retired);
            e.put_u64(self.stats.disconnected);
            e.put_u64(self.stats.events);
            e.put_u64(self.stats.batches);
            // Retired-side accumulators: the kernel counters folded in by
            // `remove_query` (resident contributions are re-derived from
            // the restored runtimes at `stats()` time) and the eviction
            // count of the bounded retired-stats table.
            e.put_u64(self.stats.kernel_invocations);
            e.put_u64(self.stats.kernel_lanes);
            e.put_u64(self.stats.kernel_early_exits);
            e.put_u64(self.stats.retired_stats_evictions);
            // Retirement order (skipping taken-out ids), so the restored
            // service evicts oldest-first exactly like this one would.
            let retired: Vec<(u32, &EngineStats)> = self
                .retired_order
                .iter()
                .filter_map(|id| self.retired.get(id).map(|st| (*id, st)))
                .collect();
            e.put_usize(retired.len());
            for (id, st) in retired {
                e.put_u32(id);
                e.section(|e| st.encode(e));
            }
            for shard in &self.shards {
                e.put_usize(shard.slots.len());
                for slot in &shard.slots {
                    e.put_u32(slot.id);
                    e.put_str(&write_query_graph(slot.rt.query()));
                    e.section(|e| slot.rt.config().encode(e));
                }
            }
        });
        write_atomic(&dir.join(MANIFEST_FILE), &frame)
    }

    /// Restores a service from a checkpoint directory against the same
    /// stream `g` the checkpointed service ran on (verified by a stream
    /// fingerprint stamped into every frame). Every resident query gets a
    /// fresh sink from `make_sink`; from the first [`MatchService::step`]
    /// on, deliveries are byte-identical to the suffix the uninterrupted
    /// run would have delivered from the checkpoint cursor.
    ///
    /// Manifest corruption is a typed error under both policies; shard
    /// corruption errors under [`RecoveryPolicy::Strict`] and is replayed
    /// from the stream prefix under [`RecoveryPolicy::Rebuild`].
    pub fn restore(
        g: &'g TemporalGraph,
        dir: &Path,
        policy: RecoveryPolicy,
        mut make_sink: impl FnMut(QueryId) -> Box<dyn ResultSink>,
    ) -> Result<MatchService<'g>, SnapshotError> {
        // Time the whole restore (decode, rebuild, replay) as one
        // `Phase::Restore` span on a recorder created up front; it
        // replaces the recorder `MatchService::new` seeds below, so the
        // span survives into the returned service.
        let mut recorder = tcsm_telemetry::PhaseRecorder::from_env();
        let t = recorder.start();
        let m = decode_manifest(&read_file(dir, MANIFEST_FILE)?)?;
        if m.fingerprint != stream_fingerprint(g, m.delta) {
            return Err(SnapshotError::Mismatch(
                "checkpoint was taken against a different stream or window length".into(),
            ));
        }
        let mut svc = MatchService::new(g, m.delta, m.cfg)?;
        if m.cursor > svc.queue.len() {
            return Err(SnapshotError::Mismatch(format!(
                "cursor {} beyond the stream's {} events",
                m.cursor,
                svc.queue.len()
            )));
        }
        svc.next_event = m.cursor;
        svc.next_id = m.next_id;
        svc.retired_order = m.retired.iter().map(|&(id, _)| id).collect();
        svc.retired = m.retired.into_iter().collect();
        svc.stats = ServiceStats {
            // `build` allocated this run's shard windows; the manifest's
            // figure described the checkpointed run's own allocations.
            windows_allocated: svc.stats.windows_allocated,
            ..m.stats
        };
        for (si, defs) in m.slots.into_iter().enumerate() {
            for def in defs {
                let sink = make_sink(QueryId(def.id));
                let cfg = EngineConfig {
                    collect_matches: sink.collect_matches(),
                    batching: svc.cfg.batching,
                    directed: svc.cfg.directed,
                    threads: 0,
                    ..def.cfg
                };
                let shard = &mut svc.shards[si];
                let rt = QueryRuntime::new(&def.q, &shard.window, m.delta, cfg, None);
                for l in (0..def.q.num_vertices()).map(|u| def.q.label(u)) {
                    *shard.label_counts.entry(l).or_insert(0) += 1;
                }
                svc.index.insert(def.id, (si, shard.slots.len()));
                shard.slots.push(Slot {
                    id: def.id,
                    rt,
                    sink,
                    out: Vec::new(),
                    active: false,
                    dead: false,
                    delivered_occurred: 0,
                    delivered_expired: 0,
                });
            }
        }
        for si in 0..svc.shards.len() {
            let loaded = read_file(dir, &shard_file(si))
                .and_then(|bytes| svc.load_shard(si, &bytes, m.fingerprint, m.cursor));
            match (loaded, policy) {
                (Ok(()), _) => {}
                (Err(e), RecoveryPolicy::Strict) => return Err(e),
                (Err(_), RecoveryPolicy::Rebuild) => svc.rebuild_shard(si),
            }
        }
        recorder.stop(tcsm_telemetry::Phase::Restore, t);
        svc.recorder = recorder;
        Ok(svc)
    }

    /// Overlays one shard frame onto shard `si` (fresh window, fresh
    /// runtimes). Any failure leaves the shard partially written — callers
    /// either abort the whole restore (strict) or rebuild the shard from
    /// the stream, which replaces everything this touched.
    fn load_shard(
        &mut self,
        si: usize,
        bytes: &[u8],
        fingerprint: u64,
        cursor: usize,
    ) -> Result<(), SnapshotError> {
        let file = shard_file(si);
        let err = codec_err(&file);
        let mut dec = open_frame(bytes, KIND_SHARD).map_err(&err)?;
        let inner = |dec: &mut Decoder<'_>, shard: &mut Shard| -> Result<(), CodecError> {
            let fp = dec.get_u64()?;
            let cur = dec.get_usize()?;
            if fp != fingerprint || cur != cursor {
                return Err(CodecError::Invalid(
                    "shard frame from a different checkpoint generation".into(),
                ));
            }
            let idx = dec.get_usize()?;
            if idx != si {
                return Err(CodecError::Invalid(format!(
                    "shard frame {idx} stored under index {si}"
                )));
            }
            let mut sec = dec.section()?;
            shard.window.restore(&mut sec)?;
            sec.finish()?;
            let nslots = dec.get_usize()?;
            if nslots != shard.slots.len() {
                return Err(CodecError::Invalid(format!(
                    "{nslots} slot states for {} manifest slots",
                    shard.slots.len()
                )));
            }
            for slot in &mut shard.slots {
                let id = dec.get_u32()?;
                if id != slot.id {
                    return Err(CodecError::Invalid(format!(
                        "slot state for q{id} where manifest lists q{}",
                        slot.id
                    )));
                }
                let mut sec = dec.section()?;
                slot.rt.restore_state(&mut sec)?;
                sec.finish()?;
                // At a step boundary everything reported has been
                // delivered, so the delivery watermarks equal the totals.
                slot.delivered_occurred = slot.rt.stats().occurred;
                slot.delivered_expired = slot.rt.stats().expired;
            }
            dec.finish()
        };
        inner(&mut dec, &mut self.shards[si]).map_err(&err)
    }

    /// [`RecoveryPolicy::Rebuild`] fallback for one shard: a fresh window
    /// replayed over the stream prefix, then every resident runtime
    /// re-derived via [`QueryRuntime::sync_to_window`] (the mid-stream
    /// admission path). Per-query stats restart from zero; the match
    /// stream does not — deliveries are per-delta count deltas and the
    /// rebuilt structures are byte-for-byte what incremental maintenance
    /// would hold.
    fn rebuild_shard(&mut self, si: usize) {
        let full = self.full;
        let delta = self.queue.delta();
        let mut window = MatchService::alloc_window(&mut self.stats, full, self.cfg.directed);
        // Serial replay regardless of the batching regime: only the window
        // *content* matters here (sync_to_window re-derives all
        // pair-indexed state from the replayed window's own bucket ids).
        for ev in &self.queue.events()[..self.next_event] {
            let e = full.edge(ev.edge);
            match ev.kind {
                EventKind::Insert => window.insert(e),
                EventKind::Delete => window.remove(e),
            }
        }
        let shard = &mut self.shards[si];
        shard.window = window;
        let Shard { window, slots, .. } = shard;
        for slot in slots.iter_mut() {
            let mut rt = QueryRuntime::new(slot.rt.query(), window, delta, *slot.rt.config(), None);
            if window.num_alive_edges() > 0 {
                rt.sync_to_window(window, |k| full.edge(k));
            }
            slot.rt = rt;
            slot.out.clear();
            slot.active = false;
            slot.delivered_occurred = 0;
            slot.delivered_expired = 0;
        }
    }
}
