//! # tcsm-service — a sharded multi-query continuous-matching service
//!
//! The paper evaluates one query against one stream; a deployment answers
//! **many standing queries over shared traffic**. [`MatchService`] owns the
//! stream, admits and retires standing queries *while the stream runs*, and
//! groups resident queries into **shards by query label locality** — with
//! exactly **one live [`WindowGraph`] per shard** that every resident
//! query's filter bank and matcher read, instead of one window per engine
//! (the pre-service `run_queries_on` cost model).
//!
//! # Sharding model
//!
//! A shard is one window plus the queries resident on it. Every shard
//! observes the *whole* stream (windows are identical across shards — the
//! sharing win is memory and locality, one window per shard instead of one
//! per query), and shards are mutually independent, so each stream delta
//! fans out across shards over a [`WorkerPool`] when
//! [`ServiceConfig::threads`]` > 0`. Within a shard, resident queries run
//! serially in admission order; their runtimes are read-only towards the
//! shared window, so per-query match streams are independent of shard
//! assignment, shard count, and pool width (the service differential suite
//! pins byte-identical streams across all of them).
//!
//! New queries are placed on the shard whose resident queries share the
//! most distinct vertex labels (ties: fewest resident queries, then lowest
//! shard index) — queries over the same label universe tend to read the
//! same window regions, so co-locating them keeps a shard's working set
//! coherent.
//!
//! # Shared-window aliasing rules
//!
//! One window, many readers, one writer — the service upholds the contract
//! [`tcsm_core::runtime`] documents:
//!
//! 1. the service alone mutates a shard's window, exactly once per stream
//!    delta (serial event or same-`(timestamp, kind)` delta batch,
//!    per [`ServiceConfig::batching`]);
//! 2. arrivals are applied to the window *before* any runtime processes
//!    them; expirations *after* every runtime enumerated its expiring
//!    embeddings;
//! 3. buckets drained by one delta stay id-resolvable until the next delta
//!    opens (the window's deferred reclamation), so every runtime's removal
//!    deltas stay index-addressed no matter how late in the fan-out it
//!    runs;
//! 4. direction semantics are a *window* property, so
//!    [`ServiceConfig::directed`] is service-wide and overrides the
//!    per-query [`EngineConfig::directed`] flag (as do
//!    [`EngineConfig::batching`]/[`EngineConfig::threads`], which describe
//!    stream regime and thread placement — both owned by the service).
//!
//! A query admitted mid-stream is synchronized to its shard's live window
//! with one from-scratch rebuild
//! ([`tcsm_core::QueryRuntime::sync_to_window`]); from then on it is
//! byte-for-byte indistinguishable from a query that was resident from the
//! first event, and its match stream is exactly the suffix a standalone
//! engine would have reported from that point on.
//!
//! # Checkpoint & recovery
//!
//! [`MatchService::checkpoint`] snapshots the complete dynamic state —
//! every shard's window (bucket slab, free/dying lists, adjacency), every
//! resident query's filter/DCS slabs and stats, the stream cursor, and the
//! admission bookkeeping — into one directory;
//! [`MatchService::restore`] rebuilds a service that delivers the **exact
//! byte-identical match-stream suffix** of a run that was never
//! interrupted (pinned by the `recovery` differential suite across shard
//! counts, thread widths, and both stream regimes).
//!
//! *Format.* Files are hand-rolled length-prefixed binary frames
//! ([`tcsm_graph::codec`]): a `TCSM` magic + format-version + frame-kind
//! header, little-endian fields with 64-bit length-prefixed sections, and
//! a trailing FNV-1a checksum over everything before it. `manifest.tcsm`
//! holds the stream fingerprint, cursor, service config, and every query's
//! definition; `shard-N.tcsm` holds shard *N*'s window and per-query
//! runtime slabs, stamped with the manifest's fingerprint + cursor so a
//! frame from an older checkpoint generation is detected as corruption.
//!
//! *Atomicity.* Every file is written to a `.tmp` sibling, synced, then
//! renamed — a crash mid-checkpoint never leaves a torn file visible. The
//! manifest is written **last**, so a directory with a readable manifest
//! always refers to shard files that were durable first; a crash between
//! shard writes leaves the *previous* checkpoint's manifest in place, and
//! the old generation restores intact.
//!
//! *Recovery policy.* Corruption (truncation, bit rot, length lies, mixed
//! generations, missing files) is always detected — decode is
//! bounds-checked and cross-validated, never a panic. What happens next is
//! the caller's [`RecoveryPolicy`]:
//!
//! * [`RecoveryPolicy::Strict`] — any damage is a typed
//!   [`SnapshotError`]; nothing is silently repaired.
//! * [`RecoveryPolicy::Rebuild`] — a damaged **shard** frame falls back to
//!   replaying the stream prefix up to the checkpoint cursor and
//!   re-synchronizing each resident query
//!   ([`tcsm_core::QueryRuntime::sync_to_window`]); the match-stream
//!   suffix is unaffected (rebuilt queries restart their *stats* from
//!   zero). A damaged **manifest** is fatal under both policies — query
//!   definitions cannot be rebuilt from the stream.
//!
//! Restoring against a different stream (or the same stream with a
//! different window length) is refused up front via a fingerprint over the
//! stream's edges and labels.
//!
//! # Sink contract
//!
//! Every query delivers through its own [`ResultSink`], handed over at
//! [`MatchService::add_query`]:
//!
//! * [`ResultSink::deliver`] is called at most once per processed stream
//!   delta, only when the query reported something, with the materialized
//!   match events (empty when [`ResultSink::collect_matches`] is `false`)
//!   plus the occurred/expired counts of the delta;
//! * deliveries for one query arrive in stream order; with
//!   [`ServiceConfig::threads`]` > 0` they may run on worker threads
//!   (hence `ResultSink: Send`), but never concurrently for one query —
//!   a sink needs interior thread-safety only if *shared across* queries
//!   (both bundled sinks use handles, so either way is safe);
//! * delivery is **fallible**: a sink backed by a remote subscriber
//!   returns [`SinkClosed`] when the peer is dead, and the service
//!   auto-retires the query after the current delta
//!   ([`ServiceStats::disconnected`] counts these,
//!   [`MatchService::drain_disconnected`] reports them) without touching
//!   any other query's stream;
//! * retired queries' final stats stay peekable via
//!   [`MatchService::query_stats`] in a table bounded by
//!   [`RETIRED_STATS_CAPACITY`] (oldest retirement evicted first); a
//!   long-running frontend takes them out with
//!   [`MatchService::take_retired_stats`] instead of leaking an entry per
//!   retirement;
//! * [`CollectingSink`] materializes events for consumers/tests,
//!   [`CountingSink`] only counts (benches; the engine then skips
//!   embedding materialization entirely), [`DiscardSink`] drops everything
//!   (the placeholder while a restored daemon waits for subscribers to
//!   re-attach via [`MatchService::set_sink`]).
//!
//! ```
//! use tcsm_core::EngineConfig;
//! use tcsm_graph::{QueryGraphBuilder, TemporalGraphBuilder};
//! use tcsm_service::{CollectingSink, MatchService, ServiceConfig};
//!
//! // Two standing queries over one stream, one shared window (1 shard).
//! let mut qb = QueryGraphBuilder::new();
//! let (a, b) = (qb.vertex(0), qb.vertex(0));
//! qb.edge(a, b);
//! let q1 = qb.build().unwrap();
//! let mut qb = QueryGraphBuilder::new();
//! let (a, b, c) = (qb.vertex(0), qb.vertex(0), qb.vertex(0));
//! let (e0, e1) = (qb.edge(a, b), qb.edge(b, c));
//! qb.precede(e0, e1);
//! let q2 = qb.build().unwrap();
//!
//! let mut gb = TemporalGraphBuilder::new();
//! let v = gb.vertices(3, 0);
//! gb.edge(v, v + 1, 1);
//! gb.edge(v + 1, v + 2, 2);
//! let g = gb.build().unwrap();
//!
//! let mut svc = MatchService::new(&g, 10, ServiceConfig::default()).unwrap();
//! let (sink1, got1) = CollectingSink::new();
//! let (sink2, got2) = CollectingSink::new();
//! let id1 = svc.add_query(&q1, EngineConfig::default(), Box::new(sink1));
//! let id2 = svc.add_query(&q2, EngineConfig::default(), Box::new(sink2));
//! svc.run();
//! // Each edge alone, in both orientations (the endpoints share a label).
//! assert_eq!(svc.query_stats(id1).unwrap().occurred, 4);
//! assert_eq!(svc.query_stats(id2).unwrap().occurred, 1); // the ordered path
//! assert_eq!(got1.take().len(), 8); // 4 occurred + 4 expired
//! assert!(!got2.take().is_empty());
//! ```

mod service;
mod sink;

pub use service::{
    MatchService, QueryId, RecoveryPolicy, ServiceConfig, ServiceStats, ShardPolicy, SnapshotError,
    RETIRED_STATS_CAPACITY,
};
pub use sink::{
    CollectedMatches, CollectingSink, CountingSink, DiscardSink, MatchCounts, ResultSink,
    SinkClosed,
};

use std::sync::Arc;
use tcsm_core::{EngineConfig, EngineStats, WorkerPool};
use tcsm_graph::{GraphError, QueryGraph, TemporalGraph};

/// Service-backed replacement for the deprecated
/// `tcsm_core::run_queries_parallel`: one engine-equivalent per query,
/// `threads` lanes wide (0 = one lane per available CPU). Routing through
/// [`MatchService`] with **one shard per query** reproduces the old
/// run-N-independent-engines behavior exactly (each query gets a private
/// window); matches are counted, not collected.
pub fn run_queries_parallel(
    queries: &[QueryGraph],
    g: &TemporalGraph,
    delta: i64,
    cfg: EngineConfig,
    threads: usize,
) -> Result<Vec<EngineStats>, GraphError> {
    let width = WorkerPool::resolve_width(threads).min(queries.len().max(1));
    run_queries_on(&Arc::new(WorkerPool::new(width)), queries, g, delta, cfg)
}

/// [`run_queries_parallel`] on a caller-owned pool (shared across repeated
/// sweeps without respawning threads). Service-backed replacement for the
/// deprecated `tcsm_core::run_queries_on`; takes the pool by `Arc` because
/// the service shares it with its shard fan-out.
pub fn run_queries_on(
    pool: &Arc<WorkerPool>,
    queries: &[QueryGraph],
    g: &TemporalGraph,
    delta: i64,
    cfg: EngineConfig,
) -> Result<Vec<EngineStats>, GraphError> {
    let svc_cfg = ServiceConfig {
        shards: queries.len().max(1),
        // Spread + one shard per query = the old one-window-per-engine
        // layout, reproduced exactly.
        policy: ShardPolicy::Spread,
        threads: pool.width(),
        batching: cfg.batching,
        directed: cfg.directed,
    };
    let mut svc = MatchService::with_pool(g, delta, svc_cfg, Arc::clone(pool))?;
    let ids: Vec<QueryId> = queries
        .iter()
        .map(|q| svc.add_query(q, cfg, Box::new(CountingSink::new().0)))
        .collect();
    svc.run();
    Ok(ids
        .into_iter()
        .map(|id| *svc.query_stats(id).expect("resident query has stats"))
        .collect())
}
