//! Per-query result delivery (see the crate docs' sink contract).

use crate::service::QueryId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tcsm_core::MatchEvent;

/// Receives one standing query's match stream from the service.
///
/// `deliver` runs at most once per processed stream delta and only when
/// the query reported something; deliveries for one query arrive in
/// stream order, possibly from worker threads (never two at once for one
/// query). Implementations drain `events` (the service clears it after
/// the call either way).
pub trait ResultSink: Send {
    /// Should the service materialize embeddings for this query? `false`
    /// keeps the whole search path allocation-free (`deliver` then sees an
    /// empty `events` but live counts) — the benching configuration.
    fn collect_matches(&self) -> bool {
        true
    }

    /// One stream delta's worth of results for query `qid`: the
    /// materialized events (empty when [`ResultSink::collect_matches`] is
    /// `false`) and the delta's occurred/expired counts.
    fn deliver(&mut self, qid: QueryId, events: &mut Vec<MatchEvent>, occurred: u64, expired: u64);
}

/// A sink that materializes and stores every match event; read the stream
/// back through the [`CollectedMatches`] handle. The consumer/test
/// configuration.
pub struct CollectingSink {
    buf: Arc<Mutex<Vec<MatchEvent>>>,
}

/// Reader handle of a [`CollectingSink`].
#[derive(Clone)]
pub struct CollectedMatches {
    buf: Arc<Mutex<Vec<MatchEvent>>>,
}

impl CollectingSink {
    /// A fresh sink plus its reader handle.
    pub fn new() -> (CollectingSink, CollectedMatches) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        (
            CollectingSink {
                buf: Arc::clone(&buf),
            },
            CollectedMatches { buf },
        )
    }
}

impl ResultSink for CollectingSink {
    fn deliver(&mut self, _qid: QueryId, events: &mut Vec<MatchEvent>, _occ: u64, _exp: u64) {
        self.buf
            .lock()
            .expect("collector mutex poisoned")
            .append(events);
    }
}

impl CollectedMatches {
    /// Takes everything collected so far (stream order), leaving the
    /// buffer empty.
    pub fn take(&self) -> Vec<MatchEvent> {
        std::mem::take(&mut *self.buf.lock().expect("collector mutex poisoned"))
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("collector mutex poisoned").len()
    }

    /// True when nothing was collected (yet).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A sink that only counts — embeddings are never materialized
/// (`collect_matches` is `false`), so the query's whole search path stays
/// allocation-free. The bench configuration.
pub struct CountingSink {
    occurred: Arc<AtomicU64>,
    expired: Arc<AtomicU64>,
}

/// Reader handle of a [`CountingSink`].
#[derive(Clone)]
pub struct MatchCounts {
    occurred: Arc<AtomicU64>,
    expired: Arc<AtomicU64>,
}

impl CountingSink {
    /// A fresh sink plus its counter handle.
    pub fn new() -> (CountingSink, MatchCounts) {
        let occurred = Arc::new(AtomicU64::new(0));
        let expired = Arc::new(AtomicU64::new(0));
        (
            CountingSink {
                occurred: Arc::clone(&occurred),
                expired: Arc::clone(&expired),
            },
            MatchCounts { occurred, expired },
        )
    }
}

impl ResultSink for CountingSink {
    fn collect_matches(&self) -> bool {
        false
    }

    fn deliver(&mut self, _qid: QueryId, _events: &mut Vec<MatchEvent>, occ: u64, exp: u64) {
        self.occurred.fetch_add(occ, Ordering::Relaxed);
        self.expired.fetch_add(exp, Ordering::Relaxed);
    }
}

impl MatchCounts {
    /// Occurred embeddings counted so far.
    pub fn occurred(&self) -> u64 {
        self.occurred.load(Ordering::Relaxed)
    }

    /// Expired embeddings counted so far.
    pub fn expired(&self) -> u64 {
        self.expired.load(Ordering::Relaxed)
    }
}
