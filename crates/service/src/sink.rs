//! Per-query result delivery (see the crate docs' sink contract).

use crate::service::QueryId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use tcsm_core::MatchEvent;

/// Delivery failed because the consumer is gone — a closed socket, a dead
/// channel, a dropped subscriber. The service reacts by auto-retiring the
/// query (its final stats land in the retired table, tagged in
/// [`ServiceStats::disconnected`](crate::ServiceStats::disconnected));
/// other queries' streams are untouched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SinkClosed;

impl std::fmt::Display for SinkClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "result sink disconnected")
    }
}

impl std::error::Error for SinkClosed {}

/// Receives one standing query's match stream from the service.
///
/// `deliver` runs at most once per processed stream delta and only when
/// the query reported something; deliveries for one query arrive in
/// stream order, possibly from worker threads (never two at once for one
/// query). Implementations drain `events` (the service clears it after
/// the call either way).
///
/// Delivery is **fallible**: a sink backed by a remote peer returns
/// [`SinkClosed`] when the peer is gone, and the service auto-retires the
/// query after the current delta instead of panicking or wedging the
/// shard sweep. In-process sinks that cannot fail just return `Ok(())`.
pub trait ResultSink: Send {
    /// Should the service materialize embeddings for this query? `false`
    /// keeps the whole search path allocation-free (`deliver` then sees an
    /// empty `events` but live counts) — the benching configuration.
    fn collect_matches(&self) -> bool {
        true
    }

    /// One stream delta's worth of results for query `qid`: the
    /// materialized events (empty when [`ResultSink::collect_matches`] is
    /// `false`) and the delta's occurred/expired counts. `Err(SinkClosed)`
    /// reports a dead consumer and triggers auto-retirement.
    fn deliver(
        &mut self,
        qid: QueryId,
        events: &mut Vec<MatchEvent>,
        occurred: u64,
        expired: u64,
    ) -> Result<(), SinkClosed>;
}

/// A sink that materializes and stores every match event; read the stream
/// back through the [`CollectedMatches`] handle. The consumer/test
/// configuration.
pub struct CollectingSink {
    buf: Arc<Mutex<Vec<MatchEvent>>>,
}

/// Reader handle of a [`CollectingSink`].
#[derive(Clone)]
pub struct CollectedMatches {
    buf: Arc<Mutex<Vec<MatchEvent>>>,
}

impl CollectingSink {
    /// A fresh sink plus its reader handle.
    pub fn new() -> (CollectingSink, CollectedMatches) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        (
            CollectingSink {
                buf: Arc::clone(&buf),
            },
            CollectedMatches { buf },
        )
    }
}

impl ResultSink for CollectingSink {
    fn deliver(
        &mut self,
        _qid: QueryId,
        events: &mut Vec<MatchEvent>,
        _occ: u64,
        _exp: u64,
    ) -> Result<(), SinkClosed> {
        // A consumer that panicked while holding the lock poisons it; the
        // buffer itself is still coherent (Vec mutations don't unwind
        // mid-write), so recover the guard instead of propagating the
        // poison to every later delivery — the same discipline WorkerPool
        // uses for its control mutex.
        self.buf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .append(events);
        Ok(())
    }
}

impl CollectedMatches {
    /// Takes everything collected so far (stream order), leaving the
    /// buffer empty.
    pub fn take(&self) -> Vec<MatchEvent> {
        std::mem::take(&mut *self.buf.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.buf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when nothing was collected (yet).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A sink that only counts — embeddings are never materialized
/// (`collect_matches` is `false`), so the query's whole search path stays
/// allocation-free. The bench configuration.
pub struct CountingSink {
    occurred: Arc<AtomicU64>,
    expired: Arc<AtomicU64>,
}

/// Reader handle of a [`CountingSink`].
#[derive(Clone)]
pub struct MatchCounts {
    occurred: Arc<AtomicU64>,
    expired: Arc<AtomicU64>,
}

impl CountingSink {
    /// A fresh sink plus its counter handle.
    pub fn new() -> (CountingSink, MatchCounts) {
        let occurred = Arc::new(AtomicU64::new(0));
        let expired = Arc::new(AtomicU64::new(0));
        (
            CountingSink {
                occurred: Arc::clone(&occurred),
                expired: Arc::clone(&expired),
            },
            MatchCounts { occurred, expired },
        )
    }
}

impl ResultSink for CountingSink {
    fn collect_matches(&self) -> bool {
        false
    }

    fn deliver(
        &mut self,
        _qid: QueryId,
        _events: &mut Vec<MatchEvent>,
        occ: u64,
        exp: u64,
    ) -> Result<(), SinkClosed> {
        self.occurred.fetch_add(occ, Ordering::Relaxed);
        self.expired.fetch_add(exp, Ordering::Relaxed);
        Ok(())
    }
}

impl MatchCounts {
    /// Occurred embeddings counted so far.
    pub fn occurred(&self) -> u64 {
        self.occurred.load(Ordering::Relaxed)
    }

    /// Expired embeddings counted so far.
    pub fn expired(&self) -> u64 {
        self.expired.load(Ordering::Relaxed)
    }
}

/// A sink that drops everything. Placeholder for a resident query whose
/// subscriber is not attached yet — a daemon restoring a checkpoint
/// installs one per query until the remote peer re-subscribes
/// ([`MatchService::set_sink`](crate::MatchService::set_sink)).
/// `collect_matches` is configurable so the runtime keeps materializing
/// embeddings for the subscriber to come.
pub struct DiscardSink {
    collect: bool,
}

impl DiscardSink {
    /// A discarding sink; `collect` fixes what
    /// [`ResultSink::collect_matches`] reports.
    pub fn new(collect: bool) -> DiscardSink {
        DiscardSink { collect }
    }
}

impl ResultSink for DiscardSink {
    fn collect_matches(&self) -> bool {
        self.collect
    }

    fn deliver(
        &mut self,
        _qid: QueryId,
        _events: &mut Vec<MatchEvent>,
        _occ: u64,
        _exp: u64,
    ) -> Result<(), SinkClosed> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsm_core::{Embedding, MatchKind};
    use tcsm_graph::Ts;

    fn some_event(t: i64) -> MatchEvent {
        MatchEvent {
            kind: MatchKind::Occurred,
            at: Ts::new(t),
            embedding: Embedding {
                vertices: vec![0, 1],
                edges: vec![tcsm_graph::EdgeKey(0)],
            },
        }
    }

    /// Regression: a consumer that panics while holding the collector lock
    /// used to poison every later delivery (and `take`/`len`); all three
    /// must recover the guard instead.
    #[test]
    fn collector_survives_a_poisoned_mutex() {
        let (mut sink, got) = CollectingSink::new();
        let mut first = vec![some_event(1)];
        sink.deliver(QueryId::from_raw(0), &mut first, 1, 0)
            .unwrap();

        // Poison the mutex: panic in another thread while holding it.
        let buf = Arc::clone(&sink.buf);
        let _ = std::thread::spawn(move || {
            let _guard = buf.lock().unwrap();
            panic!("consumer panicked mid-read");
        })
        .join();
        assert!(sink.buf.is_poisoned(), "test precondition: lock poisoned");

        let mut second = vec![some_event(2)];
        sink.deliver(QueryId::from_raw(0), &mut second, 1, 0)
            .expect("delivery after poison succeeds");
        assert_eq!(got.len(), 2, "len recovers the poisoned guard");
        let events = got.take();
        assert_eq!(events, vec![some_event(1), some_event(2)]);
        assert!(got.is_empty());
    }

    #[test]
    fn discard_sink_reports_its_collect_flag() {
        assert!(DiscardSink::new(true).collect_matches());
        assert!(!DiscardSink::new(false).collect_matches());
        let mut s = DiscardSink::new(true);
        let mut ev = vec![some_event(3)];
        s.deliver(QueryId::from_raw(7), &mut ev, 1, 0).unwrap();
    }
}
