//! [`MatchService`]: shards, query slots, and the per-delta drive loop.

mod snapshot;

pub use snapshot::{RecoveryPolicy, SnapshotError};

use crate::sink::ResultSink;
use std::collections::VecDeque;
use std::sync::Arc;
use tcsm_core::{EngineConfig, EngineStats, MatchEvent, QueryRuntime, WorkerPool};
use tcsm_graph::{
    EventKind, EventQueue, FxHashMap, GraphError, Label, QueryGraph, TemporalEdge, TemporalGraph,
    WindowGraph,
};
use tcsm_telemetry::{Clock, LatencyHistogram, MetricsWriter, Phase, PhaseRecorder, TraceLevel};

/// Handle of one standing query, valid for the service's lifetime (also
/// after retirement, for [`MatchService::query_stats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(u32);

impl QueryId {
    /// The raw wire representation. Round-trips through
    /// [`QueryId::from_raw`] — the escape hatch a network frontend needs to
    /// put query handles on the wire.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// A handle from its wire representation. A forged or stale id is
    /// harmless: every service API treats an unknown id as `None`.
    #[inline]
    pub fn from_raw(raw: u32) -> QueryId {
        QueryId(raw)
    }
}

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// How new queries are placed onto shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Most shared distinct vertex labels wins (ties: fewest resident
    /// queries, then lowest shard index) — co-locate queries that read the
    /// same window regions. The default.
    #[default]
    LabelLocality,
    /// Fewest resident queries wins (ties: lowest shard index) — with as
    /// many shards as queries this reproduces the one-window-per-query
    /// layout of the pre-service `run_queries_on`.
    Spread,
}

/// Service-wide configuration. Stream regime (`batching`), thread
/// placement (`threads`), and direction semantics (`directed`) are window
/// properties and therefore service-owned; the same-named fields of a
/// query's [`EngineConfig`] are overridden at admission (see the crate
/// docs' aliasing rules).
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Number of shards (≥ 1; clamped). One [`WindowGraph`] is allocated
    /// per shard, ever — [`ServiceStats::windows_allocated`] asserts it.
    pub shards: usize,
    /// Shard placement policy for [`MatchService::add_query`].
    pub policy: ShardPolicy,
    /// Width of the shard fan-out pool (0 = serial: every shard is driven
    /// on the caller). Query runtimes inside shards always run serially —
    /// shard-level and intra-query parallelism are alternatives over one
    /// pool, and the service owns the shard level.
    pub threads: usize,
    /// Process the stream in same-`(timestamp, kind)` delta batches (the
    /// batched engine regime) instead of one event at a time. Applies to
    /// every resident query.
    pub batching: bool,
    /// Direction semantics of every shard window (and hence every query).
    pub directed: bool,
}

impl Default for ServiceConfig {
    /// One shard, label-locality placement, serial shard drive (seeded by
    /// `TCSM_THREADS` like [`EngineConfig::default`]), per-event regime,
    /// undirected.
    fn default() -> ServiceConfig {
        let engine = EngineConfig::default();
        ServiceConfig {
            shards: 1,
            policy: ShardPolicy::LabelLocality,
            threads: engine.threads,
            batching: engine.batching,
            directed: engine.directed,
        }
    }
}

/// Aggregate service counters (per-query counters live in each query's
/// [`EngineStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Number of shards.
    pub shards: usize,
    /// Live [`WindowGraph`]s ever allocated — the shared-window guarantee:
    /// always exactly one per shard, never one per query.
    pub windows_allocated: u64,
    /// Queries currently resident.
    pub resident_queries: usize,
    /// Queries ever admitted.
    pub admitted: u64,
    /// Queries retired via [`MatchService::remove_query`].
    pub retired: u64,
    /// Queries auto-retired because their sink reported
    /// [`SinkClosed`](crate::SinkClosed) (also counted in `retired`).
    pub disconnected: u64,
    /// Stream events processed (arrivals + expirations).
    pub events: u64,
    /// Delta batches processed (0 in the per-event regime).
    pub batches: u64,
    /// Eq. (1) kernel invocations summed over all resident queries'
    /// filter instances **plus** every retired query's final count (see
    /// `EngineStats::kernel_invocations`) — retirement folds a query's
    /// kernel counters into the service totals instead of dropping them.
    pub kernel_invocations: u64,
    /// `TR(u)` lanes folded across those invocations (resident +
    /// retired, like `kernel_invocations`).
    pub kernel_lanes: u64,
    /// Eq. (1) early-exit bails (child term with no contributing
    /// neighbour), resident + retired.
    pub kernel_early_exits: u64,
    /// Retired-stats records evicted from the bounded table (capacity
    /// [`RETIRED_STATS_CAPACITY`]) to make room for newer retirements.
    /// A non-zero value tells an operator that per-query post-mortem
    /// stats are being lost and sinks should take them at retirement.
    pub retired_stats_evictions: u64,
}

/// One resident query: its runtime, sink, and per-delta delivery state.
struct Slot {
    id: u32,
    rt: QueryRuntime,
    sink: Box<dyn ResultSink>,
    /// Per-delta event buffer (reused allocation).
    out: Vec<MatchEvent>,
    /// Was the query live (budget not exhausted) when the current delta
    /// opened? Snapshot so a budget exhausting mid-delta still completes
    /// the delta, exactly like the standalone engine.
    active: bool,
    /// The sink reported [`SinkClosed`](crate::SinkClosed); the service
    /// auto-retires the slot after the current delta.
    dead: bool,
    /// Occurred/expired totals already delivered, for per-delta counts.
    delivered_occurred: u64,
    delivered_expired: u64,
}

/// One shard: the shared window plus its resident queries.
struct Shard {
    window: WindowGraph,
    slots: Vec<Slot>,
    /// Distinct-label census of resident queries (placement scoring).
    label_counts: FxHashMap<Label, usize>,
}

impl Shard {
    /// Applies one stream delta: mutate the shared window once, drive every
    /// live resident runtime over it, deliver. `edges` is the complete
    /// delta in key order (a single event in the per-event regime).
    fn apply_unit(
        &mut self,
        full: &TemporalGraph,
        kind: EventKind,
        edges: &[TemporalEdge],
        batching: bool,
    ) {
        for slot in &mut self.slots {
            slot.active = !slot.rt.done();
        }
        match (kind, batching) {
            (EventKind::Insert, false) => {
                for e in edges {
                    self.window.insert(e);
                    for slot in self.slots.iter_mut().filter(|s| s.active) {
                        slot.rt
                            .apply_insert(&self.window, e, |k| full.edge(k), &mut slot.out);
                    }
                }
            }
            (EventKind::Insert, true) => {
                self.window.begin_batch();
                for e in edges {
                    self.window.insert_deferred(e);
                }
                for slot in self.slots.iter_mut().filter(|s| s.active) {
                    slot.rt.apply_insert_batch(
                        &self.window,
                        edges,
                        |k| full.edge(k),
                        &mut slot.out,
                    );
                }
            }
            (EventKind::Delete, false) => {
                for e in edges {
                    // Every runtime enumerates its expiring embeddings
                    // while the window still holds the edge; then one
                    // removal; then every structure update (ids stay
                    // resolvable until the next mutation).
                    for slot in self.slots.iter_mut().filter(|s| s.active) {
                        slot.rt.sweep_expiring(&self.window, e, &mut slot.out);
                    }
                    self.window.remove(e);
                    for slot in self.slots.iter_mut().filter(|s| s.active) {
                        slot.rt.apply_delete(&self.window, e, |k| full.edge(k));
                    }
                }
            }
            (EventKind::Delete, true) => {
                for slot in self.slots.iter_mut().filter(|s| s.active) {
                    slot.rt
                        .sweep_expiring_batch(&self.window, edges, &mut slot.out);
                }
                self.window.begin_batch();
                for e in edges {
                    self.window.remove_deferred(e);
                }
                for slot in self.slots.iter_mut().filter(|s| s.active) {
                    slot.rt
                        .apply_delete_batch(&self.window, edges, |k| full.edge(k));
                }
            }
        }
        for slot in self.slots.iter_mut().filter(|s| s.active) {
            let stats = slot.rt.stats();
            let occ = stats.occurred - slot.delivered_occurred;
            let exp = stats.expired - slot.delivered_expired;
            if occ > 0 || exp > 0 || !slot.out.is_empty() {
                slot.delivered_occurred = stats.occurred;
                slot.delivered_expired = stats.expired;
                if !slot.dead
                    && slot
                        .sink
                        .deliver(QueryId(slot.id), &mut slot.out, occ, exp)
                        .is_err()
                {
                    // Dead peer: stop delivering and let the post-delta
                    // sweep retire the slot. Survivors are untouched.
                    slot.dead = true;
                }
                slot.out.clear();
            }
        }
    }

    /// Distinct-label overlap between `labels` (sorted, deduped) and the
    /// resident queries.
    fn label_overlap(&self, labels: &[Label]) -> usize {
        labels
            .iter()
            .filter(|l| self.label_counts.contains_key(l))
            .count()
    }
}

/// Retired-stats table bound: the final [`EngineStats`] of at most this
/// many retired queries are kept (oldest retirement evicted first). A
/// standing daemon admits and retires queries indefinitely; an unbounded
/// table is a per-retirement leak. Consumers that must not lose stats take
/// them at retirement ([`MatchService::remove_query`] returns them) or via
/// [`MatchService::take_retired_stats`].
pub const RETIRED_STATS_CAPACITY: usize = 1024;

/// The sharded multi-query matching service (see the crate docs).
pub struct MatchService<'g> {
    full: &'g TemporalGraph,
    queue: EventQueue,
    next_event: usize,
    cfg: ServiceConfig,
    pool: Option<Arc<WorkerPool>>,
    shards: Vec<Shard>,
    /// Resident `QueryId` → (shard, slot) positions.
    index: FxHashMap<u32, (usize, usize)>,
    /// Final stats of retired queries, bounded by
    /// [`RETIRED_STATS_CAPACITY`].
    retired: FxHashMap<u32, EngineStats>,
    /// Retirement order of the ids in `retired` (front = oldest, evicted
    /// first). May carry ids already taken out of the map; eviction and
    /// compaction skip those.
    retired_order: VecDeque<u32>,
    /// Queries auto-retired by the disconnect sweep since the last
    /// [`MatchService::drain_disconnected`].
    disconnected: Vec<QueryId>,
    next_id: u32,
    stats: ServiceStats,
    /// Materialized edges of the current delta (reused allocation).
    unit_scratch: Vec<TemporalEdge>,
    /// Step-path invariant audit cadence (`TCSM_AUDIT` ×
    /// `TCSM_AUDIT_EVERY`), shared by every resident runtime. The serviced
    /// network daemon drives [`MatchService::step`], so it inherits this
    /// tripwire too.
    auditor: tcsm_core::Auditor,
    /// Service-level phase timing (`TCSM_TRACE`): queue pop, shard-pool
    /// dispatch, checkpoint, restore. Per-query phases live on each
    /// slot's runtime recorder; [`MatchService::metrics_text`] rolls both
    /// up. Never serialized — snapshots are byte-identical at every trace
    /// level.
    recorder: PhaseRecorder,
}

impl<'g> MatchService<'g> {
    /// Builds a service over the stream of `g` with window length `delta`.
    /// With [`ServiceConfig::threads`]` > 0` the service owns a private
    /// [`WorkerPool`] of that width for the shard fan-out.
    pub fn new(
        g: &'g TemporalGraph,
        delta: i64,
        cfg: ServiceConfig,
    ) -> Result<MatchService<'g>, GraphError> {
        let pool = match cfg.threads {
            0 => None,
            n => Some(Arc::new(WorkerPool::new(n))),
        };
        MatchService::build(g, delta, cfg, pool)
    }

    /// [`MatchService::new`] on an existing pool (shared with other
    /// sweeps; must only be driven from this service's thread while a
    /// step runs). [`ServiceConfig::threads`] is ignored for pool sizing.
    pub fn with_pool(
        g: &'g TemporalGraph,
        delta: i64,
        cfg: ServiceConfig,
        pool: Arc<WorkerPool>,
    ) -> Result<MatchService<'g>, GraphError> {
        MatchService::build(g, delta, cfg, Some(pool))
    }

    /// The only way this crate constructs a [`WindowGraph`] — every
    /// allocation bumps [`ServiceStats::windows_allocated`], which is what
    /// makes the one-window-per-shard assertions in the differential suite
    /// meaningful. Do not call `WindowGraph::new` anywhere else in
    /// `tcsm-service`.
    fn alloc_window(stats: &mut ServiceStats, g: &TemporalGraph, directed: bool) -> WindowGraph {
        stats.windows_allocated += 1;
        WindowGraph::new(g.labels().to_vec(), directed)
    }

    fn build(
        g: &'g TemporalGraph,
        delta: i64,
        cfg: ServiceConfig,
        pool: Option<Arc<WorkerPool>>,
    ) -> Result<MatchService<'g>, GraphError> {
        let queue = EventQueue::new(g, delta)?;
        let num_shards = cfg.shards.max(1);
        let mut stats = ServiceStats {
            shards: num_shards,
            ..ServiceStats::default()
        };
        let shards: Vec<Shard> = (0..num_shards)
            .map(|_| Shard {
                // The one window of this shard.
                window: MatchService::alloc_window(&mut stats, g, cfg.directed),
                slots: Vec::new(),
                label_counts: FxHashMap::default(),
            })
            .collect();
        Ok(MatchService {
            full: g,
            queue,
            next_event: 0,
            cfg,
            pool,
            shards,
            index: FxHashMap::default(),
            retired: FxHashMap::default(),
            retired_order: VecDeque::new(),
            disconnected: Vec::new(),
            next_id: 0,
            stats,
            unit_scratch: Vec::new(),
            auditor: tcsm_core::Auditor::from_env(),
            recorder: PhaseRecorder::from_env(),
        })
    }

    /// The window length δ.
    #[inline]
    pub fn delta(&self) -> i64 {
        self.queue.delta()
    }

    /// Stream events processed so far (the admission point of a query
    /// added now).
    #[inline]
    pub fn events_processed(&self) -> usize {
        self.next_event
    }

    /// Remaining events in the stream.
    #[inline]
    pub fn remaining_events(&self) -> usize {
        self.queue.len() - self.next_event
    }

    /// Aggregate service counters (resident count and the kernel
    /// instrumentation aggregates refreshed here — the latter sum the
    /// *resident* queries' filter instances on top of the retired-side
    /// accumulators folded in by [`MatchService::remove_query`], so a
    /// query's kernel work is never lost to retirement).
    pub fn stats(&self) -> ServiceStats {
        let mut ki = 0u64;
        let mut kl = 0u64;
        let mut kx = 0u64;
        for shard in &self.shards {
            for slot in &shard.slots {
                let s = slot.rt.stats();
                ki += s.kernel_invocations;
                kl += s.kernel_lanes;
                kx += s.kernel_early_exits;
            }
        }
        ServiceStats {
            resident_queries: self.index.len(),
            kernel_invocations: self.stats.kernel_invocations + ki,
            kernel_lanes: self.stats.kernel_lanes + kl,
            kernel_early_exits: self.stats.kernel_early_exits + kx,
            ..self.stats
        }
    }

    /// The shard a resident query lives on.
    pub fn shard_of(&self, id: QueryId) -> Option<usize> {
        self.index.get(&id.0).map(|&(shard, _)| shard)
    }

    /// A resident or retired query's counters.
    pub fn query_stats(&self, id: QueryId) -> Option<&EngineStats> {
        match self.index.get(&id.0) {
            Some(&(shard, slot)) => Some(self.shards[shard].slots[slot].rt.stats()),
            None => self.retired.get(&id.0),
        }
    }

    /// Shard placement for a query's label set (see [`ShardPolicy`]).
    fn pick_shard(&self, q: &QueryGraph) -> usize {
        let mut labels: Vec<Label> = (0..q.num_vertices()).map(|u| q.label(u)).collect();
        labels.sort_unstable();
        labels.dedup();
        (0..self.shards.len())
            .max_by_key(|&i| {
                let s = &self.shards[i];
                let overlap = match self.cfg.policy {
                    ShardPolicy::LabelLocality => s.label_overlap(&labels),
                    ShardPolicy::Spread => 0,
                };
                (
                    overlap,
                    std::cmp::Reverse(s.slots.len()),
                    std::cmp::Reverse(i),
                )
            })
            .expect("service always has ≥ 1 shard")
    }

    /// Admits a standing query, mid-stream or before the first event. The
    /// query is placed by [`ServiceConfig::policy`], synchronized to its
    /// shard's live window (one from-scratch rebuild when the window is
    /// non-empty), and from the next [`MatchService::step`] on reports
    /// exactly the stream a standalone engine would from this point (the
    /// differential suite pins this). `collect_matches`, `batching`,
    /// `threads`, and `directed` of `cfg` are service-owned and overridden
    /// (see the crate docs).
    pub fn add_query(
        &mut self,
        q: &QueryGraph,
        cfg: EngineConfig,
        sink: Box<dyn ResultSink>,
    ) -> QueryId {
        let cfg = EngineConfig {
            collect_matches: sink.collect_matches(),
            batching: self.cfg.batching,
            directed: self.cfg.directed,
            // Runtimes never own intra-query pools inside the service; the
            // shard fan-out owns the thread budget.
            threads: 0,
            ..cfg
        };
        let shard_idx = self.pick_shard(q);
        let id = self.alloc_query_id();
        let shard = &mut self.shards[shard_idx];
        let mut rt = QueryRuntime::new(q, &shard.window, self.queue.delta(), cfg, None);
        if shard.window.num_alive_edges() > 0 {
            let full = self.full;
            rt.sync_to_window(&shard.window, |k| full.edge(k));
        }
        self.stats.admitted += 1;
        for l in (0..q.num_vertices()).map(|u| q.label(u)) {
            *shard.label_counts.entry(l).or_insert(0) += 1;
        }
        self.index.insert(id, (shard_idx, shard.slots.len()));
        shard.slots.push(Slot {
            id,
            rt,
            sink,
            out: Vec::new(),
            active: false,
            dead: false,
            delivered_occurred: 0,
            delivered_expired: 0,
        });
        QueryId(id)
    }

    /// The next free query id. `next_id` is a u32 that a daemon admitting
    /// and retiring queries for long enough will wrap; a wrapped candidate
    /// must never alias a key still referenced by the resident index or the
    /// retired-stats table, so candidates are probed against both. The
    /// probe terminates: `retired` is bounded by [`RETIRED_STATS_CAPACITY`]
    /// and the resident count is nowhere near 2³².
    fn alloc_query_id(&mut self) -> u32 {
        debug_assert!(
            (self.index.len() as u64) + (self.retired.len() as u64) < u32::MAX as u64,
            "query id space exhausted"
        );
        loop {
            let id = self.next_id;
            self.next_id = self.next_id.wrapping_add(1);
            if !self.index.contains_key(&id) && !self.retired.contains_key(&id) {
                return id;
            }
        }
    }

    /// Replaces a resident query's sink (and clears any pending disconnect
    /// mark), leaving runtime state untouched — how a daemon re-attaches a
    /// subscriber to a query restored from a checkpoint. The new sink's
    /// [`ResultSink::collect_matches`] is **not** consulted: whether the
    /// runtime materializes embeddings was fixed at admission (or restore).
    /// Returns `false` for unknown/retired ids.
    pub fn set_sink(&mut self, id: QueryId, sink: Box<dyn ResultSink>) -> bool {
        match self.index.get(&id.0) {
            Some(&(shard, slot)) => {
                let s = &mut self.shards[shard].slots[slot];
                s.sink = sink;
                s.dead = false;
                true
            }
            None => false,
        }
    }

    /// Retires a standing query (mid-stream or after), returning its final
    /// counters. Other queries' streams are untouched — the shard's window
    /// keeps running either way. Returns `None` for unknown/already
    /// retired ids.
    pub fn remove_query(&mut self, id: QueryId) -> Option<EngineStats> {
        let (shard_idx, slot_idx) = self.index.remove(&id.0)?;
        let shard = &mut self.shards[shard_idx];
        let slot = shard.slots.swap_remove(slot_idx);
        // The swap moved the former tail (if any) into `slot_idx`.
        if let Some(moved) = shard.slots.get(slot_idx) {
            self.index.insert(moved.id, (shard_idx, slot_idx));
        }
        for l in (0..slot.rt.query().num_vertices()).map(|u| slot.rt.query().label(u)) {
            if let Some(c) = shard.label_counts.get_mut(&l) {
                *c -= 1;
                if *c == 0 {
                    shard.label_counts.remove(&l);
                }
            }
        }
        let stats = *slot.rt.stats();
        // Fold the retiring query's kernel counters into the service
        // accumulators — `stats()` adds resident runtimes on top, so the
        // aggregate keeps counting work done by queries that are gone.
        self.stats.kernel_invocations += stats.kernel_invocations;
        self.stats.kernel_lanes += stats.kernel_lanes;
        self.stats.kernel_early_exits += stats.kernel_early_exits;
        self.note_retired(id.0, stats);
        self.stats.retired += 1;
        Some(stats)
    }

    /// Records a retired query's final stats, evicting the oldest
    /// retirement once [`RETIRED_STATS_CAPACITY`] is reached — the table
    /// must not grow forever in a daemon that retires queries for days.
    fn note_retired(&mut self, id: u32, stats: EngineStats) {
        while self.retired.len() >= RETIRED_STATS_CAPACITY {
            match self.retired_order.pop_front() {
                // Skip ids already taken out via `take_retired_stats`.
                Some(old) if self.retired.remove(&old).is_some() => {
                    self.stats.retired_stats_evictions += 1;
                    break;
                }
                Some(_) => continue,
                None => break,
            }
        }
        // `take_retired_stats` leaves stale ids in the order queue; compact
        // once they dominate so the queue stays O(capacity).
        if self.retired_order.len() >= 2 * RETIRED_STATS_CAPACITY {
            let retired = &self.retired;
            self.retired_order.retain(|i| retired.contains_key(i));
        }
        self.retired.insert(id, stats);
        self.retired_order.push_back(id);
    }

    /// Takes a retired query's final counters **out** of the bounded
    /// retired-stats table (they were also returned by
    /// [`MatchService::remove_query`] at retirement). Returns `None` for
    /// unknown, still-resident, or already-taken ids. Long-running
    /// frontends should prefer this over [`MatchService::query_stats`]
    /// peeks so the table stays empty instead of riding its eviction bound.
    pub fn take_retired_stats(&mut self, id: QueryId) -> Option<EngineStats> {
        self.retired.remove(&id.0)
    }

    /// Queries auto-retired by the disconnect sweep (their sink returned
    /// [`SinkClosed`](crate::SinkClosed)) since the last drain, in
    /// retirement order. Final stats are in the retired table until taken.
    pub fn drain_disconnected(&mut self) -> Vec<QueryId> {
        std::mem::take(&mut self.disconnected)
    }

    /// Retires a query because its consumer is gone (a read-side EOF a
    /// frontend noticed, or the sweep below): [`MatchService::remove_query`]
    /// plus the disconnect accounting. Returns the final stats like any
    /// retirement.
    pub fn retire_disconnected(&mut self, id: QueryId) -> Option<EngineStats> {
        let stats = self.remove_query(id)?;
        self.stats.disconnected += 1;
        self.disconnected.push(id);
        Some(stats)
    }

    /// Post-delta sweep: auto-retire every slot whose sink reported
    /// [`SinkClosed`](crate::SinkClosed) during the delta. Runs on the
    /// service thread after the shard fan-out, so survivors' streams are
    /// never perturbed mid-delta.
    fn sweep_disconnected(&mut self) {
        let mut dead: Vec<u32> = Vec::new();
        for shard in &self.shards {
            for slot in &shard.slots {
                if slot.dead {
                    dead.push(slot.id);
                }
            }
        }
        for id in dead {
            self.retire_disconnected(QueryId(id));
        }
    }

    /// Processes one stream delta — a single event in the per-event
    /// regime, a whole same-`(timestamp, kind)` batch with
    /// [`ServiceConfig::batching`] — across every shard. Returns `false`
    /// when the stream is exhausted. Shards with no resident queries still
    /// advance their windows, so later admissions stay cheap and exact.
    pub fn step(&mut self) -> bool {
        let t_pop = self.recorder.start();
        let (kind, n) = if self.cfg.batching {
            match self.queue.batch_at(self.next_event) {
                Some(b) => (b.kind, b.len()),
                None => return false,
            }
        } else {
            match self.queue.events().get(self.next_event) {
                Some(ev) => (ev.kind, 1),
                None => return false,
            }
        };
        let full = self.full;
        let mut edges = std::mem::take(&mut self.unit_scratch);
        edges.clear();
        edges.extend(
            self.queue.events()[self.next_event..self.next_event + n]
                .iter()
                .map(|ev| *full.edge(ev.edge)),
        );
        self.next_event += n;
        self.stats.events += n as u64;
        if self.cfg.batching {
            self.stats.batches += 1;
        }
        self.recorder.stop(Phase::QueuePop, t_pop);
        let batching = self.cfg.batching;
        match &self.pool {
            Some(pool) if self.shards.len() > 1 => {
                let edges = &edges[..];
                let t = self.recorder.start();
                pool.for_each_mut(&mut self.shards, |_i, shard| {
                    shard.apply_unit(full, kind, edges, batching);
                });
                self.recorder.stop(Phase::PoolDispatch, t);
            }
            _ => {
                for shard in &mut self.shards {
                    shard.apply_unit(full, kind, &edges, batching);
                }
            }
        }
        self.unit_scratch = edges;
        self.sweep_disconnected();
        if self.auditor.due(n as u64) {
            let out = self.audit_now(self.auditor.level());
            tcsm_core::audit::expect_clean("MatchService step audit", &out);
        }
        true
    }

    /// Drains the rest of the stream.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs the cross-crate invariant audit over every resident runtime at
    /// `level`, tagging each violation with the owning query id.
    pub fn audit_now(&self, level: tcsm_core::AuditLevel) -> Vec<tcsm_core::AuditViolation> {
        let full = self.full;
        let mut out = Vec::new();
        for shard in &self.shards {
            for slot in &shard.slots {
                if !slot.rt.done() {
                    let mut vs = slot.rt.audit(&shard.window, |k| full.edge(k), level);
                    for v in &mut vs {
                        *v = tcsm_core::AuditViolation::new(
                            v.name(),
                            format!("query {}: {}", slot.id, v.detail()),
                        );
                    }
                    out.append(&mut vs);
                }
            }
        }
        out
    }

    /// The service-level phase recorder (queue pop, pool dispatch,
    /// checkpoint, restore). Per-query phases are on each runtime's own
    /// recorder; [`MatchService::metrics_text`] rolls both up.
    pub fn telemetry(&self) -> &PhaseRecorder {
        &self.recorder
    }

    /// Replaces the env-seeded trace configuration of the service *and*
    /// every resident runtime with `level` on `clock` (test/bench hook —
    /// inject a [`tcsm_telemetry::ManualClock`] for deterministic phase
    /// timings). Queries admitted afterwards still seed from the
    /// environment.
    #[doc(hidden)]
    pub fn set_trace(&mut self, level: TraceLevel, clock: Arc<dyn Clock>) {
        self.recorder = PhaseRecorder::with_clock(level, Arc::clone(&clock));
        for shard in &mut self.shards {
            for slot in &mut shard.slots {
                slot.rt.set_trace(level, Arc::clone(&clock));
            }
        }
    }

    /// Renders the service counters and every per-phase latency histogram
    /// as Prometheus-style text exposition (grammar: `tcsm_telemetry`
    /// crate docs). Histogram families are labelled by `scope` —
    /// `service` (the service-level recorder), `shard<i>` (merged over
    /// shard `i`'s resident queries), `q<id>` (one resident query) — and
    /// `phase`. Retired queries' phase timings are dropped with their
    /// runtimes; their kernel counters survive in the service counters.
    pub fn metrics_text(&self) -> String {
        let stats = self.stats();
        let mut w = MetricsWriter::new();
        for (name, kind, value) in [
            ("tcsm_service_shards", "gauge", stats.shards as u64),
            (
                "tcsm_service_windows_allocated",
                "gauge",
                stats.windows_allocated,
            ),
            (
                "tcsm_service_resident_queries",
                "gauge",
                stats.resident_queries as u64,
            ),
            ("tcsm_service_admitted_total", "counter", stats.admitted),
            ("tcsm_service_retired_total", "counter", stats.retired),
            (
                "tcsm_service_disconnected_total",
                "counter",
                stats.disconnected,
            ),
            ("tcsm_service_events_total", "counter", stats.events),
            ("tcsm_service_batches_total", "counter", stats.batches),
            (
                "tcsm_service_kernel_invocations_total",
                "counter",
                stats.kernel_invocations,
            ),
            (
                "tcsm_service_kernel_lanes_total",
                "counter",
                stats.kernel_lanes,
            ),
            (
                "tcsm_service_kernel_early_exits_total",
                "counter",
                stats.kernel_early_exits,
            ),
            (
                "tcsm_service_retired_stats_evictions_total",
                "counter",
                stats.retired_stats_evictions,
            ),
        ] {
            w.type_header(name, kind);
            w.sample(name, &[], value);
        }
        const HIST: &str = "tcsm_phase_latency_us";
        w.type_header(HIST, "summary");
        for phase in Phase::ALL {
            if let Some(h) = self.recorder.histogram(phase) {
                w.histogram(HIST, &[("scope", "service"), ("phase", phase.name())], h);
            }
        }
        for (si, shard) in self.shards.iter().enumerate() {
            let mut acc: [LatencyHistogram; Phase::COUNT] =
                std::array::from_fn(|_| LatencyHistogram::new());
            for slot in &shard.slots {
                slot.rt.telemetry().merge_into(&mut acc);
            }
            let scope = format!("shard{si}");
            for phase in Phase::ALL {
                let h = &acc[phase.index()];
                if !h.is_empty() {
                    w.histogram(HIST, &[("scope", &scope), ("phase", phase.name())], h);
                }
            }
        }
        for shard in &self.shards {
            for slot in &shard.slots {
                let scope = format!("q{}", slot.id);
                for phase in Phase::ALL {
                    if let Some(h) = slot.rt.telemetry().histogram(phase) {
                        w.histogram(HIST, &[("scope", &scope), ("phase", phase.name())], h);
                    }
                }
            }
        }
        w.finish()
    }

    /// Overrides the env-seeded audit cadence (test hook).
    #[doc(hidden)]
    pub fn set_audit(&mut self, level: tcsm_core::AuditLevel, every: u64) {
        self.auditor = tcsm_core::Auditor::with(level, every);
    }

    /// From-scratch consistency audit of every resident runtime against
    /// its shard's window (differential-suite hook).
    #[doc(hidden)]
    pub fn check_consistency(&self) {
        let full = self.full;
        for shard in &self.shards {
            for slot in &shard.slots {
                if !slot.rt.done() {
                    slot.rt.check_consistency(&shard.window, |k| full.edge(k));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectingSink, CountingSink};
    use tcsm_core::TcmEngine;
    use tcsm_graph::{QueryGraphBuilder, TemporalGraphBuilder};

    fn workload() -> (Vec<QueryGraph>, TemporalGraph) {
        let mut gb = TemporalGraphBuilder::new();
        let v = gb.vertices(5, 0);
        for t in 1..=30i64 {
            gb.edge(v + (t % 5) as u32, v + ((t + 1) % 5) as u32, t);
        }
        let g = gb.build().unwrap();
        let queries = (2..=4usize)
            .map(|k| {
                let mut qb = QueryGraphBuilder::new();
                let vs: Vec<_> = (0..=k).map(|_| qb.vertex(0)).collect();
                let mut prev = None;
                for i in 0..k {
                    let e = qb.edge(vs[i], vs[i + 1]);
                    if let Some(p) = prev {
                        qb.precede(p, e);
                    }
                    prev = Some(e);
                }
                qb.build().unwrap()
            })
            .collect();
        (queries, g)
    }

    fn serial_cfg() -> EngineConfig {
        EngineConfig {
            threads: 0,
            ..EngineConfig::default()
        }
    }

    fn standalone(q: &QueryGraph, g: &TemporalGraph, delta: i64) -> (Vec<MatchEvent>, EngineStats) {
        let mut e = TcmEngine::new(q, g, delta, serial_cfg()).unwrap();
        let out = e.run();
        (out, *e.stats())
    }

    #[test]
    fn shared_window_service_matches_standalone_engines() {
        let (queries, g) = workload();
        for shards in [1usize, 2, 3] {
            let cfg = ServiceConfig {
                shards,
                threads: 0,
                batching: false,
                directed: false,
                policy: ShardPolicy::LabelLocality,
            };
            let mut svc = MatchService::new(&g, 10, cfg).unwrap();
            let handles: Vec<_> = queries
                .iter()
                .map(|q| {
                    let (sink, got) = CollectingSink::new();
                    (svc.add_query(q, serial_cfg(), Box::new(sink)), got)
                })
                .collect();
            svc.run();
            assert_eq!(svc.stats().windows_allocated, shards as u64);
            for (q, (id, got)) in queries.iter().zip(&handles) {
                let (expect, stats) = standalone(q, &g, 10);
                assert_eq!(got.take(), expect, "stream diverged ({shards} shards)");
                assert_eq!(
                    svc.query_stats(*id).unwrap().semantic(),
                    stats.semantic(),
                    "stats diverged ({shards} shards)"
                );
            }
        }
    }

    #[test]
    fn deep_audit_every_event_passes_on_the_service_path() {
        let (queries, g) = workload();
        for shards in [1usize, 2] {
            let cfg = ServiceConfig {
                shards,
                threads: 0,
                batching: false,
                directed: false,
                policy: ShardPolicy::LabelLocality,
            };
            let mut svc = MatchService::new(&g, 10, cfg).unwrap();
            for q in &queries {
                svc.add_query(q, serial_cfg(), Box::new(CountingSink::new().0));
            }
            // The step-path hook panics on any violation; the final sweep
            // below then re-checks explicitly.
            svc.set_audit(tcsm_core::AuditLevel::Deep, 1);
            svc.run();
            let out = svc.audit_now(tcsm_core::AuditLevel::Deep);
            assert!(out.is_empty(), "service audit flagged: {out:?}");
        }
    }

    #[test]
    fn label_locality_groups_same_label_queries() {
        let mut gb = TemporalGraphBuilder::new();
        gb.vertex(0);
        gb.vertex(0);
        gb.vertex(1);
        gb.vertex(1);
        let g = gb.build().unwrap();
        let q_of = |label: u32| {
            let mut qb = QueryGraphBuilder::new();
            let (a, b) = (qb.vertex(label), qb.vertex(label));
            qb.edge(a, b);
            qb.build().unwrap()
        };
        let mut svc = MatchService::new(
            &g,
            10,
            ServiceConfig {
                shards: 2,
                threads: 0,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let a1 = svc.add_query(&q_of(0), serial_cfg(), Box::new(CountingSink::new().0));
        let b1 = svc.add_query(&q_of(1), serial_cfg(), Box::new(CountingSink::new().0));
        let a2 = svc.add_query(&q_of(0), serial_cfg(), Box::new(CountingSink::new().0));
        let b2 = svc.add_query(&q_of(1), serial_cfg(), Box::new(CountingSink::new().0));
        assert_eq!(
            svc.shard_of(a1),
            svc.shard_of(a2),
            "label-0 queries co-locate"
        );
        assert_eq!(
            svc.shard_of(b1),
            svc.shard_of(b2),
            "label-1 queries co-locate"
        );
        assert_ne!(
            svc.shard_of(a1),
            svc.shard_of(b1),
            "labels split across shards"
        );
    }

    #[test]
    fn spread_policy_gives_one_query_per_shard() {
        let (queries, g) = workload();
        let mut svc = MatchService::new(
            &g,
            10,
            ServiceConfig {
                shards: queries.len(),
                policy: ShardPolicy::Spread,
                threads: 0,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let ids: Vec<_> = queries
            .iter()
            .map(|q| svc.add_query(q, serial_cfg(), Box::new(CountingSink::new().0)))
            .collect();
        let mut shards: Vec<_> = ids.iter().map(|&id| svc.shard_of(id).unwrap()).collect();
        shards.sort_unstable();
        shards.dedup();
        assert_eq!(shards.len(), queries.len(), "one shard per query");
    }

    #[test]
    fn mid_stream_admission_reports_the_standalone_suffix() {
        let (queries, g) = workload();
        let q = &queries[1];
        // Standalone engine, recording the stream per event.
        let mut engine = TcmEngine::new(q, &g, 10, serial_cfg()).unwrap();
        let mut per_event: Vec<Vec<MatchEvent>> = Vec::new();
        let mut buf = Vec::new();
        while engine.step(&mut buf) {
            per_event.push(std::mem::take(&mut buf));
        }
        let total_events = per_event.len();
        for admit_at in [0usize, 1, total_events / 3, total_events / 2] {
            let mut svc = MatchService::new(&g, 10, ServiceConfig::default()).unwrap();
            for _ in 0..admit_at {
                assert!(svc.step());
            }
            let (sink, got) = CollectingSink::new();
            let id = svc.add_query(q, serial_cfg(), Box::new(sink));
            svc.run();
            let expect: Vec<MatchEvent> = per_event[admit_at..]
                .iter()
                .flat_map(|v| v.iter().cloned())
                .collect();
            assert_eq!(
                got.take(),
                expect,
                "admission at event {admit_at} must report the standalone suffix"
            );
            assert_eq!(
                svc.query_stats(id).unwrap().events,
                (total_events - admit_at) as u64
            );
        }
    }

    #[test]
    fn removal_mid_stream_leaves_other_queries_untouched() {
        let (queries, g) = workload();
        let mut svc = MatchService::new(
            &g,
            10,
            ServiceConfig {
                shards: 2,
                threads: 0,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let handles: Vec<_> = queries
            .iter()
            .map(|q| {
                let (sink, got) = CollectingSink::new();
                (svc.add_query(q, serial_cfg(), Box::new(sink)), got)
            })
            .collect();
        for _ in 0..svc.remaining_events() / 2 {
            svc.step();
        }
        let removed = svc.remove_query(handles[0].0).expect("resident");
        assert!(removed.events > 0);
        assert!(svc.remove_query(handles[0].0).is_none(), "retired is gone");
        assert_eq!(
            svc.query_stats(handles[0].0).map(|s| s.events),
            Some(removed.events),
            "retired stats stay queryable"
        );
        svc.run();
        for (q, (id, got)) in queries.iter().zip(&handles).skip(1) {
            let (expect, stats) = standalone(q, &g, 10);
            assert_eq!(got.take(), expect, "survivor stream disturbed by removal");
            assert_eq!(svc.query_stats(*id).unwrap().semantic(), stats.semantic());
        }
    }

    #[test]
    fn counting_sink_counts_without_materializing() {
        let (queries, g) = workload();
        let mut svc = MatchService::new(&g, 10, ServiceConfig::default()).unwrap();
        let (sink, counts) = CountingSink::new();
        let id = svc.add_query(&queries[0], serial_cfg(), Box::new(sink));
        svc.run();
        let stats = svc.query_stats(id).unwrap();
        assert!(stats.occurred > 0);
        assert_eq!(counts.occurred(), stats.occurred);
        assert_eq!(counts.expired(), stats.expired);
    }

    /// A sink whose consumer dies after `fail_after` deliveries.
    struct FlakySink {
        inner: CollectingSink,
        deliveries: usize,
        fail_after: usize,
    }

    impl ResultSink for FlakySink {
        fn deliver(
            &mut self,
            qid: QueryId,
            events: &mut Vec<MatchEvent>,
            occ: u64,
            exp: u64,
        ) -> Result<(), crate::SinkClosed> {
            if self.deliveries >= self.fail_after {
                return Err(crate::SinkClosed);
            }
            self.deliveries += 1;
            self.inner.deliver(qid, events, occ, exp)
        }
    }

    #[test]
    fn disconnected_sink_is_auto_retired_without_touching_survivors() {
        let (queries, g) = workload();
        let mut svc = MatchService::new(
            &g,
            10,
            ServiceConfig {
                shards: 2,
                threads: 0,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let (flaky_got_sink, flaky_got) = CollectingSink::new();
        let flaky_id = svc.add_query(
            &queries[0],
            serial_cfg(),
            Box::new(FlakySink {
                inner: flaky_got_sink,
                deliveries: 0,
                fail_after: 3,
            }),
        );
        let survivors: Vec<_> = queries[1..]
            .iter()
            .map(|q| {
                let (sink, got) = CollectingSink::new();
                (svc.add_query(q, serial_cfg(), Box::new(sink)), got)
            })
            .collect();
        svc.run();
        // The flaky query was auto-retired at its fourth delivery…
        assert!(svc.shard_of(flaky_id).is_none(), "dead query not resident");
        assert_eq!(svc.stats().disconnected, 1);
        assert_eq!(svc.stats().retired, 1);
        assert_eq!(svc.drain_disconnected(), vec![flaky_id]);
        assert!(svc.drain_disconnected().is_empty(), "drain is take-once");
        // …its delivered prefix is exactly the standalone prefix…
        let (full, _) = standalone(&queries[0], &g, 10);
        let delivered = flaky_got.take();
        assert_eq!(delivered[..], full[..delivered.len()]);
        // …its final stats are peekable and takeable…
        assert!(svc.query_stats(flaky_id).is_some());
        assert!(svc.take_retired_stats(flaky_id).is_some());
        assert!(svc.take_retired_stats(flaky_id).is_none(), "take-once");
        // …and every survivor's stream is byte-identical to standalone.
        for (q, (id, got)) in queries[1..].iter().zip(&survivors) {
            let (expect, _) = standalone(q, &g, 10);
            assert_eq!(got.take(), expect, "survivor {id} disturbed");
        }
    }

    #[test]
    fn retired_stats_table_is_bounded() {
        let (queries, g) = workload();
        let mut svc = MatchService::new(&g, 10, ServiceConfig::default()).unwrap();
        let n = crate::RETIRED_STATS_CAPACITY + 8;
        let mut ids = Vec::new();
        for _ in 0..n {
            let id = svc.add_query(&queries[0], serial_cfg(), Box::new(CountingSink::new().0));
            ids.push(id);
            svc.remove_query(id).expect("resident");
        }
        assert_eq!(svc.stats().retired, n as u64);
        // Oldest retirements evicted, newest kept, table at capacity.
        assert!(svc.query_stats(ids[0]).is_none(), "oldest evicted");
        assert!(svc.query_stats(ids[7]).is_none(), "8 over capacity");
        assert!(svc.query_stats(ids[8]).is_some(), "within bound kept");
        assert!(svc.query_stats(*ids.last().unwrap()).is_some());
        // Each eviction is counted — the operator-facing signal that
        // `take_retired_stats` readers are falling behind.
        assert_eq!(svc.stats().retired_stats_evictions, 8);
    }

    #[test]
    fn retired_kernel_counters_fold_into_service_stats() {
        let (queries, g) = workload();
        let mut svc = MatchService::new(&g, 10, ServiceConfig::default()).unwrap();
        let id = svc.add_query(&queries[0], serial_cfg(), Box::new(CountingSink::new().0));
        svc.run();
        let resident = svc.stats();
        let per_query = svc.query_stats(id).unwrap();
        assert!(
            per_query.kernel_invocations > 0,
            "workload must exercise the kernel for this test to bite"
        );
        assert_eq!(resident.kernel_invocations, per_query.kernel_invocations);
        // Retiring the query must not make its kernel work vanish from
        // the aggregate.
        svc.remove_query(id).expect("resident");
        let after = svc.stats();
        assert_eq!(after.kernel_invocations, resident.kernel_invocations);
        assert_eq!(after.kernel_lanes, resident.kernel_lanes);
        assert_eq!(after.kernel_early_exits, resident.kernel_early_exits);
    }

    #[test]
    fn metrics_exposition_parses_and_quantiles_are_ordered() {
        use tcsm_telemetry::{parse_exposition, ManualClock, TraceLevel};
        let (queries, g) = workload();
        let mut svc = MatchService::new(&g, 10, ServiceConfig::default()).unwrap();
        let id = svc.add_query(&queries[0], serial_cfg(), Box::new(CountingSink::new().0));
        svc.set_trace(TraceLevel::Counters, Arc::new(ManualClock::new(3)));
        svc.run();
        let text = svc.metrics_text();
        let samples = parse_exposition(&text).expect("exposition parses");
        // Counters in the text agree with the live aggregate.
        let stats = svc.stats();
        let counter = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .value
        };
        assert_eq!(counter("tcsm_service_events_total"), stats.events as f64);
        assert_eq!(
            counter("tcsm_service_admitted_total"),
            stats.admitted as f64
        );
        assert_eq!(
            counter("tcsm_service_kernel_invocations_total"),
            stats.kernel_invocations as f64
        );
        // Every (scope, phase) histogram family has ordered quantiles, and
        // the service and per-query scopes are both present.
        let pick = |scope: &str, phase: &str, name: &str, quant: Option<&str>| {
            samples
                .iter()
                .find(|s| {
                    s.name == name
                        && s.label("scope") == Some(scope)
                        && s.label("phase") == Some(phase)
                        && s.label("quantile") == quant
                })
                .map(|s| s.value)
        };
        let mut scopes_seen = Vec::new();
        for s in &samples {
            if s.name != "tcsm_phase_latency_us" || s.label("quantile") != Some("0.5") {
                continue;
            }
            let (scope, phase) = (s.label("scope").unwrap(), s.label("phase").unwrap());
            scopes_seen.push(scope.to_string());
            let p50 = s.value;
            let p90 = pick(scope, phase, "tcsm_phase_latency_us", Some("0.9")).unwrap();
            let p99 = pick(scope, phase, "tcsm_phase_latency_us", Some("0.99")).unwrap();
            let max = pick(scope, phase, "tcsm_phase_latency_us_max", None).unwrap();
            assert!(
                p50 <= p90 && p90 <= p99 && p99 <= max,
                "{scope}/{phase}: quantiles out of order: {p50} {p90} {p99} {max}"
            );
        }
        assert!(scopes_seen.iter().any(|s| s == "service"), "service scope");
        let qscope = format!("q{}", id.raw());
        assert!(scopes_seen.contains(&qscope), "per-query scope {qscope}");
        assert!(scopes_seen.iter().any(|s| s == "shard0"), "shard scope");
    }

    #[test]
    fn query_id_wraparound_never_aliases_a_live_id() {
        let (queries, g) = workload();
        let mut svc = MatchService::new(&g, 10, ServiceConfig::default()).unwrap();
        let first = svc.add_query(&queries[0], serial_cfg(), Box::new(CountingSink::new().0));
        assert_eq!(first.raw(), 0);
        // Fast-forward the id cursor to the edge of the u32 space.
        svc.next_id = u32::MAX;
        let high = svc.add_query(&queries[1], serial_cfg(), Box::new(CountingSink::new().0));
        assert_eq!(high.raw(), u32::MAX);
        // The wrapped candidate 0 aliases the live `first`: it must be
        // skipped, not handed out twice.
        let wrapped = svc.add_query(&queries[2], serial_cfg(), Box::new(CountingSink::new().0));
        assert_eq!(wrapped.raw(), 1, "live id 0 skipped after wrap");
        assert_eq!(svc.stats().resident_queries, 3);
        // All three remain individually addressable.
        for id in [first, high, wrapped] {
            assert!(svc.shard_of(id).is_some(), "{id} resident after wrap");
        }
        // And a retired id is skipped too while its stats are held.
        svc.remove_query(high).unwrap();
        svc.next_id = u32::MAX;
        let again = svc.add_query(&queries[1], serial_cfg(), Box::new(CountingSink::new().0));
        assert_eq!(again.raw(), 2, "retired id not re-issued while held");
    }

    #[test]
    fn set_sink_reattaches_a_subscriber() {
        let (queries, g) = workload();
        let mut svc = MatchService::new(&g, 10, ServiceConfig::default()).unwrap();
        let id = svc.add_query(&queries[0], serial_cfg(), Box::new(CollectingSink::new().0));
        for _ in 0..svc.remaining_events() / 2 {
            svc.step();
        }
        let (sink, got) = CollectingSink::new();
        assert!(svc.set_sink(id, Box::new(sink)));
        let before = svc.query_stats(id).unwrap().events;
        svc.run();
        // The replacement sink sees exactly the suffix.
        let mut engine = TcmEngine::new(&queries[0], &g, 10, serial_cfg()).expect("engine builds");
        let mut per_event = Vec::new();
        let mut buf = Vec::new();
        while engine.step(&mut buf) {
            per_event.push(std::mem::take(&mut buf));
        }
        let expect: Vec<MatchEvent> = per_event[before as usize..]
            .iter()
            .flatten()
            .cloned()
            .collect();
        assert_eq!(got.take(), expect);
        assert!(
            !svc.set_sink(QueryId::from_raw(999), Box::new(CollectingSink::new().0)),
            "unknown id refused"
        );
    }

    #[test]
    fn service_wrappers_match_core_run_queries() {
        let (queries, g) = workload();
        let ours = crate::run_queries_parallel(&queries, &g, 10, serial_cfg(), 2).unwrap();
        #[allow(deprecated)]
        let theirs = tcsm_core::run_queries_parallel(&queries, &g, 10, serial_cfg(), 2).unwrap();
        assert_eq!(ours.len(), theirs.len());
        for (a, b) in ours.iter().zip(&theirs) {
            assert_eq!(a.semantic(), b.semantic());
        }
    }
}
