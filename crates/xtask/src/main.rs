//! Workspace lint driver: `cargo run -p xtask -- lint [--bless]`.
//!
//! A hand-rolled, zero-dependency source scanner enforcing the repo-specific
//! rules that `clippy` cannot know about. Every rule exists because a past
//! or planned failure mode of *this* codebase makes it load-bearing:
//!
//! * **`no-unwrap`** — no `.unwrap()` in non-test library code of the
//!   runtime crates (`core`, `filter`, `dcs`, `graph`, `service`,
//!   `server`). The engine is long-running and serves checkpoint/restore
//!   paths fed by untrusted bytes; failures must surface as typed
//!   `GraphError`/`ServiceError`/`CodecError` values, or at minimum as a
//!   `.expect("…")` whose message documents why the state is impossible.
//! * **`safety-comment`** — every line of code containing `unsafe` must be
//!   preceded (within a few lines) by a `// SAFETY:` comment — or a
//!   `/// # Safety` doc section for `unsafe fn`s — stating the invariant
//!   that makes it sound. The `WorkerPool`'s lifetime-erased job
//!   pointer is exactly the kind of unsafety that is only sound because of
//!   a protocol (epoch-tagged tickets + a completion barrier); the proof
//!   obligation belongs next to the code.
//! * **`default-hasher`** — no std-default `HashMap`/`HashSet` in the
//!   hot-path crates (`graph`, `dcs`, `filter`, `core`). SipHash dominated
//!   early profiles; `tcsm_graph::fx` provides the sanctioned FxHash
//!   aliases, and falling back to the default hasher silently reverts that
//!   win.
//! * **`codec-cast`** — no bare `as` numeric casts in
//!   `tcsm-graph::codec`. The codec defines the durable snapshot *and* the
//!   wire format; a silent `as` truncation (e.g. a >4 GiB frame length
//!   narrowed to `u32`) corrupts bytes that a checksum then faithfully
//!   certifies. Conversions must be `From`/`TryFrom` with a typed error or
//!   a documented `expect`.
//! * **`instant-now`** — no `Instant::now()` outside
//!   `tcsm-telemetry`'s clock module. All phase timing must flow through
//!   the [`tcsm_telemetry::Clock`] trait so tests can inject a
//!   deterministic `ManualClock`; a stray `Instant::now()` is a
//!   measurement the telemetry layer cannot see, merge, or make
//!   deterministic. The one sanctioned call (the `SystemClock` origin)
//!   carries a waiver.
//! * **`codec-shape`** — a FORMAT_VERSION tripwire. A golden fingerprint
//!   (FNV-1a over every non-test source line that touches a codec
//!   primitive — `put_*`/`get_*`/`section(`/`encode_frame` — across the
//!   workspace, plus `FORMAT_VERSION` itself) is stored in
//!   `crates/xtask/codec-shape.golden`. If any encode/decode shape changes
//!   while FORMAT_VERSION stays put, the lint fails: bump the version in
//!   `crates/graph/src/codec.rs`, then re-bless with
//!   `cargo run -p xtask -- lint -- --bless` (or `--bless` after `lint`).
//!
//! A violation can be waived on a specific line with a trailing
//! `// lint: allow(<rule>)` comment on the same or the preceding line;
//! waivers are for code that *satisfies the rule's intent* in a way the
//! scanner cannot see (e.g. a `HashMap` alias that supplies its own
//! `BuildHasher`).
//!
//! Test code — `#[cfg(test)]` items, and everything under `tests/`,
//! `benches/`, `examples/` — is exempt from every rule: tests are run, not
//! shipped, and `.unwrap()` is the correct assertion idiom there.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose `src/` trees are scanned at all (rule scopes narrow this).
const SCANNED_CRATES: &[&str] = &[
    "graph",
    "telemetry",
    "dag",
    "filter",
    "dcs",
    "core",
    "service",
    "server",
    "baselines",
    "datasets",
    "bench",
    "xtask",
];

/// Crates where `.unwrap()` is forbidden in non-test library code.
const NO_UNWRAP_CRATES: &[&str] = &["core", "filter", "dcs", "graph", "service", "server"];

/// Hot-path crates where the std default hasher is forbidden.
const NO_DEFAULT_HASHER_CRATES: &[&str] = &["graph", "dcs", "filter", "core"];

/// Source tokens whose lines define the encode/decode shape. Any non-test
/// line containing one of these feeds the codec-shape fingerprint.
const SHAPE_TOKENS: &[&str] = &[
    "put_u8",
    "put_u32",
    "put_u64",
    "put_i64",
    "put_bool",
    "put_usize",
    "put_ts",
    "put_bytes",
    "put_str",
    "put_bits",
    "get_u8",
    "get_u32",
    "get_u64",
    "get_i64",
    "get_bool",
    "get_usize",
    "get_count",
    "get_ts",
    "get_bytes",
    "get_str",
    "get_bits",
    "encode_frame",
    "open_frame",
    "FORMAT_VERSION",
];

/// Numeric primitive names that make an `as` cast a `codec-cast` violation.
const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// How many preceding lines a `SAFETY:` comment may sit above its `unsafe`.
const SAFETY_WINDOW: usize = 12;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut bless = false;
    let mut cmd = None;
    for a in &args {
        match a.as_str() {
            "--bless" => bless = true,
            "lint" => cmd = Some("lint"),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: cargo run -p xtask -- lint [--bless]");
                return ExitCode::FAILURE;
            }
        }
    }
    if cmd != Some("lint") {
        eprintln!("usage: cargo run -p xtask -- lint [--bless]");
        return ExitCode::FAILURE;
    }

    let root = workspace_root();
    match run_lint(&root, bless) {
        Ok(0) => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(n) => {
            eprintln!("xtask lint: {n} violation(s)");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: I/O failure: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root is two levels above this crate's manifest dir.
fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

fn run_lint(root: &Path, bless: bool) -> std::io::Result<usize> {
    let mut violations: Vec<String> = Vec::new();
    let mut shape_lines: Vec<String> = Vec::new();

    for krate in SCANNED_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let text = fs::read_to_string(&path)?;
            let scan = scan_source(&text);
            check_file(krate, &rel, &scan, &mut violations);
            collect_shape_lines(&rel, &scan, &mut shape_lines);
        }
    }

    check_codec_shape(root, &shape_lines, bless, &mut violations)?;

    for v in &violations {
        eprintln!("{v}");
    }
    Ok(violations.len())
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---- source model -------------------------------------------------------

/// One source line after lexical classification.
struct LineInfo {
    /// Code with comments removed and string/char-literal contents blanked.
    code: String,
    /// The comment text of the line (line + block comment contents).
    comment: String,
    /// True when the line belongs to a `#[cfg(test)]` item.
    is_test: bool,
}

struct FileScan {
    lines: Vec<LineInfo>,
}

/// Lexes a file into per-line code/comment channels and marks
/// `#[cfg(test)]` item regions. This is a pragmatic scanner, not a full
/// Rust lexer: it understands line/block comments (nested), string, raw
/// string, byte string, and char literals, and distinguishes lifetimes
/// from char literals — enough to never misread this workspace.
fn scan_source(text: &str) -> FileScan {
    #[derive(PartialEq)]
    enum Mode {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }

    let mut lines: Vec<LineInfo> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut mode = Mode::Code;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;

    while i <= chars.len() {
        let c = if i < chars.len() { chars[i] } else { '\n' };
        let at_end = i == chars.len();
        if c == '\n' {
            if let Mode::LineComment = mode {
                mode = Mode::Code;
            }
            if !(at_end && code.is_empty() && comment.is_empty() && lines.is_empty()) {
                // Don't emit a phantom line for a file ending in '\n'.
                let emit = !at_end || !code.is_empty() || !comment.is_empty();
                if emit {
                    lines.push(LineInfo {
                        code: std::mem::take(&mut code),
                        comment: std::mem::take(&mut comment),
                        is_test: false,
                    });
                }
            }
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    mode = Mode::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    // Raw string? Look back over emitted code for `r`/`br`
                    // plus hashes immediately before this quote.
                    let tail: Vec<char> = code.chars().rev().collect();
                    let mut hashes = 0u32;
                    while (hashes as usize) < tail.len() && tail[hashes as usize] == '#' {
                        hashes += 1;
                    }
                    let after = tail.get(hashes as usize).copied();
                    let is_raw = after == Some('r')
                        && (hashes > 0 || {
                            // `r"` only counts when `r` is not part of a
                            // longer identifier (e.g. `var"` is impossible
                            // anyway, but `_r` would be).
                            let before = tail.get(hashes as usize + 1).copied();
                            !matches!(before, Some(ch) if ch.is_alphanumeric() || ch == '_')
                        });
                    code.push('"');
                    mode = if is_raw {
                        Mode::RawStr(hashes)
                    } else {
                        Mode::Str
                    };
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Char/byte literal vs lifetime: a literal closes with
                    // a `'` after one (possibly escaped) char.
                    let is_literal = match next {
                        Some('\\') => true,
                        Some(_) => chars.get(i + 2).copied() == Some('\''),
                        None => false,
                    };
                    if is_literal {
                        code.push('\'');
                        mode = Mode::Char;
                        i += 1;
                        continue;
                    }
                    // Lifetime: emit as code.
                    code.push('\'');
                    i += 1;
                    continue;
                }
                code.push(c);
                i += 1;
            }
            Mode::LineComment => {
                comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped char (blanked anyway)
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k).copied() != Some('#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        mode = Mode::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                code.push(' ');
                i += 1;
            }
            Mode::Char => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    code.push('\'');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
        if at_end {
            break;
        }
    }

    let mut scan = FileScan { lines };
    mark_test_regions(&mut scan);
    scan
}

/// Marks every line of each `#[cfg(test)]` item (attribute through the
/// item's closing brace, or its `;` for brace-less items) as test code.
fn mark_test_regions(scan: &mut FileScan) {
    let n = scan.lines.len();
    let mut i = 0;
    while i < n {
        if !scan.lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Walk forward from the attribute to the end of the annotated item.
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        loop {
            scan.lines[j].is_test = true;
            let code = scan.lines[j].code.clone();
            let mut ended = false;
            for ch in code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            ended = true;
                        }
                    }
                    ';' if !opened && depth == 0 && j > i => ended = true,
                    _ => {}
                }
            }
            // A one-line `#[cfg(test)] use …;` ends on its own line.
            if !ended && !opened && j == i && code.trim_end().ends_with(';') {
                ended = true;
            }
            if ended || j + 1 == n {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
}

// ---- rules --------------------------------------------------------------

/// True when line `idx` (or the one above) carries `lint: allow(<rule>)`.
fn allowed(scan: &FileScan, idx: usize, rule: &str) -> bool {
    let marker = format!("lint: allow({rule})");
    if scan.lines[idx].comment.contains(&marker) {
        return true;
    }
    idx > 0 && scan.lines[idx - 1].comment.contains(&marker)
}

/// True when `code` contains `word` delimited by non-identifier chars.
fn has_word(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|ch| ch.is_alphanumeric() || ch == '_');
        let after = code[at + word.len()..].chars().next();
        let after_ok = !after.is_some_and(|ch| ch.is_alphanumeric() || ch == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// True when `code` contains a bare `as <numeric-type>` cast.
fn has_numeric_cast(code: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(" as ") {
        let at = start + pos;
        // `as` must itself be a word ("alias as " must not match — the
        // preceding char of " as " is a space, so it always is).
        let rest = &code[at + 4..];
        let ident: String = rest
            .chars()
            .take_while(|ch| ch.is_alphanumeric() || *ch == '_')
            .collect();
        if NUMERIC_TYPES.contains(&ident.as_str()) {
            return true;
        }
        start = at + 4;
    }
    false
}

fn check_file(krate: &str, rel: &str, scan: &FileScan, violations: &mut Vec<String>) {
    let lines = &scan.lines;
    for (idx, line) in lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        let lineno = idx + 1;

        if NO_UNWRAP_CRATES.contains(&krate)
            && line.code.contains(".unwrap()")
            && !allowed(scan, idx, "unwrap")
        {
            violations.push(format!(
                "{rel}:{lineno}: [no-unwrap] `.unwrap()` in non-test library code — \
                 return a typed error or use a documented `.expect(\"…\")`"
            ));
        }

        if has_word(&line.code, "unsafe") && !allowed(scan, idx, "safety-comment") {
            let lo = idx.saturating_sub(SAFETY_WINDOW);
            let documented = (lo..=idx).any(|k| {
                lines[k].comment.contains("SAFETY")
                    || lines[k].comment.contains("# Safety")
                    || lines[k].code.contains("SAFETY")
            });
            if !documented {
                violations.push(format!(
                    "{rel}:{lineno}: [safety-comment] `unsafe` without a `// SAFETY:` \
                     comment in the preceding {SAFETY_WINDOW} lines"
                ));
            }
        }

        if NO_DEFAULT_HASHER_CRATES.contains(&krate)
            && (has_word(&line.code, "HashMap") || has_word(&line.code, "HashSet"))
            && !allowed(scan, idx, "default-hasher")
        {
            violations.push(format!(
                "{rel}:{lineno}: [default-hasher] std `HashMap`/`HashSet` in a hot-path \
                 crate — use `tcsm_graph::fx::{{FxHashMap, FxHashSet}}`"
            ));
        }

        if line.code.contains("Instant::now(") && !allowed(scan, idx, "instant-now") {
            violations.push(format!(
                "{rel}:{lineno}: [instant-now] `Instant::now()` outside the telemetry \
                 clock — read time through `tcsm_telemetry::Clock` (inject a \
                 `ManualClock` in tests) so timings stay deterministic and mergeable"
            ));
        }

        if rel == "crates/graph/src/codec.rs"
            && has_numeric_cast(&line.code)
            && !allowed(scan, idx, "codec-cast")
        {
            violations.push(format!(
                "{rel}:{lineno}: [codec-cast] bare `as` numeric cast in the codec — \
                 use `From`/`TryFrom` with a typed error or documented `expect`"
            ));
        }
    }
}

// ---- codec-shape tripwire -----------------------------------------------

fn collect_shape_lines(rel: &str, scan: &FileScan, out: &mut Vec<String>) {
    for line in &scan.lines {
        if line.is_test {
            continue;
        }
        if SHAPE_TOKENS.iter().any(|t| line.code.contains(t)) {
            out.push(format!("{rel}|{}", line.code.trim()));
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Reads `FORMAT_VERSION` out of the codec source.
fn read_format_version(root: &Path) -> std::io::Result<Option<u64>> {
    let text = fs::read_to_string(root.join("crates/graph/src/codec.rs"))?;
    for line in text.lines() {
        if let Some(rest) = line.trim().strip_prefix("pub const FORMAT_VERSION: u32 =") {
            let num: String = rest
                .chars()
                .skip_while(|c| c.is_whitespace())
                .take_while(|c| c.is_ascii_digit())
                .collect();
            return Ok(num.parse().ok());
        }
    }
    Ok(None)
}

fn check_codec_shape(
    root: &Path,
    shape_lines: &[String],
    bless: bool,
    violations: &mut Vec<String>,
) -> std::io::Result<()> {
    let golden_path = root.join("crates/xtask/codec-shape.golden");
    let Some(version) = read_format_version(root)? else {
        violations
            .push("crates/graph/src/codec.rs: [codec-shape] FORMAT_VERSION const not found".into());
        return Ok(());
    };
    let mut blob = format!("FORMAT_VERSION={version}\n");
    for l in shape_lines {
        blob.push_str(l);
        blob.push('\n');
    }
    let fingerprint = fnv1a(blob.as_bytes());

    if bless {
        let body = format!(
            "# Codec shape golden — regenerated by `cargo run -p xtask -- lint --bless`.\n\
             # Fails the lint when encode/decode shapes drift without a FORMAT_VERSION bump.\n\
             version {version}\n\
             fingerprint {fingerprint:#018x}\n\
             lines {}\n",
            shape_lines.len()
        );
        fs::write(&golden_path, body)?;
        println!("xtask lint: blessed codec shape (version {version}, {fingerprint:#018x})");
        return Ok(());
    }

    let golden = match fs::read_to_string(&golden_path) {
        Ok(g) => g,
        Err(_) => {
            violations.push(
                "crates/xtask/codec-shape.golden: [codec-shape] missing golden file — \
                 run `cargo run -p xtask -- lint --bless` to create it"
                    .to_string(),
            );
            return Ok(());
        }
    };
    let mut golden_version = None;
    let mut golden_fp = None;
    for line in golden.lines() {
        if let Some(v) = line.strip_prefix("version ") {
            golden_version = v.trim().parse::<u64>().ok();
        }
        if let Some(v) = line.strip_prefix("fingerprint ") {
            let v = v.trim().trim_start_matches("0x");
            golden_fp = u64::from_str_radix(v, 16).ok();
        }
    }
    let (Some(gv), Some(gf)) = (golden_version, golden_fp) else {
        violations.push(
            "crates/xtask/codec-shape.golden: [codec-shape] unreadable golden file — \
             re-bless with `cargo run -p xtask -- lint --bless`"
                .into(),
        );
        return Ok(());
    };

    if fingerprint == gf && version == gv {
        return Ok(());
    }
    if version == gv {
        violations.push(format!(
            "crates/graph/src/codec.rs: [codec-shape] encode/decode shape drifted \
             (fingerprint {fingerprint:#018x} != golden {gf:#018x}) without a FORMAT_VERSION \
             bump — bump FORMAT_VERSION, then `cargo run -p xtask -- lint --bless`"
        ));
    } else {
        violations.push(format!(
            "crates/graph/src/codec.rs: [codec-shape] FORMAT_VERSION changed ({gv} -> \
             {version}) — record the new shape with `cargo run -p xtask -- lint --bless`"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let s = scan_source("let a = \"x.unwrap()\"; // .unwrap()\nlet b = y.unwrap();\n");
        assert!(!s.lines[0].code.contains(".unwrap()"));
        assert!(s.lines[0].comment.contains(".unwrap()"));
        assert!(s.lines[1].code.contains(".unwrap()"));
    }

    #[test]
    fn raw_strings_and_chars() {
        let s = scan_source("let a = r#\"unsafe \"quoted\" text\"#;\nlet c = '\\'';\nlet l: &'static str = \"x\";\n");
        assert!(!has_word(&s.lines[0].code, "unsafe"));
        assert!(s.lines[2].code.contains("'static"));
    }

    #[test]
    fn block_comments_nest_across_lines() {
        let s = scan_source("/* outer /* inner */ still comment .unwrap() */\nlet x = 1;\n");
        assert!(!s.lines[0].code.contains(".unwrap()"));
        assert!(s.lines[1].code.contains("let x"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn lib2() {}\n";
        let s = scan_source(src);
        assert!(!s.lines[0].is_test);
        assert!(s.lines[1].is_test);
        assert!(s.lines[3].is_test);
        assert!(s.lines[4].is_test);
        assert!(!s.lines[5].is_test);
    }

    #[test]
    fn cfg_test_single_item() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() {}\n";
        let s = scan_source(src);
        assert!(s.lines[1].is_test);
        assert!(!s.lines[2].is_test);
    }

    #[test]
    fn numeric_cast_detection() {
        assert!(has_numeric_cast("let x = y as u32;"));
        assert!(has_numeric_cast("(a + b) as usize"));
        assert!(!has_numeric_cast("let x = y as Wide;"));
        assert!(!has_numeric_cast("known as the best"));
    }

    #[test]
    fn word_boundaries() {
        assert!(has_word("unsafe {", "unsafe"));
        assert!(!has_word("unsafely(true)", "unsafe"));
        assert!(has_word("let m: HashMap<K, V> = x;", "HashMap"));
        assert!(!has_word("FxHashMap::default()", "HashMap"));
    }
}
