//! # tcsm-telemetry
//!
//! Hand-rolled (std-only, like `tcsm-graph::codec`) observability
//! substrate for the TCM workspace: log-bucketed latency histograms, a
//! monotonic [`Clock`] with an injectable deterministic test clock, and a
//! lightweight per-phase span recorder with a ring buffer, pluggable
//! [`Subscriber`]s, and Prometheus-style text exposition.
//!
//! # What gets measured
//!
//! The engine's event loop decomposes into the phases of [`Phase`]: queue
//! pop, filter-bank update, DCS apply, and the `FindMatches` sweep on the
//! hot path, plus checkpoint/restore and pool dispatch on the service
//! path. Each instrumented site brackets its phase with
//! [`PhaseRecorder::start`] / [`PhaseRecorder::stop`]; durations land in
//! one [`LatencyHistogram`] per phase.
//!
//! Tracing is **off by default** and selected per process by `TCSM_TRACE`
//! (the same once-per-process pattern as `TCSM_KERNEL` / `TCSM_AUDIT`):
//!
//! * `TCSM_TRACE=off` — a disabled recorder; `start`/`stop` are a single
//!   `enabled` branch each, nothing is allocated;
//! * `TCSM_TRACE=counters` — per-phase histograms (count/sum/percentiles);
//! * `TCSM_TRACE=spans` — histograms plus a bounded in-memory span ring
//!   and per-span [`Subscriber`] callbacks.
//!
//! `TCSM_SLOW_EVENT_US` (default [`DEFAULT_SLOW_EVENT_US`]) sets the
//! slow-event threshold: any span at least that long emits one structured
//! `tcsm-slow phase=<name> us=<dur> start_us=<t>` line on stderr (and
//! [`Subscriber::on_slow`]), at every level except `off`.
//!
//! Timing is deliberately **not** part of `EngineStats`: semantic stats
//! stay byte-identical across trace levels, machines, and runs, so the
//! differential suites never see a timing-shaped diff, and snapshots never
//! embed wall-clock state.
//!
//! # Histogram bucket scheme
//!
//! [`LatencyHistogram`] is an HDR-style log-bucketed histogram over `u64`
//! microsecond values with [`SUB_BITS`] = 4 sub-bucket bits:
//!
//! * values `0..16` land in 16 **exact** unit buckets (index = value);
//! * every binade `[2^h, 2^(h+1))` for `h ≥ 4` splits into 16 equal
//!   sub-buckets of width `2^(h-4)`; the bucket of value `v` is
//!   `(h - 3) * 16 + ((v >> (h - 4)) - 16)` with `h = 63 - v.leading_zeros()`.
//!
//! Indices are contiguous from 0 (value 0) to [`NUM_BUCKETS`]` - 1`
//! (values near `u64::MAX`), so the whole table is a flat 976-slot count
//! array. Relative quantization error is bounded by the sub-bucket width
//! over the binade base: `2^(h-4) / 2^h = 1/16 = 6.25%`. Percentile
//! queries walk the cumulative counts and report the matched bucket's
//! upper bound, clamped to the exact tracked maximum — so `p(1.0)` is
//! always the true max, and every reported percentile is a value that is
//! ≥ the requested rank's sample and within 6.25% of it.
//!
//! Merging two histograms is element-wise count addition (plus
//! count/sum/max folds) and is associative and commutative — the property
//! the per-shard and per-service aggregations in `tcsm-service` rely on,
//! pinned by this crate's proptests.
//!
//! # Exposition
//!
//! [`MetricsWriter`] renders Prometheus text exposition (`name{labels}
//! value` lines, `# TYPE` headers) and [`parse_exposition`] parses it back
//! into [`Sample`]s — the same parser the CI metrics-smoke job uses to
//! assert the daemon's scrape output is well-formed and its percentiles
//! monotone.

mod clock;
mod expose;
mod hist;
mod recorder;
mod trace;

pub use clock::{Clock, ManualClock, SystemClock};
pub use expose::{parse_exposition, MetricsWriter, Sample};
pub use hist::{bucket_bounds, bucket_index, LatencyHistogram, NUM_BUCKETS, SUB_BITS};
pub use recorder::{PhaseRecorder, Span, SpanRing, Subscriber, SPAN_RING_CAPACITY};
pub use trace::{
    env_slow_event_us, env_trace_level, Phase, TraceLevel, DEFAULT_SLOW_EVENT_US, QUANTILES,
};
