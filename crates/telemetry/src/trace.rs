//! Trace levels, the instrumented phase catalogue, and the
//! once-per-process environment selection (`TCSM_TRACE`,
//! `TCSM_SLOW_EVENT_US`).

use std::sync::OnceLock;

/// The instrumented phases of the TCM pipeline. The first four are the
/// hot per-event phases of `tcsm-core`; the rest are service-level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Fetching the next event/batch from the stream cursor.
    QueuePop,
    /// Filter-bank (max-min table) update for one delta.
    Filter,
    /// DCS structure apply for one delta.
    DcsApply,
    /// The `FindMatches` backtracking sweep (occurred or expired).
    Sweep,
    /// One full-service checkpoint write.
    Checkpoint,
    /// One full-service restore.
    Restore,
    /// One pooled fan-out of a delta unit across the shard set.
    PoolDispatch,
}

impl Phase {
    /// Number of phases (the recorder's histogram table length).
    pub const COUNT: usize = 7;

    /// Every phase, in stable exposition order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::QueuePop,
        Phase::Filter,
        Phase::DcsApply,
        Phase::Sweep,
        Phase::Checkpoint,
        Phase::Restore,
        Phase::PoolDispatch,
    ];

    /// Stable dense index (the recorder's table slot).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The snake_case label used in metric label values and slow-event
    /// log lines.
    pub fn name(self) -> &'static str {
        match self {
            Phase::QueuePop => "queue_pop",
            Phase::Filter => "filter",
            Phase::DcsApply => "dcs_apply",
            Phase::Sweep => "sweep",
            Phase::Checkpoint => "checkpoint",
            Phase::Restore => "restore",
            Phase::PoolDispatch => "pool_dispatch",
        }
    }
}

/// How much the recorder records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Nothing: `start`/`stop` are a single branch each.
    #[default]
    Off,
    /// Per-phase latency histograms.
    Counters,
    /// Histograms plus the bounded span ring and subscriber callbacks.
    Spans,
}

impl TraceLevel {
    /// Is anything recorded at all?
    #[inline]
    pub fn enabled(self) -> bool {
        self != TraceLevel::Off
    }

    /// Are individual spans kept (ring + subscribers)?
    #[inline]
    pub fn spans(self) -> bool {
        self == TraceLevel::Spans
    }
}

/// The `TCSM_TRACE` selection, read once per process (the `TCSM_KERNEL` /
/// `TCSM_AUDIT` pattern). Unset or unrecognized ⇒ [`TraceLevel::Off`].
pub fn env_trace_level() -> TraceLevel {
    static LEVEL: OnceLock<TraceLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        match std::env::var("TCSM_TRACE")
            .unwrap_or_default()
            .trim()
            .to_ascii_lowercase()
            .as_str()
        {
            "counters" => TraceLevel::Counters,
            "spans" => TraceLevel::Spans,
            _ => TraceLevel::Off,
        }
    })
}

/// Default slow-event threshold (µs) when `TCSM_SLOW_EVENT_US` is unset.
pub const DEFAULT_SLOW_EVENT_US: u64 = 100_000;

/// The `TCSM_SLOW_EVENT_US` threshold, read once per process. `0`
/// disables slow-event logging entirely.
pub fn env_slow_event_us() -> u64 {
    static SLOW: OnceLock<u64> = OnceLock::new();
    *SLOW.get_or_init(|| {
        std::env::var("TCSM_SLOW_EVENT_US")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_SLOW_EVENT_US)
    })
}

/// The quantiles every exposition reports, with their label values.
pub const QUANTILES: [(f64, &str); 3] = [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_are_dense_and_stable() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Phase::ALL.len(), Phase::COUNT);
    }

    #[test]
    fn level_order() {
        assert!(TraceLevel::Off < TraceLevel::Counters);
        assert!(TraceLevel::Counters < TraceLevel::Spans);
        assert!(!TraceLevel::Off.enabled());
        assert!(TraceLevel::Counters.enabled());
        assert!(!TraceLevel::Counters.spans());
        assert!(TraceLevel::Spans.spans());
    }
}
