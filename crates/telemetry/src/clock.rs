//! Monotonic time sources: the real [`SystemClock`] and the deterministic
//! [`ManualClock`] the clock-injection tests drive.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond counter. Implementations must never go
/// backwards between two calls on the same clock; the origin is
/// arbitrary (only differences are meaningful).
pub trait Clock: Send + Sync {
    /// Microseconds elapsed since this clock's origin.
    fn micros(&self) -> u64;
}

/// Wall-clock time, anchored to the instant the clock was built.
///
/// This is the **only** place in the workspace allowed to call
/// `Instant::now()` — the xtask `instant-now` lint pins every other
/// timing read to a [`Clock`], so tests can substitute [`ManualClock`].
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is "now".
    pub fn new() -> SystemClock {
        SystemClock {
            origin: Instant::now(), // lint: allow(instant-now)
        }
    }
}

impl Default for SystemClock {
    fn default() -> SystemClock {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn micros(&self) -> u64 {
        // Saturates after ~584 thousand years of process uptime.
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// A deterministic clock for tests and benches: every [`Clock::micros`]
/// read returns the current value and advances it by a fixed tick, so a
/// run's span durations are a pure function of the call sequence.
pub struct ManualClock {
    now: AtomicU64,
    tick: u64,
}

impl ManualClock {
    /// A clock starting at 0 that advances by `tick` µs per read.
    pub fn new(tick: u64) -> ManualClock {
        ManualClock {
            now: AtomicU64::new(0),
            tick,
        }
    }

    /// Jumps the clock forward by `us` microseconds (simulated stalls).
    pub fn advance(&self, us: u64) {
        self.now.fetch_add(us, Ordering::Relaxed);
    }

    /// The current reading without advancing.
    pub fn peek(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

impl Clock for ManualClock {
    fn micros(&self) -> u64 {
        self.now.fetch_add(self.tick, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotone() {
        let c = SystemClock::new();
        let a = c.micros();
        let b = c.micros();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_ticks_deterministically() {
        let c = ManualClock::new(3);
        assert_eq!(c.micros(), 0);
        assert_eq!(c.micros(), 3);
        c.advance(100);
        assert_eq!(c.micros(), 106);
        assert_eq!(c.peek(), 109);
    }
}
