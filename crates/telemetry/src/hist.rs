//! The log-bucketed latency histogram (see the crate docs for the bucket
//! scheme catalogue).

/// Sub-bucket bits per binade: each power-of-two range splits into
/// `2^SUB_BITS` equal sub-buckets, bounding relative quantization error
/// by `2^-SUB_BITS` (6.25%).
pub const SUB_BITS: u32 = 4;

const SUB_COUNT: u64 = 1 << SUB_BITS;

/// Total bucket count: 16 exact unit buckets for `0..16`, then 16
/// sub-buckets per binade for `h = 4..=63`.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_COUNT as usize;

/// The bucket index of value `v` (contiguous, monotone in `v`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT {
        return v as usize;
    }
    let h = 63 - v.leading_zeros();
    let sub = (v >> (h - SUB_BITS)) - SUB_COUNT;
    ((h - (SUB_BITS - 1)) as u64 * SUB_COUNT + sub) as usize
}

/// The inclusive `[lo, hi]` value range of bucket `i` — the inverse of
/// [`bucket_index`], used by the proptests to pin the error bound.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    let i = i as u64;
    if i < SUB_COUNT {
        return (i, i);
    }
    let h = i / SUB_COUNT + (SUB_BITS - 1) as u64;
    let sub = i % SUB_COUNT;
    let width = 1u64 << (h - SUB_BITS as u64);
    let lo = (SUB_COUNT + sub) << (h - SUB_BITS as u64);
    (lo, lo + (width - 1))
}

/// An HDR-style log-bucketed histogram of `u64` microsecond durations.
///
/// Records in O(1), merges element-wise (associative + commutative), and
/// answers p50/p90/p99-style rank queries with ≤ 6.25% relative error —
/// clamped to the exact tracked maximum, so the top percentile is always
/// the true max. The count table allocates lazily on the first record, so
/// an empty histogram is pointer-sized state.
#[derive(Clone, Default)]
pub struct LatencyHistogram {
    counts: Option<Box<[u64; NUM_BUCKETS]>>,
    count: u64,
    sum: u64,
    max: u64,
}

impl LatencyHistogram {
    /// An empty histogram (no bucket table allocated yet).
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one duration.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let counts = self
            .counts
            .get_or_insert_with(|| Box::new([0u64; NUM_BUCKETS]));
        counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Total recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded durations (saturating).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The exact maximum recorded value (0 when empty).
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Is the histogram empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds `other` into `self` (element-wise bucket addition).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        let counts = self
            .counts
            .get_or_insert_with(|| Box::new([0u64; NUM_BUCKETS]));
        if let Some(theirs) = &other.counts {
            for (a, b) in counts.iter_mut().zip(theirs.iter()) {
                *a += b;
            }
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// holding the sample of rank `⌈q·count⌉`, clamped to the exact max.
    /// Returns 0 on an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let Some(counts) = &self.counts else {
            return 0;
        };
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .field("p50", &self.percentile(0.50))
            .field("p90", &self.percentile(0.90))
            .field("p99", &self.percentile(0.99))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_monotone_and_bounds_invert() {
        let mut prev = 0usize;
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            65_535,
            65_536,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i >= prev, "index not monotone at {v}");
            assert!(i < NUM_BUCKETS);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}] of bucket {i}");
            prev = i;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.max(), 15);
        assert_eq!(h.percentile(1.0), 15);
        // Rank 8 of 16 at q=0.5 is the value 7 (exact unit buckets).
        assert_eq!(h.percentile(0.5), 7);
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_equals_recording_both() {
        let (mut a, mut b, mut both) = (
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        );
        for v in [3u64, 99, 7_000, 123_456] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 42, 1_000_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.max(), both.max());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.percentile(q), both.percentile(q));
        }
    }
}
