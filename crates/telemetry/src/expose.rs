//! Prometheus-style text exposition: a renderer ([`MetricsWriter`]) and
//! the matching parser ([`parse_exposition`]) the smoke tests scrape
//! with.
//!
//! The grammar is the text subset the daemon emits:
//!
//! ```text
//! exposition = { comment | sample } ;
//! comment    = "#" ... "\n" ;                       (* TYPE/HELP lines *)
//! sample     = name [ "{" label { "," label } "}" ] " " value "\n" ;
//! label      = lname "=" '"' escaped-value '"' ;
//! ```
//!
//! Names are `[a-zA-Z_:][a-zA-Z0-9_:]*`; label values escape `\`, `"`
//! and newline.

use crate::hist::LatencyHistogram;
use crate::trace::QUANTILES;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders Prometheus text exposition.
#[derive(Default)]
pub struct MetricsWriter {
    out: String,
}

impl MetricsWriter {
    /// An empty exposition.
    pub fn new() -> MetricsWriter {
        MetricsWriter::default()
    }

    /// Emits a `# TYPE` header.
    pub fn type_header(&mut self, name: &str, kind: &str) {
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emits one sample line.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"");
                for c in v.chars() {
                    match c {
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\n' => self.out.push_str("\\n"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {value}");
    }

    /// Emits the quantile/`_count`/`_sum`/`_max` family of one histogram
    /// under `name`, with `labels` prepended to every line.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], h: &LatencyHistogram) {
        let mut all: Vec<(&str, &str)> = labels.to_vec();
        for (q, qs) in QUANTILES {
            all.push(("quantile", qs));
            self.sample(name, &all, h.percentile(q));
            all.pop();
        }
        let count = format!("{name}_count");
        let sum = format!("{name}_sum");
        let max = format!("{name}_max");
        self.sample(&count, labels, h.count());
        self.sample(&sum, labels, h.sum());
        self.sample(&max, labels, h.max());
    }

    /// The rendered exposition.
    pub fn finish(self) -> String {
        self.out
    }
}

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Label set (sorted by key).
    pub labels: BTreeMap<String, String>,
    /// The value (all tcsm metrics are integral).
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.get(key).map(String::as_str)
    }
}

/// Parses text exposition into samples, rejecting malformed lines with a
/// message naming the offending line. Comments and blank lines are
/// skipped.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_sample(line).map_err(|e| format!("line {}: {e}: {line:?}", lineno + 1))?);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len()
        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b':')
    {
        i += 1;
    }
    if i == 0 || bytes[0].is_ascii_digit() {
        return Err("missing metric name".into());
    }
    let name = line[..i].to_string();
    let mut labels = BTreeMap::new();
    let rest = &line[i..];
    let rest = if let Some(body) = rest.strip_prefix('{') {
        let end = find_label_end(body).ok_or("unterminated label set")?;
        parse_labels(&body[..end], &mut labels)?;
        &body[end + 1..]
    } else {
        rest
    };
    let value = rest.trim();
    if value.is_empty() {
        return Err("missing value".into());
    }
    let value: f64 = value.parse().map_err(|_| "unparseable value".to_string())?;
    Ok(Sample {
        name,
        labels,
        value,
    })
}

/// Index of the closing `}` of a label body (quote-aware).
fn find_label_end(body: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_labels(body: &str, out: &mut BTreeMap<String, String>) -> Result<(), String> {
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without '='")?;
        let key = rest[..eq].trim().to_string();
        if key.is_empty() {
            return Err("empty label name".into());
        }
        let after = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or("label value not quoted")?;
        let mut value = String::new();
        let mut escaped = false;
        let mut close = None;
        for (i, c) in after.char_indices() {
            if escaped {
                value.push(match c {
                    'n' => '\n',
                    c => c,
                });
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                close = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let close = close.ok_or("unterminated label value")?;
        out.insert(key, value);
        let tail = &after[close + 1..];
        rest = match tail.strip_prefix(',') {
            Some(next) => next.trim_start(),
            None if tail.trim().is_empty() => "",
            None => return Err("expected ',' between labels".into()),
        };
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_samples_and_labels() {
        let mut w = MetricsWriter::new();
        w.type_header("tcsm_events_total", "counter");
        w.sample("tcsm_events_total", &[], 42);
        w.sample(
            "tcsm_phase_latency_us",
            &[("scope", "shard0"), ("phase", "sweep"), ("quantile", "0.5")],
            17,
        );
        let text = w.finish();
        let samples = parse_exposition(&text).unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].name, "tcsm_events_total");
        assert_eq!(samples[0].value, 42.0);
        assert_eq!(samples[1].label("phase"), Some("sweep"));
        assert_eq!(samples[1].label("quantile"), Some("0.5"));
        assert_eq!(samples[1].value, 17.0);
    }

    #[test]
    fn histogram_family_is_complete_and_monotone() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 5, 9, 1000, 20_000] {
            h.record(v);
        }
        let mut w = MetricsWriter::new();
        w.histogram("tcsm_phase_latency_us", &[("scope", "q1")], &h);
        let samples = parse_exposition(&w.finish()).unwrap();
        let q = |qs: &str| {
            samples
                .iter()
                .find(|s| s.label("quantile") == Some(qs))
                .map(|s| s.value)
                .unwrap()
        };
        let max = samples
            .iter()
            .find(|s| s.name == "tcsm_phase_latency_us_max")
            .map(|s| s.value)
            .unwrap();
        assert!(q("0.5") <= q("0.9"));
        assert!(q("0.9") <= q("0.99"));
        assert!(q("0.99") <= max);
        assert!(samples
            .iter()
            .any(|s| s.name == "tcsm_phase_latency_us_count" && s.value == 5.0));
    }

    #[test]
    fn escaped_label_values_roundtrip() {
        let mut w = MetricsWriter::new();
        w.sample("m", &[("k", "a\"b\\c\nd")], 1);
        let samples = parse_exposition(&w.finish()).unwrap();
        assert_eq!(samples[0].label("k"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "1bad 3",
            "name{unterminated 3",
            "name{k=\"v\" 3",
            "name{k=v} 3",
            "name abc",
            "name",
        ] {
            assert!(parse_exposition(bad).is_err(), "accepted {bad:?}");
        }
    }
}
