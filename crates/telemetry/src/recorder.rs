//! The per-owner phase recorder: one [`LatencyHistogram`] per [`Phase`],
//! an optional bounded span ring, subscriber fan-out, and slow-event log
//! lines.

use crate::clock::{Clock, SystemClock};
use crate::hist::LatencyHistogram;
use crate::trace::{env_slow_event_us, env_trace_level, Phase, TraceLevel};
use std::sync::Arc;

/// One completed phase measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Which phase ran.
    pub phase: Phase,
    /// Clock reading at `start` (µs since the clock's origin).
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
}

/// Spans kept per recorder at [`TraceLevel::Spans`]; older spans are
/// overwritten (the ring answers "what just happened", not history).
pub const SPAN_RING_CAPACITY: usize = 256;

/// A fixed-capacity overwrite-oldest span buffer.
#[derive(Default)]
pub struct SpanRing {
    buf: Vec<Span>,
    /// Next write slot once `buf` has reached capacity.
    head: usize,
}

impl SpanRing {
    fn push(&mut self, span: Span) {
        if self.buf.len() < SPAN_RING_CAPACITY {
            self.buf.push(span);
        } else {
            self.buf[self.head] = span;
            self.head = (self.head + 1) % SPAN_RING_CAPACITY;
        }
    }

    /// Recorded spans, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Span> {
        let (wrapped, recent) = self.buf.split_at(self.head);
        recent.iter().chain(wrapped.iter())
    }

    /// Number of retained spans (≤ [`SPAN_RING_CAPACITY`]).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Receives spans as they complete at [`TraceLevel::Spans`].
pub trait Subscriber: Send {
    /// Called for every completed span.
    fn on_span(&mut self, span: &Span);
    /// Called for spans at or above the slow-event threshold (any
    /// enabled level, after the stderr log line).
    fn on_slow(&mut self, _span: &Span) {}
}

/// Per-owner phase timing: the engine's runtime and the service each own
/// one. All methods are `&mut`-serial; cross-owner aggregation merges
/// histograms after the fact (associative, so shard/service rollups are
/// order-independent).
///
/// At [`TraceLevel::Off`] the recorder holds no histograms and
/// [`PhaseRecorder::start`] / [`PhaseRecorder::stop`] cost exactly one
/// predictable `enabled` branch — the invariant the interleaved
/// `engine_run_trace_*` bench pair pins.
pub struct PhaseRecorder {
    level: TraceLevel,
    clock: Arc<dyn Clock>,
    /// One histogram per `Phase::ALL` slot; empty vec when disabled.
    hists: Vec<LatencyHistogram>,
    ring: SpanRing,
    subscribers: Vec<Box<dyn Subscriber>>,
    slow_us: u64,
}

impl Default for PhaseRecorder {
    fn default() -> PhaseRecorder {
        PhaseRecorder::from_env()
    }
}

impl PhaseRecorder {
    /// A recorder at the `TCSM_TRACE` level with the system clock and the
    /// `TCSM_SLOW_EVENT_US` threshold.
    pub fn from_env() -> PhaseRecorder {
        match env_trace_level() {
            TraceLevel::Off => PhaseRecorder::disabled(),
            level => PhaseRecorder::with_clock(level, Arc::new(SystemClock::new())),
        }
    }

    /// A recorder that measures nothing and allocates nothing.
    pub fn disabled() -> PhaseRecorder {
        PhaseRecorder {
            level: TraceLevel::Off,
            clock: Arc::new(NullClock),
            hists: Vec::new(),
            ring: SpanRing::default(),
            subscribers: Vec::new(),
            slow_us: 0,
        }
    }

    /// A recorder at `level` reading `clock` (inject a
    /// [`crate::ManualClock`] for deterministic tests).
    pub fn with_clock(level: TraceLevel, clock: Arc<dyn Clock>) -> PhaseRecorder {
        let hists = if level.enabled() {
            vec![LatencyHistogram::new(); Phase::COUNT]
        } else {
            Vec::new()
        };
        PhaseRecorder {
            level,
            clock,
            hists,
            ring: SpanRing::default(),
            subscribers: Vec::new(),
            slow_us: env_slow_event_us(),
        }
    }

    /// The recorder's level.
    #[inline]
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Is anything being recorded?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.level.enabled()
    }

    /// Overrides the slow-event threshold (µs; 0 disables).
    pub fn set_slow_event_us(&mut self, us: u64) {
        self.slow_us = us;
    }

    /// Registers a span subscriber (invoked at [`TraceLevel::Spans`]).
    pub fn subscribe(&mut self, sub: Box<dyn Subscriber>) {
        self.subscribers.push(sub);
    }

    /// Opens a phase span: the clock reading, or 0 when disabled. Hot
    /// path — exactly one branch at `off`.
    #[inline]
    pub fn start(&self) -> u64 {
        if !self.level.enabled() {
            return 0;
        }
        self.clock.micros()
    }

    /// Closes a phase span opened by [`PhaseRecorder::start`]. Hot path —
    /// exactly one branch at `off`; everything else lives in the cold
    /// half.
    #[inline]
    pub fn stop(&mut self, phase: Phase, start_us: u64) {
        if !self.level.enabled() {
            return;
        }
        self.stop_enabled(phase, start_us);
    }

    #[cold]
    fn stop_enabled(&mut self, phase: Phase, start_us: u64) {
        let now = self.clock.micros();
        let dur_us = now.saturating_sub(start_us);
        self.hists[phase.index()].record(dur_us);
        let span = Span {
            phase,
            start_us,
            dur_us,
        };
        if self.level.spans() {
            self.ring.push(span);
            for sub in &mut self.subscribers {
                sub.on_span(&span);
            }
        }
        if self.slow_us != 0 && dur_us >= self.slow_us {
            // Structured one-line slow-event record (grep-able key=value).
            eprintln!(
                "tcsm-slow phase={} us={} start_us={}",
                phase.name(),
                dur_us,
                start_us
            );
            for sub in &mut self.subscribers {
                sub.on_slow(&span);
            }
        }
    }

    /// The histogram of `phase`, if anything was recorded for it.
    pub fn histogram(&self, phase: Phase) -> Option<&LatencyHistogram> {
        self.hists.get(phase.index()).filter(|h| !h.is_empty())
    }

    /// Folds this recorder's histograms into a per-phase accumulator
    /// table (the shard/service rollup primitive).
    pub fn merge_into(&self, acc: &mut [LatencyHistogram; Phase::COUNT]) {
        for (a, h) in acc.iter_mut().zip(self.hists.iter()) {
            a.merge(h);
        }
    }

    /// Sum of all recorded phase durations (µs) — the "phase time ≤ wall
    /// time" test's left-hand side.
    pub fn total_us(&self) -> u64 {
        self.hists.iter().map(|h| h.sum()).sum()
    }

    /// The span ring (non-empty only at [`TraceLevel::Spans`]).
    pub fn spans(&self) -> &SpanRing {
        &self.ring
    }
}

/// The disabled recorder's clock: never read (every caller checks
/// `enabled` first), returns 0 if it ever is.
struct NullClock;

impl Clock for NullClock {
    fn micros(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use std::sync::Mutex;

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = PhaseRecorder::disabled();
        let t = r.start();
        assert_eq!(t, 0);
        r.stop(Phase::Filter, t);
        assert!(r.histogram(Phase::Filter).is_none());
        assert_eq!(r.total_us(), 0);
    }

    #[test]
    fn counters_record_durations_from_the_injected_clock() {
        let clock = Arc::new(ManualClock::new(5));
        let mut r = PhaseRecorder::with_clock(TraceLevel::Counters, clock);
        r.set_slow_event_us(0);
        for _ in 0..4 {
            let t = r.start();
            r.stop(Phase::Sweep, t);
        }
        let h = r.histogram(Phase::Sweep).expect("recorded");
        assert_eq!(h.count(), 4);
        // tick=5 and exactly one read inside stop ⇒ every span is 5 µs.
        assert_eq!(h.max(), 5);
        assert_eq!(r.total_us(), 20);
        assert!(r.spans().is_empty(), "counters level keeps no spans");
    }

    #[test]
    fn spans_level_fills_the_ring_and_notifies_subscribers() {
        struct Tap(Arc<Mutex<Vec<Span>>>);
        impl Subscriber for Tap {
            fn on_span(&mut self, span: &Span) {
                self.0.lock().unwrap().push(*span);
            }
        }
        let seen = Arc::new(Mutex::new(Vec::new()));
        let clock = Arc::new(ManualClock::new(1));
        let mut r = PhaseRecorder::with_clock(TraceLevel::Spans, clock);
        r.set_slow_event_us(0);
        r.subscribe(Box::new(Tap(Arc::clone(&seen))));
        for _ in 0..(SPAN_RING_CAPACITY + 10) {
            let t = r.start();
            r.stop(Phase::QueuePop, t);
        }
        assert_eq!(r.spans().len(), SPAN_RING_CAPACITY);
        assert_eq!(seen.lock().unwrap().len(), SPAN_RING_CAPACITY + 10);
        // Ring iteration is oldest-first and strictly time-ordered.
        let starts: Vec<u64> = r.spans().iter().map(|s| s.start_us).collect();
        assert!(starts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn slow_threshold_triggers_on_slow() {
        struct SlowTap(Arc<Mutex<u64>>);
        impl Subscriber for SlowTap {
            fn on_span(&mut self, _: &Span) {}
            fn on_slow(&mut self, _: &Span) {
                *self.0.lock().unwrap() += 1;
            }
        }
        let hits = Arc::new(Mutex::new(0u64));
        let clock = Arc::new(ManualClock::new(0));
        let dyn_clock: Arc<dyn Clock> = clock.clone();
        let mut r = PhaseRecorder::with_clock(TraceLevel::Spans, dyn_clock);
        r.set_slow_event_us(50);
        r.subscribe(Box::new(SlowTap(Arc::clone(&hits))));
        let t = r.start();
        clock.advance(10); // fast span: below threshold
        r.stop(Phase::Checkpoint, t);
        let t = r.start();
        clock.advance(75); // slow span
        r.stop(Phase::Checkpoint, t);
        assert_eq!(*hits.lock().unwrap(), 1);
    }
}
