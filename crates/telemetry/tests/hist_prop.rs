//! Property suite for the log-bucketed histogram: merge is associative
//! and commutative, percentiles are monotone in the quantile, and every
//! reported percentile is an upper bound within the bucket-scheme error
//! of some recorded value.

use proptest::prelude::*;
use tcsm_telemetry::{bucket_bounds, bucket_index, LatencyHistogram, NUM_BUCKETS, SUB_BITS};

/// Durations skewed across binades: unit-range, mid-range and huge values
/// all occur, so bucket edges and the exact-bucket region are exercised.
fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((0u8..4, any::<u64>()), 0..200).prop_map(|raw| {
        raw.into_iter()
            .map(|(sel, v)| match sel {
                0 => v % 32,
                1 => 32 + v % 100_000,
                2 => v >> (v % 40),
                _ => u64::MAX,
            })
            .collect()
    })
}

fn hist_of(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

fn assert_same(a: &LatencyHistogram, b: &LatencyHistogram) {
    assert_eq!(a.count(), b.count());
    assert_eq!(a.sum(), b.sum());
    assert_eq!(a.max(), b.max());
    for i in 0..=100 {
        let q = i as f64 / 100.0;
        assert_eq!(a.percentile(q), b.percentile(q), "q={q}");
    }
}

proptest! {
    /// (a ∪ b) ∪ c answers exactly like a ∪ (b ∪ c).
    #[test]
    fn merge_is_associative(a in arb_values(), b in arb_values(), c in arb_values()) {
        let mut left = hist_of(&a);
        left.merge(&hist_of(&b));
        left.merge(&hist_of(&c));
        let mut bc = hist_of(&b);
        bc.merge(&hist_of(&c));
        let mut right = hist_of(&a);
        right.merge(&bc);
        assert_same(&left, &right);
    }

    /// a ∪ b answers exactly like b ∪ a, and like recording both streams
    /// into one histogram.
    #[test]
    fn merge_is_commutative(a in arb_values(), b in arb_values()) {
        let mut ab = hist_of(&a);
        ab.merge(&hist_of(&b));
        let mut ba = hist_of(&b);
        ba.merge(&hist_of(&a));
        assert_same(&ab, &ba);
        let mut all = a.clone();
        all.extend_from_slice(&b);
        assert_same(&ab, &hist_of(&all));
    }

    /// Percentiles never decrease as the quantile grows, and p(1) is the
    /// exact maximum.
    #[test]
    fn percentiles_are_monotone(values in arb_values()) {
        let h = hist_of(&values);
        let mut prev = 0u64;
        for i in 0..=100 {
            let p = h.percentile(i as f64 / 100.0);
            prop_assert!(p >= prev, "p({i}%) = {p} < p({}%) = {prev}", i - 1);
            prev = p;
        }
        prop_assert_eq!(h.percentile(1.0), values.iter().copied().max().unwrap_or(0));
    }

    /// Every reported percentile brackets the true rank value: it is ≥
    /// the exact sample at that rank and ≤ that sample's bucket upper
    /// bound (the ≤ 2^-SUB_BITS relative-error contract).
    #[test]
    fn percentiles_bound_the_exact_rank(values in arb_values(), qi in 0usize..100) {
        if values.is_empty() {
            return Ok(());
        }
        let h = hist_of(&values);
        let q = qi as f64 / 100.0;
        let p = h.percentile(q);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        prop_assert!(p >= exact, "p({q}) = {p} < exact rank value {exact}");
        prop_assert!(
            p <= bucket_bounds(bucket_index(exact)).1,
            "p({q}) = {p} beyond the bucket of {exact}"
        );
    }

    /// The index/bounds pair invert each other over the whole domain.
    #[test]
    fn bucket_bounds_invert_index(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi);
        // The scheme's error bound: bucket width ≤ lo >> SUB_BITS.
        if lo >= 1 << SUB_BITS {
            prop_assert!(hi - lo < (lo >> SUB_BITS).max(1));
        } else {
            prop_assert_eq!(lo, hi);
        }
    }
}
