//! Metrics smoke: a daemon on the mini fixture must serve a parseable
//! Prometheus-style exposition over both transports — the `Metrics` wire
//! op and the plaintext `--metrics-addr` endpoint — with ordered phase
//! quantiles and counters that reconcile with `ServiceStats`.

use std::io::Read;
use std::net::{TcpListener, TcpStream};

use tcsm_datasets::QueryGen;
use tcsm_graph::io::{parse_snap, SnapOptions};
use tcsm_graph::{QueryGraph, TemporalGraph};
use tcsm_server::server::{serve, ServerConfig};
use tcsm_server::Client;
use tcsm_service::{MatchService, ServiceConfig, ShardPolicy};
use tcsm_telemetry::{parse_exposition, Sample};

const MINI_SNAP: &str = include_str!("../../datasets/fixtures/mini-snap.txt");

fn fixture() -> (TemporalGraph, i64) {
    let g = parse_snap(MINI_SNAP, &SnapOptions::default()).expect("fixture parses");
    let delta = tcsm_datasets::ingest::windows_for_stream(&g)[2];
    (g, delta)
}

fn queries(g: &TemporalGraph, delta: i64, n: usize) -> Vec<QueryGraph> {
    let mut qg = QueryGen::new(g);
    qg.directed = true;
    (0..32u64)
        .filter_map(|seed| qg.generate(3, 0.5, (delta * 3 / 4).max(4), 11 + seed))
        .take(n)
        .collect()
}

/// An address the metrics endpoint can bind: grab an ephemeral port, free
/// it, hand the address over (the tiny reuse window is fine for a test).
fn free_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").expect("probe bind");
    l.local_addr().expect("probe addr").to_string()
}

fn counter(samples: &[Sample], name: &str) -> f64 {
    samples
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("{name} missing from exposition"))
        .value
}

/// Every `(scope, phase)` family in `samples` has p50 ≤ p90 ≤ p99 ≤ max;
/// returns the scopes seen.
fn check_quantiles(samples: &[Sample]) -> Vec<String> {
    let pick = |scope: &str, phase: &str, name: &str, quant: Option<&str>| {
        samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.label("scope") == Some(scope)
                    && s.label("phase") == Some(phase)
                    && s.label("quantile") == quant
            })
            .map(|s| s.value)
            .unwrap_or_else(|| panic!("{name} {scope}/{phase} quantile {quant:?} missing"))
    };
    let mut scopes = Vec::new();
    for s in samples {
        if s.name != "tcsm_phase_latency_us" || s.label("quantile") != Some("0.5") {
            continue;
        }
        let (scope, phase) = (s.label("scope").unwrap(), s.label("phase").unwrap());
        scopes.push(scope.to_string());
        let p50 = s.value;
        let p90 = pick(scope, phase, "tcsm_phase_latency_us", Some("0.9"));
        let p99 = pick(scope, phase, "tcsm_phase_latency_us", Some("0.99"));
        let max = pick(scope, phase, "tcsm_phase_latency_us_max", None);
        assert!(
            p50 <= p90 && p90 <= p99 && p99 <= max,
            "{scope}/{phase}: quantiles out of order: {p50} {p90} {p99} {max}"
        );
    }
    scopes
}

#[test]
fn daemon_serves_parseable_metrics_on_both_transports() {
    // Once per process, before any recorder exists: this test binary runs
    // this single test, so the process-wide level is safe to pin.
    std::env::set_var("TCSM_TRACE", "counters");

    let (g, delta) = fixture();
    let qs = queries(&g, delta, 2);
    assert!(!qs.is_empty(), "fixture hosts generated queries");
    let cfg = ServiceConfig {
        shards: 2,
        policy: ShardPolicy::Spread,
        threads: 0,
        batching: false,
        directed: true,
    };
    let metrics_addr = free_addr();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server_cfg = ServerConfig {
        checkpoint_dir: None,
        autorun: false,
        metrics_addr: Some(metrics_addr.clone()),
    };
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut svc = MatchService::new(&g, delta, cfg).expect("service builds");
            serve(listener, &mut svc, &server_cfg).expect("serve")
        });
        let mut client = Client::connect(addr).expect("connect");
        let qids: Vec<u32> = qs
            .iter()
            .map(|q| client.admit(q, Default::default()).expect("admit"))
            .collect();
        client.step(0).expect("drain");

        // Transport 1: the wire op.
        let text = client.metrics().expect("metrics over the wire");
        let samples = parse_exposition(&text).expect("wire exposition parses");
        let (stats, ..) = client.service_stats().expect("service stats");
        assert_eq!(
            counter(&samples, "tcsm_service_events_total"),
            stats.events as f64
        );
        assert_eq!(
            counter(&samples, "tcsm_service_admitted_total"),
            stats.admitted as f64
        );
        assert_eq!(
            counter(&samples, "tcsm_service_kernel_invocations_total"),
            stats.kernel_invocations as f64
        );
        assert_eq!(
            counter(&samples, "tcsm_service_resident_queries"),
            stats.resident_queries as f64
        );
        assert_eq!(
            counter(&samples, "tcsm_service_retired_stats_evictions_total"),
            stats.retired_stats_evictions as f64
        );
        let scopes = check_quantiles(&samples);
        assert!(scopes.iter().any(|s| s == "service"), "service scope");
        for shard in 0..cfg.shards {
            let want = format!("shard{shard}");
            assert!(scopes.contains(&want), "{want} scope missing");
        }
        for qid in &qids {
            let want = format!("q{qid}");
            assert!(scopes.contains(&want), "{want} scope missing");
        }

        // Transport 2: the plaintext endpoint — one exposition per
        // connection, then close, no framing.
        let mut scraped = String::new();
        TcpStream::connect(&metrics_addr)
            .expect("scrape connect")
            .read_to_string(&mut scraped)
            .expect("scrape read");
        let endpoint = parse_exposition(&scraped).expect("endpoint exposition parses");
        check_quantiles(&endpoint);
        // Nothing stepped between the scrapes, so the two transports
        // agree exactly.
        assert_eq!(
            counter(&endpoint, "tcsm_service_events_total"),
            stats.events as f64
        );

        client.shutdown(false).expect("shutdown");
    });
}
