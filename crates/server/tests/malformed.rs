//! Wire-robustness suite: malformed, truncated, and oversized request
//! frames must surface as typed error frames (never a panic, never a
//! wedged daemon), dead subscribers must be auto-retired without
//! disturbing survivors, and a slow consumer must only slow itself down.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use tcsm_core::EngineConfig;
use tcsm_datasets::QueryGen;
use tcsm_graph::codec::encode_frame;
use tcsm_graph::io::{parse_snap, SnapOptions};
use tcsm_graph::{QueryGraph, TemporalGraph};
use tcsm_server::server::{serve, ServerConfig};
use tcsm_server::wire::{ErrorCode, Request, KIND_DELIVERY, KIND_REQUEST};
use tcsm_server::{Client, ClientError, ServerMsg};
use tcsm_service::{CollectingSink, MatchService, ServiceConfig, ShardPolicy};

const MINI_SNAP: &str = include_str!("../../datasets/fixtures/mini-snap.txt");

fn fixture() -> (TemporalGraph, i64) {
    let g = parse_snap(MINI_SNAP, &SnapOptions::default()).expect("fixture parses");
    let delta = tcsm_datasets::ingest::windows_for_stream(&g)[2];
    (g, delta)
}

fn one_query(g: &TemporalGraph, delta: i64, seed: u64) -> QueryGraph {
    let mut qg = QueryGen::new(g);
    qg.directed = true;
    (0..32u64)
        .filter_map(|s| qg.generate(3, 0.5, (delta * 3 / 4).max(4), seed + s))
        .next()
        .expect("fixture hosts a generated query")
}

fn svc_cfg() -> ServiceConfig {
    ServiceConfig {
        shards: 2,
        policy: ShardPolicy::Spread,
        threads: 0,
        batching: false,
        directed: true,
    }
}

fn engine_cfg() -> EngineConfig {
    EngineConfig {
        directed: true,
        ..EngineConfig::default()
    }
}

/// Runs `body` against a served fixture stream and tears the server down.
fn with_server(body: impl FnOnce(std::net::SocketAddr)) {
    let (g, delta) = fixture();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut svc = MatchService::new(&g, delta, svc_cfg()).expect("service builds");
            serve(listener, &mut svc, &ServerConfig::default()).expect("serve")
        });
        body(addr);
    });
}

fn expect_error(client: &mut Client, req_seq: u64, code: ErrorCode) {
    match client.read_msg().expect("server answers") {
        ServerMsg::Error(fault) => {
            assert_eq!(fault.code, code, "wrong error class: {fault}");
            assert_eq!(fault.seq, req_seq, "wrong seq attribution: {fault}");
        }
        other => panic!("expected a {code:?} error frame, got {other:?}"),
    }
}

/// The whole malformed-frame corpus against one connection; after every
/// refusal the connection must still serve a valid request.
#[test]
fn malformed_request_corpus_yields_typed_errors_and_survives() {
    with_server(|addr| {
        let mut client = Client::connect(addr).expect("connect");

        // 1. Random bytes in a valid wire envelope: bad magic.
        client
            .send_raw_frame(&[0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03])
            .expect("send");
        expect_error(&mut client, 0, ErrorCode::Malformed);

        // 2. A structurally valid frame of the wrong kind.
        let wrong_kind = encode_frame(KIND_DELIVERY, |e| e.put_u32(1));
        client.send_raw_frame(&wrong_kind).expect("send");
        expect_error(&mut client, 0, ErrorCode::Malformed);

        // 3. A request frame with a flipped checksum byte.
        let mut bad = Request::ServiceStats.encode(5);
        let at = bad.len() - 1;
        bad[at] ^= 0x20;
        client.send_raw_frame(&bad).expect("send");
        expect_error(&mut client, 0, ErrorCode::Malformed);

        // 4. Unknown op tag: refused with the seq echoed.
        let bad_op = encode_frame(KIND_REQUEST, |e| {
            e.put_u64(6);
            e.put_u8(250);
        });
        client.send_raw_frame(&bad_op).expect("send");
        expect_error(&mut client, 6, ErrorCode::BadOp);

        // 5. Truncated payload: an admit with no config section.
        let truncated = encode_frame(KIND_REQUEST, |e| {
            e.put_u64(7);
            e.put_u8(1);
            e.put_str("v 0 1\n");
        });
        client.send_raw_frame(&truncated).expect("send");
        expect_error(&mut client, 7, ErrorCode::Malformed);

        // 6. Unparseable query text.
        let err = client
            .admit_text("v 0 1\ne 0 zz\n", engine_cfg())
            .expect_err("bad query text refused");
        match err {
            ClientError::Server(fault) => assert_eq!(fault.code, ErrorCode::BadQuery),
            other => panic!("expected a server refusal, got {other}"),
        }

        // 7. Unknown query ids on every op that takes one.
        for req in [
            Request::Retire { qid: 9999 },
            Request::QueryStats { qid: 9999 },
            Request::Resubscribe { qid: 9999 },
        ] {
            match client.call(req).expect_err("unknown qid refused") {
                ClientError::Server(fault) => {
                    assert_eq!(fault.code, ErrorCode::UnknownQuery)
                }
                other => panic!("expected a server refusal, got {other}"),
            }
        }

        // 8. Checkpoint without a configured directory.
        match client.checkpoint().expect_err("no checkpoint dir") {
            ClientError::Server(fault) => assert_eq!(fault.code, ErrorCode::Unsupported),
            other => panic!("expected a server refusal, got {other}"),
        }

        // After all of that, the connection still works end to end.
        let (stats, processed, remaining) = client.service_stats().expect("still serving");
        assert_eq!(processed, 0);
        assert!(remaining > 0);
        assert_eq!(stats.disconnected, 0);
        client.shutdown(false).expect("shutdown");
    });
}

/// An oversized length declaration is refused before allocation and the
/// connection is closed; the daemon itself — and other clients — live on.
#[test]
fn oversized_frame_closes_only_the_offending_connection() {
    with_server(|addr| {
        let mut liar = Client::connect(addr).expect("connect");
        let mut bystander = Client::connect(addr).expect("connect");

        // A raw lying prefix: u32::MAX bytes declared, none sent.
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        raw.write_all(&u32::MAX.to_le_bytes()).expect("send prefix");
        raw.flush().expect("flush");
        drop(raw);

        // The liar declares 2 MiB (over the 1 MiB request cap) and sends
        // no body — the server refuses on the prefix alone, then closes.
        liar.send_raw_bytes(&(2u32 * 1024 * 1024).to_le_bytes())
            .expect("send lying prefix");
        match liar.read_msg().expect("error frame arrives") {
            ServerMsg::Error(fault) => assert_eq!(fault.code, ErrorCode::Oversized),
            other => panic!("expected Oversized, got {other:?}"),
        }
        match liar.read_msg() {
            Err(ClientError::Closed) | Err(ClientError::Wire(_)) => {}
            other => panic!("expected a closed connection, got {other:?}"),
        }

        // The bystander is unaffected.
        let (_, processed, _) = bystander.service_stats().expect("bystander serving");
        assert_eq!(processed, 0);
        bystander.shutdown(false).expect("shutdown");
    });
}

/// A subscriber that vanishes mid-stream is auto-retired; the surviving
/// subscriber's stream is byte-identical to an undisturbed run.
#[test]
fn mid_stream_disconnect_retires_only_the_dead_subscriber() {
    let (g, delta) = fixture();
    let q_dead = one_query(&g, delta, 100);
    let q_live = one_query(&g, delta, 200);

    // Reference: the surviving query alone, uninterrupted, in-process.
    let mut svc = MatchService::new(&g, delta, svc_cfg()).expect("service builds");
    let (sink, got) = CollectingSink::new();
    let dead_ref = svc.add_query(&q_dead, engine_cfg(), Box::new(CollectingSink::new().0));
    let live_ref = svc.add_query(&q_live, engine_cfg(), Box::new(sink));
    let _ = dead_ref;
    svc.run();
    let expected = got.take();
    let expected_stats = *svc.query_stats(live_ref).expect("stats");

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut svc = MatchService::new(&g, delta, svc_cfg()).expect("service builds");
            serve(listener, &mut svc, &ServerConfig::default()).expect("serve")
        });
        let mut doomed = Client::connect(addr).expect("connect");
        let mut survivor = Client::connect(addr).expect("connect");
        let qid_dead = doomed.admit(&q_dead, engine_cfg()).expect("admit");
        let qid_live = survivor.admit(&q_live, engine_cfg()).expect("admit");
        survivor.step(5).expect("first steps");
        drop(doomed);
        // Give the reader thread a moment to report the dead peer.
        std::thread::sleep(Duration::from_millis(50));
        let (_, done) = survivor.step(0).expect("drain");
        assert!(done);

        let stream = survivor.take_stream(qid_live);
        assert_eq!(stream.events, expected, "survivor stream disturbed");
        assert_eq!(
            (stream.occurred, stream.expired),
            (expected_stats.occurred, expected_stats.expired)
        );
        let (sstats, ..) = survivor.service_stats().expect("service stats");
        assert_eq!(sstats.disconnected, 1, "dead subscriber counted");
        assert_eq!(sstats.resident_queries, 1);
        // The dead query's final stats are still peekable, non-resident.
        let (resident, _) = survivor.query_stats(qid_dead).expect("peek dead");
        assert!(!resident);
        survivor.shutdown(false).expect("shutdown");
    });
}

/// A consumer that stops reading only backpressures itself: the daemon
/// keeps the delivered stream complete once the consumer catches up.
#[test]
fn slow_consumer_still_receives_a_complete_stream() {
    let (g, delta) = fixture();
    let q = one_query(&g, delta, 300);

    let mut svc = MatchService::new(&g, delta, svc_cfg()).expect("service builds");
    let (sink, got) = CollectingSink::new();
    svc.add_query(&q, engine_cfg(), Box::new(sink));
    svc.run();
    let expected = got.take();

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut svc = MatchService::new(&g, delta, svc_cfg()).expect("service builds");
            serve(listener, &mut svc, &ServerConfig::default()).expect("serve")
        });
        let mut client = Client::connect(addr).expect("connect");
        let qid = client.admit(&q, engine_cfg()).expect("admit");
        // Fire the drain request, then sulk instead of reading while the
        // server produces every delivery.
        client
            .send_raw_frame(&Request::Step { n: 0 }.encode(1_000))
            .expect("send step");
        std::thread::sleep(Duration::from_millis(300));
        // Catch up: deliveries first, then the step response.
        let mut delivered = Vec::new();
        loop {
            match client.read_msg().expect("read") {
                ServerMsg::Delivery(d) => {
                    assert_eq!(d.qid, qid);
                    delivered.extend(d.events);
                }
                ServerMsg::Response(seq, _) => {
                    assert_eq!(seq, 1_000);
                    break;
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert_eq!(delivered, expected, "slow consumer's stream incomplete");
        let (sstats, _, remaining) = client.service_stats().expect("stats");
        assert_eq!(remaining, 0);
        assert_eq!(sstats.disconnected, 0, "slow consumer must not be retired");
        client.shutdown(false).expect("shutdown");
    });
}
