//! Loopback differential suite: the daemon's delivered streams must be
//! byte-identical to an in-process service over the same stream and the
//! same admission schedule — across shard counts, thread widths, both
//! stream regimes, and a kill-and-restart-from-checkpoint mid-stream.

use std::net::TcpListener;
use std::path::PathBuf;

use tcsm_core::{EngineConfig, EngineStats, MatchEvent};
use tcsm_datasets::QueryGen;
use tcsm_graph::io::{parse_snap, SnapOptions};
use tcsm_graph::{QueryGraph, TemporalGraph};
use tcsm_server::server::{restore_service, serve, ServerConfig};
use tcsm_server::Client;
use tcsm_service::{
    CollectedMatches, CollectingSink, MatchService, QueryId, RecoveryPolicy, ServiceConfig,
    ShardPolicy,
};

const MINI_SNAP: &str = include_str!("../../datasets/fixtures/mini-snap.txt");

fn fixture() -> (TemporalGraph, i64) {
    let g = parse_snap(MINI_SNAP, &SnapOptions::default()).expect("fixture parses");
    let delta = tcsm_datasets::ingest::windows_for_stream(&g)[2];
    (g, delta)
}

fn queries(g: &TemporalGraph, delta: i64, n: usize) -> Vec<QueryGraph> {
    let mut qg = QueryGen::new(g);
    qg.directed = true;
    let qs: Vec<QueryGraph> = (0..32u64)
        .filter_map(|seed| {
            let size = 3 + (seed % 2) as usize;
            qg.generate(size, 0.5, (delta * 3 / 4).max(4), 11 + seed)
        })
        .take(n)
        .collect();
    assert_eq!(qs.len(), n, "fixture hosts {n} generated queries");
    qs
}

fn engine_cfg() -> EngineConfig {
    EngineConfig {
        directed: true,
        ..EngineConfig::default()
    }
}

fn svc_cfg(shards: usize, threads: usize, batching: bool) -> ServiceConfig {
    ServiceConfig {
        shards,
        policy: ShardPolicy::Spread,
        threads,
        batching,
        directed: true,
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tcsm-server-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The reference: the same admission schedule run in-process with
/// collecting sinks. Admit `early` queries, step `split` deltas, admit
/// `late` queries, drain. Returns each query's full event stream and
/// final stats, in admission order.
fn in_process(
    g: &TemporalGraph,
    delta: i64,
    cfg: ServiceConfig,
    early: &[QueryGraph],
    split: usize,
    late: &[QueryGraph],
) -> Vec<(Vec<MatchEvent>, EngineStats)> {
    let mut svc = MatchService::new(g, delta, cfg).expect("service builds");
    let mut handles: Vec<(QueryId, CollectedMatches)> = Vec::new();
    let mut admit = |svc: &mut MatchService, q: &QueryGraph| {
        let (sink, got) = CollectingSink::new();
        let id = svc.add_query(q, engine_cfg(), Box::new(sink));
        handles.push((id, got));
    };
    for q in early {
        admit(&mut svc, q);
    }
    for _ in 0..split {
        assert!(svc.step(), "split lies within the stream");
    }
    for q in late {
        admit(&mut svc, q);
    }
    svc.run();
    handles
        .into_iter()
        .map(|(id, got)| (got.take(), *svc.query_stats(id).expect("stats live")))
        .collect()
}

/// Number of deltas the full stream takes under `cfg`.
fn total_deltas(g: &TemporalGraph, delta: i64, cfg: ServiceConfig) -> usize {
    let mut svc = MatchService::new(g, delta, cfg).expect("service builds");
    let mut n = 0;
    while svc.step() {
        n += 1;
    }
    n
}

#[test]
fn loopback_streams_match_in_process_across_configs() {
    let (g, delta) = fixture();
    let qs = queries(&g, delta, 4);
    let (early, late) = qs.split_at(3);
    for (shards, threads, batching) in [(1, 0, false), (3, 2, false), (2, 0, true), (3, 2, true)] {
        let cfg = svc_cfg(shards, threads, batching);
        let split = total_deltas(&g, delta, cfg) / 2;
        let expected = in_process(&g, delta, cfg, early, split, late);

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::scope(|s| {
            let server = s.spawn(|| {
                let mut svc = MatchService::new(&g, delta, cfg).expect("service builds");
                serve(listener, &mut svc, &ServerConfig::default()).expect("serve")
            });
            let mut client = Client::connect(addr).expect("connect");
            let mut qids: Vec<u32> = early
                .iter()
                .map(|q| client.admit(q, engine_cfg()).expect("admit"))
                .collect();
            let (taken, done) = client.step(split as u64).expect("step");
            assert_eq!((taken, done), (split as u64, false));
            for q in late {
                qids.push(client.admit(q, engine_cfg()).expect("admit late"));
            }
            let (_, done) = client.step(0).expect("drain");
            assert!(done, "stream drained");

            for (qid, (events, stats)) in qids.iter().zip(&expected) {
                let stream = client.take_stream(*qid);
                assert_eq!(
                    &stream.events, events,
                    "delivered stream differs (shards {shards}, threads {threads}, \
                     batching {batching}, qid {qid})"
                );
                assert_eq!(
                    (stream.occurred, stream.expired),
                    (stats.occurred, stats.expired),
                    "delivered counts differ (qid {qid})"
                );
                let (resident, remote_stats) = client.query_stats(*qid).expect("stats");
                assert!(resident);
                assert_eq!(remote_stats.semantic(), stats.semantic());
            }
            let (sstats, _, remaining) = client.service_stats().expect("service stats");
            assert_eq!(remaining, 0);
            assert_eq!(sstats.windows_allocated, shards as u64);
            assert_eq!(sstats.disconnected, 0);
            client.shutdown(false).expect("shutdown");
            let final_stats = server.join().expect("server thread");
            assert_eq!(final_stats.admitted, qs.len() as u64);
        });
    }
}

#[test]
fn retire_over_the_wire_returns_final_stats_and_frees_the_slot() {
    let (g, delta) = fixture();
    let qs = queries(&g, delta, 2);
    let cfg = svc_cfg(1, 0, false);
    let expected = in_process(&g, delta, cfg, &qs, 0, &[]);

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut svc = MatchService::new(&g, delta, cfg).expect("service builds");
            serve(listener, &mut svc, &ServerConfig::default()).expect("serve")
        });
        let mut client = Client::connect(addr).expect("connect");
        let a = client.admit(&qs[0], engine_cfg()).expect("admit");
        let b = client.admit(&qs[1], engine_cfg()).expect("admit");
        client.step(0).expect("drain");
        let stats = client.retire(a).expect("retire");
        assert_eq!(stats.semantic(), expected[0].1.semantic());
        // Retired stats stay peekable, marked non-resident.
        let (resident, peeked) = client.query_stats(a).expect("peek");
        assert!(!resident);
        assert_eq!(peeked.semantic(), stats.semantic());
        let (resident, _) = client.query_stats(b).expect("peek b");
        assert!(resident);
        let (sstats, ..) = client.service_stats().expect("service stats");
        assert_eq!(sstats.resident_queries, 1);
        assert_eq!(sstats.retired, 1);
        client.shutdown(false).expect("shutdown");
    });
}

/// The tentpole gate: kill the daemon mid-stream (checkpoint, then
/// shut down *without* checkpointing again, so the state on disk is
/// exactly the mid-stream cut), restart from the checkpoint, re-subscribe,
/// and drain. Prefix + suffix must equal the uninterrupted run's stream,
/// byte for byte, per query.
#[test]
fn kill_and_restart_from_checkpoint_resumes_byte_identically() {
    let (g, delta) = fixture();
    let qs = queries(&g, delta, 3);
    for (shards, threads, batching) in [(2, 0, false), (3, 2, true)] {
        let cfg = svc_cfg(shards, threads, batching);
        let split = total_deltas(&g, delta, cfg) / 2;
        let expected = in_process(&g, delta, cfg, &qs, 0, &[]);
        let dir = scratch(&format!("kill-{shards}-{threads}-{batching}"));

        // Phase 1: serve, admit, step halfway, checkpoint, die.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server_cfg = ServerConfig {
            checkpoint_dir: Some(dir.clone()),
            autorun: false,
            metrics_addr: None,
        };
        let (qids, prefixes) = std::thread::scope(|s| {
            s.spawn(|| {
                let mut svc = MatchService::new(&g, delta, cfg).expect("service builds");
                serve(listener, &mut svc, &server_cfg).expect("serve")
            });
            let mut client = Client::connect(addr).expect("connect");
            let qids: Vec<u32> = qs
                .iter()
                .map(|q| client.admit(q, engine_cfg()).expect("admit"))
                .collect();
            client.step(split as u64).expect("step");
            client.checkpoint().expect("checkpoint");
            // "Kill": no second checkpoint — disk state stays the cut.
            client.shutdown(false).expect("shutdown");
            let prefixes: Vec<_> = qids.iter().map(|&q| client.take_stream(q)).collect();
            (qids, prefixes)
        });

        // Phase 2: restore, re-subscribe, drain.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut svc = restore_service(&g, &dir, RecoveryPolicy::Strict).expect("restore");
                serve(listener, &mut svc, &ServerConfig::default()).expect("serve")
            });
            let mut client = Client::connect(addr).expect("connect");
            let (sstats, processed, _) = client.service_stats().expect("service stats");
            assert_eq!(sstats.resident_queries, qs.len());
            assert!(processed > 0, "restored mid-stream");
            for &qid in &qids {
                client.resubscribe(qid).expect("resubscribe");
            }
            let (_, done) = client.step(0).expect("drain");
            assert!(done);
            for ((&qid, prefix), (events, stats)) in qids.iter().zip(&prefixes).zip(&expected) {
                let suffix = client.take_stream(qid);
                let mut whole = prefix.events.clone();
                whole.extend(suffix.events.iter().cloned());
                assert_eq!(
                    &whole, events,
                    "prefix+suffix differs from uninterrupted (shards {shards}, \
                     threads {threads}, batching {batching}, qid {qid})"
                );
                assert_eq!(
                    (
                        prefix.occurred + suffix.occurred,
                        prefix.expired + suffix.expired
                    ),
                    (stats.occurred, stats.expired)
                );
            }
            client.shutdown(false).expect("shutdown");
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Autorun mode consumes the stream without step requests; deliveries
/// still arrive complete and ordered per query.
#[test]
fn autorun_daemon_streams_to_a_passive_subscriber() {
    let (g, delta) = fixture();
    let qs = queries(&g, delta, 2);
    let cfg = svc_cfg(1, 0, false);
    let expected = in_process(&g, delta, cfg, &qs, 0, &[]);

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server_cfg = ServerConfig {
        checkpoint_dir: None,
        autorun: true,
        metrics_addr: None,
    };
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut svc = MatchService::new(&g, delta, cfg).expect("service builds");
            serve(listener, &mut svc, &server_cfg).expect("serve")
        });
        let mut client = Client::connect(addr).expect("connect");
        // Admissions race the autorun cursor, so streams are suffixes of
        // the reference, not the whole — admit before polling and wait
        // for the drain.
        let qids: Vec<u32> = qs
            .iter()
            .map(|q| client.admit(q, engine_cfg()).expect("admit"))
            .collect();
        loop {
            let (_, _, remaining) = client.service_stats().expect("service stats");
            if remaining == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        for (&qid, (events, _)) in qids.iter().zip(&expected) {
            let stream = client.take_stream(qid);
            assert!(
                events.ends_with(&stream.events),
                "autorun stream of qid {qid} is not a suffix of the reference \
                 ({} delivered, {} reference)",
                stream.events.len(),
                events.len()
            );
        }
        client.shutdown(false).expect("shutdown");
    });
}
