//! The daemon event loop: connections, request dispatch, delivery sinks.

use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Sender, TryRecvError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use tcsm_core::MatchEvent;
use tcsm_graph::codec::{read_wire_frame, write_wire_frame, WireError};
use tcsm_graph::io::parse_query_graph;
use tcsm_graph::TemporalGraph;
use tcsm_service::{
    DiscardSink, MatchService, QueryId, RecoveryPolicy, ResultSink, ServiceStats, SinkClosed,
    SnapshotError,
};

use crate::wire::{Delivery, ErrorCode, Request, Response, WireFault, MAX_REQUEST_FRAME};

/// Server-side knobs of [`serve`]; the service itself (stream, shards,
/// threads) is configured on the [`MatchService`] the caller passes in.
#[derive(Clone, Debug, Default)]
pub struct ServerConfig {
    /// Where [`Request::Checkpoint`] and a checkpointing
    /// [`Request::Shutdown`] write; `None` refuses both with
    /// [`ErrorCode::Unsupported`].
    pub checkpoint_dir: Option<PathBuf>,
    /// Drive the stream from the server loop whenever no request is
    /// pending, instead of only on explicit [`Request::Step`]s. Clients
    /// that need exact admission points (the differential tests) leave
    /// this off.
    pub autorun: bool,
    /// Bind a plaintext metrics endpoint here (e.g. `127.0.0.1:9184`):
    /// every connection receives one metrics exposition
    /// ([`MatchService::metrics_text`]) and is closed — no request
    /// framing, so `nc host port` scrapes it. `None` disables the
    /// endpoint; the [`Request::Metrics`] wire op works either way.
    pub metrics_addr: Option<String>,
}

/// A sink that frames one query's match stream onto its subscriber's
/// connection. Deliveries may run on pool worker threads during the shard
/// fan-out, so the writer is shared behind a mutex with the response path
/// (which only writes between steps). A write failure is the dead-peer
/// signal: the service auto-retires the query, other subscribers are
/// untouched.
struct SocketSink {
    writer: Arc<Mutex<TcpStream>>,
}

impl ResultSink for SocketSink {
    fn deliver(
        &mut self,
        qid: QueryId,
        events: &mut Vec<MatchEvent>,
        occurred: u64,
        expired: u64,
    ) -> Result<(), SinkClosed> {
        let frame = Delivery::encode_parts(qid.raw(), occurred, expired, events);
        let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        write_wire_frame(&mut *w, &frame).map_err(|_| SinkClosed)
    }
}

/// What reader threads and the acceptor feed the service loop.
enum Event {
    /// A new connection was accepted.
    Conn(TcpStream),
    /// A complete wire frame arrived on connection `conn`.
    Request { conn: u64, bytes: Vec<u8> },
    /// A scraper connected to the metrics endpoint; the service loop
    /// writes one exposition and closes (keeping every `MatchService`
    /// access on the service thread).
    MetricsConn(TcpStream),
    /// Connection `conn` declared a frame beyond [`MAX_REQUEST_FRAME`];
    /// the stream cannot be re-synchronized.
    Oversized { conn: u64, declared: u64 },
    /// Connection `conn` hit EOF or an i/o error.
    Gone { conn: u64 },
}

/// Per-connection server state.
struct Conn {
    writer: Arc<Mutex<TcpStream>>,
    /// Raw ids of the queries streaming to this connection (admitted or
    /// re-subscribed here) — retired as disconnected when the peer goes.
    queries: Vec<u32>,
    reader: Option<JoinHandle<()>>,
}

/// Restores a checkpointed service for [`serve`], parking every resident
/// query on a collecting [`DiscardSink`] until its subscriber re-attaches
/// with [`Request::Resubscribe`]. Deliveries produced before re-attachment
/// are dropped (the events still count in the query's stats) — a daemon
/// normally restores, serves, and lets clients re-subscribe before any
/// step request arrives.
pub fn restore_service<'g>(
    g: &'g TemporalGraph,
    dir: &std::path::Path,
    policy: RecoveryPolicy,
) -> Result<MatchService<'g>, SnapshotError> {
    MatchService::restore(g, dir, policy, |_| Box::new(DiscardSink::new(true)))
}

/// Runs the daemon loop on `listener` until a client requests shutdown.
/// Accepts any number of concurrent connections; one reader thread per
/// connection feeds a single service thread (this one), so all service
/// mutations are serialized. Returns the final service counters.
///
/// Failure handling, per connection:
/// * malformed frames (bad magic/version/checksum, unknown op, broken
///   payload) are answered with a typed [`KIND_ERROR`] frame and the
///   connection lives on;
/// * an oversized length declaration is answered with
///   [`ErrorCode::Oversized`] and the connection is closed — the byte
///   stream cannot be trusted past a lying prefix;
/// * EOF or an i/o error retires the connection's queries as
///   disconnected ([`ServiceStats::disconnected`]) without touching other
///   subscribers.
///
/// [`KIND_ERROR`]: crate::wire::KIND_ERROR
pub fn serve(
    listener: TcpListener,
    svc: &mut MatchService<'_>,
    cfg: &ServerConfig,
) -> std::io::Result<ServiceStats> {
    let (tx, rx) = std::sync::mpsc::channel::<Event>();
    let stop = Arc::new(AtomicBool::new(false));
    let acceptor = spawn_acceptor(listener, tx.clone(), Arc::clone(&stop))?;
    let metrics_acceptor = match &cfg.metrics_addr {
        Some(addr) => Some(spawn_metrics_acceptor(
            TcpListener::bind(addr)?,
            tx.clone(),
            Arc::clone(&stop),
        )?),
        None => None,
    };

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn: u64 = 0;
    'serve: loop {
        let ev = if cfg.autorun && svc.remaining_events() > 0 {
            match rx.try_recv() {
                Ok(ev) => ev,
                Err(TryRecvError::Empty) => {
                    svc.step();
                    sweep(svc, &mut conns);
                    continue;
                }
                Err(TryRecvError::Disconnected) => break,
            }
        } else {
            match rx.recv() {
                Ok(ev) => ev,
                Err(_) => break,
            }
        };
        match ev {
            Event::Conn(stream) => {
                let id = next_conn;
                next_conn += 1;
                let reader = match stream.try_clone() {
                    Ok(r) => r,
                    Err(_) => continue, // peer already unusable
                };
                let handle = spawn_reader(id, reader, tx.clone());
                conns.insert(
                    id,
                    Conn {
                        writer: Arc::new(Mutex::new(stream)),
                        queries: Vec::new(),
                        reader: Some(handle),
                    },
                );
            }
            Event::Request { conn, bytes } => {
                let shutdown = dispatch(svc, cfg, &mut conns, conn, &bytes);
                sweep(svc, &mut conns);
                if shutdown {
                    break 'serve;
                }
            }
            Event::Oversized { conn, declared } => {
                if let Some(c) = conns.get(&conn) {
                    let fault = WireFault {
                        seq: 0,
                        code: ErrorCode::Oversized,
                        message: format!(
                            "frame of {declared} bytes exceeds the {MAX_REQUEST_FRAME}-byte limit"
                        ),
                    };
                    // Best effort: the peer may already be gone.
                    let _ = send(&c.writer, &fault.encode());
                }
                drop_conn(svc, &mut conns, conn);
            }
            Event::MetricsConn(mut stream) => {
                // One shot: write the exposition, close. Scrape failures
                // (a peer that vanished) are the scraper's problem.
                let text = svc.metrics_text();
                let _ = stream.write_all(text.as_bytes());
                let _ = stream.shutdown(Shutdown::Both);
            }
            Event::Gone { conn } => drop_conn(svc, &mut conns, conn),
        }
    }

    stop.store(true, Ordering::Release);
    for (_, conn) in conns.drain() {
        close_conn(conn);
    }
    let _ = acceptor.join();
    if let Some(handle) = metrics_acceptor {
        let _ = handle.join();
    }
    Ok(svc.stats())
}

/// The accept loop: nonblocking so it can observe the stop flag.
fn spawn_acceptor(
    listener: TcpListener,
    tx: Sender<Event>,
    stop: Arc<AtomicBool>,
) -> std::io::Result<JoinHandle<()>> {
    listener.set_nonblocking(true)?;
    Ok(std::thread::spawn(move || loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                if tx.send(Event::Conn(stream)).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }))
}

/// The metrics-endpoint accept loop: forwards each scraper connection to
/// the service loop (which renders and writes the exposition) and
/// observes the same stop flag as the main acceptor.
fn spawn_metrics_acceptor(
    listener: TcpListener,
    tx: Sender<Event>,
    stop: Arc<AtomicBool>,
) -> std::io::Result<JoinHandle<()>> {
    listener.set_nonblocking(true)?;
    Ok(std::thread::spawn(move || loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                if tx.send(Event::MetricsConn(stream)).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }))
}

/// One blocking reader per connection: frames in, events out. Exits on
/// EOF, i/o error, an oversized declaration, or the service loop closing
/// the socket underneath it.
fn spawn_reader(conn: u64, mut stream: TcpStream, tx: Sender<Event>) -> JoinHandle<()> {
    std::thread::spawn(move || loop {
        match read_wire_frame(&mut stream, MAX_REQUEST_FRAME) {
            Ok(Some(bytes)) => {
                if tx.send(Event::Request { conn, bytes }).is_err() {
                    return;
                }
            }
            Ok(None) | Err(WireError::Io(_)) => {
                let _ = tx.send(Event::Gone { conn });
                return;
            }
            Err(WireError::Oversized { declared, .. }) => {
                let _ = tx.send(Event::Oversized { conn, declared });
                return;
            }
        }
    })
}

fn send(writer: &Arc<Mutex<TcpStream>>, frame: &[u8]) -> std::io::Result<()> {
    let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
    write_wire_frame(&mut *w, frame)?;
    w.flush()
}

/// Retires the queries the disconnect sweep caught (their sinks failed
/// mid-delivery) from every connection's subscription list.
fn sweep(svc: &mut MatchService<'_>, conns: &mut HashMap<u64, Conn>) {
    for qid in svc.drain_disconnected() {
        for conn in conns.values_mut() {
            conn.queries.retain(|&q| q != qid.raw());
        }
    }
}

/// Connection death: retire its queries as disconnected, close the
/// socket (which also unblocks the reader thread), reap the reader.
fn drop_conn(svc: &mut MatchService<'_>, conns: &mut HashMap<u64, Conn>, id: u64) {
    if let Some(conn) = conns.remove(&id) {
        for &qid in &conn.queries {
            svc.retire_disconnected(QueryId::from_raw(qid));
        }
        svc.drain_disconnected();
        close_conn(conn);
    }
}

fn close_conn(mut conn: Conn) {
    let w = conn.writer.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = w.shutdown(Shutdown::Both);
    drop(w);
    if let Some(handle) = conn.reader.take() {
        let _ = handle.join();
    }
}

/// Handles one request frame on connection `conn_id`. Returns `true` when
/// the server must shut down.
fn dispatch(
    svc: &mut MatchService<'_>,
    cfg: &ServerConfig,
    conns: &mut HashMap<u64, Conn>,
    conn_id: u64,
    bytes: &[u8],
) -> bool {
    let Some(conn) = conns.get(&conn_id) else {
        return false; // raced with Gone
    };
    let writer = Arc::clone(&conn.writer);
    let (seq, req) = match Request::decode(bytes) {
        Ok(ok) => ok,
        Err(fault) => {
            if send(&writer, &fault.encode()).is_err() {
                drop_conn(svc, conns, conn_id);
            }
            return false;
        }
    };
    let mut shutdown = false;
    let reply: Result<Response, WireFault> = match req {
        Request::Admit { query, cfg } => match parse_query_graph(&query) {
            Ok(q) => {
                let sink = SocketSink {
                    writer: Arc::clone(&writer),
                };
                let qid = svc.add_query(&q, cfg, Box::new(sink));
                if let Some(c) = conns.get_mut(&conn_id) {
                    c.queries.push(qid.raw());
                }
                Ok(Response::Admitted { qid: qid.raw() })
            }
            Err(e) => Err(WireFault {
                seq,
                code: ErrorCode::BadQuery,
                message: format!("query rejected: {e}"),
            }),
        },
        Request::Retire { qid } => match svc.remove_query(QueryId::from_raw(qid)) {
            Some(stats) => {
                for c in conns.values_mut() {
                    c.queries.retain(|&q| q != qid);
                }
                Ok(Response::Retired { stats })
            }
            None => Err(unknown_query(seq, qid)),
        },
        Request::QueryStats { qid } => {
            let id = QueryId::from_raw(qid);
            match svc.query_stats(id) {
                Some(stats) => Ok(Response::QueryStats {
                    resident: svc.shard_of(id).is_some(),
                    stats: *stats,
                }),
                None => Err(unknown_query(seq, qid)),
            }
        }
        Request::ServiceStats => Ok(Response::ServiceStats {
            stats: svc.stats(),
            processed: svc.events_processed() as u64,
            remaining: svc.remaining_events() as u64,
        }),
        Request::Step { n } => {
            let mut taken = 0u64;
            while (n == 0 || taken < n) && svc.step() {
                taken += 1;
            }
            Ok(Response::Stepped {
                taken,
                done: svc.remaining_events() == 0,
            })
        }
        Request::Resubscribe { qid } => {
            let sink = SocketSink {
                writer: Arc::clone(&writer),
            };
            if svc.set_sink(QueryId::from_raw(qid), Box::new(sink)) {
                if let Some(c) = conns.get_mut(&conn_id) {
                    c.queries.push(qid);
                }
                Ok(Response::Resubscribed)
            } else {
                Err(unknown_query(seq, qid))
            }
        }
        Request::Metrics => Ok(Response::Metrics {
            text: svc.metrics_text(),
        }),
        Request::Checkpoint => checkpoint(svc, cfg, seq).map(|()| Response::Checkpointed),
        Request::Shutdown { checkpoint: cp } => {
            let outcome = if cp {
                checkpoint(svc, cfg, seq).map(|()| Response::ShuttingDown)
            } else {
                Ok(Response::ShuttingDown)
            };
            shutdown = outcome.is_ok();
            outcome
        }
    };
    let frame = match &reply {
        Ok(resp) => resp.encode(seq),
        Err(fault) => fault.encode(),
    };
    if send(&writer, &frame).is_err() {
        drop_conn(svc, conns, conn_id);
        return false; // the shutdown requester died: keep serving
    }
    shutdown
}

fn unknown_query(seq: u64, qid: u32) -> WireFault {
    WireFault {
        seq,
        code: ErrorCode::UnknownQuery,
        message: format!("no resident or retired query {qid}"),
    }
}

fn checkpoint(svc: &mut MatchService<'_>, cfg: &ServerConfig, seq: u64) -> Result<(), WireFault> {
    let Some(dir) = &cfg.checkpoint_dir else {
        return Err(WireFault {
            seq,
            code: ErrorCode::Unsupported,
            message: "server runs without a checkpoint directory".into(),
        });
    };
    svc.checkpoint(dir).map_err(|e| WireFault {
        seq,
        code: ErrorCode::Unsupported,
        message: format!("checkpoint failed: {e}"),
    })
}
