//! The matching-service daemon.
//!
//! ```text
//! cargo run --release -p tcsm-server --bin tcsm-serviced -- [flags]
//!
//! flags: --input FILE     temporal-graph dump to serve (required)
//!        --format F       snap (src dst unixtime lines) | native (v/e
//!                         text); default snap
//!        --delta N        window length δ (default: the middle of the
//!                         stream-derived window ladder)
//!        --listen ADDR    bind address (default 127.0.0.1:7878)
//!        --shards N       service shards (default 1)
//!        --threads N      shard fan-out pool width (default 0 = serial)
//!        --batched        batched delta regime instead of per-event
//!        --undirected     undirected window semantics
//!        --checkpoint DIR enable checkpoint/restore under DIR
//!        --restore        restore from --checkpoint DIR instead of
//!                         starting fresh (queries park on discarding
//!                         sinks until clients re-subscribe)
//!        --rebuild        tolerate shard-file corruption on --restore by
//!                         replaying the stream prefix (default: strict)
//!        --autorun        drive the stream whenever no request is
//!                         pending (default: clients step explicitly)
//!        --metrics-addr A bind a plaintext metrics endpoint at A (each
//!                         connection gets one Prometheus-style
//!                         exposition and is closed; `nc host port`
//!                         scrapes it). Phase latencies appear when the
//!                         daemon runs with TCSM_TRACE=counters|spans.
//! ```
//!
//! The wire protocol is documented on the `tcsm_server` crate root.

use std::net::TcpListener;
use std::path::PathBuf;

use tcsm_datasets::ingest::DatasetSource;
use tcsm_datasets::{FileFormat, FileSource};
use tcsm_server::server::{restore_service, serve, ServerConfig};
use tcsm_service::{MatchService, RecoveryPolicy, ServiceConfig};

fn usage_err(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn parse_flag<T: std::str::FromStr>(value: &str, what: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| usage_err(&format!("{what} (got '{value}')")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<PathBuf> = None;
    let mut format = FileFormat::Snap;
    let mut delta: Option<i64> = None;
    let mut listen = String::from("127.0.0.1:7878");
    let mut svc_cfg = ServiceConfig {
        shards: 1,
        threads: 0,
        batching: false,
        directed: true,
        ..ServiceConfig::default()
    };
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut restore = false;
    let mut policy = RecoveryPolicy::Strict;
    let mut autorun = false;
    let mut metrics_addr: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        let need = |i: &mut usize| -> &str {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| usage_err(&format!("{} takes a value", args[*i - 1])))
        };
        match args[i].as_str() {
            "--input" => input = Some(PathBuf::from(need(&mut i))),
            "--format" => {
                let name = need(&mut i);
                format = FileFormat::from_name(name)
                    .unwrap_or_else(|| usage_err("--format takes snap | native"));
            }
            "--delta" => delta = Some(parse_flag(need(&mut i), "--delta takes an integer")),
            "--listen" => listen = need(&mut i).to_string(),
            "--shards" => svc_cfg.shards = parse_flag(need(&mut i), "--shards takes an integer"),
            "--threads" => svc_cfg.threads = parse_flag(need(&mut i), "--threads takes an integer"),
            "--batched" => svc_cfg.batching = true,
            "--undirected" => svc_cfg.directed = false,
            "--checkpoint" => checkpoint_dir = Some(PathBuf::from(need(&mut i))),
            "--restore" => restore = true,
            "--rebuild" => policy = RecoveryPolicy::Rebuild,
            "--autorun" => autorun = true,
            "--metrics-addr" => metrics_addr = Some(need(&mut i).to_string()),
            other => usage_err(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    let Some(path) = input else {
        usage_err("--input FILE is required");
    };
    if restore && checkpoint_dir.is_none() {
        usage_err("--restore requires --checkpoint DIR");
    }

    let mut source = match format {
        FileFormat::Snap => FileSource::snap(&path),
        FileFormat::Native => FileSource::native(&path),
    };
    source.directed = svc_cfg.directed;
    let g = source
        .load(0, 1.0)
        .unwrap_or_else(|e| usage_err(&format!("cannot load {}: {e}", path.display())));
    let delta = delta.unwrap_or_else(|| source.window_sizes(&g, 1.0)[2]);
    eprintln!(
        "tcsm-serviced: {} edges, delta {delta}, {} shard(s), {} thread(s)",
        g.num_edges(),
        svc_cfg.shards,
        svc_cfg.threads,
    );

    let server_cfg = ServerConfig {
        checkpoint_dir: checkpoint_dir.clone(),
        autorun,
        metrics_addr: metrics_addr.clone(),
    };
    let mut svc = if restore {
        let dir = checkpoint_dir.as_deref().expect("checked above");
        let svc = restore_service(&g, dir, policy)
            .unwrap_or_else(|e| usage_err(&format!("restore failed: {e}")));
        eprintln!(
            "tcsm-serviced: restored {} resident query(ies) at event {}",
            svc.stats().resident_queries,
            svc.events_processed(),
        );
        svc
    } else {
        MatchService::new(&g, delta, svc_cfg)
            .unwrap_or_else(|e| usage_err(&format!("cannot build service: {e}")))
    };

    let listener = TcpListener::bind(&listen)
        .unwrap_or_else(|e| usage_err(&format!("cannot bind {listen}: {e}")));
    eprintln!(
        "tcsm-serviced: listening on {}",
        listener
            .local_addr()
            .map_or(listen.clone(), |a| a.to_string())
    );
    if let Some(addr) = &metrics_addr {
        eprintln!("tcsm-serviced: metrics endpoint on {addr}");
    }
    match serve(listener, &mut svc, &server_cfg) {
        Ok(stats) => eprintln!(
            "tcsm-serviced: shut down after {} events, {} admitted, {} retired ({} disconnected)",
            stats.events, stats.admitted, stats.retired, stats.disconnected,
        ),
        Err(e) => {
            eprintln!("tcsm-serviced: server error: {e}");
            std::process::exit(1);
        }
    }
}
