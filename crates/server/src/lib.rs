//! # tcsm-server — the network daemon of the matching service
//!
//! `tcsm-serviced` puts a [`MatchService`](tcsm_service::MatchService) on
//! a TCP socket: remote clients admit and retire standing queries, drive
//! (or watch) the stream, and receive their queries' match streams as
//! framed deliveries, with a checkpointing shutdown for crash-safe
//! restarts. No async runtime and no serialization framework — blocking
//! std networking, one reader thread per connection feeding a single
//! service thread, and the same hand-rolled [`tcsm_graph::codec`] frames
//! the checkpoint files use.
//!
//! # Wire protocol
//!
//! Every message is one codec frame (`TCSM` magic, format version, kind
//! byte, payload, FNV-1a checksum) preceded by a `u32` little-endian byte
//! length. Grammar, with `[x]` a codec frame of kind `x`:
//!
//! ```text
//! connection   := client-bytes ∥ server-bytes          (full duplex)
//! client-bytes := [REQUEST]*
//! server-bytes := ([RESPONSE] | [ERROR] | [DELIVERY])*
//! REQUEST      := seq:u64 op:u8 payload                (kind 16)
//! RESPONSE     := seq:u64 op:u8 payload                (kind 17)
//! ERROR        := seq:u64 code:u8 message:str          (kind 18)
//! DELIVERY     := qid:u32 occurred:u64 expired:u64
//!                 count:u64 MatchEvent*                (kind 19)
//! ```
//!
//! Ops (request/response pairs share the tag): `1` admit, `2` retire,
//! `3` query stats, `4` service stats, `5` step, `6` resubscribe,
//! `7` checkpoint, `8` shutdown, `9` metrics. Each request is answered by
//! exactly one `RESPONSE` (echoing `seq` and op) or one `ERROR`;
//! `DELIVERY` frames are unsolicited and interleave, but always *precede*
//! the response of the step that produced them on that connection. See
//! [`wire`] for the payload layouts and [`wire::ErrorCode`] for the
//! refusal classes.
//!
//! The `metrics` request (`op 9`, empty payload) is answered with one
//! string payload: a Prometheus-style text exposition of the service
//! counters and per-phase latency quantiles (per service, per shard, and
//! per query — populated when the daemon runs with
//! `TCSM_TRACE=counters|spans`), parseable with
//! `tcsm_telemetry::parse_exposition`. The same text is served outside
//! the frame protocol when the daemon is started with
//! `--metrics-addr HOST:PORT` ([`ServerConfig::metrics_addr`]): each
//! connection to that address receives exactly one exposition as plain
//! bytes and is closed, so `nc host port` is a complete scraper.
//!
//! Malformed input never kills the daemon and never panics: a frame that
//! fails validation is answered with a typed `ERROR` (with `seq = 0` when
//! the frame was too broken to attribute) and the connection continues.
//! The single exception is a wire length prefix beyond
//! [`wire::MAX_REQUEST_FRAME`]: after a lying prefix the byte stream
//! cannot be re-synchronized, so the server sends
//! [`ErrorCode::Oversized`](wire::ErrorCode::Oversized) and closes the
//! connection.
//!
//! # Lifecycle
//!
//! A client that disappears (EOF, reset, failed delivery write) has its
//! queries auto-retired as *disconnected* — other subscribers never
//! notice. Shutdown (`op 8`) optionally checkpoints the full service
//! state into the server's configured directory first; a later daemon
//! invocation restores it ([`restore_service`]) with every query parked
//! on a discarding sink until its subscriber re-attaches (`op 6`), and
//! from re-attachment on the delivered stream is byte-identical to the
//! suffix an uninterrupted run would have produced (pinned by this
//! crate's loopback differential tests).
//!
//! The stream is driven by `step` requests by default, so tests and
//! deterministic replays control exactly where admissions land; a daemon
//! started with `--autorun` instead consumes the stream whenever no
//! request is pending.

pub mod client;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, QueryStream, ServerMsg};
pub use server::{restore_service, serve, ServerConfig};
