//! The daemon's wire protocol: message types and their frame codecs.
//!
//! Every message is one [`tcsm_graph::codec`] frame (`TCSM` magic, format
//! version, kind byte, little-endian payload, trailing FNV-1a checksum)
//! carried over the stream transport of
//! [`write_wire_frame`](tcsm_graph::codec::write_wire_frame) /
//! [`read_wire_frame`](tcsm_graph::codec::read_wire_frame): a `u32`
//! little-endian byte length, then the frame. Four frame kinds exist on a
//! daemon connection:
//!
//! | kind | constant | direction | payload |
//! |------|----------|-----------|---------|
//! | 16 | [`KIND_REQUEST`] | client → server | `seq: u64`, `op: u8`, op payload |
//! | 17 | [`KIND_RESPONSE`] | server → client | `seq: u64`, `op: u8`, op payload |
//! | 18 | [`KIND_ERROR`] | server → client | `seq: u64`, `code: u8`, `message: str` |
//! | 19 | [`KIND_DELIVERY`] | server → client | `qid: u32`, `occurred: u64`, `expired: u64`, match events |
//!
//! A response echoes its request's `seq` and op tag; deliveries are
//! unsolicited (they carry a query id instead of a `seq`) and are written
//! to the connection that admitted — or re-subscribed to — the query,
//! strictly before the response of the step that produced them. An error
//! frame with `seq = 0` could not be attributed to a request (the frame
//! failed checksum or header validation before its `seq` was readable).
//!
//! Decoding never panics: every malformed input is a typed error, and the
//! transport refuses oversized length declarations before allocating.

use tcsm_core::{EngineConfig, EngineStats, MatchEvent};
use tcsm_graph::codec::{encode_frame, open_frame, CodecError, Decoder, Encoder};
use tcsm_service::ServiceStats;

/// Frame kind of client requests.
pub const KIND_REQUEST: u8 = 16;
/// Frame kind of server responses (one per request, echoing its `seq`).
pub const KIND_RESPONSE: u8 = 17;
/// Frame kind of server error reports.
pub const KIND_ERROR: u8 = 18;
/// Frame kind of streamed match deliveries.
pub const KIND_DELIVERY: u8 = 19;

/// Largest wire frame a server accepts from a client. Requests are small
/// (a query text plus a config); anything larger is a corrupt or hostile
/// length declaration, refused before allocation.
pub const MAX_REQUEST_FRAME: usize = 1 << 20;
/// Largest wire frame a client accepts from a server (a delivery carries
/// every match event of one stream delta).
pub const MAX_STREAM_FRAME: usize = 1 << 26;

const OP_ADMIT: u8 = 1;
const OP_RETIRE: u8 = 2;
const OP_QUERY_STATS: u8 = 3;
const OP_SERVICE_STATS: u8 = 4;
const OP_STEP: u8 = 5;
const OP_RESUBSCRIBE: u8 = 6;
const OP_CHECKPOINT: u8 = 7;
const OP_SHUTDOWN: u8 = 8;
const OP_METRICS: u8 = 9;

/// Why a request was refused (the `code` byte of a [`KIND_ERROR`] frame).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame failed header, checksum, or payload validation.
    Malformed = 1,
    /// The frame decoded but its op tag is unknown.
    BadOp = 2,
    /// The request names a query id that is neither resident nor retired.
    UnknownQuery = 3,
    /// The admitted query text does not parse or validate.
    BadQuery = 4,
    /// The operation is not available on this server (e.g. checkpointing
    /// without a configured checkpoint directory).
    Unsupported = 5,
    /// The wire length prefix declared a frame beyond
    /// [`MAX_REQUEST_FRAME`]; the connection cannot be re-synchronized
    /// and is closed after this error.
    Oversized = 6,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::BadOp,
            3 => ErrorCode::UnknownQuery,
            4 => ErrorCode::BadQuery,
            5 => ErrorCode::Unsupported,
            6 => ErrorCode::Oversized,
            _ => return None,
        })
    }
}

/// A client request. Query text travels in the same line format the
/// checkpoint manifest uses ([`tcsm_graph::io::parse_query_graph`]).
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Admit a standing query; its match stream is delivered to this
    /// connection from the next processed delta on.
    Admit {
        /// Query in the native text format.
        query: String,
        /// Per-query engine configuration (stream regime, thread placement
        /// and direction semantics are service-owned and overridden).
        cfg: EngineConfig,
    },
    /// Retire a standing query, returning its final counters.
    Retire {
        /// Wire id as returned by [`Response::Admitted`].
        qid: u32,
    },
    /// Peek a resident or retired query's counters.
    QueryStats {
        /// Wire id of the query.
        qid: u32,
    },
    /// Aggregate service counters plus the stream cursor.
    ServiceStats,
    /// Process up to `n` stream deltas (`0` = drain to the end of the
    /// stream). Deliveries produced by these deltas are written before
    /// the response.
    Step {
        /// Maximum number of deltas to process; `0` drains.
        n: u64,
    },
    /// Re-attach this connection to a resident query's match stream — how
    /// a subscriber finds its queries again after a daemon restarted from
    /// a checkpoint.
    Resubscribe {
        /// Wire id of the resident query.
        qid: u32,
    },
    /// Write a checkpoint into the server's configured directory.
    Checkpoint,
    /// Stop the server (optionally checkpointing first); the response is
    /// the last frame on every connection.
    Shutdown {
        /// Checkpoint into the configured directory before stopping.
        checkpoint: bool,
    },
    /// Fetch the service's metrics exposition (Prometheus-style text:
    /// service counters plus per-phase latency quantiles per scope).
    Metrics,
}

impl Request {
    fn op(&self) -> u8 {
        match self {
            Request::Admit { .. } => OP_ADMIT,
            Request::Retire { .. } => OP_RETIRE,
            Request::QueryStats { .. } => OP_QUERY_STATS,
            Request::ServiceStats => OP_SERVICE_STATS,
            Request::Step { .. } => OP_STEP,
            Request::Resubscribe { .. } => OP_RESUBSCRIBE,
            Request::Checkpoint => OP_CHECKPOINT,
            Request::Shutdown { .. } => OP_SHUTDOWN,
            Request::Metrics => OP_METRICS,
        }
    }

    /// Encodes the request as a [`KIND_REQUEST`] frame tagged `seq`.
    pub fn encode(&self, seq: u64) -> Vec<u8> {
        encode_frame(KIND_REQUEST, |e| {
            e.put_u64(seq);
            e.put_u8(self.op());
            match self {
                Request::Admit { query, cfg } => {
                    e.put_str(query);
                    e.section(|e| cfg.encode(e));
                }
                Request::Retire { qid }
                | Request::QueryStats { qid }
                | Request::Resubscribe { qid } => e.put_u32(*qid),
                Request::ServiceStats | Request::Checkpoint | Request::Metrics => {}
                Request::Step { n } => e.put_u64(*n),
                Request::Shutdown { checkpoint } => e.put_bool(*checkpoint),
            }
        })
    }

    /// Decodes a [`KIND_REQUEST`] frame into `(seq, request)`. Every
    /// failure maps to the error frame the server must answer with: a
    /// frame whose header or checksum is broken gets `seq = 0` (its `seq`
    /// cannot be trusted), a decoded frame with an unknown op tag gets
    /// [`ErrorCode::BadOp`], and a payload that is truncated, trailing, or
    /// invalid gets [`ErrorCode::Malformed`] with the `seq` echoed.
    pub fn decode(frame: &[u8]) -> Result<(u64, Request), WireFault> {
        let mut dec = open_frame(frame, KIND_REQUEST).map_err(|e| WireFault {
            seq: 0,
            code: ErrorCode::Malformed,
            message: format!("bad request frame: {e}"),
        })?;
        let seq = dec.get_u64().map_err(|e| WireFault {
            seq: 0,
            code: ErrorCode::Malformed,
            message: format!("bad request frame: {e}"),
        })?;
        let fault = |code: ErrorCode, e: CodecError| WireFault {
            seq,
            code,
            message: format!("bad request payload: {e}"),
        };
        let op = dec.get_u8().map_err(|e| fault(ErrorCode::Malformed, e))?;
        let req = (|| -> Result<Request, WireFaultOrCodec> {
            Ok(match op {
                OP_ADMIT => Request::Admit {
                    query: dec.get_str()?.to_string(),
                    cfg: {
                        let mut s = dec.section()?;
                        let cfg = EngineConfig::decode(&mut s)?;
                        s.finish()?;
                        cfg
                    },
                },
                OP_RETIRE => Request::Retire {
                    qid: dec.get_u32()?,
                },
                OP_QUERY_STATS => Request::QueryStats {
                    qid: dec.get_u32()?,
                },
                OP_SERVICE_STATS => Request::ServiceStats,
                OP_STEP => Request::Step { n: dec.get_u64()? },
                OP_RESUBSCRIBE => Request::Resubscribe {
                    qid: dec.get_u32()?,
                },
                OP_CHECKPOINT => Request::Checkpoint,
                OP_SHUTDOWN => Request::Shutdown {
                    checkpoint: dec.get_bool()?,
                },
                OP_METRICS => Request::Metrics,
                other => {
                    return Err(WireFault {
                        seq,
                        code: ErrorCode::BadOp,
                        message: format!("unknown request op {other}"),
                    }
                    .into())
                }
            })
        })()
        .map_err(|e: WireFaultOrCodec| match e {
            WireFaultOrCodec::Fault(f) => f,
            WireFaultOrCodec::Codec(c) => fault(ErrorCode::Malformed, c),
        })?;
        dec.finish().map_err(|e| fault(ErrorCode::Malformed, e))?;
        Ok((seq, req))
    }
}

/// Internal: lets the decode closure bubble both typed faults (bad op)
/// and raw codec errors (malformed payload) through one `?`.
enum WireFaultOrCodec {
    Fault(WireFault),
    Codec(CodecError),
}

impl From<WireFault> for WireFaultOrCodec {
    fn from(f: WireFault) -> WireFaultOrCodec {
        WireFaultOrCodec::Fault(f)
    }
}

impl From<CodecError> for WireFaultOrCodec {
    fn from(c: CodecError) -> WireFaultOrCodec {
        WireFaultOrCodec::Codec(c)
    }
}

/// What a server answers a broken or refused request with — the typed
/// content of a [`KIND_ERROR`] frame.
#[derive(Clone, Debug, PartialEq)]
pub struct WireFault {
    /// `seq` of the offending request, `0` when unattributable.
    pub seq: u64,
    /// Refusal class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireFault {
    /// Encodes the fault as a [`KIND_ERROR`] frame.
    pub fn encode(&self) -> Vec<u8> {
        encode_frame(KIND_ERROR, |e| {
            e.put_u64(self.seq);
            e.put_u8(self.code as u8);
            e.put_str(&self.message);
        })
    }

    /// Decodes a [`KIND_ERROR`] frame.
    pub fn decode(frame: &[u8]) -> Result<WireFault, CodecError> {
        let mut dec = open_frame(frame, KIND_ERROR)?;
        let seq = dec.get_u64()?;
        let raw = dec.get_u8()?;
        let code = ErrorCode::from_u8(raw)
            .ok_or_else(|| CodecError::Invalid(format!("unknown error code {raw}")))?;
        let message = dec.get_str()?.to_string();
        dec.finish()?;
        Ok(WireFault { seq, code, message })
    }
}

impl std::fmt::Display for WireFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?} (seq {}): {}", self.code, self.seq, self.message)
    }
}

impl std::error::Error for WireFault {}

/// A server response; its variant mirrors the request op.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The admitted query's wire id.
    Admitted {
        /// Pass this id to retire/stats/resubscribe requests.
        qid: u32,
    },
    /// Final counters of the retired query.
    Retired {
        /// The query's counters at retirement.
        stats: EngineStats,
    },
    /// A query's counters.
    QueryStats {
        /// Still resident (false: retired, counters are final).
        resident: bool,
        /// The counters.
        stats: EngineStats,
    },
    /// Aggregate service counters plus the stream cursor.
    ServiceStats {
        /// Aggregate counters.
        stats: ServiceStats,
        /// Stream events processed so far.
        processed: u64,
        /// Stream events not yet processed.
        remaining: u64,
    },
    /// How far a step request got.
    Stepped {
        /// Deltas actually processed (≤ requested, less only at stream
        /// end).
        taken: u64,
        /// The stream is exhausted.
        done: bool,
    },
    /// The connection now receives the query's match stream.
    Resubscribed,
    /// The checkpoint is durable.
    Checkpointed,
    /// The server stops; this is the connection's last frame.
    ShuttingDown,
    /// The service's metrics exposition.
    Metrics {
        /// Prometheus-style text (see `tcsm_telemetry`'s crate docs for
        /// the grammar; parseable with `tcsm_telemetry::parse_exposition`).
        text: String,
    },
}

impl Response {
    fn op(&self) -> u8 {
        match self {
            Response::Admitted { .. } => OP_ADMIT,
            Response::Retired { .. } => OP_RETIRE,
            Response::QueryStats { .. } => OP_QUERY_STATS,
            Response::ServiceStats { .. } => OP_SERVICE_STATS,
            Response::Stepped { .. } => OP_STEP,
            Response::Resubscribed => OP_RESUBSCRIBE,
            Response::Checkpointed => OP_CHECKPOINT,
            Response::ShuttingDown => OP_SHUTDOWN,
            Response::Metrics { .. } => OP_METRICS,
        }
    }

    /// Encodes the response as a [`KIND_RESPONSE`] frame tagged `seq`.
    pub fn encode(&self, seq: u64) -> Vec<u8> {
        encode_frame(KIND_RESPONSE, |e| {
            e.put_u64(seq);
            e.put_u8(self.op());
            match self {
                Response::Admitted { qid } => e.put_u32(*qid),
                Response::Retired { stats } => e.section(|e| stats.encode(e)),
                Response::QueryStats { resident, stats } => {
                    e.put_bool(*resident);
                    e.section(|e| stats.encode(e));
                }
                Response::ServiceStats {
                    stats,
                    processed,
                    remaining,
                } => {
                    encode_service_stats(e, stats);
                    e.put_u64(*processed);
                    e.put_u64(*remaining);
                }
                Response::Stepped { taken, done } => {
                    e.put_u64(*taken);
                    e.put_bool(*done);
                }
                Response::Resubscribed | Response::Checkpointed | Response::ShuttingDown => {}
                Response::Metrics { text } => e.put_str(text),
            }
        })
    }

    /// Decodes a [`KIND_RESPONSE`] frame into `(seq, response)`.
    pub fn decode(frame: &[u8]) -> Result<(u64, Response), CodecError> {
        let mut dec = open_frame(frame, KIND_RESPONSE)?;
        let seq = dec.get_u64()?;
        let resp = match dec.get_u8()? {
            OP_ADMIT => Response::Admitted {
                qid: dec.get_u32()?,
            },
            OP_RETIRE => Response::Retired {
                stats: decode_stats_section(&mut dec)?,
            },
            OP_QUERY_STATS => Response::QueryStats {
                resident: dec.get_bool()?,
                stats: decode_stats_section(&mut dec)?,
            },
            OP_SERVICE_STATS => Response::ServiceStats {
                stats: decode_service_stats(&mut dec)?,
                processed: dec.get_u64()?,
                remaining: dec.get_u64()?,
            },
            OP_STEP => Response::Stepped {
                taken: dec.get_u64()?,
                done: dec.get_bool()?,
            },
            OP_RESUBSCRIBE => Response::Resubscribed,
            OP_CHECKPOINT => Response::Checkpointed,
            OP_SHUTDOWN => Response::ShuttingDown,
            OP_METRICS => Response::Metrics {
                text: dec.get_str()?.to_string(),
            },
            other => return Err(CodecError::Invalid(format!("unknown response op {other}"))),
        };
        dec.finish()?;
        Ok((seq, resp))
    }
}

fn decode_stats_section(dec: &mut Decoder<'_>) -> Result<EngineStats, CodecError> {
    let mut s = dec.section()?;
    let stats = EngineStats::decode(&mut s)?;
    s.finish()?;
    Ok(stats)
}

fn encode_service_stats(e: &mut Encoder, s: &ServiceStats) {
    e.put_usize(s.shards);
    e.put_u64(s.windows_allocated);
    e.put_usize(s.resident_queries);
    e.put_u64(s.admitted);
    e.put_u64(s.retired);
    e.put_u64(s.disconnected);
    e.put_u64(s.events);
    e.put_u64(s.batches);
    e.put_u64(s.kernel_invocations);
    e.put_u64(s.kernel_lanes);
    e.put_u64(s.kernel_early_exits);
    e.put_u64(s.retired_stats_evictions);
}

fn decode_service_stats(dec: &mut Decoder<'_>) -> Result<ServiceStats, CodecError> {
    Ok(ServiceStats {
        shards: dec.get_usize()?,
        windows_allocated: dec.get_u64()?,
        resident_queries: dec.get_usize()?,
        admitted: dec.get_u64()?,
        retired: dec.get_u64()?,
        disconnected: dec.get_u64()?,
        events: dec.get_u64()?,
        batches: dec.get_u64()?,
        kernel_invocations: dec.get_u64()?,
        kernel_lanes: dec.get_u64()?,
        kernel_early_exits: dec.get_u64()?,
        retired_stats_evictions: dec.get_u64()?,
    })
}

/// One stream delta's worth of match events for one query — the payload
/// of a [`KIND_DELIVERY`] frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Delivery {
    /// Wire id of the query the events belong to.
    pub qid: u32,
    /// Embeddings that occurred in this delta (counted even when events
    /// are not materialized).
    pub occurred: u64,
    /// Embeddings that expired in this delta.
    pub expired: u64,
    /// The materialized match events, in stream order.
    pub events: Vec<MatchEvent>,
}

impl Delivery {
    /// Encodes a delivery frame straight from the sink's borrowed event
    /// buffer (no intermediate `Delivery` allocation on the hot path).
    pub fn encode_parts(qid: u32, occurred: u64, expired: u64, events: &[MatchEvent]) -> Vec<u8> {
        encode_frame(KIND_DELIVERY, |e| {
            e.put_u32(qid);
            e.put_u64(occurred);
            e.put_u64(expired);
            e.put_usize(events.len());
            for ev in events {
                ev.encode(e);
            }
        })
    }

    /// Decodes a [`KIND_DELIVERY`] frame.
    pub fn decode(frame: &[u8]) -> Result<Delivery, CodecError> {
        let mut dec = open_frame(frame, KIND_DELIVERY)?;
        let qid = dec.get_u32()?;
        let occurred = dec.get_u64()?;
        let expired = dec.get_u64()?;
        let n = dec.get_count(2)?;
        let events = (0..n)
            .map(|_| MatchEvent::decode(&mut dec))
            .collect::<Result<_, _>>()?;
        dec.finish()?;
        Ok(Delivery {
            qid,
            occurred,
            expired,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsm_core::{Embedding, MatchKind};
    use tcsm_graph::codec::frame_kind;
    use tcsm_graph::{EdgeKey, Ts};

    fn every_request() -> Vec<Request> {
        vec![
            Request::Admit {
                query: "v 0 1\nv 1 1\ne 0 1\n".into(),
                cfg: EngineConfig::default(),
            },
            Request::Retire { qid: 7 },
            Request::QueryStats { qid: u32::MAX },
            Request::ServiceStats,
            Request::Step { n: 0 },
            Request::Step { n: 123 },
            Request::Resubscribe { qid: 1 },
            Request::Checkpoint,
            Request::Shutdown { checkpoint: true },
            Request::Shutdown { checkpoint: false },
        ]
    }

    #[test]
    fn requests_roundtrip() {
        for (i, req) in every_request().into_iter().enumerate() {
            let seq = i as u64 + 1;
            let frame = req.encode(seq);
            assert_eq!(frame_kind(&frame).unwrap(), KIND_REQUEST);
            assert_eq!(Request::decode(&frame).unwrap(), (seq, req));
        }
    }

    #[test]
    fn responses_roundtrip() {
        let stats = EngineStats {
            events: 9,
            occurred: 4,
            ..EngineStats::default()
        };
        let all = vec![
            Response::Admitted { qid: 3 },
            Response::Retired { stats },
            Response::QueryStats {
                resident: true,
                stats,
            },
            Response::ServiceStats {
                stats: ServiceStats {
                    shards: 3,
                    admitted: 5,
                    disconnected: 1,
                    ..ServiceStats::default()
                },
                processed: 10,
                remaining: 32,
            },
            Response::Stepped {
                taken: 10,
                done: false,
            },
            Response::Resubscribed,
            Response::Checkpointed,
            Response::ShuttingDown,
        ];
        for (i, resp) in all.into_iter().enumerate() {
            let seq = i as u64 + 100;
            let frame = resp.encode(seq);
            assert_eq!(frame_kind(&frame).unwrap(), KIND_RESPONSE);
            assert_eq!(Response::decode(&frame).unwrap(), (seq, resp));
        }
    }

    #[test]
    fn faults_and_deliveries_roundtrip() {
        let fault = WireFault {
            seq: 42,
            code: ErrorCode::BadQuery,
            message: "no such vertex".into(),
        };
        assert_eq!(WireFault::decode(&fault.encode()).unwrap(), fault);

        let events = vec![MatchEvent {
            kind: MatchKind::Occurred,
            at: Ts::new(5),
            embedding: Embedding {
                vertices: vec![1, 2],
                edges: vec![EdgeKey(9)],
            },
        }];
        let frame = Delivery::encode_parts(8, 1, 0, &events);
        let d = Delivery::decode(&frame).unwrap();
        assert_eq!((d.qid, d.occurred, d.expired), (8, 1, 0));
        assert_eq!(d.events, events);
    }

    #[test]
    fn request_decode_maps_every_failure_to_a_typed_fault() {
        // Wrong kind: unattributable, Malformed, seq 0.
        let resp = Response::Resubscribed.encode(5);
        let f = Request::decode(&resp).unwrap_err();
        assert_eq!((f.seq, f.code), (0, ErrorCode::Malformed));

        // Checksum flip: unattributable.
        let mut bad = Request::ServiceStats.encode(9);
        let at = bad.len() - 1;
        bad[at] ^= 0x10;
        let f = Request::decode(&bad).unwrap_err();
        assert_eq!((f.seq, f.code), (0, ErrorCode::Malformed));

        // Unknown op: seq attributable.
        let frame = encode_frame(KIND_REQUEST, |e| {
            e.put_u64(77);
            e.put_u8(99);
        });
        let f = Request::decode(&frame).unwrap_err();
        assert_eq!((f.seq, f.code), (77, ErrorCode::BadOp));

        // Truncated payload (admit with no config section): Malformed,
        // seq attributable.
        let frame = encode_frame(KIND_REQUEST, |e| {
            e.put_u64(78);
            e.put_u8(1);
            e.put_str("v 0 1\n");
        });
        let f = Request::decode(&frame).unwrap_err();
        assert_eq!((f.seq, f.code), (78, ErrorCode::Malformed));

        // Trailing garbage after a valid payload: Malformed.
        let frame = encode_frame(KIND_REQUEST, |e| {
            e.put_u64(79);
            e.put_u8(OP_SERVICE_STATS);
            e.put_u32(0xdead);
        });
        let f = Request::decode(&frame).unwrap_err();
        assert_eq!((f.seq, f.code), (79, ErrorCode::Malformed));
    }
}
