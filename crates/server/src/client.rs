//! A blocking client for the daemon — the loopback side of the
//! differential tests, and a minimal library for embedding subscribers.

use std::collections::HashMap;
use std::net::{TcpStream, ToSocketAddrs};

use tcsm_core::{EngineConfig, EngineStats, MatchEvent};
use tcsm_graph::codec::{frame_kind, read_wire_frame, write_wire_frame, CodecError, WireError};
use tcsm_graph::io::write_query_graph;
use tcsm_graph::QueryGraph;
use tcsm_service::ServiceStats;

use crate::wire::{
    Delivery, Request, Response, WireFault, KIND_DELIVERY, KIND_ERROR, KIND_RESPONSE,
    MAX_STREAM_FRAME,
};

/// Anything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (including mid-frame EOF and oversized frames).
    Wire(WireError),
    /// The server closed the connection cleanly where a response was due.
    Closed,
    /// A frame arrived but does not decode.
    Codec(CodecError),
    /// The server refused the request with a typed error frame.
    Server(WireFault),
    /// The server answered with a frame the protocol does not allow here
    /// (wrong kind, wrong `seq`, or a response variant not matching the
    /// request).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "transport: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Codec(e) => write!(f, "bad frame: {e}"),
            ClientError::Server(fault) => write!(f, "server refused: {fault}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

impl From<CodecError> for ClientError {
    fn from(e: CodecError) -> ClientError {
        ClientError::Codec(e)
    }
}

/// One frame from the server, already classified.
#[derive(Debug)]
pub enum ServerMsg {
    /// A response to the request with this `seq`.
    Response(u64, Response),
    /// A typed refusal.
    Error(WireFault),
    /// A match-stream delivery.
    Delivery(Delivery),
}

/// Accumulated deliveries of one query, as decoded off the wire.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryStream {
    /// Every delivered match event, in stream order.
    pub events: Vec<MatchEvent>,
    /// Sum of delivered occurred counts.
    pub occurred: u64,
    /// Sum of delivered expired counts.
    pub expired: u64,
}

/// A synchronous daemon client. Deliveries interleave with responses on
/// the wire; the client buffers them per query while waiting for a
/// response, so after any successful call every delivery produced by it
/// is available via [`Client::take_stream`] / [`Client::stream_counts`]
/// (the server writes a step's deliveries before the step's response, and
/// TCP preserves that order).
pub struct Client {
    stream: TcpStream,
    seq: u64,
    streams: HashMap<u32, QueryStream>,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            seq: 0,
            streams: HashMap::new(),
        })
    }

    /// Sends a pre-encoded frame without waiting for anything — the
    /// malformed-input tests use this to put arbitrary bytes on the wire.
    pub fn send_raw_frame(&mut self, frame: &[u8]) -> std::io::Result<()> {
        write_wire_frame(&mut self.stream, frame)
    }

    /// Writes raw bytes with no framing at all — for forging broken wire
    /// prefixes in the robustness tests.
    pub fn send_raw_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        use std::io::Write;
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads and classifies the next server frame, buffering nothing —
    /// deliveries are returned to the caller like everything else.
    pub fn read_msg(&mut self) -> Result<ServerMsg, ClientError> {
        let bytes =
            read_wire_frame(&mut self.stream, MAX_STREAM_FRAME)?.ok_or(ClientError::Closed)?;
        match frame_kind(&bytes)? {
            KIND_RESPONSE => {
                let (seq, resp) = Response::decode(&bytes)?;
                Ok(ServerMsg::Response(seq, resp))
            }
            KIND_ERROR => Ok(ServerMsg::Error(WireFault::decode(&bytes)?)),
            KIND_DELIVERY => Ok(ServerMsg::Delivery(Delivery::decode(&bytes)?)),
            other => Err(ClientError::Protocol(format!(
                "server sent frame kind {other}"
            ))),
        }
    }

    /// Sends `req` and pumps frames until its response (or refusal)
    /// arrives; deliveries seen on the way are buffered per query.
    pub fn call(&mut self, req: Request) -> Result<Response, ClientError> {
        self.seq += 1;
        let seq = self.seq;
        self.send_raw_frame(&req.encode(seq))
            .map_err(|e| ClientError::Wire(WireError::Io(e)))?;
        loop {
            match self.read_msg()? {
                ServerMsg::Delivery(d) => self.buffer(d),
                ServerMsg::Response(got, resp) if got == seq => return Ok(resp),
                ServerMsg::Error(fault) if fault.seq == seq || fault.seq == 0 => {
                    return Err(ClientError::Server(fault))
                }
                ServerMsg::Response(got, _) => {
                    return Err(ClientError::Protocol(format!(
                        "response for seq {got}, expected {seq}"
                    )))
                }
                ServerMsg::Error(fault) => {
                    return Err(ClientError::Protocol(format!(
                        "error for seq {}, expected {seq}: {fault}",
                        fault.seq
                    )))
                }
            }
        }
    }

    fn buffer(&mut self, d: Delivery) {
        let s = self.streams.entry(d.qid).or_default();
        s.events.extend(d.events);
        s.occurred += d.occurred;
        s.expired += d.expired;
    }

    /// Admits a standing query; deliveries stream to this connection.
    pub fn admit(&mut self, q: &QueryGraph, cfg: EngineConfig) -> Result<u32, ClientError> {
        self.admit_text(&write_query_graph(q), cfg)
    }

    /// [`Client::admit`] from raw query text (which the server may refuse
    /// with [`ErrorCode::BadQuery`](crate::wire::ErrorCode::BadQuery)).
    pub fn admit_text(&mut self, query: &str, cfg: EngineConfig) -> Result<u32, ClientError> {
        match self.call(Request::Admit {
            query: query.to_string(),
            cfg,
        })? {
            Response::Admitted { qid } => Ok(qid),
            other => Err(unexpected("Admitted", &other)),
        }
    }

    /// Retires a query, returning its final counters.
    pub fn retire(&mut self, qid: u32) -> Result<EngineStats, ClientError> {
        match self.call(Request::Retire { qid })? {
            Response::Retired { stats } => Ok(stats),
            other => Err(unexpected("Retired", &other)),
        }
    }

    /// A query's counters plus whether it is still resident.
    pub fn query_stats(&mut self, qid: u32) -> Result<(bool, EngineStats), ClientError> {
        match self.call(Request::QueryStats { qid })? {
            Response::QueryStats { resident, stats } => Ok((resident, stats)),
            other => Err(unexpected("QueryStats", &other)),
        }
    }

    /// Aggregate service counters plus `(processed, remaining)` stream
    /// cursor.
    pub fn service_stats(&mut self) -> Result<(ServiceStats, u64, u64), ClientError> {
        match self.call(Request::ServiceStats)? {
            Response::ServiceStats {
                stats,
                processed,
                remaining,
            } => Ok((stats, processed, remaining)),
            other => Err(unexpected("ServiceStats", &other)),
        }
    }

    /// Processes up to `n` stream deltas (`0` = drain); returns `(taken,
    /// done)`. All deliveries those deltas produced are buffered when
    /// this returns.
    pub fn step(&mut self, n: u64) -> Result<(u64, bool), ClientError> {
        match self.call(Request::Step { n })? {
            Response::Stepped { taken, done } => Ok((taken, done)),
            other => Err(unexpected("Stepped", &other)),
        }
    }

    /// Re-attaches this connection to a resident query's match stream
    /// (after a daemon restart from a checkpoint).
    pub fn resubscribe(&mut self, qid: u32) -> Result<(), ClientError> {
        match self.call(Request::Resubscribe { qid })? {
            Response::Resubscribed => Ok(()),
            other => Err(unexpected("Resubscribed", &other)),
        }
    }

    /// Fetches the service's metrics exposition (Prometheus-style text,
    /// parseable with `tcsm_telemetry::parse_exposition`).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.call(Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Checkpoints the service into the server's configured directory.
    pub fn checkpoint(&mut self) -> Result<(), ClientError> {
        match self.call(Request::Checkpoint)? {
            Response::Checkpointed => Ok(()),
            other => Err(unexpected("Checkpointed", &other)),
        }
    }

    /// Stops the server, optionally checkpointing first.
    pub fn shutdown(&mut self, checkpoint: bool) -> Result<(), ClientError> {
        match self.call(Request::Shutdown { checkpoint })? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }

    /// Takes everything delivered for `qid` so far (events in stream
    /// order plus summed counts), resetting its buffer.
    pub fn take_stream(&mut self, qid: u32) -> QueryStream {
        self.streams.remove(&qid).unwrap_or_default()
    }

    /// Summed delivered `(occurred, expired)` counts of `qid` so far,
    /// without consuming the buffer.
    pub fn stream_counts(&self, qid: u32) -> (u64, u64) {
        self.streams
            .get(&qid)
            .map(|s| (s.occurred, s.expired))
            .unwrap_or((0, 0))
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}
