//! Engine statistics, including the measurements Table V and Figure 10 use.

use serde::{Deserialize, Serialize};
use tcsm_graph::codec::{CodecError, Decoder, Encoder};

/// Counters accumulated over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Stream events processed.
    pub events: u64,
    /// Delta batches processed (0 in serial mode; ≤ `events` in batched
    /// mode — the gap measures how bursty the stream's timestamps are).
    pub batches: u64,
    /// Backtracking nodes visited (recursive `FindMatches` entries).
    pub search_nodes: u64,
    /// Complete time-constrained embeddings reported (occurred).
    pub occurred: u64,
    /// Expired embeddings reported.
    pub expired: u64,
    /// Candidate edges pruned by the Case-1 technique (`R⁻ = ∅` sharing).
    pub pruned_case1: u64,
    /// Candidate edges skipped by the Case-2 chronological break.
    pub pruned_case2: u64,
    /// Candidate edges pruned by temporal failing sets (Case 3).
    pub pruned_case3: u64,
    /// Embeddings re-emitted by Case-1 candidate swapping.
    pub cloned_case1: u64,
    /// Complete embeddings discarded by the post-check (baselines only).
    pub post_check_rejections: u64,
    /// Peak number of DCS edges (pairs admitted by the filter) — Table V.
    pub peak_dcs_edges: u64,
    /// Sum over events of DCS edges, for averaging — Table V.
    pub sum_dcs_edges: u64,
    /// Peak number of `d2` candidate vertices — Table V.
    pub peak_dcs_vertices: u64,
    /// Sum over events of `d2` candidate vertices — Table V.
    pub sum_dcs_vertices: u64,
    /// Filter-phase instance-update rounds that ran on the worker pool
    /// (0 for serial engines).
    pub parallel_filter_rounds: u64,
    /// Delta-batch `FindMatches` sweeps fanned out across the pool.
    pub parallel_sweeps: u64,
    /// Seeds searched under those fanned-out sweeps.
    pub parallel_sweep_seeds: u64,
    /// Eq. (1) kernel invocations (one per contributing child/neighbour in
    /// a filter-table recompute), summed over the four instances.
    pub kernel_invocations: u64,
    /// `TR(u)` lanes folded across those kernel invocations.
    pub kernel_lanes: u64,
    /// Child terms with no contributing neighbour (the recompute bailed —
    /// the entry ceases to exist without running the remaining children).
    pub kernel_early_exits: u64,
    /// True when a budget was exhausted (query counts as unsolved).
    pub budget_exhausted: bool,
}

impl EngineStats {
    /// Average DCS edge count per event.
    pub fn avg_dcs_edges(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.sum_dcs_edges as f64 / self.events as f64
        }
    }

    /// Average `d2` candidate-vertex count per event.
    pub fn avg_dcs_vertices(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.sum_dcs_vertices as f64 / self.events as f64
        }
    }

    /// The algorithmic counters alone: a copy with the thread-placement
    /// counters (`parallel_*`) and the kernel instrumentation zeroed. Two
    /// runs of the same stream differing only in
    /// [`crate::EngineConfig::threads`] must agree on this (the
    /// differential suite compares it across pool widths). The kernel
    /// counters are zeroed too because recompute *counts* legitimately
    /// differ between incremental updates and from-window rebuilds (live
    /// admission) even though the resulting tables are identical.
    ///
    /// Phase timing needs no exclusion here **by design**: durations live
    /// in `tcsm-telemetry`'s per-runtime recorder, never in this struct,
    /// so `semantic()` — and every snapshot byte — is identical at every
    /// `TCSM_TRACE` level.
    pub fn semantic(&self) -> EngineStats {
        EngineStats {
            parallel_filter_rounds: 0,
            parallel_sweeps: 0,
            parallel_sweep_seeds: 0,
            kernel_invocations: 0,
            kernel_lanes: 0,
            kernel_early_exits: 0,
            ..*self
        }
    }

    /// Serializes every counter in declaration order (snapshot format).
    pub fn encode(&self, enc: &mut Encoder) {
        for v in [
            self.events,
            self.batches,
            self.search_nodes,
            self.occurred,
            self.expired,
            self.pruned_case1,
            self.pruned_case2,
            self.pruned_case3,
            self.cloned_case1,
            self.post_check_rejections,
            self.peak_dcs_edges,
            self.sum_dcs_edges,
            self.peak_dcs_vertices,
            self.sum_dcs_vertices,
            self.parallel_filter_rounds,
            self.parallel_sweeps,
            self.parallel_sweep_seeds,
            self.kernel_invocations,
            self.kernel_lanes,
            self.kernel_early_exits,
        ] {
            enc.put_u64(v);
        }
        enc.put_bool(self.budget_exhausted);
    }

    /// Inverse of [`EngineStats::encode`].
    pub fn decode(dec: &mut Decoder<'_>) -> Result<EngineStats, CodecError> {
        Ok(EngineStats {
            events: dec.get_u64()?,
            batches: dec.get_u64()?,
            search_nodes: dec.get_u64()?,
            occurred: dec.get_u64()?,
            expired: dec.get_u64()?,
            pruned_case1: dec.get_u64()?,
            pruned_case2: dec.get_u64()?,
            pruned_case3: dec.get_u64()?,
            cloned_case1: dec.get_u64()?,
            post_check_rejections: dec.get_u64()?,
            peak_dcs_edges: dec.get_u64()?,
            sum_dcs_edges: dec.get_u64()?,
            peak_dcs_vertices: dec.get_u64()?,
            sum_dcs_vertices: dec.get_u64()?,
            parallel_filter_rounds: dec.get_u64()?,
            parallel_sweeps: dec.get_u64()?,
            parallel_sweep_seeds: dec.get_u64()?,
            kernel_invocations: dec.get_u64()?,
            kernel_lanes: dec.get_u64()?,
            kernel_early_exits: dec.get_u64()?,
            budget_exhausted: dec.get_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages() {
        let s = EngineStats {
            events: 4,
            sum_dcs_edges: 10,
            sum_dcs_vertices: 6,
            ..Default::default()
        };
        assert!((s.avg_dcs_edges() - 2.5).abs() < 1e-12);
        assert!((s.avg_dcs_vertices() - 1.5).abs() < 1e-12);
        assert_eq!(EngineStats::default().avg_dcs_edges(), 0.0);
    }
}
