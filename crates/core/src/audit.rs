//! Step-path audit cadence: when the engine/service actually runs the
//! cross-crate invariant audit.
//!
//! The audit levels, the violation type and the env plumbing live in
//! [`tcsm_graph::audit`] (re-exported here); this module adds the
//! [`Auditor`] — a countdown that fires every `TCSM_AUDIT_EVERY`th stream
//! event — which [`crate::TcmEngine`] and `tcsm_service::MatchService`
//! embed in their step paths. The serviced network daemon drives the
//! service's step loop, so all three entry points share this one dial.
//!
//! A fired audit that finds violations panics listing all of them
//! ([`expect_clean`]): the audit is a tripwire for incremental-maintenance
//! bugs, not a recoverable condition.

pub use tcsm_graph::audit::{audit_every_from_env, expect_clean, AuditLevel, AuditViolation};

/// Event-countdown driver for step-path audits.
#[derive(Clone, Copy, Debug)]
pub struct Auditor {
    level: AuditLevel,
    every: u64,
    countdown: u64,
}

impl Auditor {
    /// An auditor at `level`, firing every `every` stream events
    /// (clamped to ≥ 1).
    pub fn with(level: AuditLevel, every: u64) -> Auditor {
        let every = every.max(1);
        Auditor {
            level,
            every,
            countdown: every,
        }
    }

    /// The process-default auditor: `TCSM_AUDIT` × `TCSM_AUDIT_EVERY`.
    pub fn from_env() -> Auditor {
        Auditor::with(AuditLevel::from_env(), audit_every_from_env())
    }

    /// The configured level.
    #[inline]
    pub fn level(&self) -> AuditLevel {
        self.level
    }

    /// Advances the countdown by `events` processed events; returns `true`
    /// when an audit is due (and resets the countdown). Never fires when
    /// the level is [`AuditLevel::Off`].
    pub fn due(&mut self, events: u64) -> bool {
        if !self.level.enabled() || events == 0 {
            return false;
        }
        if self.countdown > events {
            self.countdown -= events;
            false
        } else {
            self.countdown = self.every;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn countdown_fires_every_nth_event() {
        let mut a = Auditor::with(AuditLevel::Cheap, 3);
        assert!(!a.due(1));
        assert!(!a.due(1));
        assert!(a.due(1));
        assert!(!a.due(2));
        assert!(a.due(5)); // batch overshooting the boundary fires once
        assert!(!a.due(0));
    }

    #[test]
    fn off_never_fires() {
        let mut a = Auditor::with(AuditLevel::Off, 1);
        for _ in 0..10 {
            assert!(!a.due(1));
        }
    }

    #[test]
    fn every_clamps_to_one() {
        let mut a = Auditor::with(AuditLevel::Deep, 0);
        assert!(a.due(1));
        assert!(a.due(1));
    }
}
