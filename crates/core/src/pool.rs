//! The intra-query worker-pool runtime: long-lived parked workers that the
//! engine's hot phases fan out over.
//!
//! A [`WorkerPool`] owns `width − 1` OS threads that park on a condvar
//! between dispatches; the dispatching (caller) thread is always lane `0`
//! and participates in every dispatch. `WorkerPool::new(1)` spawns nothing
//! and runs dispatches inline on the caller (exercising the callers'
//! shard/slot plumbing but not the publish/claim machinery below, which
//! needs a second lane). Dispatches are
//! *synchronous*: the call returns only when every index has finished, so
//! borrowed (non-`'static`) data can cross into workers safely — the pool
//! is a scoped executor with persistent threads instead of per-event
//! `thread::scope` spawns.
//!
//! # Claim protocol
//!
//! Work is claimed lock-free from one **monotone 64-bit ticket counter**
//! that is never reset: a dispatch of `t` tickets owns the ticket range
//! `[base, base + t)` where `base` is the counter value at publish time,
//! and a lane claims ticket `k − base` by compare-exchanging the counter
//! forward within that range. Each ticket covers a contiguous **chunk** of
//! work indices (`chunk == 1` for plain [`WorkerPool::dispatch`]:
//! ticket = index); [`WorkerPool::for_each_with`] claims small index
//! chunks per ticket so skewed fan-outs — a batched sweep whose first seed
//! owns almost all the search work — stop paying one CAS per item while
//! cold items still rebalance across lanes. A straggler still holding the
//! previous job sees every current ticket at or beyond its own range end
//! and simply stops — because tickets never rewind, there is no ABA window
//! in which it could claim (let alone execute) a ticket of a newer job
//! through its stale closure pointer; soundness would require wrapping the
//! full 64-bit counter. Completion is a separate atomic countdown of
//! *finished* (not merely claimed) tickets; the dispatcher blocks on it,
//! which is what makes the borrow-crossing sound.
//!
//! Dispatches are one-at-a-time by contract: the engine drives its pool
//! from one thread, and nesting (a job dispatching on its own pool) or
//! concurrent dispatchers would orphan the outer range. A guard turns such
//! misuse into an immediate panic instead of a silent deadlock.
//!
//! # Determinism
//!
//! The pool schedules indices in an arbitrary order onto arbitrary lanes;
//! determinism is the *callers'* job and is achieved everywhere the engine
//! uses the pool by writing results into pre-assigned slots (per filter
//! instance, per sweep seed, per query) and merging them in slot order on
//! lane 0 afterwards. See the crate docs' threading-model section.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// A pending dispatch: the type-erased job, its index/ticket geometry, and
/// its half-open ticket range start (see the module docs).
#[derive(Clone, Copy)]
struct Job {
    /// Borrowed closure, lifetime-erased. Sound because `dispatch` does not
    /// return until `remaining` hits zero and the monotone ticket counter
    /// lets no stale lane claim into a newer range.
    f: *const (dyn Fn(usize, usize) + Sync + 'static),
    /// Total work indices.
    n: u32,
    /// Indices per ticket (≥ 1); ticket `k` covers
    /// `[k·chunk, min(n, (k+1)·chunk))`.
    chunk: u32,
    /// Number of tickets (`⌈n / chunk⌉`).
    tickets: u32,
    /// First ticket of this dispatch; local ticket `k` is `base + k`.
    base: u64,
}

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and the claim protocol bounds its use to the dispatch that published it.
unsafe impl Send for Job {}

/// State guarded by the control mutex.
struct Ctrl {
    job: Option<Job>,
    shutdown: bool,
}

struct Shared {
    ctrl: Mutex<Ctrl>,
    /// Workers park here between dispatches.
    work_cv: Condvar,
    /// The dispatcher parks here while stragglers finish.
    done_cv: Condvar,
    /// The monotone ticket counter (never reset — see the module docs).
    claim: AtomicU64,
    /// Indices of the current dispatch not yet *finished*.
    remaining: AtomicU64,
    /// Single-dispatcher guard: set for the duration of one `dispatch`.
    dispatching: std::sync::atomic::AtomicBool,
    /// First panic payload out of any worker, re-thrown on the dispatcher.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Shared {
    /// Locks the control mutex, shrugging off poisoning: `Ctrl` holds no
    /// invariant a mid-panic unwinder could break (its fields are plain
    /// flags/options written atomically under the guard), and dying on a
    /// `PoisonError` here would replace the *original* worker panic with an
    /// opaque secondary one on every later waiter.
    fn lock_ctrl(&self) -> MutexGuard<'_, Ctrl> {
        self.ctrl.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// [`Condvar::wait`] with the same poison recovery as
    /// [`Shared::lock_ctrl`].
    fn wait_ctrl<'a>(&self, cv: &Condvar, guard: MutexGuard<'a, Ctrl>) -> MutexGuard<'a, Ctrl> {
        cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Claims the next ticket of `job`, or `None` when its ticket range is
    /// exhausted. Monotonicity makes this immune to job turnover: a stale
    /// job's range lies entirely at or below the current counter.
    fn claim_ticket(&self, job: &Job) -> Option<usize> {
        let end = job.base + job.tickets as u64;
        let mut cur = self.claim.load(Ordering::Acquire);
        loop {
            if cur >= end {
                return None;
            }
            debug_assert!(cur >= job.base, "ticket counter rewound");
            match self.claim.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((cur - job.base) as usize),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Takes the recorded panic payload, tolerating a poisoned slot (the
    /// slot only ever holds a payload box; poisoning carries no invariant).
    fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        match self.panic.lock() {
            Ok(mut slot) => slot.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        }
    }

    /// Runs one claimed ticket's chunk of indices, records panics, and
    /// counts completion (one countdown per ticket; a panic abandons the
    /// rest of the chunk but still retires the ticket, so the dispatcher
    /// never hangs).
    ///
    /// # Safety
    /// `job.f` must point at the closure of the still-running dispatch that
    /// owns `job`'s ticket range (guaranteed by [`Shared::claim_ticket`]'s
    /// monotone range check).
    unsafe fn run_one(&self, job: Job, ticket: usize, lane: usize) {
        let f = &*job.f;
        let lo = ticket * job.chunk as usize;
        let hi = (lo + job.chunk as usize).min(job.n as usize);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
            for idx in lo..hi {
                f(idx, lane);
            }
        })) {
            let mut slot = match self.panic.lock() {
                Ok(slot) => slot,
                Err(poisoned) => poisoned.into_inner(),
            };
            if slot.is_none() {
                *slot = Some(payload);
            }
            drop(slot);
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last index done: wake the dispatcher. Locking the control
            // mutex orders this notify against the dispatcher's re-check,
            // so the wakeup cannot be lost.
            let _guard = self.lock_ctrl();
            self.done_cv.notify_all();
        }
    }
}

/// A persistent pool of parked worker threads (see the module docs).
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    width: usize,
}

impl WorkerPool {
    /// Builds a pool with `width` lanes: the caller plus `width − 1`
    /// spawned workers. `width == 0` resolves to the available parallelism
    /// ([`WorkerPool::resolve_width`]); `width == 1` spawns nothing and
    /// runs every dispatch inline on the caller.
    pub fn new(width: usize) -> WorkerPool {
        let width = if width == 0 {
            WorkerPool::resolve_width(0)
        } else {
            width
        };
        let shared = Arc::new(Shared {
            ctrl: Mutex::new(Ctrl {
                job: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            claim: AtomicU64::new(0),
            remaining: AtomicU64::new(0),
            dispatching: std::sync::atomic::AtomicBool::new(false),
            panic: Mutex::new(None),
        });
        let handles = (1..width)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tcsm-pool-{lane}"))
                    .spawn(move || worker_loop(&shared, lane))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            width,
        }
    }

    /// `0 → available_parallelism()` (min 1), anything else unchanged — the
    /// shared convention for `threads`-style knobs.
    pub fn resolve_width(requested: usize) -> usize {
        if requested == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            requested
        }
    }

    /// Number of lanes (caller + workers). Per-lane state slices passed to
    /// [`WorkerPool::for_each_with`] must have exactly this length.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Core dispatch: calls `f(index, lane)` exactly once for every
    /// `index < n`, across all lanes, returning when every call finished.
    /// Panics in `f` are re-thrown here after the dispatch completes.
    pub fn dispatch(&self, n: usize, f: &(dyn Fn(usize, usize) + Sync)) {
        self.dispatch_chunked(n, 1, f);
    }

    /// [`WorkerPool::dispatch`] with `chunk` indices claimed per ticket:
    /// lanes CAS once per chunk instead of once per index, trading claim
    /// traffic against rebalancing granularity (see the module docs'
    /// claim-protocol section). `chunk == 1` is exactly `dispatch`.
    pub fn dispatch_chunked(&self, n: usize, chunk: usize, f: &(dyn Fn(usize, usize) + Sync)) {
        if n == 0 {
            return;
        }
        assert!(chunk >= 1, "chunk must be at least 1");
        // `Job.n` is u32; a wider n would orphan `remaining` and hang.
        assert!(n <= u32::MAX as usize, "dispatch index count exceeds u32");
        let tickets = n.div_ceil(chunk);
        if self.width == 1 || tickets == 1 {
            // Inline fast path: nothing to coordinate.
            for i in 0..n {
                f(i, 0);
            }
            return;
        }
        let shared = &*self.shared;
        // One dispatcher at a time: nesting (a job dispatching on its own
        // pool) or racing dispatchers would orphan the running range and
        // hang silently — fail loudly instead.
        assert!(
            !shared.dispatching.swap(true, Ordering::Acquire),
            "nested or concurrent dispatch on one WorkerPool \
             (a pool job must not dispatch on its own pool)"
        );
        // SAFETY (lifetime erasure): `dispatch` blocks below until every
        // index finished, and the monotone ticket counter lets no stale
        // lane claim into a newer range, so the borrow never escapes this
        // call.
        let f_static: *const (dyn Fn(usize, usize) + Sync + 'static) =
            unsafe { std::mem::transmute(f) };
        let job = {
            let mut ctrl = shared.lock_ctrl();
            // The previous dispatch fully settled (remaining hit 0 and its
            // range was exhausted), so the counter now reads this range's
            // base.
            let base = shared.claim.load(Ordering::Acquire);
            let job = Job {
                f: f_static,
                n: n as u32,
                chunk: chunk as u32,
                tickets: tickets as u32,
                base,
            };
            shared.remaining.store(tickets as u64, Ordering::Release);
            ctrl.job = Some(job);
            shared.work_cv.notify_all();
            job
        };
        // The caller is lane 0 and works like everyone else.
        while let Some(ticket) = shared.claim_ticket(&job) {
            // SAFETY: the ticket was claimed inside this job's range.
            unsafe { shared.run_one(job, ticket, 0) };
        }
        // Wait for stragglers, then retire the job.
        {
            let mut ctrl = shared.lock_ctrl();
            while shared.remaining.load(Ordering::Acquire) != 0 {
                ctrl = shared.wait_ctrl(&shared.done_cv, ctrl);
            }
            ctrl.job = None;
        }
        shared.dispatching.store(false, Ordering::Release);
        // Take the payload *before* re-throwing so no guard is held while
        // unwinding (a held guard would poison the slot for later
        // dispatches).
        let payload = shared.take_panic();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }

    /// Parallel-for over a mutable slice: `f(i, &mut items[i])` exactly once
    /// per item, on any lane. One item per ticket — callers hand this whole
    /// engines/shards per item, where rebalancing granularity beats claim
    /// amortization (chunked claiming lives in
    /// [`WorkerPool::for_each_with`]).
    pub fn for_each_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let base = SyncPtr(items.as_mut_ptr());
        self.dispatch(items.len(), &move |i, _lane| {
            // SAFETY: `dispatch` hands out each index exactly once, so no
            // two lanes alias the same element.
            let item = unsafe { &mut *base.at(i) };
            f(i, item);
        });
    }

    /// Tickets-per-lane target of [`WorkerPool::auto_chunk`]: enough
    /// tickets that a skewed item distribution still rebalances, few
    /// enough that claim CAS traffic stays amortized.
    const TICKETS_PER_LANE: usize = 8;

    /// Chunk size for an `n`-item fan-out: one item per ticket until there
    /// are ~[`WorkerPool::TICKETS_PER_LANE`] tickets per lane, then grow
    /// (capped so a single claim never walks off with an unbounded slice).
    #[inline]
    fn auto_chunk(&self, n: usize) -> usize {
        (n / (self.width * WorkerPool::TICKETS_PER_LANE)).clamp(1, 64)
    }

    /// Parallel-for over `items` with exclusive per-lane state: `f(i, &mut
    /// items[i], &mut lanes[lane])`. `lanes.len()` must equal
    /// [`WorkerPool::width`]; a lane's slot is touched by that lane only.
    ///
    /// Items are claimed in small index *chunks* (one ticket CAS per
    /// chunk, not per item — [`WorkerPool::auto_chunk`]): per-seed sweep
    /// fan-outs hand out hundreds of mostly-tiny work items, and paying a
    /// claim per item serializes skewed batches behind the claim traffic.
    pub fn for_each_with<T, L, F>(&self, items: &mut [T], lanes: &mut [L], f: F)
    where
        T: Send,
        L: Send,
        F: Fn(usize, &mut T, &mut L) + Sync,
    {
        assert_eq!(
            lanes.len(),
            self.width,
            "per-lane state must have one slot per pool lane"
        );
        let items_base = SyncPtr(items.as_mut_ptr());
        let lanes_base = SyncPtr(lanes.as_mut_ptr());
        let chunk = self.auto_chunk(items.len());
        self.dispatch_chunked(items.len(), chunk, &move |i, lane| {
            // SAFETY: indices are handed out exactly once (no item
            // aliasing) and a lane id is held by exactly one thread for the
            // whole dispatch (no lane aliasing).
            let item = unsafe { &mut *items_base.at(i) };
            let lane_state = unsafe { &mut *lanes_base.at(lane) };
            f(i, item, lane_state);
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut ctrl = self.shared.lock_ctrl();
            ctrl.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The four independent filter-instance updates of one event/batch are the
/// first hot phase routed through the pool (the second, the per-seed sweep
/// fan-out, uses [`WorkerPool::for_each_with`] directly).
impl tcsm_filter::Exec for WorkerPool {
    fn run_jobs(&self, jobs: &mut [&mut (dyn FnMut() + Send)]) {
        self.for_each_mut(jobs, |_i, job| job());
    }
}

/// Raw-pointer wrapper that asserts cross-thread shareability; every use
/// site documents why the aliasing discipline holds. (Accessed only through
/// [`SyncPtr::at`] so edition-2021 closures capture the wrapper, not the
/// bare field, keeping the `Send`/`Sync` assertions in force.)
struct SyncPtr<T>(*mut T);
// SAFETY: a `SyncPtr` is only constructed over slabs that outlive the
// dispatch it is captured by, and the pool's disjoint index partitioning
// means no two lanes ever touch the same element — so sharing and sending
// the raw pointer across the worker threads is sound (each use site below
// documents its own aliasing discipline).
unsafe impl<T> Send for SyncPtr<T> {}
// SAFETY: as above — disjoint per-index access only, for the duration of
// one dispatch.
unsafe impl<T> Sync for SyncPtr<T> {}

impl<T> SyncPtr<T> {
    /// The `i`-th element pointer of the wrapped base.
    #[inline]
    fn at(&self, i: usize) -> *mut T {
        // SAFETY: callers index within the slice the base was taken from.
        unsafe { self.0.add(i) }
    }
}

fn worker_loop(shared: &Shared, lane: usize) {
    // Ticket base of the job this lane last worked on; bases strictly
    // increase across dispatches, so it doubles as the "new job?" signal.
    let mut seen_base: Option<u64> = None;
    loop {
        let job = {
            let mut ctrl = shared.lock_ctrl();
            loop {
                if ctrl.shutdown {
                    return;
                }
                match ctrl.job {
                    Some(job) if seen_base != Some(job.base) => {
                        seen_base = Some(job.base);
                        break job;
                    }
                    _ => {}
                }
                ctrl = shared.wait_ctrl(&shared.work_cv, ctrl);
            }
        };
        while let Some(ticket) = shared.claim_ticket(&job) {
            // SAFETY: the ticket was claimed inside this job's range, so
            // `job.f` is the closure of the still-running dispatch.
            unsafe { shared.run_one(job, ticket, lane) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn every_index_runs_exactly_once() {
        for width in [1usize, 2, 4] {
            let pool = WorkerPool::new(width);
            for n in [0usize, 1, 3, 64, 257] {
                let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                pool.dispatch(n, &|i, _lane| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "width {width}, n {n}"
                );
            }
        }
    }

    #[test]
    fn chunked_dispatch_runs_every_index_exactly_once() {
        // Chunk sizes that don't divide n, exceed n, or equal 1 must all
        // cover every index exactly once at every width.
        for width in [1usize, 2, 4] {
            let pool = WorkerPool::new(width);
            for n in [1usize, 3, 64, 257] {
                for chunk in [1usize, 2, 7, 64, 1000] {
                    let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                    pool.dispatch_chunked(n, chunk, &|i, _lane| {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    });
                    assert!(
                        hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                        "width {width}, n {n}, chunk {chunk}"
                    );
                }
            }
        }
    }

    #[test]
    fn chunked_panic_still_retires_every_ticket() {
        // A panic mid-chunk abandons the chunk's tail but must not hang the
        // dispatcher or mask the payload.
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.dispatch_chunked(64, 8, &|i, _lane| {
                if i == 19 {
                    panic!("chunk boom");
                }
            });
        }));
        assert!(result.is_err(), "panic must cross back");
        let ok = AtomicUsize::new(0);
        pool.dispatch_chunked(16, 4, &|_i, _lane| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn for_each_with_chunks_keep_items_and_lanes_exclusive() {
        // Enough items that auto_chunk > 1 kicks in (500 / (4·8) = 15).
        let pool = WorkerPool::new(4);
        assert!(pool.auto_chunk(500) > 1, "test must exercise real chunks");
        let mut items = vec![0usize; 500];
        let mut lanes = vec![0usize; pool.width()];
        pool.for_each_with(&mut items, &mut lanes, |i, item, lane_count| {
            *lane_count += 1;
            *item += i;
        });
        assert!(items.iter().enumerate().all(|(i, &x)| x == i));
        assert_eq!(lanes.iter().sum::<usize>(), 500);
    }

    #[test]
    fn for_each_mut_gives_exclusive_items() {
        let pool = WorkerPool::new(3);
        let mut items: Vec<u64> = (0..100).collect();
        pool.for_each_mut(&mut items, |i, x| *x += i as u64);
        assert!(items.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn for_each_with_keeps_lane_state_exclusive() {
        let pool = WorkerPool::new(4);
        let mut items = vec![0usize; 500];
        let mut lanes = vec![0usize; pool.width()];
        pool.for_each_with(&mut items, &mut lanes, |_i, item, lane_count| {
            *lane_count += 1;
            *item = 1;
        });
        // Every item ran once, and the per-lane tallies account for all of
        // them (each lane slot was only ever incremented by its own lane).
        assert_eq!(items.iter().sum::<usize>(), 500);
        assert_eq!(lanes.iter().sum::<usize>(), 500);
    }

    #[test]
    fn pool_is_reusable_across_many_dispatches() {
        // Back-to-back dispatches through the same parked workers — the
        // stale-epoch guard must keep every round's indices in that round.
        let pool = WorkerPool::new(3);
        let total = AtomicUsize::new(0);
        for round in 0..200usize {
            pool.dispatch(round % 5 + 1, &|_i, _lane| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        let expect: usize = (0..200).map(|r| r % 5 + 1).sum();
        assert_eq!(total.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn worker_panic_propagates_to_dispatcher() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.dispatch(8, &|i, _lane| {
                if i == 5 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "panic must cross back to the dispatcher");
        // The pool survives a panicked dispatch.
        let ok = AtomicUsize::new(0);
        pool.dispatch(4, &|_i, _lane| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn poisoned_control_mutex_does_not_mask_the_worker_panic() {
        // Poison the control mutex the hard way: a thread panics while
        // holding it. Every later lock site must recover (`into_inner`)
        // instead of dying on an opaque `PoisonError`, and the *original*
        // panic of a failing job must still be the one the dispatcher sees.
        let pool = WorkerPool::new(2);
        let shared = Arc::clone(&pool.shared);
        let _ = std::thread::spawn(move || {
            let _guard = shared.ctrl.lock().unwrap();
            panic!("poisoner");
        })
        .join();
        assert!(pool.shared.ctrl.lock().is_err(), "mutex must be poisoned");

        // Dispatches still run to completion over the poisoned mutex.
        let ok = AtomicUsize::new(0);
        pool.dispatch(8, &|_i, _lane| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 8);

        // A failing job's own message propagates, not a PoisonError.
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.dispatch(4, &|i, _lane| {
                if i == 2 {
                    panic!("the real panic");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("payload is the worker's own message");
        assert_eq!(msg, "the real panic");

        // And the pool keeps working afterwards (drop joins workers too).
        let again = AtomicUsize::new(0);
        pool.dispatch(3, &|_i, _lane| {
            again.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(again.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn nested_dispatch_panics_instead_of_deadlocking() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.dispatch(4, &|_i, _lane| {
                // n ≥ 2 so the inner call takes the full (guarded) path.
                pool.dispatch(2, &|_i, _lane| {});
            });
        }));
        assert!(result.is_err(), "nested dispatch must fail loudly");
        // The pool recovers once the offending dispatch unwound.
        let ok = AtomicUsize::new(0);
        pool.dispatch(4, &|_i, _lane| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn zero_width_resolves_to_available_parallelism() {
        let pool = WorkerPool::new(0);
        assert!(pool.width() >= 1);
        let mut items = vec![1u32; 10];
        pool.for_each_mut(&mut items, |_, x| *x += 1);
        assert!(items.iter().all(|&x| x == 2));
    }
}
