//! # tcsm-core
//!
//! The TCM algorithm: **time-constrained continuous subgraph matching**
//! (Min, Jang, Park, Giammarresi, Italiano, Han — ICDE 2024).
//!
//! [`TcmEngine`] wires the whole pipeline of Algorithm 1 together:
//!
//! 1. a query DAG `ˆq` built greedily to maximize temporal
//!    ancestor–descendant pairs ([`tcsm_dag`]),
//! 2. the max-min timestamp tables and TC-matchable-edge filter
//!    ([`tcsm_filter`]), updated on every edge arrival/expiration,
//! 3. the DCS auxiliary structure restricted to surviving pairs
//!    ([`tcsm_dcs`]),
//! 4. the backtracking matcher `FindMatches` (Algorithm 4) with the three
//!    time-constrained pruning techniques of §V ([`matcher`]).
//!
//! # Batched delta application
//!
//! Real temporal streams are bursty: many edges share one timestamp, and
//! the serial Algorithm 1 pays a full filter/DCS propagation plus a
//! `FindMatches` sweep per edge. With [`config::EngineConfig::batching`]
//! (or [`engine::TcmEngine::step_batch`] directly) the engine applies each
//! same-`(timestamp, kind)` group as *one* delta: the window is mutated for
//! the whole group (drained pair buckets stay id-resolvable until the next
//! group), each filter instance drains a single combined worklist, the DCS
//! applies one monotone delta, and one combined sweep — seeded by every
//! group edge under a per-seed same-timestamp exclusion — reports exactly
//! the serial match multiset (pinned by `tests/batch_equivalence.rs` at the
//! workspace root). Nothing is staged across group boundaries: all batch
//! scratch (edge list, seed ranges, worklists) is engine-owned and reused,
//! and slab reclamation happens when the next group opens. See
//! [`engine`]'s module docs for the staging timeline.
//!
//! ```
//! use tcsm_core::{TcmEngine, EngineConfig, MatchKind};
//! use tcsm_graph::{QueryGraphBuilder, TemporalGraphBuilder};
//!
//! // Query: a 2-path with e0 ≺ e1.
//! let mut qb = QueryGraphBuilder::new();
//! let (a, b, c) = (qb.vertex(0), qb.vertex(0), qb.vertex(0));
//! let e0 = qb.edge(a, b);
//! let e1 = qb.edge(b, c);
//! qb.precede(e0, e1);
//! let q = qb.build().unwrap();
//!
//! // Stream: v0-v1 at t=1, v1-v2 at t=2, window 10.
//! let mut gb = TemporalGraphBuilder::new();
//! let v = gb.vertices(3, 0);
//! gb.edge(v, v + 1, 1);
//! gb.edge(v + 1, v + 2, 2);
//! let g = gb.build().unwrap();
//!
//! let mut engine = TcmEngine::new(&q, &g, 10, EngineConfig::default()).unwrap();
//! let events = engine.run();
//! let occurred = events.iter().filter(|m| m.kind == MatchKind::Occurred).count();
//! assert_eq!(occurred, 1); // e0 ↦ t=1, e1 ↦ t=2 (the reverse violates ≺)
//! ```

pub mod config;
pub mod embedding;
pub mod engine;
pub mod matcher;
pub mod parallel;
pub mod stats;

pub use config::{AlgorithmPreset, EngineConfig, PruningFlags, SearchBudget};
pub use embedding::{Embedding, MatchEvent, MatchKind};
pub use engine::TcmEngine;
pub use parallel::run_queries_parallel;
pub use stats::EngineStats;
