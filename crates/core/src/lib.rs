//! # tcsm-core
//!
//! The TCM algorithm: **time-constrained continuous subgraph matching**
//! (Min, Jang, Park, Giammarresi, Italiano, Han — ICDE 2024).
//!
//! [`TcmEngine`] wires the whole pipeline of Algorithm 1 together:
//!
//! 1. a query DAG `ˆq` built greedily to maximize temporal
//!    ancestor–descendant pairs ([`tcsm_dag`]),
//! 2. the max-min timestamp tables and TC-matchable-edge filter
//!    ([`tcsm_filter`]), updated on every edge arrival/expiration,
//! 3. the DCS auxiliary structure restricted to surviving pairs
//!    ([`tcsm_dcs`]),
//! 4. the backtracking matcher `FindMatches` (Algorithm 4) with the three
//!    time-constrained pruning techniques of §V ([`matcher`]).
//!
//! # Batched delta application
//!
//! Real temporal streams are bursty: many edges share one timestamp, and
//! the serial Algorithm 1 pays a full filter/DCS propagation plus a
//! `FindMatches` sweep per edge. With [`config::EngineConfig::batching`]
//! (or [`engine::TcmEngine::step_batch`] directly) the engine applies each
//! same-`(timestamp, kind)` group as *one* delta: the window is mutated for
//! the whole group (drained pair buckets stay id-resolvable until the next
//! group), each filter instance drains a single combined worklist, the DCS
//! applies one monotone delta, and one combined sweep — seeded by every
//! group edge under a per-seed same-timestamp exclusion — reports exactly
//! the serial match multiset (pinned by `tests/batch_equivalence.rs` at the
//! workspace root). Nothing is staged across group boundaries: all batch
//! scratch (edge list, seed ranges, worklists) is engine-owned and reused,
//! and slab reclamation happens when the next group opens. See
//! [`engine`]'s module docs for the staging timeline.
//!
//! # Threading model
//!
//! The engine is serial by default ([`EngineConfig::threads`]` == 0`) and
//! exactly reproduces the paper's Algorithm 1. With `threads = n` it owns a
//! persistent [`pool::WorkerPool`] — the caller plus `n − 1` parked worker
//! threads — and routes its two independent hot phases through it:
//!
//! * **Filter propagation**: the four `(DAG, polarity)`
//!   [`tcsm_filter::FilterInstance`] updates of every event/batch are
//!   mutually independent (each owns its max-min table; all read only the
//!   immutable query and the already-mutated window). They fan out via the
//!   [`tcsm_filter::Exec`] trait, each writing pass-flips into a private
//!   shard; the bank merges shards **in instance order**, so the DCS sees
//!   the exact serial delta sequence. The DCS apply itself and the bank's
//!   membership updates stay on the caller.
//! * **Batched sweeps**: the per-seed `FindMatches` searches of one delta
//!   batch are independent (each has its own same-timestamp exclusion
//!   window and reads only the settled window/DCS/bank). Seeds fan out via
//!   [`pool::WorkerPool::for_each_with`], each lane using its own private
//!   [`matcher`] scratch and embedding arena (both engine-owned, pooled,
//!   and reused across events); per-seed results park in pre-assigned
//!   slots, and the caller splices them back **in seed (= key = serial
//!   event) order**.
//!
//! **Determinism**: because both merges happen in the serial order on the
//! caller, the reported match stream — and every algorithmic counter in
//! [`EngineStats`] (see [`EngineStats::semantic`]) — is byte-identical at
//! every pool width, including `0`; `tests/parallel_equivalence.rs` at the
//! workspace root pins this across all Table III profiles. Two carve-outs
//! keep semantics exact rather than approximate: runs with any
//! [`SearchBudget`] limit keep their sweeps serial (budget exhaustion
//! points depend on the cursor order), and single-seed batches skip the
//! fan-out entirely.
//!
//! **Ownership**: workers never own state across dispatches — every
//! dispatch borrows engine-owned slabs (lane scratches, seed slots, flip
//! shards) and returns them settled; the pool only schedules. Inter-query
//! parallelism runs whole serial runtimes on the same pool type — the two
//! fan-out levels are alternatives over one pool, never nested. (The
//! deprecated [`parallel::run_queries_parallel`] drives one engine per
//! query; its successor, `tcsm_service::MatchService`, shards queries over
//! shared windows.)
//!
//! # Window ownership split
//!
//! [`TcmEngine`] owns the *stream state* — event queue, cursor, and the
//! live window — while everything per-query (filter bank, DCS, matcher
//! scratch, stats) lives in [`runtime::QueryRuntime`], which **borrows**
//! the window on every call. One runtime under one engine is the paper's
//! single-query configuration; many runtimes reading one shared window is
//! the multi-query service (`tcsm-service`), which owns one window per
//! shard and fans stream deltas out to all resident runtimes. See
//! [`runtime`]'s module docs for the exact aliasing rules (who mutates
//! when, and why deferred bucket reclamation makes multi-reader sharing
//! sound).
//!
//! The `TCSM_THREADS` environment variable seeds
//! [`EngineConfig::default`]'s `threads` so whole test suites can be routed
//! through the parallel paths (CI gates `TCSM_THREADS=8`).
//!
//! ```
//! use tcsm_core::{TcmEngine, EngineConfig, MatchKind};
//! use tcsm_graph::{QueryGraphBuilder, TemporalGraphBuilder};
//!
//! // Query: a 2-path with e0 ≺ e1.
//! let mut qb = QueryGraphBuilder::new();
//! let (a, b, c) = (qb.vertex(0), qb.vertex(0), qb.vertex(0));
//! let e0 = qb.edge(a, b);
//! let e1 = qb.edge(b, c);
//! qb.precede(e0, e1);
//! let q = qb.build().unwrap();
//!
//! // Stream: v0-v1 at t=1, v1-v2 at t=2, window 10.
//! let mut gb = TemporalGraphBuilder::new();
//! let v = gb.vertices(3, 0);
//! gb.edge(v, v + 1, 1);
//! gb.edge(v + 1, v + 2, 2);
//! let g = gb.build().unwrap();
//!
//! let mut engine = TcmEngine::new(&q, &g, 10, EngineConfig::default()).unwrap();
//! let events = engine.run();
//! let occurred = events.iter().filter(|m| m.kind == MatchKind::Occurred).count();
//! assert_eq!(occurred, 1); // e0 ↦ t=1, e1 ↦ t=2 (the reverse violates ≺)
//! ```

pub mod audit;
pub mod config;
pub mod embedding;
pub mod engine;
pub mod matcher;
pub mod parallel;
pub mod pool;
pub mod pool_model;
pub mod runtime;
pub mod stats;

pub use audit::{AuditLevel, AuditViolation, Auditor};
pub use config::{AlgorithmPreset, EngineConfig, PruningFlags, SearchBudget};
pub use embedding::{Embedding, EmbeddingArena, MatchEvent, MatchKind};
pub use engine::TcmEngine;
#[allow(deprecated)]
pub use parallel::{run_queries_on, run_queries_parallel};
pub use pool::WorkerPool;
pub use runtime::QueryRuntime;
pub use stats::EngineStats;
