//! Multi-query parallel driving — the paper's "parallelizing our approach"
//! future-work direction, realized at the inter-query level.
//!
//! **Deprecated in favour of `tcsm_service::MatchService`.** These helpers
//! spin up one whole engine — and hence one full `WindowGraph` copy — per
//! query; the service shards queries across pools by label locality with
//! *one shared window per shard* and additionally supports live query
//! admission/retirement and pluggable result sinks.
//! `tcsm_service::run_queries_parallel`/`run_queries_on` are drop-in
//! service-backed versions of these functions (one shard per query, same
//! semantics — the service differential suite pins the equivalence); this
//! module remains as a compatibility shim because `tcsm-core` sits below
//! the service crate and cannot route through it.
//!
//! [`run_queries_parallel`] fans a query set out over the same
//! [`WorkerPool`] runtime the engine's intra-query phases use — each
//! query writes into its own pre-assigned result slot (no mutexes, no
//! channels) and the slots come back in input order. [`run_queries_on`]
//! does the same on a caller-owned pool, so one pool can serve repeated
//! sweeps without respawning threads.
//!
//! Inner engines run **serially** (`threads: 0`): with one query per lane
//! there is no idle parallelism left to exploit, and a nested dispatch on
//! the same pool from a worker lane would deadlock. Intra-query and
//! inter-query parallelism are therefore alternatives over the same pool,
//! chosen by which fan-out owns it.

use crate::config::EngineConfig;
use crate::engine::TcmEngine;
use crate::pool::WorkerPool;
use crate::stats::EngineStats;
use tcsm_graph::{GraphError, QueryGraph, TemporalGraph};

/// Runs one engine per query over the same stream, `threads` lanes wide
/// (0 = one lane per available CPU), on a pool private to this call.
/// Matches are counted, not collected.
#[deprecated(note = "use tcsm_service::MatchService")]
pub fn run_queries_parallel(
    queries: &[QueryGraph],
    g: &TemporalGraph,
    delta: i64,
    cfg: EngineConfig,
    threads: usize,
) -> Result<Vec<EngineStats>, GraphError> {
    let width = WorkerPool::resolve_width(threads).min(queries.len().max(1));
    #[allow(deprecated)]
    run_queries_on(&WorkerPool::new(width), queries, g, delta, cfg)
}

/// [`run_queries_parallel`] on a caller-owned pool: one slot per query,
/// claimed and filled by the pool's lanes, returned in input order.
///
/// Must not be called from inside a dispatch of the same pool (worker
/// lanes cannot nest dispatches).
#[deprecated(note = "use tcsm_service::MatchService")]
pub fn run_queries_on(
    pool: &WorkerPool,
    queries: &[QueryGraph],
    g: &TemporalGraph,
    delta: i64,
    cfg: EngineConfig,
) -> Result<Vec<EngineStats>, GraphError> {
    let cfg = EngineConfig {
        collect_matches: false,
        threads: 0,
        ..cfg
    };
    let mut slots: Vec<Option<Result<EngineStats, GraphError>>> = Vec::new();
    slots.resize_with(queries.len(), || None);
    pool.for_each_mut(&mut slots, |i, slot| {
        *slot = Some(TcmEngine::new(&queries[i], g, delta, cfg).map(|mut e| {
            let _ = e.run_counting();
            *e.stats()
        }));
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every query slot filled"))
        .collect()
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use tcsm_graph::{QueryGraphBuilder, TemporalGraphBuilder};

    fn workload() -> (Vec<QueryGraph>, TemporalGraph) {
        let mut gb = TemporalGraphBuilder::new();
        let v = gb.vertices(5, 0);
        for t in 1..=30i64 {
            gb.edge(v + (t % 5) as u32, v + ((t + 1) % 5) as u32, t);
        }
        let g = gb.build().unwrap();
        let queries = (2..=4usize)
            .map(|k| {
                let mut qb = QueryGraphBuilder::new();
                let vs: Vec<_> = (0..=k).map(|_| qb.vertex(0)).collect();
                let mut prev = None;
                for i in 0..k {
                    let e = qb.edge(vs[i], vs[i + 1]);
                    if let Some(p) = prev {
                        qb.precede(p, e);
                    }
                    prev = Some(e);
                }
                qb.build().unwrap()
            })
            .collect();
        (queries, g)
    }

    fn serial_cfg() -> EngineConfig {
        // Pin the comparison engines serial regardless of any TCSM_THREADS
        // env override, matching what run_queries_on forces internally.
        EngineConfig {
            threads: 0,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let (queries, g) = workload();
        let cfg = serial_cfg();
        let par = run_queries_parallel(&queries, &g, 10, cfg, 3).unwrap();
        for (i, q) in queries.iter().enumerate() {
            let mut e = TcmEngine::new(
                q,
                &g,
                10,
                EngineConfig {
                    collect_matches: false,
                    ..cfg
                },
            )
            .unwrap();
            let seq = *e.run_counting();
            assert_eq!(par[i], seq, "query {i}");
        }
    }

    #[test]
    fn zero_threads_means_all_cpus() {
        let (queries, g) = workload();
        let out = run_queries_parallel(&queries, &g, 10, serial_cfg(), 0).unwrap();
        assert_eq!(out.len(), queries.len());
        assert!(out.iter().any(|s| s.occurred > 0));
    }

    #[test]
    fn shared_pool_serves_repeated_sweeps() {
        let (queries, g) = workload();
        let pool = WorkerPool::new(2);
        let first = run_queries_on(&pool, &queries, &g, 10, serial_cfg()).unwrap();
        let second = run_queries_on(&pool, &queries, &g, 10, serial_cfg()).unwrap();
        assert_eq!(first, second);
        assert!(first.iter().any(|s| s.occurred > 0));
    }
}
