//! Multi-query parallel driving — the paper's "parallelizing our approach"
//! future-work direction, realized at the inter-query level.
//!
//! Continuous-matching deployments register many patterns against one
//! stream; each [`crate::TcmEngine`] is independent, so queries parallelize
//! embarrassingly. [`run_queries_parallel`] fans a query set out over
//! scoped threads and returns per-query statistics in input order.

use crate::config::EngineConfig;
use crate::engine::TcmEngine;
use crate::stats::EngineStats;
use tcsm_graph::{GraphError, QueryGraph, TemporalGraph};

/// Runs one engine per query over the same stream, `threads`-wide
/// (0 = one thread per available CPU). Matches are counted, not collected.
pub fn run_queries_parallel(
    queries: &[QueryGraph],
    g: &TemporalGraph,
    delta: i64,
    cfg: EngineConfig,
    threads: usize,
) -> Result<Vec<EngineStats>, GraphError> {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let cfg = EngineConfig {
        collect_matches: false,
        ..cfg
    };
    let n = queries.len();
    let mut results: Vec<Option<Result<EngineStats, GraphError>>> = (0..n).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_cell: Vec<std::sync::Mutex<Option<Result<EngineStats, GraphError>>>> =
        results.drain(..).map(std::sync::Mutex::new).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = TcmEngine::new(&queries[i], g, delta, cfg).map(|mut e| {
                    let _ = e.run_counting();
                    *e.stats()
                });
                *results_cell[i].lock().unwrap() = Some(out);
            });
        }
    });

    results_cell
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("every query processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsm_graph::{QueryGraphBuilder, TemporalGraphBuilder};

    fn workload() -> (Vec<QueryGraph>, TemporalGraph) {
        let mut gb = TemporalGraphBuilder::new();
        let v = gb.vertices(5, 0);
        for t in 1..=30i64 {
            gb.edge(v + (t % 5) as u32, v + ((t + 1) % 5) as u32, t);
        }
        let g = gb.build().unwrap();
        let queries = (2..=4usize)
            .map(|k| {
                let mut qb = QueryGraphBuilder::new();
                let vs: Vec<_> = (0..=k).map(|_| qb.vertex(0)).collect();
                let mut prev = None;
                for i in 0..k {
                    let e = qb.edge(vs[i], vs[i + 1]);
                    if let Some(p) = prev {
                        qb.precede(p, e);
                    }
                    prev = Some(e);
                }
                qb.build().unwrap()
            })
            .collect();
        (queries, g)
    }

    #[test]
    fn parallel_equals_sequential() {
        let (queries, g) = workload();
        let cfg = EngineConfig::default();
        let par = run_queries_parallel(&queries, &g, 10, cfg, 3).unwrap();
        for (i, q) in queries.iter().enumerate() {
            let mut e = TcmEngine::new(
                q,
                &g,
                10,
                EngineConfig {
                    collect_matches: false,
                    ..cfg
                },
            )
            .unwrap();
            let seq = *e.run_counting();
            assert_eq!(par[i], seq, "query {i}");
        }
    }

    #[test]
    fn zero_threads_means_all_cpus() {
        let (queries, g) = workload();
        let out = run_queries_parallel(&queries, &g, 10, EngineConfig::default(), 0).unwrap();
        assert_eq!(out.len(), queries.len());
        assert!(out.iter().any(|s| s.occurred > 0));
    }
}
